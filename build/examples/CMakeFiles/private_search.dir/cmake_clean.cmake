file(REMOVE_RECURSE
  "CMakeFiles/private_search.dir/private_search.cpp.o"
  "CMakeFiles/private_search.dir/private_search.cpp.o.d"
  "private_search"
  "private_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
