# Empty dependencies file for private_search.
# This may be replaced when dependencies are built.
