file(REMOVE_RECURSE
  "CMakeFiles/adtech_analytics.dir/adtech_analytics.cpp.o"
  "CMakeFiles/adtech_analytics.dir/adtech_analytics.cpp.o.d"
  "adtech_analytics"
  "adtech_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adtech_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
