# Empty dependencies file for adtech_analytics.
# This may be replaced when dependencies are built.
