file(REMOVE_RECURSE
  "CMakeFiles/streaming_watchlist.dir/streaming_watchlist.cpp.o"
  "CMakeFiles/streaming_watchlist.dir/streaming_watchlist.cpp.o.d"
  "streaming_watchlist"
  "streaming_watchlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_watchlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
