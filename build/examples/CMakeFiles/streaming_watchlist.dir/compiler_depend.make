# Empty compiler generated dependencies file for streaming_watchlist.
# This may be replaced when dependencies are built.
