file(REMOVE_RECURSE
  "libdpss_pss.a"
)
