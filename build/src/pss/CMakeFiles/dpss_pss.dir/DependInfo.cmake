
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pss/blocking.cc" "src/pss/CMakeFiles/dpss_pss.dir/blocking.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/blocking.cc.o.d"
  "/root/repo/src/pss/buffers.cc" "src/pss/CMakeFiles/dpss_pss.dir/buffers.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/buffers.cc.o.d"
  "/root/repo/src/pss/dictionary.cc" "src/pss/CMakeFiles/dpss_pss.dir/dictionary.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/dictionary.cc.o.d"
  "/root/repo/src/pss/linear_solver.cc" "src/pss/CMakeFiles/dpss_pss.dir/linear_solver.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/linear_solver.cc.o.d"
  "/root/repo/src/pss/ostrovsky.cc" "src/pss/CMakeFiles/dpss_pss.dir/ostrovsky.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/ostrovsky.cc.o.d"
  "/root/repo/src/pss/query.cc" "src/pss/CMakeFiles/dpss_pss.dir/query.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/query.cc.o.d"
  "/root/repo/src/pss/reconstruct.cc" "src/pss/CMakeFiles/dpss_pss.dir/reconstruct.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/reconstruct.cc.o.d"
  "/root/repo/src/pss/searcher.cc" "src/pss/CMakeFiles/dpss_pss.dir/searcher.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/searcher.cc.o.d"
  "/root/repo/src/pss/session.cc" "src/pss/CMakeFiles/dpss_pss.dir/session.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/session.cc.o.d"
  "/root/repo/src/pss/streaming.cc" "src/pss/CMakeFiles/dpss_pss.dir/streaming.cc.o" "gcc" "src/pss/CMakeFiles/dpss_pss.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dpss_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
