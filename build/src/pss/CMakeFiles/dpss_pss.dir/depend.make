# Empty dependencies file for dpss_pss.
# This may be replaced when dependencies are built.
