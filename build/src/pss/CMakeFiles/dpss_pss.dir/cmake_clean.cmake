file(REMOVE_RECURSE
  "CMakeFiles/dpss_pss.dir/blocking.cc.o"
  "CMakeFiles/dpss_pss.dir/blocking.cc.o.d"
  "CMakeFiles/dpss_pss.dir/buffers.cc.o"
  "CMakeFiles/dpss_pss.dir/buffers.cc.o.d"
  "CMakeFiles/dpss_pss.dir/dictionary.cc.o"
  "CMakeFiles/dpss_pss.dir/dictionary.cc.o.d"
  "CMakeFiles/dpss_pss.dir/linear_solver.cc.o"
  "CMakeFiles/dpss_pss.dir/linear_solver.cc.o.d"
  "CMakeFiles/dpss_pss.dir/ostrovsky.cc.o"
  "CMakeFiles/dpss_pss.dir/ostrovsky.cc.o.d"
  "CMakeFiles/dpss_pss.dir/query.cc.o"
  "CMakeFiles/dpss_pss.dir/query.cc.o.d"
  "CMakeFiles/dpss_pss.dir/reconstruct.cc.o"
  "CMakeFiles/dpss_pss.dir/reconstruct.cc.o.d"
  "CMakeFiles/dpss_pss.dir/searcher.cc.o"
  "CMakeFiles/dpss_pss.dir/searcher.cc.o.d"
  "CMakeFiles/dpss_pss.dir/session.cc.o"
  "CMakeFiles/dpss_pss.dir/session.cc.o.d"
  "CMakeFiles/dpss_pss.dir/streaming.cc.o"
  "CMakeFiles/dpss_pss.dir/streaming.cc.o.d"
  "libdpss_pss.a"
  "libdpss_pss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpss_pss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
