# Empty compiler generated dependencies file for dpss_common.
# This may be replaced when dependencies are built.
