file(REMOVE_RECURSE
  "CMakeFiles/dpss_common.dir/bytes.cc.o"
  "CMakeFiles/dpss_common.dir/bytes.cc.o.d"
  "CMakeFiles/dpss_common.dir/clock.cc.o"
  "CMakeFiles/dpss_common.dir/clock.cc.o.d"
  "CMakeFiles/dpss_common.dir/error.cc.o"
  "CMakeFiles/dpss_common.dir/error.cc.o.d"
  "CMakeFiles/dpss_common.dir/interval.cc.o"
  "CMakeFiles/dpss_common.dir/interval.cc.o.d"
  "CMakeFiles/dpss_common.dir/logging.cc.o"
  "CMakeFiles/dpss_common.dir/logging.cc.o.d"
  "CMakeFiles/dpss_common.dir/rng.cc.o"
  "CMakeFiles/dpss_common.dir/rng.cc.o.d"
  "CMakeFiles/dpss_common.dir/thread_pool.cc.o"
  "CMakeFiles/dpss_common.dir/thread_pool.cc.o.d"
  "libdpss_common.a"
  "libdpss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
