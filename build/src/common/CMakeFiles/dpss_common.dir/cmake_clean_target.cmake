file(REMOVE_RECURSE
  "libdpss_common.a"
)
