
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/adtech.cc" "src/storage/CMakeFiles/dpss_storage.dir/adtech.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/adtech.cc.o.d"
  "/root/repo/src/storage/batch_indexer.cc" "src/storage/CMakeFiles/dpss_storage.dir/batch_indexer.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/batch_indexer.cc.o.d"
  "/root/repo/src/storage/bitmap.cc" "src/storage/CMakeFiles/dpss_storage.dir/bitmap.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/bitmap.cc.o.d"
  "/root/repo/src/storage/concise.cc" "src/storage/CMakeFiles/dpss_storage.dir/concise.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/concise.cc.o.d"
  "/root/repo/src/storage/deep_storage.cc" "src/storage/CMakeFiles/dpss_storage.dir/deep_storage.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/deep_storage.cc.o.d"
  "/root/repo/src/storage/dictionary_encoder.cc" "src/storage/CMakeFiles/dpss_storage.dir/dictionary_encoder.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/dictionary_encoder.cc.o.d"
  "/root/repo/src/storage/incremental_index.cc" "src/storage/CMakeFiles/dpss_storage.dir/incremental_index.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/incremental_index.cc.o.d"
  "/root/repo/src/storage/lzf.cc" "src/storage/CMakeFiles/dpss_storage.dir/lzf.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/lzf.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/storage/CMakeFiles/dpss_storage.dir/schema.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/schema.cc.o.d"
  "/root/repo/src/storage/segment.cc" "src/storage/CMakeFiles/dpss_storage.dir/segment.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/segment.cc.o.d"
  "/root/repo/src/storage/segment_builder.cc" "src/storage/CMakeFiles/dpss_storage.dir/segment_builder.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/segment_builder.cc.o.d"
  "/root/repo/src/storage/segment_codec.cc" "src/storage/CMakeFiles/dpss_storage.dir/segment_codec.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/segment_codec.cc.o.d"
  "/root/repo/src/storage/segment_id.cc" "src/storage/CMakeFiles/dpss_storage.dir/segment_id.cc.o" "gcc" "src/storage/CMakeFiles/dpss_storage.dir/segment_id.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
