file(REMOVE_RECURSE
  "libdpss_storage.a"
)
