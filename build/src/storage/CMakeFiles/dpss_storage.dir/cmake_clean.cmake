file(REMOVE_RECURSE
  "CMakeFiles/dpss_storage.dir/adtech.cc.o"
  "CMakeFiles/dpss_storage.dir/adtech.cc.o.d"
  "CMakeFiles/dpss_storage.dir/batch_indexer.cc.o"
  "CMakeFiles/dpss_storage.dir/batch_indexer.cc.o.d"
  "CMakeFiles/dpss_storage.dir/bitmap.cc.o"
  "CMakeFiles/dpss_storage.dir/bitmap.cc.o.d"
  "CMakeFiles/dpss_storage.dir/concise.cc.o"
  "CMakeFiles/dpss_storage.dir/concise.cc.o.d"
  "CMakeFiles/dpss_storage.dir/deep_storage.cc.o"
  "CMakeFiles/dpss_storage.dir/deep_storage.cc.o.d"
  "CMakeFiles/dpss_storage.dir/dictionary_encoder.cc.o"
  "CMakeFiles/dpss_storage.dir/dictionary_encoder.cc.o.d"
  "CMakeFiles/dpss_storage.dir/incremental_index.cc.o"
  "CMakeFiles/dpss_storage.dir/incremental_index.cc.o.d"
  "CMakeFiles/dpss_storage.dir/lzf.cc.o"
  "CMakeFiles/dpss_storage.dir/lzf.cc.o.d"
  "CMakeFiles/dpss_storage.dir/schema.cc.o"
  "CMakeFiles/dpss_storage.dir/schema.cc.o.d"
  "CMakeFiles/dpss_storage.dir/segment.cc.o"
  "CMakeFiles/dpss_storage.dir/segment.cc.o.d"
  "CMakeFiles/dpss_storage.dir/segment_builder.cc.o"
  "CMakeFiles/dpss_storage.dir/segment_builder.cc.o.d"
  "CMakeFiles/dpss_storage.dir/segment_codec.cc.o"
  "CMakeFiles/dpss_storage.dir/segment_codec.cc.o.d"
  "CMakeFiles/dpss_storage.dir/segment_id.cc.o"
  "CMakeFiles/dpss_storage.dir/segment_id.cc.o.d"
  "libdpss_storage.a"
  "libdpss_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpss_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
