# Empty compiler generated dependencies file for dpss_storage.
# This may be replaced when dependencies are built.
