# Empty compiler generated dependencies file for dpss_cluster.
# This may be replaced when dependencies are built.
