
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/broker_node.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/broker_node.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/broker_node.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/compaction.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/compaction.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/compaction.cc.o.d"
  "/root/repo/src/cluster/coordinator_node.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/coordinator_node.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/coordinator_node.cc.o.d"
  "/root/repo/src/cluster/historical_node.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/historical_node.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/historical_node.cc.o.d"
  "/root/repo/src/cluster/message_queue.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/message_queue.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/message_queue.cc.o.d"
  "/root/repo/src/cluster/metastore.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/metastore.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/metastore.cc.o.d"
  "/root/repo/src/cluster/pss_client.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/pss_client.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/pss_client.cc.o.d"
  "/root/repo/src/cluster/realtime_node.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/realtime_node.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/realtime_node.cc.o.d"
  "/root/repo/src/cluster/registry.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/registry.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/registry.cc.o.d"
  "/root/repo/src/cluster/transport.cc" "src/cluster/CMakeFiles/dpss_cluster.dir/transport.cc.o" "gcc" "src/cluster/CMakeFiles/dpss_cluster.dir/transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpss_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dpss_query.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/dpss_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dpss_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
