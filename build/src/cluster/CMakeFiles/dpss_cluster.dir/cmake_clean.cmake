file(REMOVE_RECURSE
  "CMakeFiles/dpss_cluster.dir/broker_node.cc.o"
  "CMakeFiles/dpss_cluster.dir/broker_node.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/cluster.cc.o"
  "CMakeFiles/dpss_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/compaction.cc.o"
  "CMakeFiles/dpss_cluster.dir/compaction.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/coordinator_node.cc.o"
  "CMakeFiles/dpss_cluster.dir/coordinator_node.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/historical_node.cc.o"
  "CMakeFiles/dpss_cluster.dir/historical_node.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/message_queue.cc.o"
  "CMakeFiles/dpss_cluster.dir/message_queue.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/metastore.cc.o"
  "CMakeFiles/dpss_cluster.dir/metastore.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/pss_client.cc.o"
  "CMakeFiles/dpss_cluster.dir/pss_client.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/realtime_node.cc.o"
  "CMakeFiles/dpss_cluster.dir/realtime_node.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/registry.cc.o"
  "CMakeFiles/dpss_cluster.dir/registry.cc.o.d"
  "CMakeFiles/dpss_cluster.dir/transport.cc.o"
  "CMakeFiles/dpss_cluster.dir/transport.cc.o.d"
  "libdpss_cluster.a"
  "libdpss_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpss_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
