file(REMOVE_RECURSE
  "libdpss_cluster.a"
)
