
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/engine.cc" "src/query/CMakeFiles/dpss_query.dir/engine.cc.o" "gcc" "src/query/CMakeFiles/dpss_query.dir/engine.cc.o.d"
  "/root/repo/src/query/filter.cc" "src/query/CMakeFiles/dpss_query.dir/filter.cc.o" "gcc" "src/query/CMakeFiles/dpss_query.dir/filter.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/dpss_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/dpss_query.dir/query.cc.o.d"
  "/root/repo/src/query/result.cc" "src/query/CMakeFiles/dpss_query.dir/result.cc.o" "gcc" "src/query/CMakeFiles/dpss_query.dir/result.cc.o.d"
  "/root/repo/src/query/sql.cc" "src/query/CMakeFiles/dpss_query.dir/sql.cc.o" "gcc" "src/query/CMakeFiles/dpss_query.dir/sql.cc.o.d"
  "/root/repo/src/query/timeline.cc" "src/query/CMakeFiles/dpss_query.dir/timeline.cc.o" "gcc" "src/query/CMakeFiles/dpss_query.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpss_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
