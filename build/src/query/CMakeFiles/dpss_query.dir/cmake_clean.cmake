file(REMOVE_RECURSE
  "CMakeFiles/dpss_query.dir/engine.cc.o"
  "CMakeFiles/dpss_query.dir/engine.cc.o.d"
  "CMakeFiles/dpss_query.dir/filter.cc.o"
  "CMakeFiles/dpss_query.dir/filter.cc.o.d"
  "CMakeFiles/dpss_query.dir/query.cc.o"
  "CMakeFiles/dpss_query.dir/query.cc.o.d"
  "CMakeFiles/dpss_query.dir/result.cc.o"
  "CMakeFiles/dpss_query.dir/result.cc.o.d"
  "CMakeFiles/dpss_query.dir/sql.cc.o"
  "CMakeFiles/dpss_query.dir/sql.cc.o.d"
  "CMakeFiles/dpss_query.dir/timeline.cc.o"
  "CMakeFiles/dpss_query.dir/timeline.cc.o.d"
  "libdpss_query.a"
  "libdpss_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpss_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
