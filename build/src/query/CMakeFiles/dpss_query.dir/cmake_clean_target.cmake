file(REMOVE_RECURSE
  "libdpss_query.a"
)
