# Empty compiler generated dependencies file for dpss_query.
# This may be replaced when dependencies are built.
