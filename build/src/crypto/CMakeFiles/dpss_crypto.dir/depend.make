# Empty dependencies file for dpss_crypto.
# This may be replaced when dependencies are built.
