
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cc" "src/crypto/CMakeFiles/dpss_crypto.dir/bigint.cc.o" "gcc" "src/crypto/CMakeFiles/dpss_crypto.dir/bigint.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/crypto/CMakeFiles/dpss_crypto.dir/paillier.cc.o" "gcc" "src/crypto/CMakeFiles/dpss_crypto.dir/paillier.cc.o.d"
  "/root/repo/src/crypto/randomizer_pool.cc" "src/crypto/CMakeFiles/dpss_crypto.dir/randomizer_pool.cc.o" "gcc" "src/crypto/CMakeFiles/dpss_crypto.dir/randomizer_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
