file(REMOVE_RECURSE
  "CMakeFiles/dpss_crypto.dir/bigint.cc.o"
  "CMakeFiles/dpss_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/dpss_crypto.dir/paillier.cc.o"
  "CMakeFiles/dpss_crypto.dir/paillier.cc.o.d"
  "CMakeFiles/dpss_crypto.dir/randomizer_pool.cc.o"
  "CMakeFiles/dpss_crypto.dir/randomizer_pool.cc.o.d"
  "libdpss_crypto.a"
  "libdpss_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpss_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
