file(REMOVE_RECURSE
  "libdpss_crypto.a"
)
