file(REMOVE_RECURSE
  "CMakeFiles/pss_test.dir/pss/blocking_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/blocking_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/dictionary_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/dictionary_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/linear_solver_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/linear_solver_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/loss_sweep_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/loss_sweep_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/ostrovsky_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/ostrovsky_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/query_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/query_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/search_e2e_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/search_e2e_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/security_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/security_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/streaming_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/streaming_test.cc.o.d"
  "CMakeFiles/pss_test.dir/pss/threshold_test.cc.o"
  "CMakeFiles/pss_test.dir/pss/threshold_test.cc.o.d"
  "pss_test"
  "pss_test.pdb"
  "pss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
