
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pss/blocking_test.cc" "tests/CMakeFiles/pss_test.dir/pss/blocking_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/blocking_test.cc.o.d"
  "/root/repo/tests/pss/dictionary_test.cc" "tests/CMakeFiles/pss_test.dir/pss/dictionary_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/dictionary_test.cc.o.d"
  "/root/repo/tests/pss/linear_solver_test.cc" "tests/CMakeFiles/pss_test.dir/pss/linear_solver_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/linear_solver_test.cc.o.d"
  "/root/repo/tests/pss/loss_sweep_test.cc" "tests/CMakeFiles/pss_test.dir/pss/loss_sweep_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/loss_sweep_test.cc.o.d"
  "/root/repo/tests/pss/ostrovsky_test.cc" "tests/CMakeFiles/pss_test.dir/pss/ostrovsky_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/ostrovsky_test.cc.o.d"
  "/root/repo/tests/pss/query_test.cc" "tests/CMakeFiles/pss_test.dir/pss/query_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/query_test.cc.o.d"
  "/root/repo/tests/pss/search_e2e_test.cc" "tests/CMakeFiles/pss_test.dir/pss/search_e2e_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/search_e2e_test.cc.o.d"
  "/root/repo/tests/pss/security_test.cc" "tests/CMakeFiles/pss_test.dir/pss/security_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/security_test.cc.o.d"
  "/root/repo/tests/pss/streaming_test.cc" "tests/CMakeFiles/pss_test.dir/pss/streaming_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/streaming_test.cc.o.d"
  "/root/repo/tests/pss/threshold_test.cc" "tests/CMakeFiles/pss_test.dir/pss/threshold_test.cc.o" "gcc" "tests/CMakeFiles/pss_test.dir/pss/threshold_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dpss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/dpss_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpss_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dpss_query.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dpss_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
