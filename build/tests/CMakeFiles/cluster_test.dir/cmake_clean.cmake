file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/cluster/broker_routing_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/broker_routing_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/cluster_integration_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/cluster_integration_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/compaction_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/compaction_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/concurrency_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/concurrency_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/coordinator_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/coordinator_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/differential_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/differential_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/message_queue_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/message_queue_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/metastore_transport_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/metastore_transport_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/private_search_cluster_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/private_search_cluster_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/realtime_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/realtime_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/registry_stress_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/registry_stress_test.cc.o.d"
  "CMakeFiles/cluster_test.dir/cluster/registry_test.cc.o"
  "CMakeFiles/cluster_test.dir/cluster/registry_test.cc.o.d"
  "cluster_test"
  "cluster_test.pdb"
  "cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
