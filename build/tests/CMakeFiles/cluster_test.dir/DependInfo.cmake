
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cluster/broker_routing_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/broker_routing_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/broker_routing_test.cc.o.d"
  "/root/repo/tests/cluster/cluster_integration_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_integration_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/cluster_integration_test.cc.o.d"
  "/root/repo/tests/cluster/compaction_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/compaction_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/compaction_test.cc.o.d"
  "/root/repo/tests/cluster/concurrency_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/concurrency_test.cc.o.d"
  "/root/repo/tests/cluster/coordinator_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/coordinator_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/coordinator_test.cc.o.d"
  "/root/repo/tests/cluster/differential_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/differential_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/differential_test.cc.o.d"
  "/root/repo/tests/cluster/failure_injection_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/failure_injection_test.cc.o.d"
  "/root/repo/tests/cluster/message_queue_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/message_queue_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/message_queue_test.cc.o.d"
  "/root/repo/tests/cluster/metastore_transport_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/metastore_transport_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/metastore_transport_test.cc.o.d"
  "/root/repo/tests/cluster/private_search_cluster_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/private_search_cluster_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/private_search_cluster_test.cc.o.d"
  "/root/repo/tests/cluster/realtime_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/realtime_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/realtime_test.cc.o.d"
  "/root/repo/tests/cluster/registry_stress_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/registry_stress_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/registry_stress_test.cc.o.d"
  "/root/repo/tests/cluster/registry_test.cc" "tests/CMakeFiles/cluster_test.dir/cluster/registry_test.cc.o" "gcc" "tests/CMakeFiles/cluster_test.dir/cluster/registry_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dpss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/dpss_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpss_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dpss_query.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dpss_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
