
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/bytes_test.cc" "tests/CMakeFiles/common_test.dir/common/bytes_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/bytes_test.cc.o.d"
  "/root/repo/tests/common/clock_test.cc" "tests/CMakeFiles/common_test.dir/common/clock_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/clock_test.cc.o.d"
  "/root/repo/tests/common/hash_test.cc" "tests/CMakeFiles/common_test.dir/common/hash_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/hash_test.cc.o.d"
  "/root/repo/tests/common/interval_test.cc" "tests/CMakeFiles/common_test.dir/common/interval_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/interval_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/common_test.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/thread_pool_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dpss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/dpss_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpss_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dpss_query.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dpss_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
