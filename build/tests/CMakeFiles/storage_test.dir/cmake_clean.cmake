file(REMOVE_RECURSE
  "CMakeFiles/storage_test.dir/storage/batch_indexer_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/batch_indexer_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/bitmap_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/bitmap_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/codec_fuzz_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/codec_fuzz_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/concise_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/concise_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/deep_storage_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/deep_storage_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/dictionary_encoder_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/dictionary_encoder_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/incremental_index_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/incremental_index_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/lzf_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/lzf_test.cc.o.d"
  "CMakeFiles/storage_test.dir/storage/segment_test.cc.o"
  "CMakeFiles/storage_test.dir/storage/segment_test.cc.o.d"
  "storage_test"
  "storage_test.pdb"
  "storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
