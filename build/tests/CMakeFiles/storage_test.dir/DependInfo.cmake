
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/storage/batch_indexer_test.cc" "tests/CMakeFiles/storage_test.dir/storage/batch_indexer_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/batch_indexer_test.cc.o.d"
  "/root/repo/tests/storage/bitmap_test.cc" "tests/CMakeFiles/storage_test.dir/storage/bitmap_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/bitmap_test.cc.o.d"
  "/root/repo/tests/storage/codec_fuzz_test.cc" "tests/CMakeFiles/storage_test.dir/storage/codec_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/codec_fuzz_test.cc.o.d"
  "/root/repo/tests/storage/concise_test.cc" "tests/CMakeFiles/storage_test.dir/storage/concise_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/concise_test.cc.o.d"
  "/root/repo/tests/storage/deep_storage_test.cc" "tests/CMakeFiles/storage_test.dir/storage/deep_storage_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/deep_storage_test.cc.o.d"
  "/root/repo/tests/storage/dictionary_encoder_test.cc" "tests/CMakeFiles/storage_test.dir/storage/dictionary_encoder_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/dictionary_encoder_test.cc.o.d"
  "/root/repo/tests/storage/incremental_index_test.cc" "tests/CMakeFiles/storage_test.dir/storage/incremental_index_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/incremental_index_test.cc.o.d"
  "/root/repo/tests/storage/lzf_test.cc" "tests/CMakeFiles/storage_test.dir/storage/lzf_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/lzf_test.cc.o.d"
  "/root/repo/tests/storage/segment_test.cc" "tests/CMakeFiles/storage_test.dir/storage/segment_test.cc.o" "gcc" "tests/CMakeFiles/storage_test.dir/storage/segment_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dpss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/dpss_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpss_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dpss_query.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dpss_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
