file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_private_avg.dir/bench_fig7_private_avg.cc.o"
  "CMakeFiles/bench_fig7_private_avg.dir/bench_fig7_private_avg.cc.o.d"
  "bench_fig7_private_avg"
  "bench_fig7_private_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_private_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
