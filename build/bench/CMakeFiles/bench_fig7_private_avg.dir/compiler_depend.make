# Empty compiler generated dependencies file for bench_fig7_private_avg.
# This may be replaced when dependencies are built.
