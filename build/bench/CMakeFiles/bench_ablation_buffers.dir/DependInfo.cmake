
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_buffers.cc" "bench/CMakeFiles/bench_ablation_buffers.dir/bench_ablation_buffers.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_buffers.dir/bench_ablation_buffers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/dpss_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/dpss_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/dpss_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dpss_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dpss_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dpss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
