file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_segments.dir/bench_table1_segments.cc.o"
  "CMakeFiles/bench_table1_segments.dir/bench_table1_segments.cc.o.d"
  "bench_table1_segments"
  "bench_table1_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
