# Empty compiler generated dependencies file for bench_ablation_paillier.
# This may be replaced when dependencies are built.
