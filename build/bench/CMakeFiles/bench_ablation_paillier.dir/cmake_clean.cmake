file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_paillier.dir/bench_ablation_paillier.cc.o"
  "CMakeFiles/bench_ablation_paillier.dir/bench_ablation_paillier.cc.o.d"
  "bench_ablation_paillier"
  "bench_ablation_paillier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_paillier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
