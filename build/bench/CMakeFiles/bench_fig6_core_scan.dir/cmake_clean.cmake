file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_core_scan.dir/bench_fig6_core_scan.cc.o"
  "CMakeFiles/bench_fig6_core_scan.dir/bench_fig6_core_scan.cc.o.d"
  "bench_fig6_core_scan"
  "bench_fig6_core_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_core_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
