# Empty compiler generated dependencies file for bench_fig6_core_scan.
# This may be replaced when dependencies are built.
