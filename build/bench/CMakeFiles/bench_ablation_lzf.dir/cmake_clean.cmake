file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lzf.dir/bench_ablation_lzf.cc.o"
  "CMakeFiles/bench_ablation_lzf.dir/bench_ablation_lzf.cc.o.d"
  "bench_ablation_lzf"
  "bench_ablation_lzf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lzf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
