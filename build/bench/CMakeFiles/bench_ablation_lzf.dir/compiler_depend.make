# Empty compiler generated dependencies file for bench_ablation_lzf.
# This may be replaced when dependencies are built.
