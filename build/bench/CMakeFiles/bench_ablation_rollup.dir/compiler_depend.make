# Empty compiler generated dependencies file for bench_ablation_rollup.
# This may be replaced when dependencies are built.
