file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rollup.dir/bench_ablation_rollup.cc.o"
  "CMakeFiles/bench_ablation_rollup.dir/bench_ablation_rollup.cc.o.d"
  "bench_ablation_rollup"
  "bench_ablation_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
