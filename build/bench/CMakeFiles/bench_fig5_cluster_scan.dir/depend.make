# Empty dependencies file for bench_fig5_cluster_scan.
# This may be replaced when dependencies are built.
