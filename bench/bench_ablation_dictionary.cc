// Ablation — cost vs. public dictionary size |D|.
//
// The encrypted query is one ciphertext per dictionary word, so query
// construction and the query's wire size are linear in |D| — but the
// broker's per-document work is not: Step 2.1 multiplies only the
// entries of words actually present in the document, and the buffers are
// |D|-independent. This is the property that makes large public
// dictionaries practical, and the quantitative answer to §II's concern
// about solutions that grow the dictionary.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/scaling_sim.h"
#include "common/bytes.h"
#include "pss/searcher.h"
#include "pss/session.h"

int main() {
  using namespace dpss;
  using namespace dpss::bench;
  using namespace dpss::pss;

  std::printf("# Ablation: dictionary size |D| vs client query cost, wire "
              "size, and broker per-document cost (64-doc stream)\n");
  std::printf("%-8s  %-14s  %-14s  %-16s  %-16s\n", "|D|", "build_query_s",
              "query_KB", "broker_per_doc_ms", "envelope_KB");

  for (const std::size_t dictSize : {16u, 64u, 256u, 1024u}) {
    std::vector<std::string> words;
    words.reserve(dictSize);
    for (std::size_t i = 0; i < dictSize; ++i) {
      words.push_back("word" + std::to_string(i));
    }
    const Dictionary dict(words);
    SearchParams params;
    params.bufferLength = 16;
    params.indexBufferLength = 256;
    params.bloomHashes = 5;
    PrivateSearchClient client(dict, params, 256, 4000 + dictSize);

    EncryptedQuery query = client.makeQuery({"word3"});
    const double buildSeconds =
        timeSeconds([&] { query = client.makeQuery({"word3"}); },
                    /*reps=*/1);
    ByteWriter qw;
    query.serialize(qw);

    std::vector<std::string> docs;
    for (int i = 0; i < 64; ++i) {
      docs.push_back("word3 word7 filler text number " + std::to_string(i));
    }
    Rng rng(5);
    double envelopeKb = 0;
    const double searchSeconds = timeSeconds([&] {
      StreamSearcher searcher(dict, query, 4, rng);
      for (std::size_t i = 0; i < docs.size(); ++i) {
        searcher.processSegment(i, docs[i]);
      }
      ByteWriter ew;
      searcher.finish().serialize(ew);
      envelopeKb = static_cast<double>(ew.size()) / 1024.0;
    }, /*reps=*/1);

    std::printf("%-8zu  %-14.4f  %-14.1f  %-16.3f  %-16.1f\n", dictSize,
                buildSeconds, static_cast<double>(qw.size()) / 1024.0,
                searchSeconds / 64.0 * 1e3, envelopeKb);
  }
  std::printf("# expected: query cost/size linear in |D|; broker "
              "per-document cost and envelope size ~flat\n");
  return 0;
}
