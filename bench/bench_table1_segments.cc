// Table I — the segment data model: cost of turning raw events with the
// paper's ad-tech schema into immutable columnar segments, serializing
// them for deep storage, and loading them back, plus the compression the
// column layout achieves (§III-B).
#include <benchmark/benchmark.h>

#include "storage/adtech.h"
#include "storage/segment_builder.h"
#include "storage/segment_codec.h"

namespace {

using namespace dpss;
using namespace dpss::storage;

std::vector<InputRow>& rows10k() {
  static std::vector<InputRow> rows = [] {
    AdTechConfig config;
    config.rowsPerSegment = 10'000;
    return generateAdTechRows(config, 0);
  }();
  return rows;
}

SegmentId segId() {
  SegmentId id;
  id.dataSource = "ads";
  id.interval = Interval(0, 4'000'000'000'000LL);
  id.version = "v1";
  return id;
}

void BM_BuildSegment(benchmark::State& state) {
  const auto& rows = rows10k();
  for (auto _ : state) {
    SegmentBuilder builder(adTechSchema());
    for (const auto& row : rows) builder.add(row);
    benchmark::DoNotOptimize(builder.build(segId()));
  }
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * rows.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BuildSegment)->Unit(benchmark::kMillisecond);

void BM_EncodeSegment(benchmark::State& state) {
  SegmentBuilder builder(adTechSchema());
  for (const auto& row : rows10k()) builder.add(row);
  const auto segment = builder.build(segId());
  for (auto _ : state) {
    const auto blob = encodeSegment(*segment);
    state.counters["blob_bytes"] = static_cast<double>(blob.size());
    benchmark::DoNotOptimize(blob);
  }
  state.counters["memory_bytes"] =
      static_cast<double>(segment->memoryFootprint());
}
BENCHMARK(BM_EncodeSegment)->Unit(benchmark::kMillisecond);

void BM_DecodeSegment(benchmark::State& state) {
  SegmentBuilder builder(adTechSchema());
  for (const auto& row : rows10k()) builder.add(row);
  const std::string blob = encodeSegment(*builder.build(segId()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decodeSegment(blob));
  }
  state.counters["blob_bytes"] = static_cast<double>(blob.size());
}
BENCHMARK(BM_DecodeSegment)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
