// Figure 5 — cluster scanning rate (million rows/s) vs node count, for
// the six Table II queries, on the paper's node axis {1..55} with its
// 15-threads-per-node configuration.
//
// Per-segment scan costs and broker merge costs are measured on the real
// engine; the multi-node schedule is simulated (see scaling_sim.h — the
// host has one core). Expected paper shape: near-linear growth up to
// ~30 nodes, then visible saturation as the cluster becomes
// over-provisioned for the dataset (segments per node shrink below the
// thread count and the sequential merge term dominates); Q1 fastest,
// queries with more metric columns slower.
#include <cstdio>
#include <vector>

#include "bench/scaling_sim.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "query/result.h"
#include "storage/adtech.h"

int main() {
  using namespace dpss;
  using namespace dpss::bench;

  storage::AdTechConfig config;
  config.rowsPerSegment = 10'000;  // the paper's segment size
  config.highCardCardinality = 20'000;
  const std::size_t kSegments = 360;  // "thousands" scaled to CI
  const auto segments =
      storage::generateAdTechSegments(config, "ads", kSegments);
  const double totalRows =
      static_cast<double>(kSegments * config.rowsPerSegment);
  const Interval all(0, 4'000'000'000'000LL);

  std::printf("# Figure 5: cluster scanning rate vs nodes "
              "(measured engine costs, simulated 15-thread-per-node "
              "schedule; %zu segments x %zu rows)\n",
              kSegments, config.rowsPerSegment);
  std::printf("%-6s", "nodes");
  for (int qn = 1; qn <= 6; ++qn) std::printf("  q%d_Mrows_s", qn);
  std::printf("  q1_linear_Mrows_s\n");

  const std::vector<std::size_t> nodeCounts = {1, 2, 5, 10, 15, 20, 30, 40,
                                               55};
  const std::size_t kThreads = 15;

  // Measure per-segment scan cost and per-partial merge cost per query.
  std::vector<std::vector<double>> segCosts(7);
  std::vector<double> mergeCost(7, 0.0);
  for (int qn = 1; qn <= 6; ++qn) {
    const auto spec = query::tableTwoQuery(qn, "ads", all);
    for (const auto& seg : segments) {
      segCosts[qn].push_back(timeSeconds([&] {
        for (int rep = 0; rep < 4; ++rep) query::scanSegment(*seg, spec);
      }, /*reps=*/2) / 4.0);
    }
    // Merge cost of one partial into the accumulator (broker-side,
    // sequential).
    const auto partial = query::scanSegment(*segments[0], spec);
    mergeCost[qn] = timeSeconds([&] {
      query::QueryResult acc;
      for (int i = 0; i < 16; ++i) acc.mergeFrom(partial);
    }) / 16.0;
  }

  // Expected-linear baseline for Q1, anchored at the 5-node point (the
  // paper anchors its expectation the same way).
  const double q1At5 =
      totalRows / clusterMakespan(segCosts[1], 5, kThreads, mergeCost[1]);

  for (const auto nodes : nodeCounts) {
    std::printf("%-6zu", nodes);
    for (int qn = 1; qn <= 6; ++qn) {
      const double makespan =
          clusterMakespan(segCosts[qn], nodes, kThreads, mergeCost[qn]);
      std::printf("  %10.2f", totalRows / makespan / 1e6);
    }
    std::printf("  %10.2f\n", q1At5 * (static_cast<double>(nodes) / 5.0) / 1e6);
  }

  // Scan-layer metrics recorded underneath the measurements, as Prometheus
  // text on stderr (stdout stays a clean data table for plotting).
  std::fprintf(stderr, "%s",
               obs::renderText(obs::globalRegistry().snapshot()).c_str());
  return 0;
}
