// Ablation — the paper's idle-tail effect: "Concurrency model of our
// system is based on the segment: one thread scan a segment. If the
// number of segments on a node modulo the number of cores is small (such
// as 17 segments and 15 cores), during the last round of calculation,
// some of the core will be idle."
//
// With 17 equal-cost segments, a 15-thread node takes 2 full rounds while
// only 2/15 of the second round does work — efficiency 17/30. The bench
// sweeps threads for a fixed 17-segment node and prints the utilization
// the schedule achieves (measured per-segment cost, list-scheduled
// makespan; single-core host, see scaling_sim.h).
#include <cstdio>
#include <vector>

#include "bench/scaling_sim.h"
#include "query/engine.h"
#include "storage/adtech.h"

int main() {
  using namespace dpss;
  using namespace dpss::bench;

  storage::AdTechConfig config;
  config.rowsPerSegment = 10'000;
  const auto segments = storage::generateAdTechSegments(config, "ads", 17);
  const auto spec = query::tableTwoQuery(
      1, "ads", Interval(0, 4'000'000'000'000LL));

  std::vector<double> costs;
  double totalWork = 0;
  for (const auto& seg : segments) {
    costs.push_back(timeSeconds([&] { query::scanSegment(*seg, spec); }));
    totalWork += costs.back();
  }

  std::printf("# Ablation: threads-per-node vs utilization, 17 segments "
              "(paper's idle-tail example)\n");
  std::printf("%-8s  %-12s  %-12s  %-10s\n", "threads", "makespan_ms",
              "ideal_ms", "utilization");
  for (const std::size_t threads : {1u, 2u, 4u, 8u, 15u, 16u, 17u, 32u}) {
    const double makespan = nodeMakespan(costs, threads);
    const double ideal = totalWork / static_cast<double>(threads);
    std::printf("%-8zu  %-12.3f  %-12.3f  %-10.3f\n", threads,
                makespan * 1e3, ideal * 1e3, ideal / makespan);
  }
  std::printf("# expected: utilization dips at 15 threads (17 mod 15 = 2 "
              "idle tail), recovers at 17\n");
  return 0;
}
