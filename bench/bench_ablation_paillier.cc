// Ablation — Paillier primitive costs vs key size: key generation,
// encryption, standard vs CRT decryption, homomorphic addition and
// plaintext-scalar multiplication (the per-segment hot operations of the
// broker's Step 2).
#include <benchmark/benchmark.h>

#include <map>

#include "crypto/paillier.h"
#include "crypto/randomizer_pool.h"

namespace {

using namespace dpss;
using namespace dpss::crypto;

PaillierKeyPair& keyFor(std::size_t bits) {
  static std::map<std::size_t, PaillierKeyPair> cache;
  auto it = cache.find(bits);
  if (it == cache.end()) {
    Rng rng(bits * 7 + 1);
    it = cache.emplace(bits, generateKeyPair(bits, rng)).first;
  }
  return it->second;
}

void BM_KeyGen(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generateKeyPair(static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_KeyGen)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_Encrypt(benchmark::State& state) {
  auto& kp = keyFor(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  const Bigint m = Bigint::randomBelow(rng, kp.pub.n());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.encrypt(m, rng));
  }
}
BENCHMARK(BM_Encrypt)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_Decrypt(benchmark::State& state) {
  auto& kp = keyFor(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  const Ciphertext c = kp.pub.encrypt(Bigint(123456), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.decrypt(c));
  }
}
BENCHMARK(BM_Decrypt)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_DecryptCrt(benchmark::State& state) {
  auto& kp = keyFor(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  const Ciphertext c = kp.pub.encrypt(Bigint(123456), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.decryptCrt(c));
  }
}
BENCHMARK(BM_DecryptCrt)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_AddCipher(benchmark::State& state) {
  auto& kp = keyFor(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  const Ciphertext a = kp.pub.encrypt(Bigint(1), rng);
  const Ciphertext b = kp.pub.encrypt(Bigint(2), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.addCipher(a, b));
  }
}
BENCHMARK(BM_AddCipher)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_MulPlain(benchmark::State& state) {
  // The data-buffer update E(c)^f with a full-width block exponent.
  auto& kp = keyFor(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  const Ciphertext c = kp.pub.encrypt(Bigint(3), rng);
  const Bigint block =
      Bigint::randomBits(rng, kp.pub.modulusBits() - 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.mulPlain(c, block));
  }
}
BENCHMARK(BM_MulPlain)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_EncryptPooled(benchmark::State& state) {
  // Encryption with precomputed randomizers (crypto/randomizer_pool.h):
  // the blinding exponentiation moves offline, leaving one mulmod.
  // Fixed iteration count: the untimed refills are expensive at large
  // key sizes, so letting the framework auto-scale would stall the run.
  auto& kp = keyFor(static_cast<std::size_t>(state.range(0)));
  Rng rng(7);
  RandomizerPool pool(kp.pub, rng);
  const Bigint m(123456);
  for (auto _ : state) {
    if (pool.available() == 0) {
      state.PauseTiming();
      pool.refill(512);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(pool.encrypt(m));
  }
}
BENCHMARK(BM_EncryptPooled)->Arg(512)->Arg(1024)->Arg(2048)
    ->Iterations(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
