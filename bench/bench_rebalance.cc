// Coordinator rebalancer bench: 10k-segment placement, scale-out
// rebalance, and drain against the real CoordinatorNode over the real
// Registry, with *simulated* historicals that apply load-queue entries
// directly (announce serving / remove the announcement) instead of
// fetching and decoding blobs — the reconcile loop is what's measured,
// not segment IO.
//
// Prints a JSON document; BENCH_rebalance.json at the repo root is
// seeded from this output. scripts/check_bench_rebalance.py re-runs
// `--quick` and gates the *structural invariants* (move budgets
// respected, no thrashing, spread converges to the threshold) and
// machine-independent ratios — never absolute times.
//
// Usage: bench_rebalance [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/coordinator_node.h"
#include "cluster/metastore.h"
#include "cluster/names.h"
#include "cluster/registry.h"
#include "common/clock.h"

namespace {

using namespace dpss;
using namespace dpss::cluster;
using SteadyClock = std::chrono::steady_clock;

/// A historical that speaks only the registry protocol: it drains its
/// load queue by announcing SERVING (or dropping the announcement)
/// immediately, with no deep-storage fetch or segment decode.
class SimHistorical {
 public:
  SimHistorical(Registry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {
    session_ = registry_.connect(name_);
    registry_.create(paths::nodeAnnouncement(name_),
                     paths::announceData("historical", ""), session_,
                     /*ephemeral=*/true);
  }

  /// Applies every queued entry; returns how many were applied.
  std::size_t apply() {
    std::size_t applied = 0;
    const std::string queue = paths::loadQueue(name_);
    for (const auto& child : registry_.children(queue)) {
      const std::string entryPath = queue + "/" + child;
      const auto data = registry_.getData(entryPath);
      if (!data) continue;
      if (const auto entry = paths::parseLoadEntry(*data)) {
        const std::string served = paths::servedSegment(name_, entry->id);
        if (!registry_.exists(served)) {
          registry_.create(served, "", session_, /*ephemeral=*/true);
        }
      } else {  // "drop"
        registry_.remove(paths::nodeAnnouncement(name_) + "/" + child);
      }
      registry_.remove(entryPath);
      ++applied;
    }
    return applied;
  }

  std::size_t serving() const {
    return registry_.children(paths::nodeAnnouncement(name_)).size();
  }

  const std::string& name() const { return name_; }

 private:
  Registry& registry_;
  std::string name_;
  SessionPtr session_;
};

struct PhaseResult {
  std::size_t cycles = 0;
  std::size_t moves = 0;
  std::size_t maxMovesInOneCycle = 0;
  double seconds = 0.0;
};

/// Runs reconcile cycles (coordinator cycle, then every sim applies its
/// queue) until a cycle issues nothing and no entry was applied.
PhaseResult converge(CoordinatorNode& coordinator,
                     std::vector<SimHistorical>& sims,
                     std::size_t maxCycles) {
  PhaseResult r;
  const auto t0 = SteadyClock::now();
  for (std::size_t i = 0; i < maxCycles; ++i) {
    const auto stats = coordinator.runOnce();
    std::size_t applied = 0;
    for (auto& sim : sims) applied += sim.apply();
    ++r.cycles;
    r.moves += stats.movesIssued;
    r.maxMovesInOneCycle = std::max(r.maxMovesInOneCycle, stats.movesIssued);
    if (stats.loadsIssued == 0 && stats.dropsIssued == 0 && applied == 0) {
      break;
    }
  }
  r.seconds =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::size_t segments = quick ? 2'000 : 10'000;
  const std::size_t initialNodes = 8;
  const std::size_t joinedNodes = 8;
  const std::size_t drainedNodes = 4;

  ManualClock clock(1'400'000'000'000);
  Registry registry;
  MetaStore metaStore;
  LoadRules rules;
  rules.replicationFactor = 1;
  metaStore.setDefaultRules(rules);

  CoordinatorOptions options;
  options.maxMovesPerCycle = 64;
  options.maxPendingLoadsPerNode = 32;
  CoordinatorNode coordinator("bench-coordinator", registry, metaStore,
                              clock, options);

  for (std::size_t i = 0; i < segments; ++i) {
    SegmentRecord record;
    record.id.dataSource = "bench";
    record.id.interval =
        Interval(static_cast<TimeMs>(i) * 3'600'000,
                 static_cast<TimeMs>(i + 1) * 3'600'000);
    record.id.version = "v0";
    record.deepStorageKey = record.id.toString();
    record.sizeBytes = 1;
    metaStore.upsertSegment(record);
  }

  std::vector<SimHistorical> sims;
  sims.reserve(initialNodes + joinedNodes);
  for (std::size_t i = 0; i < initialNodes; ++i) {
    sims.emplace_back(registry, "sim-" + std::to_string(i));
  }

  std::printf("{\n  \"bench\": \"rebalance\",\n");
  std::printf("  \"segments\": %zu,\n", segments);
  std::printf("  \"nodes_initial\": %zu,\n", initialNodes);
  std::printf("  \"nodes_final\": %zu,\n", initialNodes + joinedNodes);
  std::printf("  \"max_moves_per_cycle\": %zu,\n", options.maxMovesPerCycle);
  std::printf("  \"max_pending_loads_per_node\": %zu,\n",
              options.maxPendingLoadsPerNode);

  // --- phase 1: cold placement onto the initial nodes -------------------
  const auto placement = converge(coordinator, sims, segments);
  std::size_t served = 0;
  for (const auto& sim : sims) served += sim.serving();
  std::printf(
      "  \"placement\": {\"cycles\": %zu, \"seconds\": %.3f, "
      "\"segments_per_s\": %.0f, \"served\": %zu},\n",
      placement.cycles, placement.seconds,
      placement.seconds > 0 ? segments / placement.seconds : 0.0, served);

  // --- phase 2: scale-out, throttled rebalance ---------------------------
  for (std::size_t i = 0; i < joinedNodes; ++i) {
    sims.emplace_back(registry,
                      "sim-" + std::to_string(initialNodes + i));
  }
  const auto rebalance = converge(coordinator, sims, segments);
  const auto settled = coordinator.lastStats();
  std::printf(
      "  \"rebalance\": {\"cycles\": %zu, \"seconds\": %.3f, "
      "\"cycles_per_s\": %.1f, \"moves_total\": %zu, "
      "\"max_moves_in_one_cycle\": %zu, \"final_spread\": %zu},\n",
      rebalance.cycles, rebalance.seconds,
      rebalance.seconds > 0 ? rebalance.cycles / rebalance.seconds : 0.0,
      rebalance.moves, rebalance.maxMovesInOneCycle, settled.imbalance);

  // --- phase 3: drain the joiners back out -------------------------------
  for (std::size_t i = 0; i < drainedNodes; ++i) {
    coordinator.requestDrain(sims[initialNodes + i].name());
  }
  const auto drain = converge(coordinator, sims, segments);
  std::size_t drainedStillServing = 0;
  for (std::size_t i = 0; i < drainedNodes; ++i) {
    drainedStillServing += sims[initialNodes + i].serving();
  }
  served = 0;
  for (const auto& sim : sims) served += sim.serving();
  std::printf(
      "  \"drain\": {\"nodes\": %zu, \"cycles\": %zu, \"seconds\": %.3f, "
      "\"drained_still_serving\": %zu, \"served\": %zu}\n}\n",
      drainedNodes, drain.cycles, drain.seconds, drainedStillServing,
      served);
  return 0;
}
