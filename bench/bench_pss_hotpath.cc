// Hot-path microbench for the Paillier/PSS pipeline: fast vs reference
// encryption (g = n+1 shortcut vs generic double exponentiation), CRT and
// batched decryption, shared-table mulPlainMany, the thread-parallel
// per-segment fold, and whole-session document throughput (packed and
// unpacked).
//
// Prints a JSON document; BENCH_pss.json at the repo root is seeded from
// this output. scripts/check_bench_pss.py re-runs `--quick` and compares
// the *speedup ratios* (fast/reference within one run), which are stable
// across machines, rather than absolute times, which are not.
//
// Usage: bench_pss_hotpath [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/paillier.h"
#include "crypto/randomizer_pool.h"
#include "pss/dictionary.h"
#include "pss/searcher.h"
#include "pss/session.h"

namespace {

using namespace dpss;
using namespace dpss::crypto;
using SteadyClock = std::chrono::steady_clock;

/// Microseconds per iteration of `fn` over `iters` runs.
template <typename Fn>
double usPerIter(int iters, Fn&& fn) {
  const auto t0 = SteadyClock::now();
  for (int i = 0; i < iters; ++i) fn(i);
  const auto dt =
      std::chrono::duration<double, std::micro>(SteadyClock::now() - t0);
  return dt.count() / iters;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  constexpr std::size_t kKeyBits = 512;
  Rng keyRng(20260808);
  const PaillierKeyPair kp = generateKeyPair(kKeyBits, keyRng);
  const PaillierPublicKey& pub = kp.pub;

  std::printf("{\n  \"bench\": \"pss_hotpath\",\n");
  std::printf("  \"key_bits\": %zu,\n", kKeyBits);

  // --- encryption: generic reference vs g = n+1 fast path vs pooled ----
  {
    const int iters = quick ? 30 : 200;
    Rng rng(7);
    std::vector<Bigint> ms;
    for (int i = 0; i < iters; ++i) {
      ms.push_back(Bigint::randomBelow(rng, pub.n()));
    }
    Rng rGeneric(11), rFast(11), rPool(13);
    const double genericUs = usPerIter(
        iters, [&](int i) { (void)pub.encryptGeneric(ms[i], rGeneric); });
    const double fastUs =
        usPerIter(iters, [&](int i) { (void)pub.encrypt(ms[i], rFast); });
    // Pooled encryption is ~1 µs, far below timer noise at the other
    // stages' iteration counts; always average over a larger batch.
    const int pooledIters = iters * 8;
    RandomizerPool pool(pub, rPool);
    pool.refill(static_cast<std::size_t>(pooledIters));
    const double pooledUs = usPerIter(
        pooledIters, [&](int i) { (void)pool.encrypt(ms[i % iters]); });
    std::printf(
        "  \"encrypt\": {\"iters\": %d, \"generic_us\": %.1f, "
        "\"fast_us\": %.1f, \"pooled_us\": %.1f, "
        "\"fast_speedup\": %.2f, \"pooled_speedup\": %.2f},\n",
        iters, genericUs, fastUs, pooledUs, genericUs / fastUs,
        genericUs / pooledUs);
  }

  // --- decryption: standard vs CRT vs batched CRT ----------------------
  {
    const int iters = quick ? 30 : 200;
    Rng rng(17);
    std::vector<Ciphertext> cs;
    for (int i = 0; i < iters; ++i) {
      cs.push_back(pub.encrypt(Bigint::randomBelow(rng, pub.n()), rng));
    }
    const double stdUs =
        usPerIter(iters, [&](int i) { (void)kp.priv.decrypt(cs[i]); });
    const double crtUs =
        usPerIter(iters, [&](int i) { (void)kp.priv.decryptCrt(cs[i]); });
    const auto t0 = SteadyClock::now();
    (void)kp.priv.decryptCrtBatch(cs);
    const double batchUs =
        std::chrono::duration<double, std::micro>(SteadyClock::now() - t0)
            .count() /
        iters;
    std::printf(
        "  \"decrypt\": {\"iters\": %d, \"standard_us\": %.1f, "
        "\"crt_us\": %.1f, \"batch_us_per_ct\": %.1f, "
        "\"crt_speedup\": %.2f},\n",
        iters, stdUs, crtUs, batchUs, stdUs / crtUs);
  }

  // --- mulPlainMany: shared fixed-base table vs per-call mulPlain ------
  // Batch 8 sits below the fixed-base crossover (mulPlainMany takes the
  // direct path, speedup ~1.0); batch 64 is far enough past it to show
  // the shared table paying off.
  {
    std::printf("  \"mul_plain\": {");
    const char* sep = "";
    for (const std::size_t batch : {std::size_t{8}, std::size_t{64}}) {
      const int iters = quick ? 4 : 20;
      Rng rng(23);
      const Ciphertext c = pub.encrypt(Bigint(42), rng);
      std::vector<Bigint> ks;
      for (std::size_t i = 0; i < batch; ++i) {
        ks.push_back(Bigint::randomBelow(rng, pub.n()));
      }
      const double singleUs = usPerIter(iters, [&](int) {
        for (const auto& k : ks) (void)pub.mulPlain(c, k);
      });
      const double manyUs =
          usPerIter(iters, [&](int) { (void)pub.mulPlainMany(c, ks); });
      std::printf("%s\"loop_us_batch%zu\": %.1f, \"many_us_batch%zu\": %.1f, "
                  "\"many_speedup_batch%zu\": %.2f",
                  sep, batch, singleUs, batch, manyUs, batch,
                  singleUs / manyUs);
      sep = ", ";
    }
    std::printf("},\n");
  }

  // --- per-segment fold: serial vs sharded through a thread pool ------
  // folds/s per configuration; on a single-core host the sharded rates
  // degenerate to roughly serial minus task overhead — the JSON records
  // whatever this machine can show, the gate only checks structure here.
  {
    const int segments = quick ? 8 : 32;
    const pss::Dictionary dict(
        {"alpha", "breach", "cipher", "delta", "echo", "fox"});
    const pss::SearchParams params{
        .bufferLength = 32, .indexBufferLength = 256, .bloomHashes = 3};
    pss::PrivateSearchClient client(dict, params, kKeyBits, 31337);
    const pss::EncryptedQuery query = client.makeQuery({"breach"});
    std::vector<std::string> stream;
    for (int i = 0; i < segments; ++i) {
      stream.push_back((i % 4 == 1 ? "breach in segment " : "segment ") +
                       std::to_string(i));
    }
    std::printf("  \"fold\": {\"segments\": %d, \"buffer_length\": %zu",
                segments, params.bufferLength);
    for (const std::size_t shards : {std::size_t{0}, std::size_t{2},
                                     std::size_t{4}}) {
      ThreadPool pool(shards == 0 ? 1 : shards);
      Rng brokerRng(4242);
      pss::StreamSearcher searcher(dict, query, /*blocks=*/2, brokerRng);
      if (shards != 0) searcher.setFoldOptions({&pool, shards});
      const auto t0 = SteadyClock::now();
      for (int i = 0; i < segments; ++i) {
        searcher.processSegment(static_cast<std::uint64_t>(i), stream[i]);
      }
      const double secs =
          std::chrono::duration<double>(SteadyClock::now() - t0).count();
      (void)searcher.finish();
      std::printf(", \"segments_per_s_shards_%zu\": %.1f",
                  shards == 0 ? std::size_t{1} : shards, segments / secs);
    }
    std::printf("},\n");
  }

  // --- whole session: documents/s, unpacked vs packed ------------------
  {
    // Quick still needs ⌈docs/3⌉ groups > l_F = 12 for the packed leg.
    const int docs = quick ? 48 : 96;
    const pss::Dictionary dict(
        {"alpha", "breach", "cipher", "delta", "echo", "fox"});
    // 96 docs at full scale put 8 matches in the stream; l_F leaves
    // headroom for those plus Bloom false positives, and pack=3 keeps
    // ⌈docs/3⌉ = 32 groups > l_F.
    const pss::SearchParams params{
        .bufferLength = 12, .indexBufferLength = 192, .bloomHashes = 3};
    std::vector<std::string> stream;
    for (int i = 0; i < docs; ++i) {
      stream.push_back((i % 12 == 5 ? "breach in document " : "document ") +
                       std::to_string(i));
    }
    std::printf("  \"session\": {\"documents\": %d", docs);
    for (const std::size_t pack : {std::size_t{1}, std::size_t{3}}) {
      pss::PrivateSearchClient client(dict, params, kKeyBits, 999);
      Rng brokerRng(777);
      const auto t0 = SteadyClock::now();
      const auto results = pss::runPrivateSearchPacked(
          client, {"breach"}, stream, pack, /*blocksPerSegment=*/0,
          brokerRng);
      const double secs =
          std::chrono::duration<double>(SteadyClock::now() - t0).count();
      std::printf(", \"docs_per_s_pack%zu\": %.1f, \"matches_pack%zu\": %zu",
                  pack, docs / secs, pack, results.size());
    }
    std::printf("}\n}\n");
  }
  return 0;
}
