// Ablation — compressed (CONCISE-style) vs plain bitmaps, §III-B's
// "Boolean operations on compressed indices can improve performance and
// save space": footprint and AND/OR cost across densities.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "storage/bitmap.h"
#include "storage/concise.h"

namespace {

using namespace dpss;
using namespace dpss::storage;

constexpr std::size_t kBits = 1'000'000;

Bitmap makePlain(double densityPermille, std::uint64_t seed) {
  Rng rng(seed);
  Bitmap b(kBits);
  for (std::size_t i = 0; i < kBits; ++i) {
    if (rng.chance(densityPermille / 1000.0)) b.set(i);
  }
  return b;
}

void BM_PlainOr(benchmark::State& state) {
  const auto a = makePlain(static_cast<double>(state.range(0)), 1);
  const auto b = makePlain(static_cast<double>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a | b);
  }
  state.counters["bytes"] = static_cast<double>(kBits / 8);
}
BENCHMARK(BM_PlainOr)->Arg(1)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_ConciseOr(benchmark::State& state) {
  const auto a = ConciseBitmap::fromBitmap(
      makePlain(static_cast<double>(state.range(0)), 1));
  const auto b = ConciseBitmap::fromBitmap(
      makePlain(static_cast<double>(state.range(0)), 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a | b);
  }
  state.counters["bytes"] =
      static_cast<double>(a.compressedBytes() + b.compressedBytes()) / 2;
}
BENCHMARK(BM_ConciseOr)->Arg(1)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_ConciseAnd(benchmark::State& state) {
  const auto a = ConciseBitmap::fromBitmap(
      makePlain(static_cast<double>(state.range(0)), 1));
  const auto b = ConciseBitmap::fromBitmap(
      makePlain(static_cast<double>(state.range(0)), 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a & b);
  }
}
BENCHMARK(BM_ConciseAnd)->Arg(1)->Arg(10)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

void BM_ConciseBuild(benchmark::State& state) {
  const auto plain = makePlain(static_cast<double>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConciseBitmap::fromBitmap(plain));
  }
}
BENCHMARK(BM_ConciseBuild)->Arg(1)->Arg(100)->Arg(500)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
