// Ablation — three-buffer scheme vs the single-buffer OS05-style
// baseline, the design §II motivates ("rather than using one large buffer
// and attempting to avoid collisions ... stores the matching documents in
// three buffers and retrieves them by solving linear systems"):
//
//   (a) retrieval completeness vs match count at a fixed ciphertext
//       budget — the baseline loses documents to collisions silently,
//       the three-buffer scheme recovers everything up to l_F and fails
//       *detectably* beyond it;
//   (b) the three-buffer scheme's singular-system retry rate vs l_F —
//       the l_F x l_F reconstruction matrix is a random 0/1 matrix, and
//       such matrices are singular surprisingly often at small sizes
//       (~46% at 8x8 over the rationals), a retry cost the paper never
//       mentions; measured against the Monte-Carlo reference.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"
#include "pss/ostrovsky.h"
#include "pss/session.h"

int main() {
  using namespace dpss;
  using namespace dpss::pss;

  const Dictionary dictionary({"hit", "miss"});
  constexpr std::size_t kDocs = 96;

  // ---- (a) completeness vs match count at equal buffer budget. --------
  // Three-buffer: l_F = 16 data slots (+16 c, +128 bloom).
  // Baseline: 160 slots, the same ciphertext count, copies = 3.
  std::printf("# (a) retrieved matches vs true matches, %zu-doc stream\n",
              kDocs);
  std::printf("%-8s  %-14s  %-18s\n", "matches", "three_buffer",
              "single_buffer_os05");
  SearchParams params;
  params.bufferLength = 16;
  params.indexBufferLength = 128;
  params.bloomHashes = 5;
  PrivateSearchClient client(dictionary, params, 128, 555);

  for (const std::size_t matches : {1u, 4u, 8u, 12u, 16u, 24u, 32u}) {
    std::vector<std::string> docs(kDocs, "miss entry");
    for (std::size_t m = 0; m < matches; ++m) {
      docs[m * (kDocs / matches)] = "hit number " + std::to_string(m);
    }

    // Three-buffer (detectable overflow reported as -1).
    long threeBuffer = 0;
    try {
      Rng rng(100 + matches);
      threeBuffer = static_cast<long>(
          runPrivateSearch(client, {"hit"}, docs, 0, rng).size());
    } catch (const BufferOverflow&) {
      threeBuffer = -1;
    }

    // OS05 baseline.
    OstrovskyParams osParams;
    osParams.bufferSlots = 160;
    osParams.copies = 3;
    Rng osRng(200 + matches);
    const auto osQuery = client.makeQuery({"hit"});
    OstrovskySearcher searcher(dictionary, osQuery, 2, osParams, osRng);
    for (std::size_t i = 0; i < docs.size(); ++i) {
      searcher.processSegment(i, docs[i]);
    }
    auto env = searcher.finish();
    const auto osResults = ostrovskyReconstruct(client.privateKey(), env);

    if (threeBuffer < 0) {
      std::printf("%-8zu  %-14s  %-18zu\n", matches, "overflow!",
                  osResults.size());
    } else {
      std::printf("%-8zu  %-14ld  %-18zu\n", matches, threeBuffer,
                  osResults.size());
    }
  }

  // ---- (b) singular-retry rate vs l_F. --------------------------------
  // Reference: the probability that a random 0/1 matrix over the
  // rationals is singular (Monte-Carlo, 400 trials/point): n=4: 0.65,
  // n=6: 0.57, n=8: 0.46, n=12: 0.16, n=16: ~0.03. Each singular system
  // costs one batch retry with a fresh PRF seed, so practical
  // deployments want l_F >= 16 — a cost the paper does not discuss.
  std::printf("\n# (b) singular reconstruction-system rate vs l_F "
              "(trials per point: 60)\n");
  std::printf("%-6s  %-10s  %-16s\n", "l_F", "measured",
              "random01_reference");
  const std::map<std::size_t, double> reference = {
      {4, 0.65}, {6, 0.57}, {8, 0.46}, {12, 0.16}, {16, 0.03}};
  for (const std::size_t lf : {4u, 6u, 8u, 12u, 16u}) {
    SearchParams p;
    p.bufferLength = lf;
    p.indexBufferLength = 256;
    p.bloomHashes = 5;
    PrivateSearchClient c(dictionary, p, 128, 700 + lf);
    std::vector<std::string> docs(64, "miss entry");
    docs[7] = "hit once";
    const auto query = c.makeQuery({"hit"});

    int singular = 0;
    constexpr int kTrials = 60;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(9000 + lf * 1000 + trial);
      StreamSearcher searcher(dictionary, query, 2, rng);
      for (std::size_t i = 0; i < docs.size(); ++i) {
        searcher.processSegment(i, docs[i]);
      }
      const auto env = searcher.finish();
      try {
        (void)c.open(env);
      } catch (const CryptoError&) {
        ++singular;
      }
    }
    std::printf("%-6zu  %-10.3f  %-16.3f\n", lf,
                static_cast<double>(singular) / kTrials, reference.at(lf));
  }
  return 0;
}
