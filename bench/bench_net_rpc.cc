// Loopback RPC microbench for the net layer: round-trip latency
// percentiles and multi-threaded throughput through two NetTransports
// (client + server, separate sockets, real framing) on 127.0.0.1.
//
// Prints a JSON document; BENCH_net.json at the repo root is seeded from
// this output so perf drift in the socket/framing path is visible in
// review diffs. Run with no arguments.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "net/net_transport.h"

namespace {

using SteadyClock = std::chrono::steady_clock;

double percentile(std::vector<double>& sortedUs, double p) {
  const std::size_t idx = std::min(
      sortedUs.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sortedUs.size())));
  return sortedUs[idx];
}

}  // namespace

int main() {
  using namespace dpss;

  SystemClock& clock = SystemClock::instance();
  net::NetTransport server(clock);
  net::NetTransport client(clock);
  server.bind("echo", [](const std::string& req) { return req; });
  server.start();
  client.start();
  client.addPeer("echo", "127.0.0.1:" + std::to_string(server.port()));

  std::printf("{\n  \"bench\": \"net_rpc_loopback\",\n");

  // --- single-caller round-trip latency, 64-byte payload ---------------
  {
    const std::string payload(64, 'x');
    constexpr int kWarmup = 200;
    constexpr int kCalls = 5'000;
    for (int i = 0; i < kWarmup; ++i) client.call("echo", payload);
    std::vector<double> us;
    us.reserve(kCalls);
    for (int i = 0; i < kCalls; ++i) {
      const auto t0 = SteadyClock::now();
      client.call("echo", payload);
      us.push_back(std::chrono::duration<double, std::micro>(SteadyClock::now() - t0)
                       .count());
    }
    std::sort(us.begin(), us.end());
    std::printf("  \"latency_64B\": {\"calls\": %d, \"p50_us\": %.1f, "
                "\"p95_us\": %.1f, \"p99_us\": %.1f},\n",
                kCalls, percentile(us, 0.50), percentile(us, 0.95),
                percentile(us, 0.99));
  }

  // --- multi-threaded throughput across payload sizes ------------------
  const struct {
    const char* key;
    std::size_t bytes;
    int callsPerThread;
  } kSizes[] = {
      {"throughput_64B", 64, 4'000},
      {"throughput_4KiB", 4 * 1024, 2'000},
      {"throughput_64KiB", 64 * 1024, 500},
  };
  constexpr int kThreads = 4;
  for (std::size_t s = 0; s < std::size(kSizes); ++s) {
    const auto& cfg = kSizes[s];
    const std::string payload(cfg.bytes, 'y');
    std::atomic<int> failures{0};
    const auto t0 = SteadyClock::now();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < cfg.callsPerThread; ++i) {
          if (client.call("echo", payload).size() != payload.size()) {
            ++failures;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const double sec =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    const double calls = double(kThreads) * cfg.callsPerThread;
    std::printf("  \"%s\": {\"threads\": %d, \"calls\": %.0f, "
                "\"calls_per_s\": %.0f, \"mb_per_s\": %.1f, "
                "\"failures\": %d}%s\n",
                cfg.key, kThreads, calls, calls / sec,
                // Payload crosses the wire twice (request + echo).
                2.0 * calls * double(cfg.bytes) / (1024.0 * 1024.0) / sec,
                failures.load(), s + 1 < std::size(kSizes) ? "," : "");
  }

  std::printf("}\n");
  client.stop();
  server.stop();
  return 0;
}
