// Table II — the six query statements, measured two ways:
//   engine/qN    one real segment scan on the query engine (the per-core
//                cost that Figure 6 normalizes to)
//   cluster/qN   the full broker path: routing via the timeline, one RPC
//                per segment over the serialized transport, partial merge
//                and finalization, on a small real cluster
#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "query/engine.h"
#include "storage/adtech.h"

namespace {

using namespace dpss;

const Interval kAll(0, 4'000'000'000'000LL);

storage::SegmentPtr sharedSegment() {
  static storage::SegmentPtr segment = [] {
    storage::AdTechConfig config;
    config.rowsPerSegment = 10'000;
    return storage::generateAdTechSegments(config, "ads", 1)[0];
  }();
  return segment;
}

void BM_EngineScan(benchmark::State& state) {
  const auto segment = sharedSegment();
  const auto spec =
      query::tableTwoQuery(static_cast<int>(state.range(0)), "ads", kAll);
  std::uint64_t rows = 0;
  for (auto _ : state) {
    const auto result = query::scanSegment(*segment, spec);
    rows += result.rowsScanned;
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineScan)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

struct ClusterFixture {
  ClusterFixture() : clock(1'400'000'000'000), cluster(clock, options()) {
    storage::AdTechConfig config;
    config.rowsPerSegment = 10'000;
    cluster.publishSegments(
        storage::generateAdTechSegments(config, "ads", 8));
  }
  static cluster::ClusterOptions options() {
    cluster::ClusterOptions o;
    o.historicalNodes = 2;
    o.workerThreadsPerNode = 2;  // single-core host
    o.brokerScatterThreads = 2;
    o.brokerCacheCapacity = 0;   // measure real scatter, not the cache
    return o;
  }
  ManualClock clock;
  cluster::Cluster cluster;
};

void BM_ClusterQuery(benchmark::State& state) {
  static ClusterFixture fixture;
  const auto spec =
      query::tableTwoQuery(static_cast<int>(state.range(0)), "ads", kAll);
  std::uint64_t rows = 0;
  for (auto _ : state) {
    const auto outcome = fixture.cluster.broker().query(spec);
    rows += outcome.rowsScanned;
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterQuery)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

void BM_ClusterQueryCached(benchmark::State& state) {
  // Same path with the broker result cache on: after the first round
  // every per-segment partial is served from the LRU cache.
  static ManualClock clock(1'400'000'000'000);
  static auto& cached = *[] {
    cluster::ClusterOptions o = ClusterFixture::options();
    o.brokerCacheCapacity = 4096;
    auto* c = new cluster::Cluster(clock, o);  // leaked: process-lifetime
    storage::AdTechConfig config;
    config.rowsPerSegment = 10'000;
    c->publishSegments(storage::generateAdTechSegments(config, "ads", 8));
    return c;
  }();
  const auto spec =
      query::tableTwoQuery(static_cast<int>(state.range(0)), "ads", kAll);
  for (auto _ : state) {
    const auto outcome = cached.broker().query(spec);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ClusterQueryCached)->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
