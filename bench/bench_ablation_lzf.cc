// Ablation — LZF on columnar payloads (§III-B): compression throughput,
// decompression throughput, and achieved ratio on the three column
// shapes a segment serializes: sorted dictionary ids, timestamps deltas,
// and near-random doubles.
#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "storage/lzf.h"

namespace {

using namespace dpss;
using namespace dpss::storage;

std::string sortedIdColumn() {
  // Dictionary ids after the segment sort: long runs, tiny alphabet.
  Rng rng(1);
  std::string out;
  while (out.size() < 256 * 1024) {
    out.append(1 + rng.below(64), static_cast<char>(rng.below(8)));
  }
  return out;
}

std::string timestampDeltaColumn() {
  Rng rng(2);
  ByteWriter w;
  for (int i = 0; i < 100'000; ++i) w.svarint(rng.below(2000));
  return w.take();
}

std::string randomDoublesColumn() {
  Rng rng(3);
  ByteWriter w;
  for (int i = 0; i < 50'000; ++i) w.f64(rng.uniform01() * 1000);
  return w.take();
}

void runCompress(benchmark::State& state, const std::string& input) {
  std::size_t outBytes = 0;
  for (auto _ : state) {
    const auto compressed = lzfCompress(input);
    outBytes = compressed.size();
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * input.size()));
  state.counters["ratio"] =
      static_cast<double>(input.size()) / static_cast<double>(outBytes);
}

void runDecompress(benchmark::State& state, const std::string& input) {
  const auto compressed = lzfCompress(input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lzfDecompress(compressed));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * input.size()));
}

void BM_CompressSortedIds(benchmark::State& state) {
  runCompress(state, sortedIdColumn());
}
void BM_CompressTimestamps(benchmark::State& state) {
  runCompress(state, timestampDeltaColumn());
}
void BM_CompressDoubles(benchmark::State& state) {
  runCompress(state, randomDoublesColumn());
}
void BM_DecompressSortedIds(benchmark::State& state) {
  runDecompress(state, sortedIdColumn());
}
void BM_DecompressTimestamps(benchmark::State& state) {
  runDecompress(state, timestampDeltaColumn());
}
BENCHMARK(BM_CompressSortedIds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompressTimestamps)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompressDoubles)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecompressSortedIds)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DecompressTimestamps)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
