// Standing-subscription bench: one realtime-side SubscriptionHost with
// 1 -> 1k live subscriptions, fed a fixed document stream. Two costs are
// measured per sweep point: the ingest fold (every document folded into
// every active matcher, inline fill-threshold seals included — this is
// what the node's ingest loop pays) and the seal-before-commit barrier
// (sealAll over a partial batch, padding included — this is what a queue
// commit pays). One subscription's snapshots are decrypted through
// SubscriptionFeed so the sweep also proves end-to-end recovery at every
// fan-out level.
//
// Prints a JSON document; BENCH_subs.json at the repo root is seeded
// from the full run. scripts/check_bench_subs.py re-runs `--quick` and
// gates the *structural invariants* (snapshot counts are a deterministic
// function of the policy, every expected match is recovered, fold count
// is exactly subs x docs) and machine-independent ratios — never
// absolute times.
//
// Usage: bench_subscriptions [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "cluster/subscription_host.h"
#include "common/clock.h"
#include "pss/dictionary.h"
#include "pss/session.h"
#include "pss/subscription.h"

namespace {

using namespace dpss;
using namespace dpss::pss;
using SteadyClock = std::chrono::steady_clock;

double secondsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

/// Document `i` of the stream: every 6th carries the subscribed keyword.
std::string documentText(std::size_t i) {
  if (i % 6 == 0) return "breach detected in sector " + std::to_string(i);
  return "routine heartbeat " + std::to_string(i);
}

struct PointResult {
  std::size_t subscriptions = 0;
  std::size_t documents = 0;
  std::size_t folds = 0;
  double foldSeconds = 0.0;
  std::size_t fillSnapshots = 0;
  std::size_t drainSnapshots = 0;
  double drainSeconds = 0.0;
  std::size_t recovered = 0;
  std::size_t expectedMatches = 0;
  std::uint64_t duplicatesDropped = 0;
};

PointResult runPoint(PrivateSearchClient& client, const Dictionary& dict,
                     std::size_t subs, std::size_t docs,
                     std::size_t maxDocuments) {
  SubscriptionSpec spec;
  spec.docSource = "bench-stream";
  spec.dictionaryWords = dict.words();
  spec.query = client.makeQuery({"breach"});
  // 4 blocks x 15 bytes (128-bit modulus) comfortably fits every
  // documentText payload; an undersized budget would fold matches as
  // unrecoverable padding and the recovery gate below would catch it.
  spec.blocksPerSegment = 4;
  spec.policy.periodMs = 0;  // fill-threshold only: fully deterministic
  spec.policy.maxDocuments = maxDocuments;

  ManualClock clock(1'700'000'000'000);
  cluster::SubscriptionDiskState disk;
  cluster::SubscriptionHost host("bench-rt", "bench-stream", disk, clock);
  for (std::size_t i = 0; i < subs; ++i) {
    host.attach(static_cast<SubscriptionId>(i + 1), spec);
  }

  PointResult r;
  r.subscriptions = subs;
  r.documents = docs;

  // Ingest: every document hits every matcher; a full batch seals inline
  // exactly as it does in RealtimeNode's ingest loop.
  const auto foldStart = SteadyClock::now();
  for (std::size_t i = 0; i < docs; ++i) {
    const std::string text = documentText(i);
    host.onDocument(i, text, text);
    if (text.rfind("breach", 0) == 0) ++r.expectedMatches;
  }
  r.foldSeconds = secondsSince(foldStart);
  r.folds = static_cast<std::size_t>(host.documentsMatched());
  r.fillSnapshots = static_cast<std::size_t>(host.snapshotsSealed());

  // Commit barrier: seal every partial batch (padded to l_F segments).
  const auto drainStart = SteadyClock::now();
  host.sealAll();
  r.drainSeconds = secondsSince(drainStart);
  r.drainSnapshots =
      static_cast<std::size_t>(host.snapshotsSealed()) - r.fillSnapshots;

  // End-to-end: one subscription's snapshots decrypt to exactly the
  // matching documents, regardless of how many neighbours it had.
  SubscriptionFeed feed(client.privateKey());
  for (const auto& snap : host.fetch(1, /*ackSeq=*/0)) {
    feed.apply("bench-rt/bench-stream", snap.envelope);
  }
  r.recovered = feed.documents().size();
  r.duplicatesDropped = feed.duplicatesDropped();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<std::size_t> sweep =
      quick ? std::vector<std::size_t>{1, 8, 64}
            : std::vector<std::size_t>{1, 4, 16, 64, 256, 1024};
  const std::size_t docs = 36;
  const std::size_t maxDocuments = 8;

  Dictionary dict({"breach", "routine", "sector", "heartbeat"});
  SearchParams params{16, 256, 5};
  PrivateSearchClient client(dict, params, 128, 20250808);

  std::printf("{\n  \"bench\": \"subscriptions\",\n");
  std::printf("  \"documents_per_point\": %zu,\n", docs);
  std::printf("  \"max_documents_per_snapshot\": %zu,\n", maxDocuments);
  std::printf("  \"buffer_length\": %zu,\n", params.bufferLength);
  std::printf("  \"points\": [");

  bool first = true;
  for (const std::size_t subs : sweep) {
    const PointResult r = runPoint(client, dict, subs, docs, maxDocuments);
    std::printf("%s\n    {\"subscriptions\": %zu, \"documents\": %zu, "
                "\"folds\": %zu, \"fold_seconds\": %.4f, "
                "\"folds_per_s\": %.0f, "
                "\"fill_snapshots\": %zu, \"drain_snapshots\": %zu, "
                "\"drain_seconds\": %.4f, \"seal_ms_per_snapshot\": %.3f, "
                "\"recovered\": %zu, \"expected_matches\": %zu, "
                "\"duplicates_dropped\": %llu}",
                first ? "" : ",", r.subscriptions, r.documents, r.folds,
                r.foldSeconds,
                r.foldSeconds > 0 ? r.folds / r.foldSeconds : 0.0,
                r.fillSnapshots, r.drainSnapshots, r.drainSeconds,
                r.drainSnapshots > 0
                    ? 1e3 * r.drainSeconds / r.drainSnapshots
                    : 0.0,
                r.recovered, r.expectedMatches,
                static_cast<unsigned long long>(r.duplicatesDropped));
    first = false;
  }
  std::printf("\n  ]\n}\n");
  return 0;
}
