// Figure 6 — core scanning rate (10,000 rows/s per core) vs node count.
//
// Same measured-costs + simulated-schedule harness as Figure 5; here the
// cluster rate is divided by the total worker-thread count. Expected
// paper shape: per-core rate approximately flat across node counts (the
// work is embarrassingly parallel per segment), dipping only in the
// over-provisioned tail where idle threads dilute the average; Q1 around
// the paper's "330 thousand rows per second per core" order, decreasing
// as metric columns are added (Q2, Q3) and for the grouped queries
// (Q4-Q6).
#include <cstdio>
#include <vector>

#include "bench/scaling_sim.h"
#include "query/engine.h"
#include "query/result.h"
#include "storage/adtech.h"

int main() {
  using namespace dpss;
  using namespace dpss::bench;

  storage::AdTechConfig config;
  config.rowsPerSegment = 10'000;
  config.highCardCardinality = 20'000;
  const std::size_t kSegments = 360;
  const auto segments =
      storage::generateAdTechSegments(config, "ads", kSegments);
  const double totalRows =
      static_cast<double>(kSegments * config.rowsPerSegment);
  const Interval all(0, 4'000'000'000'000LL);
  const std::size_t kThreads = 15;

  std::vector<std::vector<double>> segCosts(7);
  std::vector<double> mergeCost(7, 0.0);
  for (int qn = 1; qn <= 6; ++qn) {
    const auto spec = query::tableTwoQuery(qn, "ads", all);
    for (const auto& seg : segments) {
      segCosts[qn].push_back(timeSeconds([&] {
        for (int rep = 0; rep < 4; ++rep) query::scanSegment(*seg, spec);
      }, /*reps=*/2) / 4.0);
    }
    const auto partial = query::scanSegment(*segments[0], spec);
    mergeCost[qn] = timeSeconds([&] {
      query::QueryResult acc;
      for (int i = 0; i < 16; ++i) acc.mergeFrom(partial);
    }) / 16.0;
  }

  std::printf("# Figure 6: core scanning rate vs nodes "
              "(10k rows/s per core; cores = nodes x %zu threads)\n",
              kThreads);
  std::printf("%-6s", "nodes");
  for (int qn = 1; qn <= 6; ++qn) std::printf("  q%d_10krows_s_core", qn);
  std::printf("\n");

  for (const std::size_t nodes : {1u, 2u, 5u, 10u, 15u, 20u, 30u, 35u}) {
    std::printf("%-6zu", nodes);
    const double cores = static_cast<double>(nodes * kThreads);
    for (int qn = 1; qn <= 6; ++qn) {
      const double makespan =
          clusterMakespan(segCosts[qn], nodes, kThreads, mergeCost[qn]);
      const double perCore = totalRows / makespan / cores;
      std::printf("  %16.2f", perCore / 1e4);
    }
    std::printf("\n");
  }
  return 0;
}
