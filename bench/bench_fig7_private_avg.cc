// Figure 7 — time consumption of the AVG aggregate under private search,
// "primitive private search" (the Ostrovsky–Skeith-style single-buffer
// scheme standing in for the closed encryption-search system [19]) vs our
// distributed three-buffer scheme, as input scale grows 1..10.
//
// At scale k the stream holds k x 40 documents carrying a numeric metric;
// the client privately retrieves the matching documents and computes
// their average. The primitive scheme runs on one node, sequentially over
// the whole stream — its time grows with the input. The distributed
// scheme adds one compute node per scale unit (the paper's "dynamically
// scalable according to the input scale"): slices are searched in
// parallel, so the per-round time stays near-flat. Slice search costs are
// measured on the real searcher; the parallel makespan is max over
// slices (one-core host; see scaling_sim.h).
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/error.h"

#include "bench/scaling_sim.h"
#include "obs/metrics.h"
#include "pss/ostrovsky.h"
#include "pss/session.h"

int main() {
  using namespace dpss;
  using namespace dpss::bench;
  using namespace dpss::pss;

  const Dictionary dictionary({"normal", "payment", "refund", "transfer",
                               "wire"});
  SearchParams params;
  params.bufferLength = 16;
  params.indexBufferLength = 256;
  params.bloomHashes = 5;
  PrivateSearchClient client(dictionary, params, 256, /*seed=*/99);

  constexpr std::size_t kDocsPerUnit = 40;

  std::printf("# Figure 7: time of AVG aggregate vs input scale "
              "(primitive = single-node OS05-style; distributed = one node "
              "per scale unit, measured slice costs, parallel makespan)\n");
  std::printf("%-6s  %-18s  %-18s  %-10s\n", "scale", "primitive_s",
              "distributed_s", "avg_value");

  for (std::size_t scale = 1; scale <= 10; ++scale) {
    const std::size_t docCount = scale * kDocsPerUnit;
    std::vector<std::string> docs;
    std::vector<double> truth;
    for (std::size_t i = 0; i < docCount; ++i) {
      if (i % 10 == 3) {
        const double amount = 100.0 + static_cast<double>(i);
        truth.push_back(amount);
        docs.push_back("wire amount " + std::to_string(amount));
      } else {
        docs.push_back("normal activity record " + std::to_string(i));
      }
    }
    const std::set<std::string> keywords = {"wire"};
    const std::size_t blocks = blocksNeeded(docs, 256);

    // --- primitive: one node, one buffer, whole stream sequential. ----
    OstrovskyParams osParams;
    osParams.bufferSlots = docCount * 2;  // sized to keep losses rare
    osParams.copies = 3;
    Rng osRng(1000 + scale);
    const auto osQuery = client.makeQuery(keywords);
    const double primitiveSeconds = timeSeconds([&] {
      OstrovskySearcher searcher(dictionary, osQuery, blocks, osParams,
                                 osRng);
      for (std::size_t i = 0; i < docs.size(); ++i) {
        searcher.processSegment(i, docs[i]);
      }
      auto env = searcher.finish();
      (void)ostrovskyReconstruct(client.privateKey(), env);
    }, /*reps=*/1);

    // --- distributed: `scale` nodes, one slice each, parallel. --------
    // Retried wholesale on the rare singular reconstruction system.
    const auto query = client.makeQuery(keywords);
    double distributedSeconds = 0;
    double avg = 0;
    for (int attempt = 0;; ++attempt) {
      std::vector<SearchResultEnvelope> envelopes(scale);
      distributedSeconds = 0;
      for (std::size_t node = 0; node < scale; ++node) {
        const std::size_t lo = node * kDocsPerUnit;
        const std::size_t hi = lo + kDocsPerUnit;
        Rng rng(2000 + scale * 31 + node + attempt * 7919);
        distributedSeconds = std::max(
            distributedSeconds, timeSeconds([&] {
              StreamSearcher searcher(dictionary, query, blocks, rng);
              for (std::size_t i = lo; i < hi; ++i) {
                searcher.processSegment(i, docs[i]);
              }
              envelopes[node] = searcher.finish();
            }, /*reps=*/1));
      }
      // Client-side reconstruction + AVG (common to the round trip).
      try {
        distributedSeconds += timeSeconds([&] {
          double sum = 0;
          std::size_t n = 0;
          for (const auto& env : envelopes) {
            for (const auto& match : client.open(env)) {
              // "wire amount <x>": parse the retrieved metric. This is a
              // client binary — releasing the plaintext is its purpose.
              const std::string& doc =
                  match.payload.releaseForClientReconstruction();
              const auto pos = doc.rfind(' ');
              sum += std::stod(doc.substr(pos + 1));
              ++n;
            }
          }
          avg = n == 0 ? 0 : sum / static_cast<double>(n);
        }, /*reps=*/1);
        break;
      } catch (const CryptoError&) {
        if (attempt >= 10) throw;
        continue;
      }
    }

    double expect = 0;
    for (const double v : truth) expect += v;
    expect /= static_cast<double>(truth.size());
    std::printf("%-6zu  %-18.4f  %-18.4f  %-10.2f\n", scale,
                primitiveSeconds, distributedSeconds, avg);
    if (std::abs(avg - expect) > 1e-6) {
      std::printf("!! AVG mismatch: got %.4f want %.4f\n", avg, expect);
      return 1;
    }
  }

  // Crypto-layer cost breakdown (Paillier op counts, fold timings) as
  // JSON on stderr, leaving the stdout data table clean.
  std::fprintf(stderr, "%s\n",
               obs::renderJson(obs::globalRegistry().snapshot()).c_str());
  return 0;
}
