// Shared harness for the Figure 5/6 scaling benches.
//
// SUBSTITUTION (documented in DESIGN.md / EXPERIMENTS.md): the paper runs
// on a 6-node, 96-core testbed; this repository's CI host has one core,
// so wall-clock multi-node speedups cannot be observed directly. The
// benches therefore *measure* the real engine costs — per-segment scan
// time for each Table II query on real columnar segments, and the
// broker's per-partial merge cost — and then compute the cluster makespan
// under exactly the paper's concurrency model: segments balanced across
// nodes (the coordinator's least-loaded policy), each node running
// `threads` workers, one thread scanning one segment at a time (greedy
// list scheduling), plus the sequential broker merge (the Amdahl term the
// paper invokes). Every input to the schedule is measured, not assumed.
#pragma once

#include <algorithm>
#include <chrono>
#include <queue>
#include <vector>

namespace dpss::bench {

/// Wall time of fn() in seconds, best of `reps` runs.
template <typename Fn>
double timeSeconds(Fn&& fn, int reps = 3) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

/// Greedy list-scheduling makespan for one node: `threads` workers pull
/// the next segment when free.
inline double nodeMakespan(const std::vector<double>& segmentCosts,
                           std::size_t threads) {
  std::priority_queue<double, std::vector<double>, std::greater<>> workers;
  for (std::size_t i = 0; i < threads; ++i) workers.push(0.0);
  for (const double cost : segmentCosts) {
    const double free = workers.top();
    workers.pop();
    workers.push(free + cost);
  }
  double makespan = 0;
  while (!workers.empty()) {
    makespan = std::max(makespan, workers.top());
    workers.pop();
  }
  return makespan;
}

/// Cluster makespan: segments dealt round-robin across `nodes` (the
/// balanced assignment the coordinator converges to), each node list-
/// scheduled over `threadsPerNode`, plus the broker-side merge of one
/// partial per segment. Merging partials is associative, so the broker
/// (itself a 16-core node in the paper's testbed) tree-merges on
/// `brokerThreads` workers: cost ≈ S/threads sequential chains plus a
/// log-depth combining tail.
inline double clusterMakespan(const std::vector<double>& segmentCosts,
                              std::size_t nodes, std::size_t threadsPerNode,
                              double mergeCostPerSegment,
                              std::size_t brokerThreads = 15) {
  std::vector<std::vector<double>> perNode(nodes);
  for (std::size_t i = 0; i < segmentCosts.size(); ++i) {
    perNode[i % nodes].push_back(segmentCosts[i]);
  }
  double parallel = 0;
  for (const auto& costs : perNode) {
    parallel = std::max(parallel, nodeMakespan(costs, threadsPerNode));
  }
  const double s = static_cast<double>(segmentCosts.size());
  double logDepth = 0;
  for (std::size_t t = brokerThreads; t > 1; t >>= 1) logDepth += 1;
  const double mergeTime =
      mergeCostPerSegment *
      (s / static_cast<double>(brokerThreads) + logDepth);
  return parallel + mergeTime;
}

}  // namespace dpss::bench
