// Ablation — the real-time roll-up (§III: incremental indexing "often
// brings an order of magnitude compression without sacrificing the
// numerical accuracy"): ingest rate, resulting row count and serialized
// segment size with roll-up on vs off.
#include <benchmark/benchmark.h>

#include "storage/adtech.h"
#include "storage/incremental_index.h"
#include "storage/segment_codec.h"

namespace {

using namespace dpss;
using namespace dpss::storage;

std::vector<InputRow> eventStream() {
  // Event-level telemetry: dimension key space far smaller than the event
  // count, the regime where the paper observes "an order of magnitude
  // compression" from roll-up.
  AdTechConfig config;
  config.rowsPerSegment = 20'000;
  config.publisherCardinality = 10;
  config.advertiserCardinality = 8;
  config.countryCardinality = 4;
  config.highCardCardinality = 3;
  return generateAdTechRows(config, 0);
}

SegmentId segId() {
  SegmentId id;
  id.dataSource = "rollup";
  id.interval = Interval(0, 4'000'000'000'000LL);
  id.version = "v1";
  return id;
}

void BM_IngestWithRollup(benchmark::State& state) {
  const auto rows = eventStream();
  for (auto _ : state) {
    IncrementalIndex index(adTechSchema(), /*granularity=*/3'600'000);
    for (const auto& row : rows) index.add(row);
    state.counters["rollup_rows"] = static_cast<double>(index.rowCount());
    state.counters["compression_x"] =
        static_cast<double>(rows.size()) /
        static_cast<double>(index.rowCount());
    benchmark::DoNotOptimize(index);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * rows.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestWithRollup)->Unit(benchmark::kMillisecond);

void BM_IngestWithoutRollup(benchmark::State& state) {
  const auto rows = eventStream();
  for (auto _ : state) {
    IncrementalIndex index(adTechSchema(), /*granularity=*/0);
    for (const auto& row : rows) index.add(row);
    state.counters["rollup_rows"] = static_cast<double>(index.rowCount());
    benchmark::DoNotOptimize(index);
  }
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * rows.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestWithoutRollup)->Unit(benchmark::kMillisecond);

void BM_SegmentBlobSize(benchmark::State& state) {
  // Serialized footprint of the same events with and without roll-up.
  const auto rows = eventStream();
  const bool rollup = state.range(0) != 0;
  IncrementalIndex index(adTechSchema(), rollup ? 3'600'000 : 0);
  for (const auto& row : rows) index.add(row);
  const auto segment = index.snapshot(segId());
  for (auto _ : state) {
    const auto blob = encodeSegment(*segment);
    state.counters["blob_bytes"] = static_cast<double>(blob.size());
    benchmark::DoNotOptimize(blob);
  }
}
BENCHMARK(BM_SegmentBlobSize)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
