// Quickstart: one full private stream search round in ~40 lines.
//
// A client builds an encrypted query for {virus, breach} over a public
// dictionary; a broker processes a 25-document stream against it (all it
// ever sees are Paillier ciphertexts); the client opens the returned
// three-buffer envelope and recovers exactly the matching documents.
//
// Afterwards it dumps the process-global metrics registry as Prometheus
// text — the Paillier op counts and timings recorded underneath the
// search by src/obs/.
//
//   ./examples/quickstart
#include <cstdio>

#include "obs/metrics.h"
#include "pss/session.h"

int main() {
  using namespace dpss;
  using namespace dpss::pss;

  // The public dictionary D (known to client and broker alike).
  const Dictionary dictionary({"alert", "breach", "firewall", "leak",
                               "malware", "normal", "virus", "worm"});

  // Buffer parameters: up to ~16 matches per batch, a 256-slot encrypted
  // Bloom filter with 5 hash functions. (l_F of 16 keeps the probability
  // of a singular reconstruction matrix — which costs a batch retry —
  // around 0.2%.)
  SearchParams params;
  params.bufferLength = 16;
  params.indexBufferLength = 256;
  params.bloomHashes = 5;

  // Client side: fresh 512-bit Paillier key pair.
  PrivateSearchClient client(dictionary, params, 512, /*seed=*/2015);

  // The stream the broker will search (it never learns the keywords).
  std::vector<std::string> stream;
  for (int i = 0; i < 25; ++i) {
    stream.push_back("routine telemetry sample " + std::to_string(i));
  }
  stream[4] = "virus signature detected in sandbox";
  stream[11] = "possible data breach via stolen credential";
  stream[19] = "virus spread blocked by firewall, breach contained";

  Rng brokerRng(7);
  const auto matches =
      runPrivateSearch(client, {"virus", "breach"}, stream,
                       /*blocksPerSegment=*/0, brokerRng);

  std::printf("private search over %zu documents -> %zu matches\n",
              stream.size(), matches.size());
  for (const auto& m : matches) {
    std::printf("  doc %2llu (matched %llu keyword%s): %s\n",
                static_cast<unsigned long long>(m.index),
                static_cast<unsigned long long>(m.cValue),
                m.cValue == 1 ? "" : "s", m.payload.releaseForClientReconstruction().c_str());
  }

  // What the search cost, straight from the instrumentation layer.
  std::printf("\n--- metrics (Prometheus exposition) ---\n%s",
              obs::renderText(obs::globalRegistry().snapshot()).c_str());
  return matches.size() == 3 ? 0 : 1;
}
