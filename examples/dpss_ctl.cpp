// dpss_ctl — operator CLI for a node's control channel.
//
// Speaks the same control verbs the multi-process tests use
// (net/control.h, every send policy-wrapped), against one node's RPC
// address. The membership verbs drive the README's "Scaling the
// cluster" runbook:
//
//   dpss_ctl HOST:PORT NAME ping           # role string
//   dpss_ctl HOST:PORT NAME decommission   # request a graceful drain
//   dpss_ctl HOST:PORT NAME drain-state    # draining/complete + served
//   dpss_ctl HOST:PORT NAME served         # served segment ids
//   dpss_ctl HOST:PORT NAME shutdown       # graceful stop
//
// HOST:PORT is the node's RPC listen address (not the admin port); NAME
// is its --name (the control channel answers as "<name>.ctl").
#include <cstdio>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "common/error.h"
#include "net/control.h"
#include "net/net_transport.h"

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: %s HOST:PORT NAME "
                 "{ping|decommission|drain-state|served|shutdown}\n",
                 argv[0]);
    return 2;
  }
  const std::string address = argv[1];
  const std::string name = argv[2];
  const std::string verb = argv[3];

  using namespace dpss;
  net::NetTransport transport(SystemClock::instance());
  transport.start();
  transport.addPeer(net::controlNode(name), address);

  try {
    if (verb == "ping") {
      std::printf("%s\n", net::controlPing(transport, name).c_str());
    } else if (verb == "decommission") {
      net::controlDecommission(transport, name);
      std::printf("drain requested for '%s'\n", name.c_str());
    } else if (verb == "drain-state") {
      const auto state = net::controlDrainState(transport, name);
      std::printf("draining=%s complete=%s served=%llu\n",
                  state.draining ? "true" : "false",
                  state.complete ? "true" : "false",
                  static_cast<unsigned long long>(state.servedSegments));
    } else if (verb == "served") {
      for (const auto& id : net::controlServedSegments(transport, name)) {
        std::printf("%s\n", id.c_str());
      }
    } else if (verb == "shutdown") {
      net::controlShutdown(transport, name);
      std::printf("shutdown requested for '%s'\n", name.c_str());
    } else {
      std::fprintf(stderr, "unknown verb '%s'\n", verb.c_str());
      return 2;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "dpss_ctl: %s\n", e.what());
    return 1;
  }
  return 0;
}
