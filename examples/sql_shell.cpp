// Mini SQL shell over a live cluster: spins up nodes, loads a synthetic
// ad-tech data source, and executes Table-II-dialect statements from the
// command line (or a built-in demo script when none are given).
//
//   ./examples/sql_shell "SELECT count(*) FROM ads WHERE gender = 'Male'"
#include <cstdio>

#include "cluster/cluster.h"
#include "query/sql.h"
#include "storage/adtech.h"

namespace {

void runStatement(dpss::cluster::Cluster& cluster, const std::string& sql) {
  std::printf("dpss> %s\n", sql.c_str());
  try {
    const auto spec = dpss::query::parseSql(sql);
    const auto outcome = cluster.broker().query(spec);
    // Header.
    std::printf("  %-24s", spec.groupByDimension.empty()
                               ? ""
                               : spec.groupByDimension.c_str());
    for (const auto& agg : spec.aggregations) {
      std::printf("  %14s", agg.outputName.c_str());
    }
    std::printf("\n");
    for (const auto& row : outcome.rows) {
      std::printf("  %-24s", row.group.c_str());
      for (const auto v : row.values) std::printf("  %14.2f", v);
      std::printf("\n");
    }
    std::printf("  (%zu rows, %llu scanned over %zu segments)\n\n",
                outcome.rows.size(),
                static_cast<unsigned long long>(outcome.rowsScanned),
                outcome.segmentsQueried);
  } catch (const dpss::Error& e) {
    std::printf("  error: %s\n\n", e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpss;

  ManualClock clock(1'400'000'000'000);
  cluster::Cluster cluster(clock, {.historicalNodes = 2});
  storage::AdTechConfig config;
  config.rowsPerSegment = 2'000;
  cluster.publishSegments(
      storage::generateAdTechSegments(config, "ads", 6));
  std::printf("loaded 'ads': 6 segments x 2000 rows on 2 nodes\n\n");

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) runStatement(cluster, argv[i]);
    return 0;
  }
  // Demo script: the Table II shapes plus a filtered drill-down.
  const char* demo[] = {
      "SELECT count(*) FROM ads",
      "SELECT count(*), sum(impressions) FROM ads "
      "WHERE timestamp >= 1388534400000 AND timestamp < 1388545200000",
      "SELECT count(*) AS cnt, sum(revenue) FROM ads "
      "GROUP BY country ORDER BY cnt LIMIT 5",
      "SELECT avg(revenue) AS avg_rev FROM ads WHERE gender = 'Female' "
      "AND publisher IN ('pub0', 'pub1')",
      "SELECT count(*) FROM ads WHERE nope = 'x'",  // error demo
  };
  for (const auto* sql : demo) runStatement(cluster, sql);
  return 0;
}
