// Distributed private stream search over a cluster (§III-C on top of
// §III-A): the client's encrypted query travels through the broker to
// every node holding a slice of a security-log document stream; each node
// folds its slice into the three encrypted buffers in parallel; the
// client alone can open the envelopes.
//
//   ./examples/private_search
#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/pss_client.h"
#include "pss/session.h"

int main() {
  using namespace dpss;
  using namespace dpss::pss;
  using namespace dpss::cluster;

  const Dictionary dictionary({"breach", "exfiltration", "leak", "malware",
                               "normal", "phishing", "ransomware", "virus"});
  // bufferLength 16 rather than the minimum: the reconstruction matrix
  // has only 2^l_F distinct PRF rows, so small l_F makes singular systems
  // (and batch retries) common — see bench_ablation_buffers.
  SearchParams params;
  params.bufferLength = 16;
  params.indexBufferLength = 512;
  params.bloomHashes = 5;

  ManualClock clock(1'400'000'000'000);
  Cluster cluster(clock, {.historicalNodes = 4});

  // A 200-document stream, sliced contiguously across the 4 nodes.
  std::vector<std::string> docs;
  for (int i = 0; i < 200; ++i) {
    docs.push_back("uneventful audit record " + std::to_string(i));
  }
  docs[17] = "ransomware note found on finance share";
  docs[64] = "phishing campaign targeting admins";
  docs[121] = "ransomware plus exfiltration attempt blocked";
  docs[180] = "exfiltration of staging credentials via minor leak";

  const std::size_t per = docs.size() / cluster.historicalCount();
  for (std::size_t n = 0; n < cluster.historicalCount(); ++n) {
    std::vector<std::string> slice(
        docs.begin() + static_cast<std::ptrdiff_t>(n * per),
        docs.begin() + static_cast<std::ptrdiff_t>((n + 1) * per));
    cluster.historical(n).loadDocuments("security-log", n * per,
                                        std::move(slice));
  }

  PrivateSearchClient client(dictionary, params, 512, /*seed=*/31337);
  const std::set<std::string> keywords = {"ransomware", "exfiltration"};

  std::printf("client: querying %zu docs across %zu nodes for %zu hidden "
              "keywords\n",
              docs.size(), cluster.historicalCount(), keywords.size());

  cluster::DistributedSearchStats stats;
  const auto matches = cluster::runDistributedPrivateSearch(
      cluster.broker(), client, "security-log", keywords, &stats);
  std::printf("broker: %zu per-slice envelopes over %llu documents"
              " (%zu singular-batch retries)\n",
              stats.envelopes,
              static_cast<unsigned long long>(stats.documents),
              stats.retries);
  for (const auto& m : matches) {
    std::printf("  doc %3llu (c=%llu): %s\n",
                static_cast<unsigned long long>(m.index),
                static_cast<unsigned long long>(m.cValue),
                m.payload.releaseForClientReconstruction().c_str());
  }
  std::printf("client: recovered %zu matching documents\n", matches.size());
  return matches.size() == 3 ? 0 : 1;
}
