// Distributed analytics on the paper's Table I schema.
//
// Builds a shared-nothing cluster (coordinator + historical nodes +
// broker), publishes hourly ad-tech segments through deep storage and the
// segment table, and runs the six Table II query shapes through the
// broker's scatter/merge path — the §IV evaluation pipeline end to end.
//
//   ./examples/adtech_analytics
#include <cstdio>

#include "cluster/cluster.h"
#include "storage/adtech.h"

int main() {
  using namespace dpss;
  using namespace dpss::cluster;
  using namespace dpss::storage;

  ManualClock clock(1'400'000'000'000);
  Cluster cluster(clock, {.historicalNodes = 3});

  // 12 hourly segments of 5,000 rows each (the paper: ~10k-row segments).
  AdTechConfig config;
  config.rowsPerSegment = 5'000;
  const auto segments = generateAdTechSegments(config, "ads", 12);
  cluster.publishSegments(segments);

  std::printf("cluster: %zu historical nodes, %zu segments published\n",
              cluster.historicalCount(), segments.size());
  for (std::size_t i = 0; i < cluster.historicalCount(); ++i) {
    std::printf("  historical-%zu serves %zu segments\n", i,
                cluster.historical(i).servedSegments().size());
  }

  // A few rows in Table I's shape, from the first segment.
  const auto& seg = *segments[0];
  std::printf("\nsample rows (Table I shape):\n");
  std::printf("  %-24s %-8s %-8s %-8s %-12s %-8s %-8s\n", "timestamp",
              "publisher", "gender", "country", "impressions", "clicks",
              "revenue");
  for (std::size_t row = 0; row < 4; ++row) {
    std::printf("  %-24lld %-8s %-8s %-8s %-12lld %-8lld %-8.2f\n",
                static_cast<long long>(seg.timestamps()[row]),
                seg.dim(0).dict.valueOf(seg.dim(0).ids[row]).c_str(),
                seg.dim(2).dict.valueOf(seg.dim(2).ids[row]).c_str(),
                seg.dim(3).dict.valueOf(seg.dim(3).ids[row]).c_str(),
                static_cast<long long>(seg.metric(0).longs[row]),
                static_cast<long long>(seg.metric(1).longs[row]),
                seg.metric(2).doubles[row]);
  }

  // The six Table II query shapes over all data.
  const Interval all(0, 4'000'000'000'000LL);
  std::printf("\nTable II queries through the broker:\n");
  for (int qn = 1; qn <= 6; ++qn) {
    const auto spec = query::tableTwoQuery(qn, "ads", all);
    const auto outcome = cluster.broker().query(spec);
    if (qn <= 3) {
      std::printf("  Q%d: count=%.0f", qn, outcome.rows[0].values[0]);
      for (std::size_t v = 1; v < outcome.rows[0].values.size(); ++v) {
        std::printf("  %s=%.1f", spec.aggregations[v].outputName.c_str(),
                    outcome.rows[0].values[v]);
      }
      std::printf("  (%llu rows scanned over %zu segments)\n",
                  static_cast<unsigned long long>(outcome.rowsScanned),
                  outcome.segmentsQueried);
    } else {
      std::printf("  Q%d: top groups by cnt:", qn);
      for (std::size_t g = 0; g < 3 && g < outcome.rows.size(); ++g) {
        std::printf(" %s(%.0f)", outcome.rows[g].group.c_str(),
                    outcome.rows[g].values[0]);
      }
      std::printf("  [%zu groups returned]\n", outcome.rows.size());
    }
  }

  // A filtered drill-down: male traffic from the top publisher.
  query::QuerySpec drill;
  drill.dataSource = "ads";
  drill.interval = all;
  drill.filter = query::andFilter({query::selectorFilter("publisher", "pub0"),
                                   query::selectorFilter("gender", "Male")});
  drill.aggregations = {query::countAgg("cnt"),
                        query::avgAgg("revenue", "avg_revenue")};
  const auto outcome = cluster.broker().query(drill);
  std::printf(
      "\nfiltered: publisher=pub0 AND gender=Male -> %.0f rows, "
      "avg revenue %.3f\n",
      outcome.rows[0].values[0], outcome.rows[0].values[1]);
  return 0;
}
