// Real-time pipeline (§III-A-2, Figures 3 & 4): events flow through the
// message queue into a real-time compute node (queryable immediately,
// with roll-up), persist periodically with offset commits, and after the
// hour + window time the node merges its indexes into a historical
// segment, uploads it, and hands it off to a historical node — with
// queries answered correctly at every stage.
//
//   ./examples/realtime_pipeline
#include <cstdio>

#include "cluster/cluster.h"

int main() {
  using namespace dpss;
  using namespace dpss::cluster;
  using namespace dpss::storage;

  constexpr TimeMs kHour = 3'600'000;
  const TimeMs t0 = 1'400'000'000'000 - (1'400'000'000'000 % kHour);
  ManualClock clock(t0);

  Cluster cluster(clock, {.historicalNodes = 1});
  cluster.messageQueue().createTopic("clickstream", 1);

  Schema schema;
  schema.dimensions = {"publisher", "country"};
  schema.metrics = {{"impressions", MetricType::kLong},
                    {"revenue", MetricType::kDouble}};
  RealtimeNodeOptions options;
  options.segmentGranularityMs = kHour;
  options.persistPeriodMs = 600'000;  // "every 10 minutes"
  options.windowMs = 600'000;
  options.rollupGranularityMs = 60'000;
  cluster.addRealtimeNode("clickstream", 0, schema, "events", options);

  auto emit = [&](TimeMs ts, const char* pub, double imps) {
    InputRow row;
    row.timestamp = ts;
    row.dimensions = {pub, "cn"};
    row.metrics = {imps, imps * 0.01};
    cluster.messageQueue().append("clickstream", 0, encodeInputRow(row));
  };

  query::QuerySpec spec;
  spec.dataSource = "events";
  spec.interval = Interval(t0, t0 + kHour);
  spec.aggregations = {query::countAgg("rows"),
                       query::longSumAgg("impressions", "imps")};

  // Minute 0-30: 3000 events stream in, queryable as they arrive.
  for (int i = 0; i < 3000; ++i) {
    emit(t0 + i * 600, i % 2 ? "sina" : "yahoo", 1 + i % 5);
  }
  cluster.realtime(0).tick();
  auto outcome = cluster.broker().query(spec);
  std::printf("t+0:30  realtime rows=%0.f imps=%.0f (rolled up from 3000 "
              "events)\n",
              outcome.rows[0].values[0], outcome.rows[0].values[1]);

  // Persist checkpoint fires; the committed offset advances.
  clock.advance(options.persistPeriodMs + 1);
  cluster.realtime(0).tick();
  std::printf("t+0:40  persisted; committed offset=%llu\n",
              static_cast<unsigned long long>(
                  cluster.messageQueue().committed("realtime-0",
                                                   "clickstream", 0)));

  // Simulated crash + restart: persisted indexes reload, the tail of the
  // stream replays from the committed offset — "no data loss".
  cluster.restartRealtime(0);
  cluster.realtime(0).tick();
  outcome = cluster.broker().query(spec);
  std::printf("t+0:40  after crash+recovery: imps=%.0f (unchanged)\n",
              outcome.rows[0].values[1]);

  // Hour ends; window time passes; handoff runs.
  clock.advance(kHour + options.windowMs);
  cluster.realtime(0).tick();  // merge + upload + register
  cluster.converge();          // coordinator assigns to the historical node
  cluster.realtime(0).tick();  // sees it served; retires realtime copy

  outcome = cluster.broker().query(spec);
  std::printf("t+1:50  served by historical-0 (%zu segment): imps=%.0f\n",
              outcome.segmentsQueried, outcome.rows[0].values[1]);
  std::printf("        handoff complete, pending=%zu, realtime segments=%zu\n",
              cluster.realtime(0).pendingHandoffs(),
              cluster.realtime(0).announcedSegments().size());
  return outcome.rows[0].values[1] > 0 ? 0 : 1;
}
