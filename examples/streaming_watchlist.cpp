// Streaming private search: a standing encrypted watch-list over a live
// message queue. The monitoring service (broker side) never learns the
// watched keywords; the analyst (client side) periodically collects
// fixed-size envelopes — communication independent of the stream length —
// and opens them offline.
//
//   ./examples/streaming_watchlist
#include <cstdio>

#include "cluster/message_queue.h"
#include "pss/session.h"
#include "pss/streaming.h"

int main() {
  using namespace dpss;
  using namespace dpss::pss;

  const Dictionary dictionary({"benign", "beacon", "c2", "implant",
                               "keylogger", "rootkit", "update"});
  SearchParams params;
  params.bufferLength = 16;
  params.indexBufferLength = 512;
  params.bloomHashes = 5;
  PrivateSearchClient analyst(dictionary, params, 512, /*seed=*/166);

  // The watch-list stays on the analyst's side; the service sees only Q.
  const auto encryptedQuery = analyst.makeQuery({"beacon", "rootkit"});

  cluster::MessageQueue queue;
  queue.createTopic("edr-events", 1);

  // Producer: endpoint telemetry trickles into the queue.
  Rng noise(5);
  for (int i = 0; i < 150; ++i) {
    std::string event = "benign update check from host" + std::to_string(i);
    if (i == 31) event = "periodic beacon to known bad asn";
    if (i == 74) event = "rootkit driver load blocked";
    if (i == 128) event = "beacon retry with jitter";
    queue.append("edr-events", 0, event);
  }

  // Monitoring service: a standing search drains the queue, sealing an
  // envelope every 50 events.
  StandingSearch standing(dictionary, encryptedQuery, /*blocks=*/4,
                          /*batchSize=*/50, /*seed=*/42);
  std::uint64_t offset = 0;
  for (const auto& message : queue.poll("edr-events", 0, offset, 1000)) {
    standing.feed(message.payload);
    offset = message.offset + 1;
  }
  standing.flush();

  // Analyst: collect and open.
  std::size_t hits = 0;
  for (const auto& envelope : standing.drainEnvelopes()) {
    try {
      for (const auto& match : analyst.open(envelope)) {
        std::printf("ALERT @ event %3llu (matched %llu): %s\n",
                    static_cast<unsigned long long>(match.index),
                    static_cast<unsigned long long>(match.cValue),
                    match.payload.releaseForClientReconstruction().c_str());
        ++hits;
      }
    } catch (const CryptoError&) {
      // A singular batch would be re-requested from the queue's retained
      // log in production; the fixed seeds here always solve.
      std::printf("batch unsolvable, would replay from the queue\n");
    }
  }
  std::printf("%zu alerts from 150 events; the service never saw the "
              "watch-list\n", hits);
  return hits == 3 ? 0 : 1;
}
