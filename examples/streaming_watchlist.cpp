// Standing private subscription: an encrypted watch-list over a live
// message queue. The monitoring service (server side) never learns the
// watched keywords; the analyst (client side) periodically collects
// fixed-size encrypted snapshots — communication independent of the
// stream length — and opens them offline.
//
//   ./examples/streaming_watchlist
#include <cstdio>

#include "cluster/message_queue.h"
#include "pss/session.h"
#include "pss/subscription.h"

int main() {
  using namespace dpss;
  using namespace dpss::pss;

  const Dictionary dictionary({"benign", "beacon", "c2", "implant",
                               "keylogger", "rootkit", "update"});
  SearchParams params;
  params.bufferLength = 16;
  params.indexBufferLength = 512;
  params.bloomHashes = 5;
  PrivateSearchClient analyst(dictionary, params, 512, /*seed=*/166);

  // The analyst registers a standing subscription: the watch-list stays
  // on the analyst's side; the service sees only the encrypted query.
  SubscriptionSpec spec;
  spec.docSource = "edr-events";
  spec.dictionaryWords = dictionary.words();
  spec.query = analyst.makeQuery({"beacon", "rootkit"});
  spec.blocksPerSegment = 4;
  spec.policy.maxDocuments = 50;  // seal a snapshot every 50 events
  spec.policy.periodMs = 0;

  cluster::MessageQueue queue;
  queue.createTopic("edr-events", 1);

  // Producer: endpoint telemetry trickles into the queue.
  for (int i = 0; i < 150; ++i) {
    std::string event = "benign update check from host" + std::to_string(i);
    if (i == 31) event = "periodic beacon to known bad asn";
    if (i == 74) event = "rootkit driver load blocked";
    if (i == 128) event = "beacon retry with jitter";
    queue.append("edr-events", 0, event);
  }

  // Monitoring service: the standing matcher folds every event into the
  // subscription's encrypted buffers, sealing on the fill threshold.
  SubscriptionMatcher matcher(spec, /*seed=*/42, /*nowMs=*/0);
  std::vector<SubscriptionSnapshot> snapshots;
  std::uint64_t offset = 0;
  for (const auto& message : queue.poll("edr-events", 0, offset, 1000)) {
    matcher.feed(message.offset, message.payload, message.payload, 0);
    offset = message.offset + 1;
    if (auto snap = matcher.sealIfDue(0)) snapshots.push_back(std::move(*snap));
  }
  if (auto snap = matcher.seal(0)) snapshots.push_back(std::move(*snap));

  // Analyst: apply each snapshot; the feed dedups replays by position.
  SubscriptionFeed feed(analyst.privateKey());
  std::size_t hits = 0;
  for (const auto& snap : snapshots) {
    try {
      for (const auto& match : feed.apply("edr-events", snap.envelope)) {
        std::printf("ALERT @ event %3llu (matched %llu): %s\n",
                    static_cast<unsigned long long>(match.streamIndex),
                    static_cast<unsigned long long>(match.cValue),
                    match.payload.releaseForClientReconstruction().c_str());
        ++hits;
      }
    } catch (const CryptoError&) {
      // A singular batch would be re-requested from the queue's retained
      // log in production; the fixed seeds here always solve.
      std::printf("batch unsolvable, would replay from the queue\n");
    }
  }
  std::printf("%zu alerts from 150 events; the service never saw the "
              "watch-list\n", hits);
  return hits == 3 ? 0 : 1;
}
