// Multi-process cluster: five dpss_node OS processes on loopback —
// coordinator (hosting the authoritative registry/metadata/deep-storage
// substrates), two historicals, a realtime node, and a broker — driven
// from this process over the same TCP transport they use among
// themselves. Publishes five ad-tech segments, runs a distributed count,
// ingests realtime events, then runs a full private-search session whose
// document stream is split across both historicals.
//
//   ./examples/multiprocess_cluster [path/to/dpss_node]
//
// The node binary defaults to build/src/net/dpss_node relative to the
// current directory (run from the repo root after a build).
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "cluster/broker_rpc.h"
#include "cluster/metastore.h"
#include "cluster/pss_client.h"
#include "common/clock.h"
#include "common/interval.h"
#include "net/control.h"
#include "net/net_transport.h"
#include "net/socket.h"
#include "net/subprocess.h"
#include "net/substrate.h"
#include "pss/session.h"
#include "query/query.h"
#include "storage/adtech.h"
#include "storage/segment_codec.h"

namespace {

std::uint16_t freePort() {
  dpss::net::Fd probe = dpss::net::listenOn("127.0.0.1", 0);
  const std::uint16_t port = dpss::net::boundPort(probe);
  probe.reset();
  return port;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpss;

  const std::string bin = argc > 1 ? argv[1] : "build/src/net/dpss_node";
  Clock& clock = SystemClock::instance();

  // --- one port per role; every process learns the full wiring ---------
  const std::vector<std::pair<std::string, std::uint16_t>> wiring = {
      {"coordinator", freePort()}, {"hist-a", freePort()},
      {"hist-b", freePort()},      {"rt-0", freePort()},
      {"broker", freePort()},
  };
  std::vector<std::string> peerFlags;
  for (const auto& [name, port] : wiring) {
    peerFlags.push_back("--peer");
    peerFlags.push_back(name + "=127.0.0.1:" + std::to_string(port));
    if (name == "coordinator") {
      peerFlags.push_back("--peer");
      peerFlags.push_back(std::string(net::kSubstrateNode) +
                          "=127.0.0.1:" + std::to_string(port));
    }
  }

  std::vector<net::Subprocess> procs;
  const auto spawn = [&](const std::string& role, const std::string& name,
                         std::uint16_t port) {
    std::vector<std::string> args = {
        bin,        "--role", role, "--name", name,
        "--listen", "127.0.0.1:" + std::to_string(port)};
    args.insert(args.end(), peerFlags.begin(), peerFlags.end());
    procs.push_back(net::Subprocess::spawn(args));
    std::printf("spawned %-11s '%s' (pid %d) on port %u\n", role.c_str(),
                name.c_str(), procs.back().pid(), port);
  };
  spawn("coordinator", "coordinator", wiring[0].second);
  spawn("historical", "hist-a", wiring[1].second);
  spawn("historical", "hist-b", wiring[2].second);
  spawn("realtime", "rt-0", wiring[3].second);
  spawn("broker", "broker", wiring[4].second);

  // --- the driver joins the wire as a sixth participant ----------------
  net::NetTransport driver(clock);
  driver.start();
  for (const auto& [name, port] : wiring) {
    driver.addPeer(name, "127.0.0.1:" + std::to_string(port));
    driver.addPeer(name + ".ctl", "127.0.0.1:" + std::to_string(port));
    if (name == "coordinator") {
      driver.addPeer(net::kSubstrateNode,
                     "127.0.0.1:" + std::to_string(port));
    }
  }
  for (const auto& [name, port] : wiring) {
    while (true) {
      try {
        net::controlPing(driver, name);
        break;
      } catch (const Error&) {
        clock.sleepFor(50);
      }
    }
  }
  std::printf("all five processes answering on their control channels\n\n");

  // --- publish five segments through the remote substrates -------------
  net::RemoteMetaStore metaStore(driver, net::kSubstrateNode);
  net::RemoteDeepStorage deepStorage(driver, net::kSubstrateNode);
  storage::AdTechConfig config;
  config.rowsPerSegment = 200;
  for (const auto& segment :
       storage::generateAdTechSegments(config, "ads", 5)) {
    const std::string key = segment->id().toString();
    deepStorage.put(key, storage::encodeSegment(*segment));
    cluster::SegmentRecord record;
    record.id = segment->id();
    record.deepStorageKey = key;
    record.sizeBytes = segment->memoryFootprint();
    metaStore.upsertSegment(record);
  }
  while (net::controlServedSegments(driver, "hist-a").size() +
             net::controlServedSegments(driver, "hist-b").size() <
         5) {
    clock.sleepFor(100);
  }
  std::printf("5 segments published, assigned, and served: hist-a=%zu "
              "hist-b=%zu\n",
              net::controlServedSegments(driver, "hist-a").size(),
              net::controlServedSegments(driver, "hist-b").size());

  // --- distributed count through the remote broker ---------------------
  cluster::RemoteBroker broker(driver, "broker");
  query::QuerySpec q;
  q.dataSource = "ads";
  q.interval = Interval(0, 4'000'000'000'000LL);
  q.aggregations = {query::countAgg("rows")};
  const auto outcome = broker.query(q);
  std::printf("distributed count over 5 segments x %zu rows: %.0f "
              "(trace %016llx)\n\n",
              config.rowsPerSegment, outcome.rows.at(0).values.at(0),
              static_cast<unsigned long long>(outcome.traceId));

  // --- private search across both historicals' document slices ---------
  const pss::Dictionary dict(
      {"alert", "breach", "leak", "malware", "normal", "virus"});
  pss::SearchParams params;
  params.bufferLength = 8;
  pss::PrivateSearchClient client(dict, params, 128, /*seed=*/2026);
  std::vector<std::string> docs;
  for (int i = 0; i < 30; ++i) {
    docs.push_back("routine log line " + std::to_string(i));
  }
  docs[3] = "virus quarantined on host three";
  docs[27] = "credential leak from host twenty-seven";
  net::controlLoadDocuments(driver, "hist-a", "seclog", 0,
                            {docs.begin(), docs.begin() + 15});
  net::controlLoadDocuments(driver, "hist-b", "seclog", 15,
                            {docs.begin() + 15, docs.end()});
  const auto hits = cluster::runDistributedPrivateSearch(
      broker, client, "seclog", {"virus", "leak"});
  std::printf("private search for {virus, leak} over a 30-document stream "
              "split across two processes:\n");
  for (const auto& hit : hits) {
    std::printf("  doc %llu: %s\n",
                static_cast<unsigned long long>(hit.index),
                hit.payload.c_str());
  }

  // --- graceful shutdown ------------------------------------------------
  for (const auto& [name, port] : wiring) net::controlShutdown(driver, name);
  for (auto& p : procs) p.wait();
  driver.stop();
  std::printf("\nall five processes exited cleanly\n");
  return 0;
}
