// Multi-process cluster: five dpss_node OS processes on loopback —
// coordinator (hosting the authoritative registry/metadata/deep-storage
// substrates), two historicals, a realtime node, and a broker — driven
// from this process over the same TCP transport they use among
// themselves. Publishes five ad-tech segments, runs a distributed count,
// ingests realtime events, then runs a full private-search session whose
// document stream is split across both historicals.
//
//   ./examples/multiprocess_cluster [path/to/dpss_node]
//
// The node binary defaults to build/src/net/dpss_node relative to the
// current directory (run from the repo root after a build).
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "cluster/broker_rpc.h"
#include "cluster/metastore.h"
#include "cluster/pss_client.h"
#include "common/clock.h"
#include "common/interval.h"
#include "net/control.h"
#include "net/net_transport.h"
#include "net/socket.h"
#include "net/subprocess.h"
#include "net/substrate.h"
#include "pss/session.h"
#include "query/query.h"
#include "storage/adtech.h"
#include "storage/segment_codec.h"

namespace {

std::uint16_t freePort() {
  dpss::net::Fd probe = dpss::net::listenOn("127.0.0.1", 0);
  const std::uint16_t port = dpss::net::boundPort(probe);
  probe.reset();
  return port;
}

/// One admin-plane GET: connect, request, read to close, return the body.
std::string adminGet(dpss::Clock& clock, std::uint16_t port,
                     const std::string& path) {
  const dpss::TimeMs deadlineAt = clock.nowMs() + 5'000;
  dpss::net::Fd fd =
      dpss::net::connectWithDeadline({"127.0.0.1", port}, clock, deadlineAt);
  dpss::net::sendAll(fd, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n",
                     clock, deadlineAt);
  std::string response;
  for (;;) {
    const std::string chunk = dpss::net::recvSome(fd, clock, deadlineAt);
    if (chunk.empty()) break;
    response += chunk;
  }
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? response : response.substr(at + 4);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpss;

  const std::string bin = argc > 1 ? argv[1] : "build/src/net/dpss_node";
  Clock& clock = SystemClock::instance();

  // --- one port per role; every process learns the full wiring ---------
  const std::vector<std::pair<std::string, std::uint16_t>> wiring = {
      {"coordinator", freePort()}, {"hist-a", freePort()},
      {"hist-b", freePort()},      {"rt-0", freePort()},
      {"broker", freePort()},
  };
  std::vector<std::string> peerFlags;
  for (const auto& [name, port] : wiring) {
    peerFlags.push_back("--peer");
    peerFlags.push_back(name + "=127.0.0.1:" + std::to_string(port));
    if (name == "coordinator") {
      peerFlags.push_back("--peer");
      peerFlags.push_back(std::string(net::kSubstrateNode) +
                          "=127.0.0.1:" + std::to_string(port));
    }
  }

  // Every node also serves its observability plane over HTTP.
  std::vector<std::uint16_t> adminPorts;
  for (std::size_t i = 0; i < wiring.size(); ++i) {
    adminPorts.push_back(freePort());
  }

  std::vector<net::Subprocess> procs;
  const auto spawn = [&](const std::string& role, const std::string& name,
                         std::uint16_t port, std::uint16_t adminPort) {
    std::vector<std::string> args = {
        bin,        "--role", role, "--name", name,
        "--listen", "127.0.0.1:" + std::to_string(port),
        "--admin-port", std::to_string(adminPort)};
    args.insert(args.end(), peerFlags.begin(), peerFlags.end());
    procs.push_back(net::Subprocess::spawn(args));
    std::printf("spawned %-11s '%s' (pid %d) on port %u, admin on %u\n",
                role.c_str(), name.c_str(), procs.back().pid(), port,
                adminPort);
  };
  spawn("coordinator", "coordinator", wiring[0].second, adminPorts[0]);
  spawn("historical", "hist-a", wiring[1].second, adminPorts[1]);
  spawn("historical", "hist-b", wiring[2].second, adminPorts[2]);
  spawn("realtime", "rt-0", wiring[3].second, adminPorts[3]);
  spawn("broker", "broker", wiring[4].second, adminPorts[4]);

  // --- the driver joins the wire as a sixth participant ----------------
  net::NetTransport driver(clock);
  driver.start();
  for (const auto& [name, port] : wiring) {
    driver.addPeer(name, "127.0.0.1:" + std::to_string(port));
    driver.addPeer(name + ".ctl", "127.0.0.1:" + std::to_string(port));
    if (name == "coordinator") {
      driver.addPeer(net::kSubstrateNode,
                     "127.0.0.1:" + std::to_string(port));
    }
  }
  for (const auto& [name, port] : wiring) {
    while (true) {
      try {
        net::controlPing(driver, name);
        break;
      } catch (const Error&) {
        clock.sleepFor(50);
      }
    }
  }
  std::printf("all five processes answering on their control channels\n\n");
  std::printf("observability plane (try these while it runs):\n");
  for (std::size_t i = 0; i < wiring.size(); ++i) {
    std::printf("  curl http://127.0.0.1:%u/metrics    # %s\n",
                adminPorts[i], wiring[i].first.c_str());
  }
  std::printf("  curl http://127.0.0.1:%u/tracez     # assembled traces\n",
              adminPorts[0]);
  std::printf("  curl http://127.0.0.1:%u/queriesz   # slow-query log\n\n",
              adminPorts[4]);

  // --- publish five segments through the remote substrates -------------
  net::RemoteMetaStore metaStore(driver, net::kSubstrateNode);
  net::RemoteDeepStorage deepStorage(driver, net::kSubstrateNode);
  storage::AdTechConfig config;
  config.rowsPerSegment = 200;
  for (const auto& segment :
       storage::generateAdTechSegments(config, "ads", 5)) {
    const std::string key = segment->id().toString();
    deepStorage.put(key, storage::encodeSegment(*segment));
    cluster::SegmentRecord record;
    record.id = segment->id();
    record.deepStorageKey = key;
    record.sizeBytes = segment->memoryFootprint();
    metaStore.upsertSegment(record);
  }
  while (net::controlServedSegments(driver, "hist-a").size() +
             net::controlServedSegments(driver, "hist-b").size() <
         5) {
    clock.sleepFor(100);
  }
  std::printf("5 segments published, assigned, and served: hist-a=%zu "
              "hist-b=%zu\n",
              net::controlServedSegments(driver, "hist-a").size(),
              net::controlServedSegments(driver, "hist-b").size());

  // --- distributed count through the remote broker ---------------------
  cluster::RemoteBroker broker(driver, "broker");
  query::QuerySpec q;
  q.dataSource = "ads";
  q.interval = Interval(0, 4'000'000'000'000LL);
  q.aggregations = {query::countAgg("rows")};
  const auto outcome = broker.query(q);
  std::printf("distributed count over 5 segments x %zu rows: %.0f "
              "(trace %016llx)\n\n",
              config.rowsPerSegment, outcome.rows.at(0).values.at(0),
              static_cast<unsigned long long>(outcome.traceId));

  // --- private search across both historicals' document slices ---------
  const pss::Dictionary dict(
      {"alert", "breach", "leak", "malware", "normal", "virus"});
  pss::SearchParams params;
  params.bufferLength = 8;
  pss::PrivateSearchClient client(dict, params, 128, /*seed=*/2026);
  std::vector<std::string> docs;
  for (int i = 0; i < 30; ++i) {
    docs.push_back("routine log line " + std::to_string(i));
  }
  docs[3] = "virus quarantined on host three";
  docs[27] = "credential leak from host twenty-seven";
  net::controlLoadDocuments(driver, "hist-a", "seclog", 0,
                            {docs.begin(), docs.begin() + 15});
  net::controlLoadDocuments(driver, "hist-b", "seclog", 15,
                            {docs.begin() + 15, docs.end()});
  cluster::DistributedSearchStats stats;
  const auto hits = cluster::runDistributedPrivateSearch(
      broker, client, "seclog", {"virus", "leak"}, &stats);
  std::printf("private search for {virus, leak} over a 30-document stream "
              "split across two processes:\n");
  for (const auto& hit : hits) {
    std::printf("  doc %llu: %s\n",
                static_cast<unsigned long long>(hit.index),
                hit.payload.releaseForClientReconstruction().c_str());
  }

  // --- the coordinator assembled the cross-process trace ----------------
  // Spans ship to the coordinator on maintenance ticks; poll /tracez for
  // the search's trace id until all three processes' spans landed.
  char tracePath[48];
  std::snprintf(tracePath, sizeof(tracePath), "/tracez?trace=%016llx",
                static_cast<unsigned long long>(stats.traceId));
  std::string tracez;
  for (int attempt = 0; attempt < 100; ++attempt) {
    tracez = adminGet(clock, adminPorts[0], tracePath);
    if (tracez.find("historical.pss.slice_search") != std::string::npos) {
      break;
    }
    clock.sleepFor(100);
  }
  std::printf("\ncoordinator /tracez for trace %016llx:\n%s\n",
              static_cast<unsigned long long>(stats.traceId),
              tracez.c_str());

  // --- graceful shutdown ------------------------------------------------
  for (const auto& [name, port] : wiring) net::controlShutdown(driver, name);
  for (auto& p : procs) p.wait();
  driver.stop();
  std::printf("\nall five processes exited cleanly\n");
  return 0;
}
