#!/usr/bin/env python3
"""dpss-lint: enforce the repo's determinism and layering invariants.

The cluster's tests replay seeded chaos schedules against a virtual clock,
so determinism is a load-bearing property, not a style preference. These
rules keep the accidental escape hatches shut:

  wall-clock   -- no std::this_thread::sleep_for / system_clock::now /
                  steady_clock::now outside common/clock.* (the Clock
                  abstraction) and explicitly allowed measurement sites.
  rng          -- no std::random_device / rand() / srand() outside
                  common/rng.* (the seeded Rng abstraction).
  transport-call -- no direct Transport::call; every RPC goes through
                  callWithPolicy (cluster/rpc_policy.cc) so retry,
                  backoff and deadline policy is never bypassed.
  control-channel -- no hand-rolled control frames (control_op::
                  opcodes, controlNode() addressing) outside
                  net/control.*; membership verbs — decommission,
                  drain state, shutdown — go through the control*
                  client helpers so every send carries retry/deadline
                  policy and one wire format.
  metric-name  -- obs::intern{Counter,Gauge,Histogram} names are
                  lowercase dotted identifiers ("a.b.c"), so exposition
                  renders a stable, greppable namespace.
  metric-label -- label VALUES at intern* call sites must be string
                  literals or pass through obs::boundedLabelValue();
                  interning an unbounded value (node names from input,
                  request paths) grows the metric table until the
                  kMaxMetrics DPSS_CHECK aborts the process.
  raw-socket   -- no raw socket/poll/epoll syscalls (or their headers)
                  outside src/net/; every other layer speaks through the
                  net transport so framing, deadlines, and typed error
                  mapping live in one place.
  raw-modexp   -- no powm/powmNaive/powmWindowed/mpz_powm or raw
                  FixedBaseWindow use inside src/pss/; the search layer
                  speaks crypto::Paillier* (encrypt, mulPlainMany,
                  decryptCrtBatch), whose windowed/fixed-base kernels
                  are pinned by the differential suite.
  chaos-api    -- no ad-hoc fault injection (node .crash(), deprecated
                  failNextGets) in src/ outside the chaos scheduler;
                  faults must come from a seeded, replayable schedule
                  (cluster/chaos_scheduler.h). Tests are never walked,
                  so targeted regression tests stay free to crash nodes
                  directly.
  plaintext-release -- the PlaintextBytes escape hatch
                  (releaseForClientReconstruction, crypto/sensitive.h)
                  is confined to the client reconstruction sites:
                  pss/session.cc and cluster/pss_client.cc. Everywhere
                  else in src/, decrypted matched documents stay inside
                  the privacy type.
  secret-memcpy -- no memcpy/memset/memmove over SecretScalar (or any
                  Secret*-named) storage outside src/crypto/; byte-level
                  access to key material bypasses the scrubbing dtor and
                  the audited serialize() path.
  subscription-match -- standing-query matching has exactly one entry
                  point: SubscriptionMatcher, confined to the
                  subscription.* files (pss/subscription.* and its owner
                  cluster/subscription_host.*). Everything else feeds
                  documents through SubscriptionHost::onDocument. The
                  seed's deleted StandingSearch stub must not come back
                  under either name.

A violation can be waived inline with a justification:

    // dpss-lint: allow(wall-clock) log timestamps are cosmetic.

The comment may sit on the offending line or on the contiguous comment
block immediately above it. An allow comment with no justification text
is itself an error.

Usage:
    scripts/dpss_lint.py [--root DIR] [--selftest] [PATHS...]

With no PATHS, lints every .h/.cc file under src/. Exits non-zero when
any violation is found. --selftest runs the rule engine against built-in
positive/negative samples (wired into ctest as `dpss_lint_selftest`).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Rule:
    name: str
    pattern: re.Pattern
    message: str
    # Files (repo-relative, forward slashes) exempt from the rule.
    exempt_files: frozenset = frozenset()
    # Directory prefixes (repo-relative, trailing slash) exempt wholesale.
    exempt_dirs: frozenset = frozenset()
    # When non-empty, the rule applies ONLY under these directory
    # prefixes (repo-relative, trailing slash) — for layer-local
    # invariants like raw-modexp, which bans a spelling in src/pss/ that
    # is the whole point of src/crypto/.
    only_dirs: frozenset = frozenset()

    def exempts(self, relpath: str) -> bool:
        if self.only_dirs and not any(
            relpath.startswith(d) for d in self.only_dirs
        ):
            return True
        return relpath in self.exempt_files or any(
            relpath.startswith(d) for d in self.exempt_dirs
        )


# common/clock.* implements the Clock abstraction over the real clock;
# common/thread_pool and thread_annotations never touch time.
WALL_CLOCK_EXEMPT = frozenset(
    {
        "src/common/clock.h",
        "src/common/clock.cc",
    }
)

# common/rng.* implements the seeded generator every caller must use.
RNG_EXEMPT = frozenset(
    {
        "src/common/rng.h",
        "src/common/rng.cc",
    }
)

# rpc_policy.cc is the one client-side site allowed to hit the raw
# transport (it IS the policy layer); transport.cc/h define call().
TRANSPORT_EXEMPT = frozenset(
    {
        "src/cluster/rpc_policy.cc",
        "src/cluster/rpc_policy.h",
        "src/cluster/transport.cc",
        "src/cluster/transport.h",
    }
)

# net/control.* implements both halves of the control channel: the
# handler and the control* client helpers (which route every send
# through callWithPolicy).
CONTROL_CHANNEL_EXEMPT = frozenset(
    {
        "src/net/control.h",
        "src/net/control.cc",
    }
)

# The chaos scheduler is the one sanctioned fault injector; cluster.cc
# implements the lifecycle primitives it drives (restartRealtime must
# crash the old instance), and deep_storage.* declares/defines the
# deprecated failNextGets alias itself.
CHAOS_API_EXEMPT = frozenset(
    {
        "src/cluster/chaos_scheduler.cc",
        "src/cluster/chaos_scheduler.h",
        "src/cluster/cluster.cc",
        "src/storage/deep_storage.cc",
        "src/storage/deep_storage.h",
    }
)

# The privacy boundary's one sanctioned exit: client-side reconstruction
# (session.cc splits pack groups, pss_client.cc drives the distributed
# client) plus the declaration itself. Tests use their fixture
# (tests/pss/plaintext_access.h) and client binaries (examples/, bench/)
# consume results directly — neither is walked by the lint.
PLAINTEXT_RELEASE_EXEMPT = frozenset(
    {
        "src/crypto/sensitive.h",
        "src/pss/session.cc",
        "src/cluster/pss_client.cc",
    }
)

# The subscription plane's matcher and its owner: the only files that
# may name the match entry point. PR 10 folded the seed's streaming.cc
# stub (StandingSearch) into SubscriptionMatcher; the lint keeps both
# spellings from leaking back into other layers.
SUBSCRIPTION_MATCH_EXEMPT = frozenset(
    {
        "src/pss/subscription.h",
        "src/pss/subscription.cc",
        "src/pss/subscription_feed.cc",
        "src/cluster/subscription_host.h",
        "src/cluster/subscription_host.cc",
    }
)

METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

RULES = [
    Rule(
        name="wall-clock",
        pattern=re.compile(
            r"std::this_thread::sleep_for"
            r"|\bsystem_clock::now\s*\("
            r"|\bsteady_clock::now\s*\("
        ),
        message=(
            "wall-clock access outside common/clock.*; take a Clock& so "
            "tests control time (or justify with an allow comment)"
        ),
        exempt_files=WALL_CLOCK_EXEMPT,
    ),
    Rule(
        name="rng",
        pattern=re.compile(r"std::random_device\b|\b(?:s?rand)\s*\(\s*\)"),
        message=(
            "unseeded randomness outside common/rng.*; take an Rng so "
            "runs are replayable from a seed"
        ),
        exempt_files=RNG_EXEMPT,
    ),
    Rule(
        name="transport-call",
        pattern=re.compile(r"\btransport_?\s*[.&]?\s*->?\s*\bcall\s*\("
                           r"|\btransport_\.call\s*\("
                           r"|\btransport\.call\s*\("),
        message=(
            "direct Transport::call bypasses retry/backoff/deadline "
            "policy; route through callWithPolicy (cluster/rpc_policy.h)"
        ),
        exempt_files=TRANSPORT_EXEMPT,
    ),
    Rule(
        name="control-channel",
        # Hand-rolling a control frame requires the control_op:: opcode
        # constants; addressing "<name>.ctl" yourself requires
        # controlNode(). Either spelling outside net/control.* means a
        # raw membership verb is bypassing the policy-wrapped helpers.
        pattern=re.compile(r"\bcontrol_op::\w+|\bcontrolNode\s*\("),
        message=(
            "hand-rolled control-channel send outside net/control.cc; "
            "membership verbs (decommission, drain state, shutdown) go "
            "through the control* client helpers (net/control.h), which "
            "route through callWithPolicy so retry/deadline policy and "
            "the wire format stay in one place"
        ),
        exempt_files=CONTROL_CHANNEL_EXEMPT,
    ),
    Rule(
        name="raw-socket",
        # Header includes are the robust proxy for syscall use (you can't
        # call them without these), plus the distinctive call spellings.
        pattern=re.compile(
            r"#include\s*<(?:sys/socket\.h|sys/epoll\.h|poll\.h"
            r"|netinet/[^>]+|arpa/inet\.h|netdb\.h)>"
            r"|\bepoll_(?:create1?|ctl|wait)\s*\("
            r"|::socket\s*\("
        ),
        message=(
            "raw socket/poll syscalls outside src/net/; go through the "
            "net transport (net/net_transport.h) so framing, deadlines "
            "and typed errors stay in one place"
        ),
        exempt_dirs=frozenset({"src/net/"}),
    ),
    Rule(
        name="raw-modexp",
        pattern=re.compile(
            r"\bpowm(?:Naive|Windowed)?\s*\(|\bmpz_powm\b"
            r"|\bFixedBaseWindow\b"
        ),
        message=(
            "raw modular exponentiation in src/pss/; the search layer "
            "must go through the crypto::Paillier* kernels (encrypt, "
            "mulPlain, mulPlainMany, decryptCrtBatch) so the windowed/"
            "fixed-base fast paths and their differential coverage stay "
            "the only modexp entry points"
        ),
        only_dirs=frozenset({"src/pss/"}),
    ),
    Rule(
        name="chaos-api",
        # No whitespace after the member operator: "word. crash() word"
        # in prose comments must not trip the rule.
        pattern=re.compile(r"(?:\.|->)crash\s*\(|\bfailNextGets\s*\("),
        message=(
            "ad-hoc fault injection outside the chaos scheduler; derive "
            "faults from a seeded schedule (cluster/chaos_scheduler.h) "
            "so one seed replays the whole failure story"
        ),
        exempt_files=CHAOS_API_EXEMPT,
    ),
    Rule(
        name="plaintext-release",
        pattern=re.compile(r"\breleaseForClientReconstruction\s*\("),
        message=(
            "PlaintextBytes escape hatch outside the client "
            "reconstruction sites (pss/session.cc, cluster/pss_client.cc); "
            "decrypted matched documents must stay inside the privacy "
            "type (crypto/sensitive.h)"
        ),
        exempt_files=PLAINTEXT_RELEASE_EXEMPT,
    ),
    Rule(
        name="secret-memcpy",
        # A mem*() call whose argument text names Secret-typed storage.
        pattern=re.compile(
            r"\b(?:memcpy|memset|memmove)\s*\([^;)]*\b[Ss]ecret"
        ),
        message=(
            "byte-level access to SecretScalar storage outside "
            "src/crypto/; key material moves only through the scrubbing "
            "type and the audited PaillierPrivateKey::serialize path"
        ),
        exempt_dirs=frozenset({"src/crypto/"}),
    ),
    Rule(
        name="subscription-match",
        pattern=re.compile(r"\bSubscriptionMatcher\b|\bStandingSearch\b"),
        message=(
            "subscription match entry point outside the subscription.* "
            "files; standing queries are matched only by "
            "SubscriptionMatcher (pss/subscription.h) owned by "
            "SubscriptionHost — feed documents through "
            "SubscriptionHost::onDocument, and never resurrect the "
            "deleted StandingSearch stub"
        ),
        exempt_files=SUBSCRIPTION_MATCH_EXEMPT,
    ),
]

ALLOW_RE = re.compile(r"//\s*dpss-lint:\s*allow\(([a-z-]+)\)\s*(.*)")
COMMENT_LINE_RE = re.compile(r"^\s*(//|\*|/\*)")
INTERN_RE = re.compile(
    r"""\b(?:obs::)?intern(?:Counter|Gauge|Histogram)\s*\(\s*"([^"]*)"""
)
INTERN_CALL_RE = re.compile(
    r"\b(?:obs::)?intern(?:Counter|Gauge|Histogram)\s*\("
)
# One {"key", value} label pair inside an intern* call's argument text.
LABEL_PAIR_RE = re.compile(r'\{\s*"[^"]*"\s*,\s*([^{}]*?)\s*\}')

METRIC_LABEL_MESSAGE = (
    "unbounded metric label value; every distinct value interns a new "
    "series and kMaxMetrics aborts the process — use a string literal "
    "or wrap with obs::boundedLabelValue()"
)


def intern_call_spans(text: str):
    """Yields (offset, argument_text) for every intern* call in `text`,
    with the argument extent found by balancing parentheses (calls and
    boundedLabelValue() wrappers routinely span lines)."""
    for m in INTERN_CALL_RE.finditer(text):
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
            i += 1
        yield m.end(), text[m.end() : i - 1]


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    snippet: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
            f"    {self.snippet.strip()}"
        )


@dataclass
class FileLint:
    """Per-file rule engine; separable from the filesystem for selftest."""

    relpath: str
    lines: list
    findings: list = field(default_factory=list)

    def allowed_rules_for(self, index: int) -> dict:
        """Rules waived for line `index` (0-based): same-line allow
        comments, plus any in the contiguous comment block above the
        enclosing statement (matches on a wrapped continuation line are
        still covered by a comment above the statement's first line)."""
        allowed = {}
        candidates = [self.lines[index]]
        j = index
        while j > 0:
            prev = self.lines[j - 1].rstrip()
            if (
                not prev
                or prev.endswith((";", "{", "}"))
                or COMMENT_LINE_RE.match(prev)
            ):
                break
            candidates.append(self.lines[j - 1])
            j -= 1
        j -= 1
        while j >= 0 and COMMENT_LINE_RE.match(self.lines[j]):
            candidates.append(self.lines[j])
            j -= 1
        for text in candidates:
            m = ALLOW_RE.search(text)
            if m:
                allowed[m.group(1)] = m.group(2).strip()
        return allowed

    def check(self) -> list:
        for i, line in enumerate(self.lines):
            allowed = self.allowed_rules_for(i)
            for rule in RULES:
                if rule.exempts(self.relpath):
                    continue
                if not rule.pattern.search(line):
                    continue
                if ALLOW_RE.search(line) and rule.name not in allowed:
                    # The match came from the allow comment itself.
                    if not rule.pattern.search(line.split("//")[0]):
                        continue
                if rule.name in allowed:
                    if not allowed[rule.name]:
                        self.findings.append(
                            Finding(
                                self.relpath,
                                i + 1,
                                rule.name,
                                "allow comment needs a justification",
                                line,
                            )
                        )
                    continue
                self.findings.append(
                    Finding(self.relpath, i + 1, rule.name, rule.message, line)
                )
            for m in INTERN_RE.finditer(line):
                name = m.group(1)
                if "metric-name" in allowed:
                    continue
                if not METRIC_NAME_RE.match(name):
                    self.findings.append(
                        Finding(
                            self.relpath,
                            i + 1,
                            "metric-name",
                            f'metric "{name}" is not lowercase dotted '
                            "(expected e.g. broker.query.count)",
                            line,
                        )
                    )
        self.check_metric_labels()
        return self.findings

    def check_metric_labels(self):
        """Whole-file pass (intern* calls span lines): every label value
        must be a string literal or go through boundedLabelValue()."""
        text = "\n".join(self.lines)
        for arg_off, arg_text in intern_call_spans(text):
            for pm in LABEL_PAIR_RE.finditer(arg_text):
                value = pm.group(1).strip()
                if value.startswith('"') or "boundedLabelValue" in value:
                    continue
                index = text.count("\n", 0, arg_off + pm.start(1))
                allowed = self.allowed_rules_for(index)
                if "metric-label" in allowed:
                    if not allowed["metric-label"]:
                        self.findings.append(
                            Finding(
                                self.relpath,
                                index + 1,
                                "metric-label",
                                "allow comment needs a justification",
                                self.lines[index],
                            )
                        )
                    continue
                self.findings.append(
                    Finding(
                        self.relpath,
                        index + 1,
                        "metric-label",
                        METRIC_LABEL_MESSAGE,
                        self.lines[index],
                    )
                )


def lint_file(root: str, relpath: str) -> list:
    with open(os.path.join(root, relpath), encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    return FileLint(relpath, lines).check()


def source_files(root: str):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc")):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root).replace(os.sep, "/")


# --- selftest -------------------------------------------------------------

SELFTEST_CASES = [
    # (rule expected in findings or None, relpath, source)
    ("wall-clock", "src/x/a.cc", "auto t = std::chrono::system_clock::now();"),
    ("wall-clock", "src/x/a.cc", "std::this_thread::sleep_for(1ms);"),
    ("wall-clock", "src/x/a.cc", "auto t = steady_clock::now();"),
    (None, "src/common/clock.cc", "auto t = system_clock::now();"),
    (
        None,
        "src/x/a.cc",
        "// dpss-lint: allow(wall-clock) measuring elapsed time only\n"
        "auto t = steady_clock::now();",
    ),
    (
        "wall-clock",
        "src/x/a.cc",
        "// dpss-lint: allow(wall-clock)\nauto t = steady_clock::now();",
    ),  # missing justification
    (
        None,
        "src/x/a.cc",
        "// dpss-lint: allow(wall-clock) timing a span, elapsed only\n"
        "auto t = duration_cast<nanoseconds>(\n"
        "    steady_clock::now().time_since_epoch());",
    ),  # allow covers wrapped continuation lines of the same statement
    ("rng", "src/x/a.cc", "std::random_device rd;"),
    ("rng", "src/x/a.cc", "int r = rand();"),
    (None, "src/common/rng.cc", "std::random_device rd;"),
    ("transport-call", "src/x/a.cc", "auto r = transport_.call(node, req);"),
    ("transport-call", "src/x/a.cc", "auto r = transport.call(node, req);"),
    (None, "src/cluster/rpc_policy.cc", "return transport.call(n, req);"),
    (
        "metric-name",
        "src/x/a.cc",
        'auto id = obs::internCounter("BrokerQueries");',
    ),
    ("metric-name", "src/x/a.cc", 'auto id = obs::internCounter("broker");'),
    (None, "src/x/a.cc", 'auto id = obs::internCounter("broker.query.count");'),
    (None, "src/x/a.cc", 'auto id = obs::internHistogram("rpc.latency_ns");'),
    (
        "metric-name",
        "src/obs/x.cc",
        'auto id = internGauge("Served");',
    ),  # unqualified call inside namespace obs is still checked
    (
        "metric-label",
        "src/x/a.cc",
        'auto id = obs::internCounter("rpc.calls", {{"node", nodeName}});',
    ),
    (
        "metric-label",
        "src/x/a.cc",
        'auto id = internHistogram("h.ns",\n'
        '    {{"op", "query"}, {"seg", id.toString()}});',
    ),  # multi-line call; second pair is the unbounded one
    (
        None,
        "src/x/a.cc",
        'auto id = obs::internCounter("rpc.calls", {{"op", "query"}});',
    ),
    (
        None,
        "src/x/a.cc",
        'auto id = obs::internCounter(\n'
        '    "http.requests",\n'
        '    {{"path", obs::boundedLabelValue("http.requests", "path", p)}});',
    ),
    (
        None,
        "src/x/a.cc",
        "// dpss-lint: allow(metric-label) table has a fixed op set\n"
        'auto id = obs::internCounter("a.b", {{"op", opName}});',
    ),
    (
        "metric-label",
        "src/x/a.cc",
        "// dpss-lint: allow(metric-label)\n"
        'auto id = obs::internCounter("a.b", {{"op", opName}});',
    ),  # missing justification
    (
        "control-channel",
        "src/x/a.cc",
        "w.u8(net::control_op::kDecommission);",
    ),
    (
        "control-channel",
        "src/x/a.cc",
        'transport.call(controlNode(name), w.take());',
    ),
    (None, "src/net/control.cc", "w.u8(control_op::kDrainState);"),
    (None, "src/net/control.h", "constexpr std::uint8_t kDecommission = 6;"),
    (
        None,
        "src/x/a.cc",
        "net::controlDecommission(transport, nodeName);",
    ),  # the sanctioned helper spelling must stay clean
    ("raw-socket", "src/x/a.cc", "#include <sys/socket.h>"),
    ("raw-socket", "src/x/a.cc", "#include <netinet/tcp.h>"),
    ("raw-socket", "src/x/a.cc", "#include <poll.h>"),
    ("raw-socket", "src/x/a.cc", "int ep = epoll_create1(0);"),
    ("raw-socket", "src/x/a.cc", "int fd = ::socket(AF_INET, SOCK_STREAM, 0);"),
    (None, "src/net/socket.cc", "#include <sys/socket.h>"),
    (None, "src/net/server.cc", "#include <sys/epoll.h>"),
    (None, "src/x/a.cc", "websocket(x);"),  # substring must not trip it
    ("raw-modexp", "src/pss/a.cc", "auto x = Bigint::powm(c, k, n2);"),
    ("raw-modexp", "src/pss/a.cc", "auto x = Bigint::powmNaive(c, k, n2);"),
    ("raw-modexp", "src/pss/a.cc", "mpz_powm(r, b, e, m);"),
    ("raw-modexp", "src/pss/a.cc", "FixedBaseWindow table(c, n2, 512, 4);"),
    (None, "src/crypto/paillier.cc", "auto x = Bigint::powm(c, k, n2);"),
    (None, "src/pss/a.cc", "out = pub.mulPlainMany(ec, blocks);"),
    (None, "src/x/a.cc", "auto x = Bigint::powm(c, k, n2);"),
    (
        None,
        "src/pss/a.cc",
        "// dpss-lint: allow(raw-modexp) proving-ground comparison only\n"
        "auto x = Bigint::powmWindowed(c, k, n2, 4);",
    ),
    ("chaos-api", "src/x/a.cc", "cluster.historical(0).crash();"),
    ("chaos-api", "src/x/a.cc", "historicals_[i]->crash();"),
    ("chaos-api", "src/x/a.cc", "deepStorage_.failNextGets(3);"),
    (None, "src/x/a.cc", "void crash();"),  # declaring the API is fine
    (
        None,
        "src/cluster/chaos_scheduler.cc",
        "cluster_.historical(i).crash();",
    ),
    (None, "src/cluster/cluster.cc", "slot.node->crash();"),
    (
        None,
        "src/x/a.cc",
        "// dpss-lint: allow(chaos-api) bench measures raw restart cost\n"
        "node.crash();",
    ),
    (
        "plaintext-release",
        "src/x/a.cc",
        "auto s = seg.payload.releaseForClientReconstruction();",
    ),
    (
        "plaintext-release",
        "src/net/frame.cc",
        "w.str(doc.releaseForClientReconstruction());",
    ),
    (None, "src/pss/session.cc",
     "auto s = p.releaseForClientReconstruction();"),
    (None, "src/cluster/pss_client.cc",
     "auto s = p.releaseForClientReconstruction();"),
    (None, "src/crypto/sensitive.h",
     "const std::string& releaseForClientReconstruction() const;"),
    (
        None,
        "src/x/a.cc",
        "// dpss-lint: allow(plaintext-release) client-side CLI output\n"
        "print(m.payload.releaseForClientReconstruction());",
    ),
    ("secret-memcpy", "src/x/a.cc",
     "memcpy(buf, &secretKey, sizeof(secretKey));"),
    ("secret-memcpy", "src/x/a.cc", "memset(&secrets[0], 0, n);"),
    ("secret-memcpy", "src/pss/a.cc",
     "std::memmove(dst, key.secretBytes(), n);"),
    (None, "src/crypto/sensitive.cc", "memset(&secret, 0, n);"),
    (None, "src/x/a.cc", "memcpy(dst, src, n);"),  # no secret involved
    (None, "src/x/a.cc", "int consecrated = memcmp(a, b, n);"),
    (
        "subscription-match",
        "src/cluster/realtime_node.cc",
        "pss::SubscriptionMatcher matcher(spec, seed, now);",
    ),
    (
        "subscription-match",
        "src/query/broker_node.cc",
        "StandingSearch search(query);",
    ),  # the deleted seed stub must not come back
    (None, "src/pss/subscription.cc",
     "std::optional<SubscriptionSnapshot> SubscriptionMatcher::seal("),
    (None, "src/cluster/subscription_host.cc",
     "entry.matcher = std::make_unique<pss::SubscriptionMatcher>(spec);"),
    (
        None,
        "src/x/a.cc",
        "subscriptions_.onDocument(offset, text, payload);",
    ),  # the sanctioned feed path stays clean
    (
        None,
        "src/x/a.cc",
        "// dpss-lint: allow(subscription-match) doc cross-reference only\n"
        "// see SubscriptionMatcher for the fold identities\n"
        "void fold();",
    ),
]


FIXTURE_RE = re.compile(r"//\s*dpss-lint-fixture:\s*expect\(([a-z\-, ]+)\)")
# Optional: lint the fixture as if it lived at this repo-relative path
# (for only_dirs rules like raw-modexp that fire only under src/pss/).
FIXTURE_AS_RE = re.compile(r"//\s*dpss-lint-fixture:\s*as\(([\w/.\-]+)\)")


def check_fixtures(dirpath: str) -> int:
    """Lint every fixture in `dirpath` and compare the rules found with
    the fixture's own declaration, e.g.:

        // dpss-lint-fixture: expect(wall-clock)
        // dpss-lint-fixture: expect(clean)

    Fixtures are linted as if they lived under src/ (they are never
    compiled and the tree walk never visits tests/)."""
    failures = 0
    names = sorted(
        n for n in os.listdir(dirpath) if n.endswith((".cc", ".h"))
    )
    if not names:
        print(f"no fixtures found in {dirpath}")
        return 1
    for name in names:
        with open(os.path.join(dirpath, name), encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        decl = next(
            (m for line in lines if (m := FIXTURE_RE.search(line))), None
        )
        if decl is None:
            print(f"fixture FAIL: {name}: missing dpss-lint-fixture header")
            failures += 1
            continue
        expected = {
            token.strip()
            for token in decl.group(1).split(",")
            if token.strip() and token.strip() != "clean"
        }
        as_decl = next(
            (m for line in lines if (m := FIXTURE_AS_RE.search(line))), None
        )
        relpath = (
            as_decl.group(1) if as_decl else f"src/lint_fixtures/{name}"
        )
        found = {f.rule for f in FileLint(relpath, lines).check()}
        if found != expected:
            print(
                f"fixture FAIL: {name}: expected "
                f"{sorted(expected) or 'clean'}, found {sorted(found) or 'clean'}"
            )
            failures += 1
    if failures == 0:
        print(f"fixtures OK ({len(names)} files)")
    return 1 if failures else 0


def selftest() -> int:
    failures = 0
    for expected, relpath, source in SELFTEST_CASES:
        findings = FileLint(relpath, source.splitlines()).check()
        rules = {f.rule for f in findings}
        if expected is None and findings:
            print(f"selftest FAIL: expected clean, got {rules}: {source!r}")
            failures += 1
        elif expected is not None and expected not in rules:
            print(
                f"selftest FAIL: expected {expected}, got "
                f"{rules or 'clean'}: {source!r}"
            )
            failures += 1
    if failures == 0:
        print(f"selftest OK ({len(SELFTEST_CASES)} cases)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing scripts/)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the built-in rule-engine cases and exit",
    )
    parser.add_argument(
        "--check-fixtures",
        metavar="DIR",
        help="lint every fixture in DIR against its expect() header",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="repo-relative files to lint (default: all of src/)",
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if args.check_fixtures:
        return check_fixtures(args.check_fixtures)

    relpaths = (
        [p.replace(os.sep, "/") for p in args.paths]
        if args.paths
        else list(source_files(args.root))
    )
    findings = []
    for relpath in relpaths:
        findings.extend(lint_file(args.root, relpath))

    for f in findings:
        print(f.render())
    if findings:
        print(f"dpss-lint: {len(findings)} violation(s) in {len(relpaths)} files")
        return 1
    print(f"dpss-lint: OK ({len(relpaths)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
