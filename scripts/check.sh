#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the code whose
# correctness depends on concurrency: the obs/ metrics+tracing layer,
# the thread pool, and a trimmed cluster subset (broker/coordinator
# churn races, chaos determinism, rpc retry policy). Run from the repo
# root.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: full build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" >/dev/null
(cd build && ctest --output-on-failure -j "$JOBS")

echo
echo "== tsan: obs_test + thread_pool + cluster subset under -fsanitize=thread =="
cmake -B build-tsan -S . -DDPSS_SANITIZE=thread >/dev/null
cmake --build build-tsan --target obs_test common_test cluster_test -j "$JOBS" >/dev/null
./build-tsan/tests/obs_test
./build-tsan/tests/common_test --gtest_filter='ThreadPool.*'
./build-tsan/tests/cluster_test --gtest_filter='Concurrency.*:RpcPolicy.*:CallPolicyTest.*:ChaosPolicy.*:ChaosTransport.*:Chaos.IdenticalSeedReproducesIdenticalSchedule'

echo
echo "all checks passed"
