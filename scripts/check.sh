#!/usr/bin/env bash
# The repo's verification gate, in four stages:
#
#   1. static   — dpss-lint + dpss-arch over src/, BEFORE the build:
#                 both finish in under a second, so layer violations and
#                 privacy-hatch leaks fail fast (the arch tree run
#                 re-runs post-configure with compile_commands coverage
#                 as the dpss_arch_tree ctest)
#   2. tier-1   — full build (with -Werror for src/) + full ctest suite
#   3. asan     — the FULL ctest suite again under ASan+UBSan
#                 (UBSan non-recoverable, so any UB fails the test)
#   4. tsan     — the concurrency-sensitive subset under ThreadSanitizer
#                 (obs layer, thread pool, churn/chaos/rpc-policy tests;
#                 the full suite under TSan is too slow for a local gate)
#
# Clang's -Wthread-safety analysis over the annotated mutexes needs a
# clang toolchain and runs in CI (.github/workflows/check.yml); if
# clang++ is on PATH we run it here too.
#
# Run from the repo root. Set DPSS_CHECK_SKIP_SANITIZERS=1 for a quick
# tier-1+lint pass.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== static: dpss-lint + dpss-arch (fail fast, pre-build) =="
python3 scripts/dpss_lint.py --selftest
python3 scripts/dpss_lint.py --check-fixtures tests/lint_fixtures
python3 scripts/dpss_lint.py
python3 scripts/dpss_arch.py --selftest
python3 scripts/dpss_arch.py --no-compile-commands

echo
echo "== tier-1: full build (DPSS_WERROR=ON) + ctest =="
cmake -B build -S . -DDPSS_WERROR=ON >/dev/null
cmake --build build -j "$JOBS" >/dev/null
(cd build && ctest --output-on-failure -j "$JOBS")

echo
echo "== multi-process: loopback cluster + elastic join->drain + leader-kill failover =="
# MultiprocessClusterTest includes ElasticScaleOutAndDrainUnderLoad
# (runtime 2->8->2 scale under continuous query/PSS load) and
# CoordinatorFailoverOnLeaderKill (SIGKILL the leader mid-drain) — the
# membership smoke this gate requires.
./build/tests/net_test --gtest_filter='MultiprocessClusterTest.*'

echo
echo "== admin smoke: boot a node, scrape /healthz and /metrics =="
python3 - build/src/net/dpss_node <<'PY'
import socket, subprocess, sys, time, urllib.request

node_bin = sys.argv[1]

def free_port():
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port

rpc_port, admin_port = free_port(), free_port()
proc = subprocess.Popen([
    node_bin, "--role", "coordinator", "--name", "smoke",
    "--listen", f"127.0.0.1:{rpc_port}", "--admin-port", str(admin_port),
])
try:
    deadline = time.time() + 20
    while True:
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{admin_port}/healthz", timeout=2) as r:
                body = r.read().decode()
                if r.status != 200 or '"status":"ok"' not in body:
                    sys.exit(f"/healthz bad: {r.status} {body!r}")
                break
        except OSError:
            if time.time() > deadline:
                sys.exit("admin /healthz never answered")
            time.sleep(0.2)
    with urllib.request.urlopen(
            f"http://127.0.0.1:{admin_port}/metrics", timeout=2) as r:
        text = r.read().decode()
    if not text.strip():
        sys.exit("/metrics came back empty")
    for needle in ("# TYPE", "dpss_rpc_attempts", "dpss_net_server_accepts"):
        if needle not in text:
            sys.exit(f"/metrics is missing {needle!r}")
    print(f"admin smoke OK: /healthz + /metrics on 127.0.0.1:{admin_port}")
finally:
    proc.terminate()
    proc.wait(timeout=10)
PY

echo
echo "== bench smoke: pss hot-path speedup ratios vs BENCH_pss.json =="
python3 scripts/check_bench_pss.py

echo
echo "== bench smoke: rebalancer invariants vs BENCH_rebalance.json =="
python3 scripts/check_bench_rebalance.py

echo
echo "== bench smoke: subscription matcher invariants vs BENCH_subs.json =="
python3 scripts/check_bench_subs.py

echo
echo "== clang-tidy: curated .clang-tidy profile over src/ TUs =="
python3 scripts/run_clang_tidy.py --build-dir build

if [[ "${DPSS_CHECK_SKIP_SANITIZERS:-0}" == "1" ]]; then
  echo
  echo "sanitizer stages skipped (DPSS_CHECK_SKIP_SANITIZERS=1)"
  exit 0
fi

echo
echo "== asan+ubsan: full ctest suite under -fsanitize=address,undefined =="
cmake -B build-asan -S . -DDPSS_SANITIZE=address >/dev/null
cmake --build build-asan -j "$JOBS" >/dev/null
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo
echo "== tsan: obs_test + thread_pool + pss fold + net/cluster subsets under -fsanitize=thread =="
cmake -B build-tsan -S . -DDPSS_SANITIZE=thread >/dev/null
cmake --build build-tsan --target obs_test common_test cluster_test net_test pss_test -j "$JOBS" >/dev/null
# obs_test covers the span ring, trace collector and slow-query log; the
# http admin tests exercise the admin loop thread against client threads.
./build-tsan/tests/obs_test
./build-tsan/tests/net_test --gtest_filter='HttpAdminTest.*'
./build-tsan/tests/common_test --gtest_filter='ThreadPool.*'
# The thread-parallel per-segment fold and the randomizer pool's
# refill/drain races are the crypto layer's only concurrency.
./build-tsan/tests/pss_test --gtest_filter='FoldConcurrency.*:RandomizerPoolConcurrency.*'
# ClusterChaos.Sweep* (50 whole-cluster stories) is deliberately excluded:
# it is deterministic single-driver logic and far too slow under TSan.
./build-tsan/tests/cluster_test --gtest_filter='Concurrency.*:RpcPolicy.*:CallPolicyTest.*:ChaosPolicy.*:ChaosTransport.*:Chaos.IdenticalSeedReproducesIdenticalSchedule:ClusterChaos.SingleSeedReplaysCombinedFaultStory:ClusterChaos.SlowReadsDelayLoadsButQueriesStayCorrect:ClusterChaos.RealtimeCrashLosesUnpersistedStopFlushes'

if command -v clang++ >/dev/null 2>&1; then
  echo
  echo "== clang thread-safety: -Werror=thread-safety over annotated mutexes =="
  cmake -B build-tsa -S . -DDPSS_THREAD_SAFETY=ON \
        -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-tsa -j "$JOBS" >/dev/null
else
  echo
  echo "clang++ not found; thread-safety analysis left to CI"
fi

echo
echo "all checks passed"
