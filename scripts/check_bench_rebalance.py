#!/usr/bin/env python3
"""Bench smoke gate for the coordinator rebalancer.

Runs `bench_rebalance --quick` (2k segments through placement,
scale-out rebalance, and drain against the real CoordinatorNode) and
gates the *structural invariants* of the reconcile loop — properties
that are deterministic functions of the coordinator's logic, identical
on every machine:

  - every segment gets placed, and stays placed through a drain
  - no cycle exceeds the configured per-cycle move budget
  - the final spread converges to the imbalance threshold
  - the scale-out moves close to the ideal count (segments x
    joined/total) — a rebalancer that thrashes (moves a segment more
    than once) or under-moves fails here

The baseline (BENCH_rebalance.json, seeded from a full 10k run) is
compared only on scale-independent ratios; absolute seconds and
cycles/sec are machine-shaped and never gated.

Usage:
    scripts/check_bench_rebalance.py [--bench PATH] [--baseline PATH]
                                     [--thrash-tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

# Keys that must exist and be positive (shape check only).
STRUCTURAL_KEYS = [
    ("segments",),
    ("nodes_initial",),
    ("nodes_final",),
    ("max_moves_per_cycle",),
    ("placement", "cycles"),
    ("placement", "served"),
    ("rebalance", "cycles"),
    ("rebalance", "moves_total"),
    ("drain", "cycles"),
    ("drain", "served"),
]


def lookup(doc: dict, path: tuple) -> float:
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            raise KeyError(".".join(path))
        node = node[key]
    if not isinstance(node, (int, float)):
        raise KeyError(".".join(path) + " is not numeric")
    return float(node)


def gate(doc: dict, thrash_tolerance: float) -> int:
    """Checks the structural invariants on one bench document."""
    failures = 0

    def check(ok: bool, name: str, detail: str):
        nonlocal failures
        print(f"{'OK' if ok else 'FAIL'}: {name}: {detail}")
        if not ok:
            failures += 1

    segments = lookup(doc, ("segments",))
    check(
        lookup(doc, ("placement", "served")) == segments,
        "placement covers every segment",
        f"served {lookup(doc, ('placement', 'served')):.0f} of "
        f"{segments:.0f}",
    )

    budget = lookup(doc, ("max_moves_per_cycle",))
    worst = lookup(doc, ("rebalance", "max_moves_in_one_cycle"))
    check(
        worst <= budget,
        "per-cycle move budget respected",
        f"worst cycle issued {worst:.0f} (budget {budget:.0f})",
    )

    spread = lookup(doc, ("rebalance", "final_spread"))
    check(
        spread <= 1,
        "rebalance converges to the imbalance threshold",
        f"final spread {spread:.0f}",
    )

    joined = lookup(doc, ("nodes_final",)) - lookup(doc, ("nodes_initial",))
    ideal = segments * joined / lookup(doc, ("nodes_final",))
    moves = lookup(doc, ("rebalance", "moves_total"))
    low = ideal * (1.0 - thrash_tolerance)
    high = ideal * (1.0 + thrash_tolerance)
    check(
        low <= moves <= high,
        "scale-out moves close to ideal (no thrashing)",
        f"{moves:.0f} moves for ideal {ideal:.0f} "
        f"(band {low:.0f}..{high:.0f})",
    )

    check(
        lookup(doc, ("drain", "drained_still_serving")) == 0,
        "drained nodes end up serving nothing",
        f"{lookup(doc, ('drain', 'drained_still_serving')):.0f} left",
    )
    check(
        lookup(doc, ("drain", "served")) == segments,
        "drain preserves every copy (load-before-drop)",
        f"served {lookup(doc, ('drain', 'served')):.0f} of {segments:.0f}",
    )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="build/bench/bench_rebalance")
    parser.add_argument("--baseline", default="BENCH_rebalance.json")
    parser.add_argument("--thrash-tolerance", type=float, default=0.25)
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    proc = subprocess.run(
        [args.bench, "--quick"], capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print(f"FAIL: bench exited {proc.returncode}")
        return 1
    try:
        current = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        print(proc.stdout)
        print(f"FAIL: bench stdout is not valid JSON: {err}")
        return 1

    failures = 0
    for path in STRUCTURAL_KEYS:
        try:
            value = lookup(current, path)
        except KeyError as err:
            print(f"FAIL: bench output missing {err}")
            failures += 1
            continue
        if value <= 0:
            print(f"FAIL: {'.'.join(path)} = {value} (must be positive)")
            failures += 1
    if failures:
        print(f"{failures} bench gate failure(s)")
        return 1

    # The invariants must hold for the fresh run AND for the seeded
    # baseline (a stale baseline regenerated from a broken build would
    # otherwise gate nothing).
    failures += gate(current, args.thrash_tolerance)
    failures += gate(baseline, args.thrash_tolerance)

    # Scale-independent ratio vs baseline: moves per segment. Identical
    # topology change (8 -> 16 nodes) must move the same fraction of
    # segments regardless of segment count or machine.
    base_ratio = lookup(baseline, ("rebalance", "moves_total")) / lookup(
        baseline, ("segments",)
    )
    cur_ratio = lookup(current, ("rebalance", "moves_total")) / lookup(
        current, ("segments",)
    )
    drift = abs(cur_ratio - base_ratio)
    ok = drift <= 0.05
    print(
        f"{'OK' if ok else 'FAIL'}: moves-per-segment matches baseline: "
        f"{cur_ratio:.3f} vs {base_ratio:.3f}"
    )
    if not ok:
        failures += 1

    if failures:
        print(f"{failures} bench gate failure(s)")
        return 1
    print("bench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
