#!/usr/bin/env python3
"""Bench smoke gate for the standing-subscription plane.

Runs `bench_subscriptions --quick` (a SubscriptionHost swept over 1, 8,
and 64 live subscriptions against a fixed document stream) and gates the
*structural invariants* of the subscription matcher — properties that
are deterministic functions of the snapshot policy and the document
generator, identical on every machine:

  - every document is folded into every subscription (folds = subs x docs)
  - snapshot counts follow exactly from the fill threshold: docs // max
    fill-seals per subscription plus one commit-barrier seal for the
    remainder
  - the decrypted feed recovers every expected match (an oversized block
    budget, a broken fold, or a bad seal would all surface here)
  - fold throughput stays flat as subscriptions scale (cost per
    subscription is independent of how many neighbours it has) — a very
    loose same-run ratio, never an absolute time

The baseline (BENCH_subs.json, seeded from the full 1 -> 1024 run) is
held to the same invariants plus scale-independent comparisons (match
fraction, snapshots per subscription); absolute seconds and folds/sec
are machine-shaped and never gated.

Usage:
    scripts/check_bench_subs.py [--bench PATH] [--baseline PATH]
                                [--flatness 4.0]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def gate(doc: dict, label: str, flatness: float) -> int:
    """Checks the structural invariants on one bench document."""
    failures = 0

    def check(ok: bool, name: str, detail: str):
        nonlocal failures
        print(f"{'OK' if ok else 'FAIL'}: {label}: {name}: {detail}")
        if not ok:
            failures += 1

    docs = doc.get("documents_per_point", 0)
    max_docs = doc.get("max_documents_per_snapshot", 0)
    points = doc.get("points", [])
    check(docs > 0 and max_docs > 0 and len(points) >= 2,
          "document shape",
          f"{len(points)} points, {docs} docs, fill threshold {max_docs}")
    if failures:
        return failures

    fills = docs // max_docs
    remainder = 1 if docs % max_docs else 0
    for p in points:
        subs = p.get("subscriptions", 0)
        check(
            p.get("folds") == subs * docs,
            "every document folded into every subscription",
            f"{p.get('folds')} folds for {subs} subs x {docs} docs",
        )
        check(
            p.get("fill_snapshots") == subs * fills,
            "fill-threshold seals match the policy",
            f"{p.get('fill_snapshots')} for {subs} subs x {fills}",
        )
        check(
            p.get("drain_snapshots") == subs * remainder,
            "commit barrier seals exactly the partial batches",
            f"{p.get('drain_snapshots')} for {subs} subs x {remainder}",
        )
        check(
            p.get("recovered") == p.get("expected_matches")
            and p.get("expected_matches", 0) > 0,
            "feed recovers every expected match",
            f"recovered {p.get('recovered')} of "
            f"{p.get('expected_matches')}",
        )
        check(
            p.get("duplicates_dropped") == 0,
            "no duplicate deliveries in a clean run",
            f"{p.get('duplicates_dropped')} dropped",
        )

    # Same-run, same-machine ratio: per-subscription fold cost must not
    # blow up with fan-out. The band is deliberately loose (timing), but
    # a matcher that went quadratic in the subscription count fails it.
    lo, hi = points[0], points[-1]
    if lo.get("folds_per_s", 0) > 0 and hi.get("folds_per_s", 0) > 0:
        ratio = lo["folds_per_s"] / hi["folds_per_s"]
        check(
            ratio <= flatness,
            "fold throughput flat across fan-out",
            f"{lo['folds_per_s']:.0f}/s at {lo['subscriptions']} subs vs "
            f"{hi['folds_per_s']:.0f}/s at {hi['subscriptions']} subs "
            f"(ratio {ratio:.2f}, limit {flatness})",
        )
    else:
        check(False, "fold throughput measured", "folds_per_s missing or 0")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="build/bench/bench_subscriptions")
    parser.add_argument("--baseline", default="BENCH_subs.json")
    parser.add_argument("--flatness", type=float, default=4.0,
                        help="max slowdown of folds/s at the largest "
                             "sweep point vs the smallest")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    proc = subprocess.run(
        [args.bench, "--quick"], capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print(f"FAIL: bench exited {proc.returncode}")
        return 1
    try:
        current = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        print(proc.stdout)
        print(f"FAIL: bench stdout is not valid JSON: {err}")
        return 1

    # The invariants must hold for the fresh run AND for the seeded
    # baseline (a stale baseline regenerated from a broken build would
    # otherwise gate nothing).
    failures = gate(current, "quick", args.flatness)
    failures += gate(baseline, "baseline", args.flatness)

    # Scale-independent comparisons: the quick run and the full baseline
    # share the document generator and the snapshot policy, so the match
    # fraction and the per-subscription snapshot count must agree
    # exactly, whatever the machine.
    def match_fraction(doc: dict) -> float:
        p = doc["points"][0]
        return p["expected_matches"] / doc["documents_per_point"]

    def snaps_per_sub(doc: dict) -> float:
        p = doc["points"][-1]
        total = p["fill_snapshots"] + p["drain_snapshots"]
        return total / p["subscriptions"]

    for name, fn in [("match fraction", match_fraction),
                     ("snapshots per subscription", snaps_per_sub)]:
        try:
            cur, base = fn(current), fn(baseline)
        except (KeyError, IndexError, ZeroDivisionError) as err:
            print(f"FAIL: {name} not computable: {err!r}")
            failures += 1
            continue
        ok = cur == base
        print(f"{'OK' if ok else 'FAIL'}: {name} matches baseline: "
              f"{cur:.3f} vs {base:.3f}")
        if not ok:
            failures += 1

    if failures:
        print(f"{failures} bench gate failure(s)")
        return 1
    print("bench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
