#!/usr/bin/env python3
"""Bench smoke gate for the Paillier/PSS hot path.

Runs `bench_pss_hotpath --quick`, validates the JSON shape, and compares
the run's *speedup ratios* against the seeded baseline (BENCH_pss.json).
Ratios (fast vs reference within one run) are stable across machines and
CI runners; absolute microseconds are not, so those are never gated.

A ratio regressing more than --tolerance (default 30%) below the
baseline fails the gate — that is the shape of bug this catches: a
"fast" path quietly falling back to (or becoming) the slow one.

Usage:
    scripts/check_bench_pss.py [--bench PATH] [--baseline PATH]
                               [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

# (json path, human name) of every gated speedup ratio. Fold and session
# throughputs are machine-shaped (core count, load), so they are checked
# structurally but not compared.
GATED_RATIOS = [
    (("encrypt", "fast_speedup"), "g=n+1 encrypt vs generic reference"),
    (("decrypt", "crt_speedup"), "CRT decrypt vs standard"),
    (("mul_plain", "many_speedup_batch64"), "shared-table mulPlainMany @64"),
]

# Absolute floors for ratios too noisy to diff against a baseline (the
# pooled path is ~1 µs/op; run-to-run jitter swamps a 30% band). A pool
# that quietly stopped pooling would land near the fast path's ~3x, so
# any healthy run clears this by an order of magnitude.
ABSOLUTE_FLOORS = [
    (("encrypt", "pooled_speedup"), "pooled encrypt vs generic reference",
     10.0),
]

STRUCTURAL_KEYS = [
    ("encrypt", "fast_us"),
    ("encrypt", "generic_us"),
    ("decrypt", "batch_us_per_ct"),
    ("mul_plain", "many_speedup_batch8"),
    ("fold", "segments_per_s_shards_1"),
    ("fold", "segments_per_s_shards_4"),
    ("session", "docs_per_s_pack1"),
    ("session", "docs_per_s_pack3"),
]


def lookup(doc: dict, path: tuple) -> float:
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            raise KeyError(".".join(path))
        node = node[key]
    if not isinstance(node, (int, float)):
        raise KeyError(".".join(path) + " is not numeric")
    return float(node)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", default="build/bench/bench_pss_hotpath")
    parser.add_argument("--baseline", default="BENCH_pss.json")
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    proc = subprocess.run(
        [args.bench, "--quick"], capture_output=True, text=True, timeout=600
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        print(f"FAIL: bench exited {proc.returncode}")
        return 1
    try:
        current = json.loads(proc.stdout)
    except json.JSONDecodeError as err:
        print(proc.stdout)
        print(f"FAIL: bench stdout is not valid JSON: {err}")
        return 1

    failures = 0
    for path in STRUCTURAL_KEYS:
        try:
            value = lookup(current, path)
        except KeyError as err:
            print(f"FAIL: bench output missing {err}")
            failures += 1
            continue
        if value <= 0:
            print(f"FAIL: {'.'.join(path)} = {value} (must be positive)")
            failures += 1

    for path, name in GATED_RATIOS:
        try:
            base = lookup(baseline, path)
            cur = lookup(current, path)
        except KeyError as err:
            print(f"FAIL: missing gated ratio {err}")
            failures += 1
            continue
        floor = base * (1.0 - args.tolerance)
        status = "OK" if cur >= floor else "FAIL"
        print(
            f"{status}: {name}: {cur:.2f}x "
            f"(baseline {base:.2f}x, floor {floor:.2f}x)"
        )
        if cur < floor:
            failures += 1

    for path, name, floor in ABSOLUTE_FLOORS:
        try:
            cur = lookup(current, path)
        except KeyError as err:
            print(f"FAIL: missing gated ratio {err}")
            failures += 1
            continue
        status = "OK" if cur >= floor else "FAIL"
        print(f"{status}: {name}: {cur:.2f}x (absolute floor {floor:.1f}x)")
        if cur < floor:
            failures += 1

    if failures:
        print(f"{failures} bench gate failure(s)")
        return 1
    print("bench gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
