#!/usr/bin/env python3
"""Run the curated .clang-tidy profile over the project's own sources.

Filters build/compile_commands.json down to first-party TUs (src/, the
node binary) — system/third-party TUs and test binaries are out of
scope — and runs clang-tidy on each, in parallel, failing on any
diagnostic (the profile sets WarningsAsErrors: '*').

Local toolchains may not ship clang-tidy (the dev container is
gcc-only); by default that is a clean skip so `ctest`/`check.sh` stay
runnable everywhere. CI passes --require to turn a missing binary into
a failure, so the job cannot silently degrade to a no-op.

Usage:
    run_clang_tidy.py [--build-dir build] [--require] [--jobs N]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

FIRST_PARTY_PREFIXES = ("src/",)


def first_party_sources(build_dir: str, root: str) -> list:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        raise SystemExit(
            f"{db_path} not found — configure with "
            "`cmake -B build -S .` first (CMAKE_EXPORT_COMPILE_COMMANDS "
            "is on by default)"
        )
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    sources = []
    for entry in entries:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        rel = os.path.relpath(path, root)
        if rel.startswith(FIRST_PARTY_PREFIXES):
            sources.append(path)
    return sorted(set(sources))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument(
        "--require",
        action="store_true",
        help="fail (instead of skipping) when clang-tidy is not installed",
    )
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        if args.require:
            print("clang-tidy: not found and --require given", file=sys.stderr)
            return 1
        print("clang-tidy: not installed; skipping (use --require in CI)")
        return 0

    sources = first_party_sources(args.build_dir, root)
    if not sources:
        print("clang-tidy: no first-party TUs in compile_commands.json",
              file=sys.stderr)
        return 1

    def run_one(source: str):
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", source],
            capture_output=True,
            text=True,
            cwd=root,
        )
        return source, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, rc, output in pool.map(run_one, sources):
            rel = os.path.relpath(source, root)
            if rc != 0:
                failures += 1
                print(f"clang-tidy: FAIL {rel}")
                print(output)
            else:
                print(f"clang-tidy: ok   {rel}")
    if failures:
        print(f"clang-tidy: {failures}/{len(sources)} TUs with diagnostics",
              file=sys.stderr)
        return 1
    print(f"clang-tidy: OK ({len(sources)} TUs, profile .clang-tidy)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
