#!/usr/bin/env python3
"""dpss-dump: compact live view of a dpss cluster's admin metrics.

Polls each node's /metrics.json (the HTTP admin server started with
--admin-port) and renders a one-screen summary per node:

  * QPS        -- per-second rate of broker.query.count + broker.pss.searches
  * latency    -- p50/p99 of the broker's query/scatter histograms
  * rpc errors -- per-second rates of rpc.retries, rpc.retry_exhausted,
                  rpc.deadline_exceeded
  * top-N      -- the fastest-moving counters since the previous poll

Rates need two samples, so the first refresh shows absolute values and
every later one shows deltas/second. Only the standard library is used.

With --placement the dump switches to each node's /statusz and renders
the membership/placement view instead: per historical the served-segment
count and drain state, per coordinator the leader flag, fencing epoch
and the rebalancer's last-cycle numbers (active/draining nodes,
imbalance, throttled work, cumulative loads/drops/moves). This is the
operator's view while scaling the cluster out or draining nodes (see
README "Scaling the cluster").

With --subscriptions the dump renders each node's standing-query table
from /statusz instead: per realtime host one line per hosted
subscription (id, age, buffer fill %, documents matched, snapshots
sealed/pending, last acked seq), per broker the registered queries with
their age and collected-snapshot counts. This is the operator's live
view of the PR 10 subscription plane (README "Standing subscriptions").

Usage:
    scripts/dpss_dump.py [-i SECONDS] [-n TOP] [--once]
                         [--placement | --subscriptions] HOST:PORT...

HOST:PORT addresses the admin port (not the RPC port); a full URL also
works. --once prints a single absolute snapshot and exits (CI-friendly).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

RATE_COUNTERS = [
    ("qps", ["broker.query.count", "broker.pss.searches"]),
    ("rpc retries/s", ["rpc.retries"]),
    ("rpc exhausted/s", ["rpc.retry_exhausted"]),
    ("rpc deadline/s", ["rpc.deadline_exceeded"]),
]

LATENCY_HISTOGRAMS = [
    "broker.query.ns",
    "broker.scatter.latency_ns",
    "rpc.call.latency_ns",
    "net.server.handle_ns",
]


def metrics_url(target: str) -> str:
    if target.startswith("http://") or target.startswith("https://"):
        return target if target.endswith(".json") else target.rstrip("/") + "/metrics.json"
    return f"http://{target}/metrics.json"


def fetch(url: str, timeout: float):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def metric_key(m: dict) -> str:
    labels = m.get("labels") or {}
    if not labels:
        return m["name"]
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f'{m["name"]}{{{inner}}}'


def flatten(payload: dict) -> dict:
    """{key: metric dict} across every registry the node exposes."""
    out = {}
    for node in payload.get("nodes", []):
        for m in node.get("metrics", []):
            out[metric_key(m)] = m
    return out


def fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.0f}us"
    return f"{ns:.0f}ns"


def render_node(target: str, current: dict, previous: dict,
                elapsed: float, top: int) -> list:
    lines = [f"== {target} =="]

    if previous and elapsed > 0:
        for label, names in RATE_COUNTERS:
            now = sum(m.get("value", 0) for m in current.values()
                      if m.get("kind") == "counter" and m["name"] in names)
            before = sum(m.get("value", 0) for m in previous.values()
                         if m.get("kind") == "counter" and m["name"] in names)
            lines.append(f"  {label:<16} {(now - before) / elapsed:8.1f}")
    else:
        total = sum(m.get("value", 0) for m in current.values()
                    if m.get("kind") == "counter")
        lines.append(f"  counters total   {total:8d}  (rates on next poll)")

    for name in LATENCY_HISTOGRAMS:
        hists = [m for key, m in current.items()
                 if m["name"] == name and m.get("kind") == "histogram"
                 and m.get("count", 0) > 0]
        for m in hists:
            lines.append(
                f"  {metric_key(m):<28} p50 {fmt_ns(m.get('p50', 0)):>8}"
                f"  p99 {fmt_ns(m.get('p99', 0)):>8}"
                f"  n {m.get('count', 0)}"
            )

    movers = []
    for key, m in current.items():
        if m.get("kind") != "counter":
            continue
        delta = m.get("value", 0) - previous.get(key, {}).get("value", 0)
        if delta > 0:
            movers.append((delta, key))
    movers.sort(reverse=True)
    for delta, key in movers[:top]:
        rate = f"{delta / elapsed:.1f}/s" if previous and elapsed > 0 else str(delta)
        lines.append(f"  {key:<44} +{delta} ({rate})")
    return lines


def statusz_url(target: str) -> str:
    if target.startswith("http://") or target.startswith("https://"):
        return target.rstrip("/") + "/statusz"
    return f"http://{target}/statusz"


def render_placement(target: str, status: dict) -> list:
    """One node's /statusz rendered as a placement/membership line set."""
    role = status.get("role", "?")
    name = status.get("node", target)
    lines = [f"== {name} ({role}) @ {target} =="]

    if "served_segments" in status:
        served = status["served_segments"]
        pending = status.get("pending_loads", 0)
        drain = status.get("drain", {})
        state = "serving"
        if drain.get("draining"):
            state = "drain complete" if drain.get("complete") else "draining"
        lines.append(
            f"  segments {len(served):>6}   pending {pending:>4}"
            f"   state {state}"
        )

    if "rebalancer" in status:
        reb = status["rebalancer"]
        leader = "leader" if status.get("leader") else "standby"
        lines.append(
            f"  {leader}  epoch {status.get('epoch', 0)}"
            f"   nodes {reb.get('activeNodes', 0)} active"
            f" / {reb.get('drainingNodes', 0)} draining"
            f"   imbalance {reb.get('imbalance', 0)}"
        )
        lines.append(
            f"  last cycle: moves {reb.get('movesIssued', 0)}"
            f"  throttled moves {reb.get('throttledMoves', 0)}"
            f"  throttled loads {reb.get('throttledLoads', 0)}"
        )
        lines.append(
            f"  cumulative: loads {reb.get('totalLoads', 0)}"
            f"  drops {reb.get('totalDrops', 0)}"
            f"  moves {reb.get('totalMoves', 0)}"
        )
    return lines


def fmt_age(ms: float) -> str:
    if ms >= 3_600_000:
        return f"{ms / 3_600_000:.1f}h"
    if ms >= 60_000:
        return f"{ms / 60_000:.1f}m"
    return f"{ms / 1000:.1f}s"


def render_subscriptions(target: str, status: dict) -> list:
    """One node's /statusz standing-query table."""
    role = status.get("role", "?")
    name = status.get("node", target)
    lines = [f"== {name} ({role}) @ {target} =="]
    subs = status.get("subscriptions")
    if subs is None:
        lines.append("  (no subscription plane on this role)")
        return lines
    if not subs:
        lines.append("  no standing subscriptions")
        return lines

    if role == "broker":
        lines.append(
            f"  {'id':>4}  {'source':<12} {'age':>8} {'snapshots':>10}")
        for s in subs:
            lines.append(
                f"  {s.get('id', 0):>4}  {s.get('doc_source', '?'):<12}"
                f" {fmt_age(s.get('age_ms', 0)):>8}"
                f" {s.get('snapshots_collected', 0):>10}"
            )
        rounds = status.get("subscription_reconcile_rounds")
        if rounds is not None:
            lines.append(f"  reconcile rounds {rounds}")
        return lines

    lines.append(
        f"  {'id':>4} {'state':<7} {'age':>8} {'fill':>5}"
        f" {'docs':>6} {'sealed':>7} {'pending':>8} {'acked':>6}")
    for s in subs:
        state = "active" if s.get("active") else "idle"
        lines.append(
            f"  {s.get('id', 0):>4} {state:<7}"
            f" {fmt_age(s.get('age_ms', 0)):>8}"
            f" {s.get('fill_percent', 0):>4}%"
            f" {s.get('documents_seen', 0):>6}"
            f" {s.get('snapshots_sealed', 0):>7}"
            f" {s.get('pending_snapshots', 0):>8}"
            f" {s.get('acked_seq', 0):>6}"
        )
    return lines


def statusz_screen(urls: dict, timeout: float, title: str,
                   renderer) -> str:
    screen = [time.strftime(f"dpss-dump {title}  %H:%M:%S")]
    for target, url in urls.items():
        try:
            status = fetch(url, timeout)
        except (urllib.error.URLError, OSError, ValueError) as e:
            screen.append(f"== {target} ==\n  unreachable: {e}")
            continue
        screen.extend(renderer(target, status))
    return "\n".join(screen)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("targets", nargs="+", metavar="HOST:PORT",
                        help="admin address of each node to watch")
    parser.add_argument("-i", "--interval", type=float, default=2.0,
                        help="seconds between polls (default 2)")
    parser.add_argument("-n", "--top", type=int, default=8,
                        help="top moving counters to show per node")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit")
    parser.add_argument("--timeout", type=float, default=2.0,
                        help="per-request timeout in seconds")
    parser.add_argument("--placement", action="store_true",
                        help="show the /statusz membership/placement view "
                             "(served counts, drain state, rebalancer)")
    parser.add_argument("--subscriptions", action="store_true",
                        help="show the /statusz standing-subscription view "
                             "(id, age, fill %%, snapshots delivered)")
    args = parser.parse_args()
    if args.placement and args.subscriptions:
        parser.error("--placement and --subscriptions are exclusive")

    if args.placement or args.subscriptions:
        urls = {t: statusz_url(t) for t in args.targets}
        title = "--placement" if args.placement else "--subscriptions"
        renderer = render_placement if args.placement else render_subscriptions
        while True:
            out = statusz_screen(urls, args.timeout, title, renderer)
            if args.once:
                print(out)
                return 0
            sys.stdout.write("\x1b[2J\x1b[H" + out + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)

    urls = {t: metrics_url(t) for t in args.targets}
    previous: dict = {}
    prev_time = 0.0

    while True:
        now = time.monotonic()
        elapsed = now - prev_time if prev_time else 0.0
        screen = [time.strftime("dpss-dump  %H:%M:%S")]
        current_all = {}
        for target, url in urls.items():
            try:
                current = flatten(fetch(url, args.timeout))
            except (urllib.error.URLError, OSError, ValueError) as e:
                screen.append(f"== {target} ==\n  unreachable: {e}")
                continue
            current_all[target] = current
            screen.extend(render_node(target, current,
                                      previous.get(target, {}),
                                      elapsed, args.top))
        out = "\n".join(screen)
        if args.once:
            print(out)
            return 0
        sys.stdout.write("\x1b[2J\x1b[H" + out + "\n")
        sys.stdout.flush()
        previous = current_all
        prev_time = now
        time.sleep(args.interval)


if __name__ == "__main__":
    sys.exit(main())
