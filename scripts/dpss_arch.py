#!/usr/bin/env python3
"""dpss-arch: enforce the source tree's layer DAG and include hygiene.

Six PRs of growth left the architecture implicit; this checker makes it
a declared, machine-enforced contract. The layers under src/ and the
edges each may depend on (includes point DOWN the DAG, never up or
sideways against it):

    common   -> (nothing)          primitives: bytes, rng, clock, errors
    obs      -> common             metrics, tracing, query log
    crypto   -> common, obs        bigint, Paillier, sensitive types
    storage  -> common, obs        segments, bitmaps, deep storage
    pss      -> common, obs, crypto           the search scheme itself
    query    -> common, obs, storage          SQL/scan engine
    cluster  -> everything above              node roles, registry, RPC
    net      -> everything above + cluster    TCP transport, node binary

Checks, all hard errors:

  unknown-layer    -- a file lives under src/<dir>/ for a <dir> not in
                      the declared DAG (new layers are added HERE, with
                      their allowed edges, not by accident).
  layer-violation  -- an #include crosses an edge the DAG does not
                      declare (e.g. crypto including pss/).
  include-cycle    -- the file-level include graph has a cycle. The DAG
                      makes cross-layer cycles impossible; this catches
                      same-layer header cycles too.
  internal-header  -- a header carrying a "// dpss-arch: internal"
                      marker is included from outside its own layer.
                      Layer-public headers need no marker; marking the
                      implementation-detail ones keeps each layer's
                      public surface explicit and small.
  untracked-tu     -- with --compile-commands: a src/ .cc file missing
                      from compile_commands.json, i.e. not built by any
                      CMakeLists — code that silently escapes -Werror,
                      the sanitizers and every other gate.

Usage:
    scripts/dpss_arch.py [--root DIR] [--compile-commands FILE]
    scripts/dpss_arch.py --selftest

The include graph is built from quote-includes resolved against src/
(the repo's one include root; compile_commands.json, when given, is
used for the untracked-tu coverage check). --selftest runs the analyzer
over in-memory trees with a seeded cycle, a seeded layer violation and
friends — wired into ctest as `dpss_arch_selftest`, next to
`dpss_arch_tree` which runs the real src/.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass

# The declared architecture. A new layer (or a new edge) is a deliberate
# one-line change here, reviewed as such.
LAYER_DEPS = {
    "common": frozenset(),
    "obs": frozenset({"common"}),
    "crypto": frozenset({"common", "obs"}),
    "storage": frozenset({"common", "obs"}),
    "pss": frozenset({"common", "obs", "crypto"}),
    "query": frozenset({"common", "obs", "storage"}),
    "cluster": frozenset(
        {"common", "obs", "crypto", "storage", "pss", "query"}
    ),
    "net": frozenset(
        {"common", "obs", "crypto", "storage", "pss", "query", "cluster"}
    ),
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
INTERNAL_RE = re.compile(r"//\s*dpss-arch:\s*internal\b")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def layer_of(relpath: str) -> str | None:
    """src/pss/blocking.h -> "pss"; None for files not under src/."""
    parts = relpath.split("/")
    if len(parts) < 3 or parts[0] != "src":
        return None
    return parts[1]


def parse_includes(text: str):
    """Yields (1-based line, include path) for every quote-include."""
    for i, line in enumerate(text.splitlines(), start=1):
        m = INCLUDE_RE.match(line)
        if m:
            yield i, m.group(1)


class Analyzer:
    """Runs every check over an in-memory {relpath: text} tree, so the
    selftest can seed violations without touching the filesystem."""

    def __init__(self, files: dict):
        self.files = files
        self.findings: list = []
        # file -> [(line, resolved include relpath)]
        self.edges: dict = {}

    def resolve(self, include: str) -> str | None:
        """Quote-includes resolve against src/ (the repo's include
        root). Unresolvable paths are system/third-party headers."""
        candidate = "src/" + include
        return candidate if candidate in self.files else None

    def run(self) -> list:
        for relpath in sorted(self.files):
            self.check_file(relpath)
        self.check_cycles()
        self.check_internal_headers()
        return self.findings

    def check_file(self, relpath: str):
        layer = layer_of(relpath)
        if layer is None:
            return  # not under src/; nothing to pin
        if layer not in LAYER_DEPS:
            self.findings.append(
                Finding(
                    relpath,
                    1,
                    "unknown-layer",
                    f'directory "src/{layer}/" is not a declared layer; '
                    "add it (and its allowed edges) to LAYER_DEPS in "
                    "scripts/dpss_arch.py",
                )
            )
            return
        edges = []
        for line, include in parse_includes(self.files[relpath]):
            target = self.resolve(include)
            if target is None:
                continue
            edges.append((line, target))
            target_layer = layer_of(target)
            if target_layer is None or target_layer == layer:
                continue
            if target_layer not in LAYER_DEPS.get(layer, frozenset()):
                self.findings.append(
                    Finding(
                        relpath,
                        line,
                        "layer-violation",
                        f'layer "{layer}" must not include "{include}" '
                        f'(layer "{target_layer}"); allowed: '
                        f"{sorted(LAYER_DEPS[layer]) or 'none'}",
                    )
                )
        self.edges[relpath] = edges

    def check_cycles(self):
        """Iterative Tarjan SCC over the file-level include graph; any
        component with more than one file (or a self-include) is a
        cycle. Reported once per component, on its first file."""
        graph = {
            path: [t for (_line, t) in edges if t in self.edges]
            for path, edges in self.edges.items()
        }
        index: dict = {}
        lowlink: dict = {}
        on_stack: set = set()
        stack: list = []
        counter = [0]
        sccs = []

        for start in sorted(graph):
            if start in index:
                continue
            work = [(start, iter(graph[start]))]
            index[start] = lowlink[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(graph[succ])))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    sccs.append(sorted(component))

        for component in sccs:
            is_cycle = len(component) > 1 or any(
                member in graph[member] for member in component
            )
            if is_cycle:
                self.findings.append(
                    Finding(
                        component[0],
                        1,
                        "include-cycle",
                        "include cycle: " + " -> ".join(component),
                    )
                )

    def check_internal_headers(self):
        internal = {
            path
            for path, text in self.files.items()
            if path.endswith(".h") and INTERNAL_RE.search(text)
        }
        if not internal:
            return
        for relpath, edges in sorted(self.edges.items()):
            layer = layer_of(relpath)
            for line, target in edges:
                if target in internal and layer_of(target) != layer:
                    self.findings.append(
                        Finding(
                            relpath,
                            line,
                            "internal-header",
                            f"{target} is marked dpss-arch: internal; "
                            f'only layer "{layer_of(target)}" may '
                            "include it",
                        )
                    )

    def classification(self) -> dict:
        """Per-header public/internal classification: a header is
        internal when marked, public otherwise."""
        return {
            path: (
                "internal" if INTERNAL_RE.search(text) else "public"
            )
            for path, text in sorted(self.files.items())
            if path.endswith(".h")
        }


def load_tree(root: str) -> dict:
    files = {}
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            full = os.path.join(dirpath, name)
            relpath = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as fh:
                files[relpath] = fh.read()
    return files


def check_compile_db(root: str, db_path: str, files: dict) -> list:
    """Every src/ .cc must be built by some CMake target: a TU missing
    from compile_commands.json escapes -Werror and every sanitizer."""
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    tracked = set()
    for entry in entries:
        full = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"])
        )
        tracked.add(os.path.relpath(full, root).replace(os.sep, "/"))
    findings = []
    for relpath in sorted(files):
        if relpath.endswith(".cc") and relpath not in tracked:
            findings.append(
                Finding(
                    relpath,
                    1,
                    "untracked-tu",
                    "not in compile_commands.json — this TU is built by "
                    "no CMake target and escapes -Werror/sanitizers",
                )
            )
    return findings


# --- selftest -------------------------------------------------------------

CLEAN_TREE = {
    "src/common/bytes.h": "#pragma once\n",
    "src/obs/metrics.h": '#include "common/bytes.h"\n',
    "src/crypto/paillier.h": '#include "obs/metrics.h"\n',
    "src/pss/searcher.h": '#include "crypto/paillier.h"\n',
    "src/pss/searcher.cc": '#include "pss/searcher.h"\n',
    "src/cluster/broker.cc": '#include "pss/searcher.h"\n',
    "src/net/server.cc": '#include "cluster/broker.cc"\n',
}

SELFTEST_CASES = [
    # (name, expected rule set, tree)
    ("clean", set(), CLEAN_TREE),
    (
        "seeded-layer-violation",  # crypto reaching UP into pss
        {"layer-violation"},
        {
            **CLEAN_TREE,
            "src/crypto/bad.cc": '#include "pss/searcher.h"\n',
        },
    ),
    (
        "seeded-cycle",
        {"include-cycle"},
        {
            **CLEAN_TREE,
            "src/pss/a.h": '#include "pss/b.h"\n',
            "src/pss/b.h": '#include "pss/a.h"\n',
        },
    ),
    (
        "self-include-cycle",
        {"include-cycle"},
        {**CLEAN_TREE, "src/pss/self.h": '#include "pss/self.h"\n'},
    ),
    (
        "unknown-layer",
        {"unknown-layer"},
        {**CLEAN_TREE, "src/gateway/front.cc": "int x;\n"},
    ),
    (
        "internal-header-crossing",
        {"internal-header"},
        {
            **CLEAN_TREE,
            "src/storage/detail.h": "// dpss-arch: internal\n",
            "src/query/engine.cc": '#include "storage/detail.h"\n',
        },
    ),
    (
        "internal-header-same-layer-ok",
        set(),
        {
            **CLEAN_TREE,
            "src/storage/detail.h": "// dpss-arch: internal\n",
            "src/storage/segment.cc": '#include "storage/detail.h"\n',
        },
    ),
    (
        "sideways-violation",  # storage and crypto are siblings
        {"layer-violation"},
        {
            **CLEAN_TREE,
            "src/storage/bad.cc": '#include "crypto/paillier.h"\n',
        },
    ),
    (
        "system-includes-ignored",
        set(),
        {**CLEAN_TREE, "src/common/x.cc": "#include <vector>\n"},
    ),
]


def selftest() -> int:
    failures = 0
    for name, expected, tree in SELFTEST_CASES:
        found = {f.rule for f in Analyzer(dict(tree)).run()}
        if found != expected:
            print(
                f"selftest FAIL: {name}: expected "
                f"{sorted(expected) or 'clean'}, found "
                f"{sorted(found) or 'clean'}"
            )
            failures += 1
    # The classification surface: marked headers are internal.
    tree = {
        **CLEAN_TREE,
        "src/storage/detail.h": "// dpss-arch: internal\n",
    }
    cls = Analyzer(dict(tree)).classification()
    if cls.get("src/storage/detail.h") != "internal" or (
        cls.get("src/common/bytes.h") != "public"
    ):
        print(f"selftest FAIL: classification wrong: {cls}")
        failures += 1
    if failures == 0:
        print(f"selftest OK ({len(SELFTEST_CASES)} trees)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing scripts/)",
    )
    parser.add_argument(
        "--compile-commands",
        metavar="FILE",
        help="compile_commands.json for the untracked-tu coverage check "
        "(default: <root>/build/compile_commands.json when present)",
    )
    parser.add_argument(
        "--no-compile-commands",
        action="store_true",
        help="skip the compile_commands coverage check (for pre-build runs "
        "where build/ may hold a stale database)",
    )
    parser.add_argument(
        "--classify",
        action="store_true",
        help="print the per-header public/internal classification",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the analyzer over seeded in-memory trees and exit",
    )
    args = parser.parse_args()

    if args.selftest:
        return selftest()

    files = load_tree(args.root)
    analyzer = Analyzer(files)
    findings = analyzer.run()

    db_path = args.compile_commands or os.path.join(
        args.root, "build", "compile_commands.json"
    )
    db_checked = not args.no_compile_commands and os.path.exists(db_path)
    if db_checked:
        findings.extend(check_compile_db(args.root, db_path, files))

    if args.classify:
        for path, kind in analyzer.classification().items():
            print(f"{kind:8} {path}")

    for f in findings:
        print(f.render())
    if findings:
        print(f"dpss-arch: {len(findings)} violation(s) in {len(files)} files")
        return 1
    suffix = "with" if db_checked else "without"
    print(
        f"dpss-arch: OK ({len(files)} files, "
        f"{sum(len(e) for e in analyzer.edges.values())} include edges, "
        f"{suffix} compile_commands coverage)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
