#include "common/interval.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace dpss {

Interval::Interval(TimeMs start, TimeMs end) : start_(start), end_(end) {
  DPSS_CHECK_MSG(start <= end, "interval start must be <= end");
}

Interval Interval::intersect(const Interval& other) const {
  const TimeMs s = std::max(start_, other.start_);
  const TimeMs e = std::min(end_, other.end_);
  if (s >= e) return Interval(s, s);
  return Interval(s, e);
}

std::string Interval::toString() const {
  std::ostringstream os;
  os << "[" << start_ << "," << end_ << ")";
  return os.str();
}

}  // namespace dpss
