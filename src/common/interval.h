// Half-open time interval [start, end) in epoch milliseconds.
//
// Segments (paper §III) are keyed by the time interval of the data they
// hold; the broker's timeline and all query routing reason in intervals.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace dpss {

class Interval {
 public:
  /// Empty interval at time zero.
  constexpr Interval() = default;

  /// [start, end); requires start <= end (start == end is the empty interval).
  Interval(TimeMs start, TimeMs end);

  constexpr TimeMs start() const { return start_; }
  constexpr TimeMs end() const { return end_; }
  constexpr TimeMs durationMs() const { return end_ - start_; }
  constexpr bool empty() const { return start_ == end_; }

  /// True if `t` lies inside [start, end).
  constexpr bool contains(TimeMs t) const { return t >= start_ && t < end_; }

  /// True if `other` is fully inside this interval.
  constexpr bool contains(const Interval& other) const {
    return other.start_ >= start_ && other.end_ <= end_;
  }

  /// True if the two intervals share at least one instant.
  constexpr bool overlaps(const Interval& other) const {
    return start_ < other.end_ && other.start_ < end_;
  }

  /// Intersection; empty interval (at the overlap point) when disjoint.
  Interval intersect(const Interval& other) const;

  /// "[start,end)" — for logs and segment identifiers.
  std::string toString() const;

  friend constexpr bool operator==(const Interval& a, const Interval& b) {
    return a.start_ == b.start_ && a.end_ == b.end_;
  }
  /// Orders by start, then end; gives timelines a natural sort.
  friend constexpr bool operator<(const Interval& a, const Interval& b) {
    return a.start_ != b.start_ ? a.start_ < b.start_ : a.end_ < b.end_;
  }

 private:
  TimeMs start_ = 0;
  TimeMs end_ = 0;
};

}  // namespace dpss
