#include "common/bytes.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace dpss {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::str(std::string_view s) {
  varint(s.size());
  out_.append(s);
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw CorruptData("byte reader overrun: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  return static_cast<std::uint16_t>(lo | (u8() << 8));
}

std::uint32_t ByteReader::u32() {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw CorruptData("varint too long");
    const std::uint8_t b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t ByteReader::svarint() {
  const std::uint64_t z = varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::string ByteReader::str() {
  const std::uint64_t n = varint();
  need(n);
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

std::string_view ByteReader::raw(std::size_t n) {
  need(n);
  std::string_view s = data_.substr(pos_, n);
  pos_ += n;
  return s;
}

}  // namespace dpss
