#include "common/thread_pool.h"

#include "common/error.h"

namespace dpss {

ThreadPool::ThreadPool(std::size_t threads) {
  DPSS_CHECK_MSG(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    queue_.clear();
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) cv_.wait(mu_);
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace dpss
