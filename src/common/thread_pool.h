// Fixed-size thread pool.
//
// The paper's concurrency model is "one thread scans a segment" with a
// bounded number of worker threads per node (15 in their test config).
// Each compute node owns a ThreadPool of that size; the natural idle-tail
// when (segments mod threads) is small is what Figure 5 attributes the
// sub-linear region to, and falls out of this design unmodified.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace dpss {

class ThreadPool {
 public:
  /// Starts `threads` workers immediately. threads >= 1.
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: pending tasks are abandoned, running tasks joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>>
      DPSS_EXCLUDES(mu_) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerLoop() DPSS_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ DPSS_GUARDED_BY(mu_);
  bool stopping_ DPSS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written only in the constructor
};

}  // namespace dpss
