// Fixed-size thread pool.
//
// The paper's concurrency model is "one thread scans a segment" with a
// bounded number of worker threads per node (15 in their test config).
// Each compute node owns a ThreadPool of that size; the natural idle-tail
// when (segments mod threads) is small is what Figure 5 attributes the
// sub-linear region to, and falls out of this design unmodified.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dpss {

class ThreadPool {
 public:
  /// Starts `threads` workers immediately. threads >= 1.
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: pending tasks are abandoned, running tasks joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future reports its result or exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dpss
