// Error types and checking macros used across dpss.
//
// Following the C++ Core Guidelines (E.2, E.14) we use exceptions for
// error handling, with a small hierarchy rooted at dpss::Error so callers
// can distinguish subsystem failures when they care and catch the root
// when they do not.
#pragma once

#include <stdexcept>
#include <string>

namespace dpss {

/// Root of all dpss exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user input: malformed query, bad parameter, out-of-range value.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A referenced entity (segment, znode, topic, blob) does not exist.
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// An entity that must not exist already does (znode create, topic create).
class AlreadyExists : public Error {
 public:
  explicit AlreadyExists(const std::string& what) : Error(what) {}
};

/// Data failed to decode: corrupt segment blob, bad magic, short buffer.
class CorruptData : public Error {
 public:
  explicit CorruptData(const std::string& what) : Error(what) {}
};

/// Cryptographic failure: key mismatch, non-invertible element, bad key size.
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error(what) {}
};

/// The operation is valid but the component cannot serve it right now
/// (node stopped, session expired, all replicas lost).
class Unavailable : public Error {
 public:
  explicit Unavailable(const std::string& what) : Error(what) {}
};

/// An RPC deadline elapsed before the call could complete. Subclass of
/// Unavailable so existing replica-failover paths treat it as a node
/// loss, while callers that care can distinguish it.
class DeadlineExceeded : public Unavailable {
 public:
  explicit DeadlineExceeded(const std::string& what) : Unavailable(what) {}
};

/// A write carrying a stale leadership epoch was rejected by the
/// authority (epoch fencing). Deliberately NOT a subclass of Unavailable:
/// retrying cannot help — the writer has been deposed and must stand down
/// and re-elect, so rpc retry policies must surface this immediately.
class Fenced : public Error {
 public:
  explicit Fenced(const std::string& what) : Error(what) {}
};

/// Internal invariant violation; indicates a dpss bug, not user error.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwCheckFailure(const char* expr, const char* file,
                                    int line, const std::string& msg);
}  // namespace detail

}  // namespace dpss

/// Runtime invariant check that stays on in release builds. Throws
/// dpss::InternalError with location info on failure.
#define DPSS_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::dpss::detail::throwCheckFailure(#expr, __FILE__, __LINE__, ""); \
    }                                                                   \
  } while (false)

/// Like DPSS_CHECK but with an extra message (anything streamable to
/// std::string via operator+ is overkill; we take a std::string).
#define DPSS_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::dpss::detail::throwCheckFailure(#expr, __FILE__, __LINE__, msg);  \
    }                                                                     \
  } while (false)
