#include "common/clock.h"

#include <chrono>
#include <thread>

#include "common/error.h"

namespace dpss {

TimeMs SystemClock::nowMs() const {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

void SystemClock::sleepFor(TimeMs ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

SystemClock& SystemClock::instance() {
  static SystemClock clock;
  return clock;
}

TimeMs ManualClock::nowMs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

void ManualClock::sleepFor(TimeMs ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const TimeMs deadline = now_ + ms;
  ++sleepers_;
  cv_.wait(lock, [&] { return now_ >= deadline; });
  --sleepers_;
}

std::size_t ManualClock::sleeperCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sleepers_;
}

void ManualClock::advance(TimeMs delta) {
  DPSS_CHECK_MSG(delta >= 0, "manual clock cannot move backwards");
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += delta;
  }
  cv_.notify_all();
}

void ManualClock::set(TimeMs t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DPSS_CHECK_MSG(t >= now_, "manual clock cannot move backwards");
    now_ = t;
  }
  cv_.notify_all();
}

}  // namespace dpss
