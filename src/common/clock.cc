#include "common/clock.h"

#include <chrono>
#include <thread>

#include "common/error.h"

namespace dpss {

TimeMs SystemClock::nowMs() const {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

void SystemClock::sleepFor(TimeMs ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

SystemClock& SystemClock::instance() {
  static SystemClock clock;
  return clock;
}

TimeMs ManualClock::nowMs() const {
  MutexLock lock(mu_);
  return now_;
}

void ManualClock::sleepFor(TimeMs ms) {
  MutexLock lock(mu_);
  const TimeMs deadline = now_ + ms;
  ++sleepers_;
  while (now_ < deadline) cv_.wait(mu_);
  --sleepers_;
}

std::size_t ManualClock::sleeperCount() const {
  MutexLock lock(mu_);
  return sleepers_;
}

void ManualClock::advance(TimeMs delta) {
  DPSS_CHECK_MSG(delta >= 0, "manual clock cannot move backwards");
  {
    MutexLock lock(mu_);
    now_ += delta;
  }
  cv_.notify_all();
}

void ManualClock::set(TimeMs t) {
  {
    MutexLock lock(mu_);
    DPSS_CHECK_MSG(t >= now_, "manual clock cannot move backwards");
    now_ = t;
  }
  cv_.notify_all();
}

}  // namespace dpss
