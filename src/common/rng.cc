#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/hash.h"

namespace dpss {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion of the seed, per the xoshiro authors' advice.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x = mix64(x);
    s = x | 1;  // avoid the all-zero state
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  DPSS_CHECK_MSG(bound > 0, "Rng::below requires bound > 0");
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  DPSS_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  DPSS_CHECK_MSG(n >= 1, "Zipf needs at least one category");
  DPSS_CHECK_MSG(s > 0, "Zipf exponent must be positive");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace dpss
