#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dpss {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mu;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logLine(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mu);
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

}  // namespace dpss
