#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "common/thread_annotations.h"

namespace dpss {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mu;
thread_local std::string t_nodeName;
thread_local std::uint64_t t_traceId = 0;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void setLogNodeName(const std::string& name) { t_nodeName = name; }
void setLogTraceId(std::uint64_t traceId) { t_traceId = traceId; }

void logLine(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;

  // dpss-lint: allow(wall-clock) log timestamps are cosmetic, never used
  // for scheduling or determinism-sensitive decisions.
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);

  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%02d:%02d:%02d.%03d]", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));

  MutexLock lock(g_mu);
  std::fprintf(stderr, "%s [%s]", prefix, levelName(level));
  if (!t_nodeName.empty()) std::fprintf(stderr, " [%s]", t_nodeName.c_str());
  if (t_traceId != 0) {
    std::fprintf(stderr, " [trace=%016llx]",
                 static_cast<unsigned long long>(t_traceId));
  }
  std::fprintf(stderr, " %s\n", message.c_str());
}

}  // namespace dpss
