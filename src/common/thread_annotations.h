// Clang thread-safety annotations and the annotated mutex wrapper every
// concurrent class in dpss locks through.
//
// The annotations make the locking discipline a compile-time contract:
// members declare which mutex guards them (DPSS_GUARDED_BY), private
// helpers declare the lock they expect held (DPSS_REQUIRES), and clang's
// -Wthread-safety analysis rejects any access that violates the
// declaration. Build with -DDPSS_THREAD_SAFETY=ON under clang to promote
// the analysis to -Werror=thread-safety (see scripts/check.sh and the CI
// matrix); under gcc the attributes expand to nothing and the wrappers
// behave exactly like std::mutex / std::lock_guard /
// std::condition_variable_any.
//
// The std types are NOT annotated by libstdc++, so locking a raw
// std::mutex is invisible to the analysis — that is why Mutex / MutexLock
// / CondVar below exist, and why dpss code uses them instead.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DPSS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DPSS_THREAD_ANNOTATION
#define DPSS_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Declares a class to be a lockable capability ("mutex", "role", ...).
#define DPSS_CAPABILITY(x) DPSS_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define DPSS_SCOPED_CAPABILITY DPSS_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be accessed while holding the given mutex.
#define DPSS_GUARDED_BY(x) DPSS_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be accessed while holding the given mutex.
#define DPSS_PT_GUARDED_BY(x) DPSS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed mutexes to be held on entry (and does not
/// release them).
#define DPSS_REQUIRES(...) \
  DPSS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be called with the listed mutexes held (it acquires
/// them itself; calling with them held would self-deadlock).
#define DPSS_EXCLUDES(...) DPSS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the listed mutexes and holds them on return.
#define DPSS_ACQUIRE(...) \
  DPSS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed mutexes (held on entry).
#define DPSS_RELEASE(...) \
  DPSS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define DPSS_TRY_ACQUIRE(...) \
  DPSS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define DPSS_RETURN_CAPABILITY(x) DPSS_THREAD_ANNOTATION(lock_returned(x))

/// Declares lock-acquisition order on a mutex member: this mutex is
/// always taken before (respectively after) the listed ones. Documents
/// the cluster's node-mutex → registry-mutex order and lets clang's
/// -Wthread-safety-beta flag inversions; the non-beta analysis (what CI
/// runs as -Werror) parses but does not yet enforce these, so the
/// annotations are forward-compatible documentation with teeth pending.
#define DPSS_ACQUIRED_BEFORE(...) \
  DPSS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DPSS_ACQUIRED_AFTER(...) \
  DPSS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define DPSS_ASSERT_CAPABILITY(x) \
  DPSS_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch for patterns the analysis cannot express. Every use needs
/// a comment justifying why the access is safe.
#define DPSS_NO_THREAD_SAFETY_ANALYSIS \
  DPSS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dpss {

/// std::mutex with the capability annotations the analysis needs.
/// Satisfies Lockable, so it also works with std::unique_lock and
/// std::condition_variable_any where those are unavoidable.
class DPSS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DPSS_ACQUIRE() { mu_.lock(); }
  void unlock() DPSS_RELEASE() { mu_.unlock(); }
  bool try_lock() DPSS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex — the annotated std::lock_guard.
class DPSS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DPSS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DPSS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting directly on Mutex. wait() atomically
/// releases and reacquires the mutex internally; to the analysis the lock
/// is held across the call, which matches what the caller observes.
/// Predicates go in the caller as explicit `while (!cond) cv.wait(mu);`
/// loops so guarded reads stay inside the annotated function body.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) DPSS_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dpss
