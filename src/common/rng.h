// Deterministic pseudo-random generation for workloads and internals.
//
// Xoshiro256** core plus the distributions the benchmarks need. The data
// generator uses a Zipf sampler to reproduce the paper's "cardinalities
// range from double digits to tens of millions" dimension skew.
#pragma once

#include <cstdint>
#include <vector>

namespace dpss {

/// Xoshiro256** — fast, high-quality, seedable, copyable. Satisfies
/// UniformRandomBitGenerator so it also plugs into <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli with probability p.
  bool chance(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over {0, ..., n-1} using precomputed CDF; O(log n) draw.
class ZipfDistribution {
 public:
  /// n >= 1; exponent s > 0 (s≈1 gives classic web-like skew).
  ZipfDistribution(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dpss
