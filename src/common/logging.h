// Minimal leveled logger. Nodes log lifecycle events (segment loads,
// handoffs, coordinator decisions); tests run at Warn to stay quiet.
//
// Each line carries a wall-clock timestamp plus two optional thread-local
// prefixes so multi-node (in-process) logs interleave legibly:
//   [12:34:56.789] [INFO] [historical-0] [trace=1a2b3c4d5e6f7788] message
// The node name is installed by obs::ScopedRegistry around RPC handlers
// and pool tasks; the trace id by obs::TraceScope / obs::SpanGuard, so log
// lines correlate directly with the spans of the query that emitted them.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace dpss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum level (default: Warn).
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Sets this thread's node-name prefix ("" clears it). Typically managed
/// by obs::ScopedRegistry rather than called directly.
void setLogNodeName(const std::string& name);

/// Sets this thread's trace-id prefix (0 clears it). Managed by
/// obs::TraceScope / obs::SpanGuard.
void setLogTraceId(std::uint64_t traceId);

/// Emits one line to stderr if `level` passes the threshold. Thread-safe.
void logLine(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { logLine(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dpss

#define DPSS_LOG(level) \
  ::dpss::detail::LogMessage(::dpss::LogLevel::k##level)
