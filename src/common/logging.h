// Minimal leveled logger. Nodes log lifecycle events (segment loads,
// handoffs, coordinator decisions); tests run at Warn to stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace dpss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the process-wide minimum level (default: Warn).
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one line to stderr if `level` passes the threshold. Thread-safe.
void logLine(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { logLine(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dpss

#define DPSS_LOG(level) \
  ::dpss::detail::LogMessage(::dpss::LogLevel::k##level)
