// Time source abstraction.
//
// Every time-dependent component in dpss (real-time node persist periods,
// window-time handoff, coordinator cycles, caches) takes a Clock&, so tests
// drive them deterministically with ManualClock instead of sleeping.
#pragma once

#include <cstdint>

#include "common/thread_annotations.h"

namespace dpss {

/// Milliseconds since the epoch (the paper's data model keys rows and
/// segment intervals by millisecond timestamps).
using TimeMs = std::int64_t;

/// Abstract monotone-enough time source.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in milliseconds since epoch.
  virtual TimeMs nowMs() const = 0;

  /// Blocks the calling thread for roughly `ms` of this clock's time.
  /// ManualClock returns as soon as the clock is advanced past the deadline.
  virtual void sleepFor(TimeMs ms) = 0;
};

/// Wall-clock time. Suitable for examples and benches.
class SystemClock final : public Clock {
 public:
  TimeMs nowMs() const override;
  void sleepFor(TimeMs ms) override;

  /// Process-wide instance (stateless, so sharing is safe).
  static SystemClock& instance();
};

/// Deterministic, manually advanced clock for tests. Thread-safe: worker
/// threads may block in sleepFor() while the test thread advances time.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeMs start = 0) : now_(start) {}

  TimeMs nowMs() const override;
  void sleepFor(TimeMs ms) override;

  /// Moves time forward and wakes all sleepers whose deadline passed.
  void advance(TimeMs delta);

  /// Jumps to an absolute time (must not move backwards).
  void set(TimeMs t);

  /// Number of threads currently blocked in sleepFor(). Lets tests
  /// synchronize with a sleeper deterministically before advancing.
  std::size_t sleeperCount() const;

 private:
  mutable Mutex mu_;
  CondVar cv_;
  TimeMs now_ DPSS_GUARDED_BY(mu_);
  std::size_t sleepers_ DPSS_GUARDED_BY(mu_) = 0;
};

}  // namespace dpss
