#include "common/error.h"

#include <sstream>

namespace dpss::detail {

void throwCheckFailure(const char* expr, const char* file, int line,
                       const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace dpss::detail
