// Byte-level serialization used by the segment codec, deep storage blobs,
// and the in-process transport. Little-endian fixed-width integers plus
// LEB128-style varints; all reads bounds-checked (CorruptData on overrun).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dpss {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);

  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  /// Zig-zag signed LEB128.
  void svarint(std::int64_t v);

  /// varint length prefix + raw bytes.
  void str(std::string_view s);
  /// Raw bytes, no prefix.
  void raw(std::string_view s) { out_.append(s); }

  const std::string& data() const { return out_; }
  std::string take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();

  std::uint64_t varint();
  std::int64_t svarint();

  std::string str();
  /// Reads exactly n raw bytes.
  std::string_view raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

namespace detail {
/// Storage-only base so OwnedByteReader's string outlives the ByteReader
/// view constructed over it (bases initialize in declaration order).
struct OwnedBytes {
  explicit OwnedBytes(std::string data) : owned(std::move(data)) {}
  std::string owned;
};
}  // namespace detail

/// ByteReader over bytes it owns. ByteReader itself is a non-owning view,
/// so `ByteReader r(call(...))` silently reads a destroyed temporary; use
/// this wherever the backing string is an rvalue (RPC responses).
class OwnedByteReader : private detail::OwnedBytes, public ByteReader {
 public:
  explicit OwnedByteReader(std::string data)
      : detail::OwnedBytes(std::move(data)), ByteReader(owned) {}
};

}  // namespace dpss
