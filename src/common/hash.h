// Non-cryptographic hashing primitives.
//
// Used for dictionary/bitmap internals, result-cache fingerprints, the
// Bloom-filter hash family of the matching-indices buffer, and the keyed
// PRF g(i, j) of the private search scheme (see crypto/prf.h for the
// query-facing wrappers).
#pragma once

#include <cstdint>
#include <string_view>

namespace dpss {

/// SplitMix64 finalizer: a strong 64-bit mixing function. Deterministic
/// across platforms, which the PSS reconstruction relies on (client and
/// broker must evaluate the identical function).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one (order-sensitive).
constexpr std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// FNV-1a over bytes; stable across platforms.
constexpr std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Hash of a string with a seed, for seeded hash families.
constexpr std::uint64_t seededHash(std::uint64_t seed, std::string_view bytes) {
  return hashCombine(seed, fnv1a(bytes));
}

}  // namespace dpss
