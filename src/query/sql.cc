#include "query/sql.h"

#include <cctype>
#include <limits>
#include <vector>

#include "common/error.h"

namespace dpss::query {

namespace {

enum class Tok {
  kIdent,
  kNumber,
  kString,
  kComma,
  kLParen,
  kRParen,
  kStar,
  kEq,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;       // identifier (lowercased) / literal value
  std::int64_t number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view sql) : sql_(sql) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw InvalidArgument("SQL error at position " +
                          std::to_string(current_.pos) + ": " + message);
  }

 private:
  void advance() {
    while (pos_ < sql_.size() &&
           std::isspace(static_cast<unsigned char>(sql_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= sql_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    const char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
              sql_[pos_] == '_')) {
        ident.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(sql_[pos_]))));
        ++pos_;
      }
      current_.kind = Tok::kIdent;
      current_.text = std::move(ident);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      std::size_t end = pos_ + 1;
      while (end < sql_.size() &&
             std::isdigit(static_cast<unsigned char>(sql_[end]))) {
        ++end;
      }
      current_.kind = Tok::kNumber;
      current_.number = std::stoll(std::string(sql_.substr(pos_, end - pos_)));
      pos_ = end;
      return;
    }
    if (c == '\'') {
      std::string value;
      ++pos_;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') {
        value.push_back(sql_[pos_++]);
      }
      if (pos_ >= sql_.size()) {
        throw InvalidArgument("SQL error: unterminated string literal");
      }
      ++pos_;  // closing quote
      current_.kind = Tok::kString;
      current_.text = std::move(value);
      return;
    }
    ++pos_;
    switch (c) {
      case ',': current_.kind = Tok::kComma; return;
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '*': current_.kind = Tok::kStar; return;
      case '=': current_.kind = Tok::kEq; return;
      case '<':
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          ++pos_;
          current_.kind = Tok::kLe;
        } else {
          current_.kind = Tok::kLt;
        }
        return;
      case '>':
        if (pos_ < sql_.size() && sql_[pos_] == '=') {
          ++pos_;
          current_.kind = Tok::kGe;
        } else {
          current_.kind = Tok::kGt;
        }
        return;
      default:
        throw InvalidArgument(std::string("SQL error: unexpected char '") +
                              c + "'");
    }
  }

  std::string_view sql_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view sql) : lex_(sql) {}

  QuerySpec parse() {
    expectKeyword("select");
    parseSelects();
    expectKeyword("from");
    spec_.dataSource = expectIdent("table name");
    TimeMs lo = std::numeric_limits<TimeMs>::min() / 2;
    TimeMs hi = std::numeric_limits<TimeMs>::max() / 2;
    std::vector<FilterPtr> predicates;
    if (acceptKeyword("where")) {
      parsePredicate(lo, hi, predicates);
      while (acceptKeyword("and")) parsePredicate(lo, hi, predicates);
    }
    spec_.interval = Interval(lo, hi);
    if (predicates.size() == 1) {
      spec_.filter = predicates.front();
    } else if (predicates.size() > 1) {
      spec_.filter = andFilter(std::move(predicates));
    }
    if (acceptKeyword("group")) {
      expectKeyword("by");
      spec_.groupByDimension = expectIdent("group-by dimension");
    }
    if (acceptKeyword("order")) {
      expectKeyword("by");
      spec_.orderBy = expectIdent("order-by output name");
      acceptKeyword("desc");  // descending is the only (and default) order
    }
    if (acceptKeyword("limit")) {
      const Token t = lex_.take();
      if (t.kind != Tok::kNumber || t.number < 0) {
        lex_.fail("LIMIT expects a non-negative number");
      }
      spec_.limit = static_cast<std::size_t>(t.number);
    }
    if (lex_.peek().kind != Tok::kEnd) lex_.fail("trailing input");
    if (!spec_.orderBy.empty()) {
      bool known = false;
      for (const auto& a : spec_.aggregations) {
        known |= (a.outputName == spec_.orderBy);
      }
      if (!known) lex_.fail("ORDER BY references unknown output column");
    }
    return std::move(spec_);
  }

 private:
  bool acceptKeyword(std::string_view kw) {
    if (lex_.peek().kind == Tok::kIdent && lex_.peek().text == kw) {
      lex_.take();
      return true;
    }
    return false;
  }

  void expectKeyword(std::string_view kw) {
    if (!acceptKeyword(kw)) {
      lex_.fail("expected keyword '" + std::string(kw) + "'");
    }
  }

  std::string expectIdent(const std::string& what) {
    const Token t = lex_.take();
    if (t.kind != Tok::kIdent) lex_.fail("expected " + what);
    return t.text;
  }

  void expect(Tok kind, const std::string& what) {
    if (lex_.take().kind != kind) lex_.fail("expected " + what);
  }

  void parseSelects() {
    do {
      parseSelect();
    } while (lex_.peek().kind == Tok::kComma && (lex_.take(), true));
  }

  void parseSelect() {
    const std::string fn = expectIdent("aggregate function");
    expect(Tok::kLParen, "'('");
    AggregatorSpec agg;
    if (fn == "count") {
      expect(Tok::kStar, "'*'");
      agg = countAgg("cnt");
    } else {
      const std::string metric = expectIdent("metric name");
      if (fn == "sum") {
        agg = doubleSumAgg(metric);
      } else if (fn == "min") {
        agg = minAgg(metric);
      } else if (fn == "max") {
        agg = maxAgg(metric);
      } else if (fn == "avg") {
        agg = avgAgg(metric);
      } else {
        lex_.fail("unknown aggregate function '" + fn + "'");
      }
    }
    expect(Tok::kRParen, "')'");
    if (acceptKeyword("as")) {
      agg.outputName = expectIdent("output alias");
    }
    for (const auto& existing : spec_.aggregations) {
      if (existing.outputName == agg.outputName) {
        lex_.fail("duplicate output column '" + agg.outputName + "'");
      }
    }
    spec_.aggregations.push_back(std::move(agg));
  }

  void parsePredicate(TimeMs& lo, TimeMs& hi,
                      std::vector<FilterPtr>& predicates) {
    const std::string column = expectIdent("column name");
    if (column == "timestamp") {
      const Token op = lex_.take();
      const Token val = lex_.take();
      if (val.kind != Tok::kNumber) lex_.fail("timestamp bound must be a number");
      switch (op.kind) {
        case Tok::kGt: lo = std::max(lo, val.number + 1); break;
        case Tok::kGe: lo = std::max(lo, val.number); break;
        case Tok::kLt: hi = std::min(hi, val.number); break;
        case Tok::kLe: hi = std::min(hi, val.number + 1); break;
        default: lex_.fail("timestamp supports only < <= > >=");
      }
      if (lo > hi) hi = lo;  // empty range rather than invalid interval
      return;
    }
    if (acceptKeyword("in")) {
      expect(Tok::kLParen, "'('");
      std::vector<std::string> values;
      for (;;) {
        const Token v = lex_.take();
        if (v.kind != Tok::kString) lex_.fail("IN expects string literals");
        values.push_back(v.text);
        if (lex_.peek().kind == Tok::kComma) {
          lex_.take();
          continue;
        }
        break;
      }
      expect(Tok::kRParen, "')'");
      predicates.push_back(inFilter(column, std::move(values)));
      return;
    }
    expect(Tok::kEq, "'=' or IN");
    const Token v = lex_.take();
    if (v.kind != Tok::kString) lex_.fail("dimension value must be a string");
    predicates.push_back(selectorFilter(column, v.text));
  }

  Lexer lex_;
  QuerySpec spec_;
};

}  // namespace

QuerySpec parseSql(std::string_view sql) { return Parser(sql).parse(); }

}  // namespace dpss::query
