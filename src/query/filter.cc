#include "query/filter.h"

#include <sstream>

#include "common/error.h"

namespace dpss::query {

using storage::ConciseBitmap;
using storage::Segment;

namespace {

enum class Tag : std::uint8_t { kSelector = 1, kIn = 2, kAnd = 3, kOr = 4,
                                kNot = 5 };

class SelectorFilter final : public Filter {
 public:
  SelectorFilter(std::string dim, std::string value)
      : dim_(std::move(dim)), value_(std::move(value)) {}

  ConciseBitmap evaluate(const Segment& segment) const override {
    const std::size_t d = segment.schema().dimensionIndex(dim_);
    return segment.valueBitmap(d, value_);
  }

  std::string describe() const override {
    return dim_ + "='" + value_ + "'";
  }

  void serialize(ByteWriter& w) const override {
    w.u8(static_cast<std::uint8_t>(Tag::kSelector));
    w.str(dim_);
    w.str(value_);
  }

 private:
  std::string dim_;
  std::string value_;
};

class InFilter final : public Filter {
 public:
  InFilter(std::string dim, std::vector<std::string> values)
      : dim_(std::move(dim)), values_(std::move(values)) {}

  ConciseBitmap evaluate(const Segment& segment) const override {
    const std::size_t d = segment.schema().dimensionIndex(dim_);
    ConciseBitmap acc = ConciseBitmap::fromPositions({}, segment.rowCount());
    for (const auto& v : values_) acc = acc | segment.valueBitmap(d, v);
    return acc;
  }

  std::string describe() const override {
    std::ostringstream os;
    os << dim_ << " in (";
    for (std::size_t i = 0; i < values_.size(); ++i) {
      if (i) os << ",";
      os << "'" << values_[i] << "'";
    }
    os << ")";
    return os.str();
  }

  void serialize(ByteWriter& w) const override {
    w.u8(static_cast<std::uint8_t>(Tag::kIn));
    w.str(dim_);
    w.varint(values_.size());
    for (const auto& v : values_) w.str(v);
  }

 private:
  std::string dim_;
  std::vector<std::string> values_;
};

class AndFilter final : public Filter {
 public:
  explicit AndFilter(std::vector<FilterPtr> children)
      : children_(std::move(children)) {}

  ConciseBitmap evaluate(const Segment& segment) const override {
    DPSS_CHECK_MSG(!children_.empty(), "AND filter needs children");
    ConciseBitmap acc = children_.front()->evaluate(segment);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      acc = acc & children_[i]->evaluate(segment);
    }
    return acc;
  }

  std::string describe() const override { return compose("AND"); }

  void serialize(ByteWriter& w) const override {
    w.u8(static_cast<std::uint8_t>(Tag::kAnd));
    w.varint(children_.size());
    for (const auto& c : children_) c->serialize(w);
  }

 protected:
  std::string compose(const char* op) const {
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i) os << " " << op << " ";
      os << children_[i]->describe();
    }
    os << ")";
    return os.str();
  }

  std::vector<FilterPtr> children_;
};

class OrFilter final : public Filter {
 public:
  explicit OrFilter(std::vector<FilterPtr> children)
      : children_(std::move(children)) {}

  ConciseBitmap evaluate(const Segment& segment) const override {
    DPSS_CHECK_MSG(!children_.empty(), "OR filter needs children");
    ConciseBitmap acc = children_.front()->evaluate(segment);
    for (std::size_t i = 1; i < children_.size(); ++i) {
      acc = acc | children_[i]->evaluate(segment);
    }
    return acc;
  }

  std::string describe() const override {
    std::ostringstream os;
    os << "(";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i) os << " OR ";
      os << children_[i]->describe();
    }
    os << ")";
    return os.str();
  }

  void serialize(ByteWriter& w) const override {
    w.u8(static_cast<std::uint8_t>(Tag::kOr));
    w.varint(children_.size());
    for (const auto& c : children_) c->serialize(w);
  }

 private:
  std::vector<FilterPtr> children_;
};

class NotFilter final : public Filter {
 public:
  explicit NotFilter(FilterPtr child) : child_(std::move(child)) {}

  ConciseBitmap evaluate(const Segment& segment) const override {
    return ~child_->evaluate(segment);
  }

  std::string describe() const override {
    return "NOT " + child_->describe();
  }

  void serialize(ByteWriter& w) const override {
    w.u8(static_cast<std::uint8_t>(Tag::kNot));
    child_->serialize(w);
  }

 private:
  FilterPtr child_;
};

}  // namespace

FilterPtr Filter::deserialize(ByteReader& r) {
  const auto tag = static_cast<Tag>(r.u8());
  switch (tag) {
    case Tag::kSelector: {
      std::string dim = r.str();
      std::string value = r.str();
      return selectorFilter(std::move(dim), std::move(value));
    }
    case Tag::kIn: {
      std::string dim = r.str();
      const std::uint64_t n = r.varint();
      std::vector<std::string> values;
      values.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) values.push_back(r.str());
      return inFilter(std::move(dim), std::move(values));
    }
    case Tag::kAnd:
    case Tag::kOr: {
      const std::uint64_t n = r.varint();
      std::vector<FilterPtr> children;
      children.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        children.push_back(Filter::deserialize(r));
      }
      return tag == Tag::kAnd ? andFilter(std::move(children))
                              : orFilter(std::move(children));
    }
    case Tag::kNot:
      return notFilter(Filter::deserialize(r));
  }
  throw CorruptData("unknown filter tag");
}

FilterPtr selectorFilter(std::string dimension, std::string value) {
  return std::make_shared<SelectorFilter>(std::move(dimension),
                                          std::move(value));
}

FilterPtr inFilter(std::string dimension, std::vector<std::string> values) {
  return std::make_shared<InFilter>(std::move(dimension), std::move(values));
}

FilterPtr andFilter(std::vector<FilterPtr> children) {
  DPSS_CHECK_MSG(!children.empty(), "AND filter needs children");
  return std::make_shared<AndFilter>(std::move(children));
}

FilterPtr orFilter(std::vector<FilterPtr> children) {
  DPSS_CHECK_MSG(!children.empty(), "OR filter needs children");
  return std::make_shared<OrFilter>(std::move(children));
}

FilterPtr notFilter(FilterPtr child) {
  DPSS_CHECK_MSG(child != nullptr, "NOT filter needs a child");
  return std::make_shared<NotFilter>(std::move(child));
}

}  // namespace dpss::query
