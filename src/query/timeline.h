// Versioned segment timeline (§III-A-3).
//
// "For each data source ... the broker node builds a timeline of the
// segments ... The timeline view always presents the segment with the
// latest version number for a time range. If the intervals of two
// segments overlap, the segment with the latest version has higher
// priority."
//
// A segment is overshadowed when a strictly-newer-version segment's
// interval fully covers its interval — the paper's replacement model,
// where "the historical segment can be updated through the creation of a
// new historical segment that obsoletes the older one". Partitions of the
// same (interval, version) coexist and are all visible.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/interval.h"
#include "storage/segment_id.h"

namespace dpss::query {

class Timeline {
 public:
  /// Registers a segment announcement. Idempotent.
  void add(const storage::SegmentId& id);
  /// Removes a segment (drop / unannounce). Unknown ids are ignored.
  void remove(const storage::SegmentId& id);

  std::size_t size() const { return segments_.size(); }
  bool contains(const storage::SegmentId& id) const {
    return segments_.count(id) > 0;
  }

  /// Segments visible for `interval`: those overlapping it and not
  /// overshadowed by a newer version covering them. Sorted by id.
  std::vector<storage::SegmentId> lookup(const Interval& interval) const;

  /// All distinct ids currently registered (visible or not).
  std::vector<storage::SegmentId> all() const;

 private:
  std::set<storage::SegmentId> segments_;
};

}  // namespace dpss::query
