// Query model covering the paper's Table II statements: aggregations
// (count / sum / min / max / avg) over a timestamp range, optionally
// grouped by a dimension with ORDER BY <agg> LIMIT n (topN).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/interval.h"
#include "query/filter.h"

namespace dpss::query {

enum class AggType : std::uint8_t {
  kCount = 0,
  kLongSum = 1,
  kDoubleSum = 2,
  kMin = 3,
  kMax = 4,
  kAvg = 5,
};

struct AggregatorSpec {
  AggType type = AggType::kCount;
  std::string outputName;  // result column, e.g. "cnt"
  std::string metric;      // source metric; unused for kCount

  friend bool operator==(const AggregatorSpec& a,
                         const AggregatorSpec& b) = default;
};

struct QuerySpec {
  std::string dataSource;
  Interval interval;                      // WHERE timestamp ∈ [start, end)
  FilterPtr filter;                       // optional dimension filter
  std::vector<AggregatorSpec> aggregations;
  std::string groupByDimension;           // empty -> single global group
  std::string orderBy;                    // output name; empty -> unordered
  std::size_t limit = 0;                  // 0 -> no limit
  /// Timeseries bucketing: when > 0 (and no dimension group-by), results
  /// group by time bucket of this width; group keys are zero-padded
  /// bucket-start strings (see timeBucketKey), so merges and ordering
  /// work across segments.
  TimeMs granularityMs = 0;

  /// Stable identity for the broker result cache: every semantic field.
  std::string fingerprint() const;

  void serialize(ByteWriter& w) const;
  static QuerySpec deserialize(ByteReader& r);
};

/// Convenience constructors for the Table II query shapes.
AggregatorSpec countAgg(std::string outputName = "cnt");
AggregatorSpec longSumAgg(std::string metric, std::string outputName = "");
AggregatorSpec doubleSumAgg(std::string metric, std::string outputName = "");
AggregatorSpec minAgg(std::string metric, std::string outputName = "");
AggregatorSpec maxAgg(std::string metric, std::string outputName = "");
AggregatorSpec avgAgg(std::string metric, std::string outputName = "");

/// Query q of Table II (1-based, 1..6) over the ad-tech schema.
QuerySpec tableTwoQuery(int queryNumber, std::string dataSource,
                        Interval interval);

/// Sortable group key for a timeseries bucket, and its inverse.
std::string timeBucketKey(TimeMs bucketStart);
TimeMs parseTimeBucketKey(const std::string& key);

}  // namespace dpss::query
