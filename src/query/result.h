// Partial and final query results.
//
// Compute nodes return mergeable partials; the broker merges them (§III-A:
// "the broker node receives the results and merges them") and finalizes:
// avg = sum/count, then ORDER BY ... LIMIT for topN queries.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "query/query.h"

namespace dpss::query {

/// Mergeable accumulator for one aggregator in one group.
struct PartialAgg {
  double sum = 0;
  std::int64_t count = 0;
  double minValue = std::numeric_limits<double>::infinity();
  double maxValue = -std::numeric_limits<double>::infinity();

  void mergeFrom(const PartialAgg& other);
};

/// Partial result of one segment scan (or a merge of several).
struct QueryResult {
  /// group key -> per-aggregator partials (aligned with spec.aggregations).
  std::unordered_map<std::string, std::vector<PartialAgg>> groups;
  /// Rows examined — the scan-rate numerator of Figures 5/6.
  std::uint64_t rowsScanned = 0;
  /// Segments that contributed (bench bookkeeping).
  std::uint64_t segmentsScanned = 0;

  void mergeFrom(const QueryResult& other);

  void serialize(ByteWriter& w) const;
  static QueryResult deserialize(ByteReader& r);
};

/// One finalized output row.
struct ResultRow {
  std::string group;                 // empty for ungrouped queries
  std::vector<double> values;        // aligned with spec.aggregations

  friend bool operator==(const ResultRow& a, const ResultRow& b) = default;
};

/// Applies avg finalization, ORDER BY (descending, the Table II topN
/// shape) and LIMIT.
std::vector<ResultRow> finalizeResult(const QuerySpec& spec,
                                      const QueryResult& partial);

/// Finalized value of one aggregator (avg = sum/count etc.). Used for
/// node-side topN truncation as well as final result assembly.
double partialFinalValue(const AggregatorSpec& spec, const PartialAgg& p);

}  // namespace dpss::query
