// SQL front-end for the paper's Table II query dialect.
//
// Parses exactly the shapes the evaluation runs (plus dimension equality
// predicates), e.g.:
//
//   SELECT count(*), sum(metric1) FROM ads
//     WHERE timestamp >= 100 AND timestamp < 900 AND gender = 'Male'
//     GROUP BY high_card_dimension ORDER BY cnt LIMIT 100
//
// Grammar (case-insensitive keywords):
//   query     := SELECT selects FROM ident [WHERE conj] [GROUP BY ident]
//                [ORDER BY ident [DESC]] [LIMIT number]
//   selects   := select (',' select)*
//   select    := agg ['AS' ident]
//   agg       := COUNT '(' '*' ')' | (SUM|MIN|MAX|AVG) '(' ident ')'
//   conj      := pred (AND pred)*
//   pred      := 'timestamp' ('>'|'>='|'<'|'<=') number
//              | ident '=' string
//              | ident IN '(' string (',' string)* ')'
//
// Metric types (long vs double sums) are resolved against the schema at
// execution time, so the parser emits kDoubleSum for SUM and the engine
// treats long metrics exactly (both accumulate in doubles internally).
#pragma once

#include <string>
#include <string_view>

#include "query/query.h"

namespace dpss::query {

/// Parses one statement. Throws InvalidArgument with position info on any
/// syntax error. Unbounded timestamp sides default to the full range.
QuerySpec parseSql(std::string_view sql);

}  // namespace dpss::query
