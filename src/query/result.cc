#include "query/result.h"

#include <algorithm>

#include "common/error.h"

namespace dpss::query {

void PartialAgg::mergeFrom(const PartialAgg& other) {
  sum += other.sum;
  count += other.count;
  minValue = std::min(minValue, other.minValue);
  maxValue = std::max(maxValue, other.maxValue);
}

void QueryResult::mergeFrom(const QueryResult& other) {
  rowsScanned += other.rowsScanned;
  segmentsScanned += other.segmentsScanned;
  for (const auto& [group, partials] : other.groups) {
    auto [it, inserted] = groups.try_emplace(group, partials);
    if (!inserted) {
      DPSS_CHECK_MSG(it->second.size() == partials.size(),
                     "aggregator arity mismatch in merge");
      for (std::size_t i = 0; i < partials.size(); ++i) {
        it->second[i].mergeFrom(partials[i]);
      }
    }
  }
}

void QueryResult::serialize(ByteWriter& w) const {
  w.u64(rowsScanned);
  w.u64(segmentsScanned);
  w.varint(groups.size());
  for (const auto& [group, partials] : groups) {
    w.str(group);
    w.varint(partials.size());
    for (const auto& p : partials) {
      w.f64(p.sum);
      w.i64(p.count);
      w.f64(p.minValue);
      w.f64(p.maxValue);
    }
  }
}

QueryResult QueryResult::deserialize(ByteReader& r) {
  QueryResult out;
  out.rowsScanned = r.u64();
  out.segmentsScanned = r.u64();
  const std::uint64_t n = r.varint();
  for (std::uint64_t g = 0; g < n; ++g) {
    std::string group = r.str();
    const std::uint64_t m = r.varint();
    std::vector<PartialAgg> partials(m);
    for (auto& p : partials) {
      p.sum = r.f64();
      p.count = r.i64();
      p.minValue = r.f64();
      p.maxValue = r.f64();
    }
    out.groups.emplace(std::move(group), std::move(partials));
  }
  return out;
}

double partialFinalValue(const AggregatorSpec& spec, const PartialAgg& p) {
  switch (spec.type) {
    case AggType::kCount:
      return static_cast<double>(p.count);
    case AggType::kLongSum:
    case AggType::kDoubleSum:
      return p.sum;
    case AggType::kMin:
      return p.minValue;
    case AggType::kMax:
      return p.maxValue;
    case AggType::kAvg:
      return p.count == 0 ? 0.0 : p.sum / static_cast<double>(p.count);
  }
  throw InternalError("unknown aggregator type");
}

std::vector<ResultRow> finalizeResult(const QuerySpec& spec,
                                      const QueryResult& partial) {
  std::vector<ResultRow> rows;
  rows.reserve(partial.groups.size());
  if (spec.groupByDimension.empty() && partial.groups.empty()) {
    // An ungrouped aggregate always yields one row, even over no data.
    ResultRow zero;
    zero.values.assign(spec.aggregations.size(), 0.0);
    return {zero};
  }
  for (const auto& [group, partials] : partial.groups) {
    DPSS_CHECK_MSG(partials.size() == spec.aggregations.size(),
                   "aggregator arity mismatch in finalize");
    ResultRow row;
    row.group = group;
    row.values.reserve(partials.size());
    for (std::size_t i = 0; i < partials.size(); ++i) {
      row.values.push_back(
          partialFinalValue(spec.aggregations[i], partials[i]));
    }
    rows.push_back(std::move(row));
  }

  if (spec.orderBy.empty()) {
    // Deterministic output order for unordered queries.
    std::sort(rows.begin(), rows.end(),
              [](const ResultRow& a, const ResultRow& b) {
                return a.group < b.group;
              });
  } else {
    std::size_t orderIdx = spec.aggregations.size();
    for (std::size_t i = 0; i < spec.aggregations.size(); ++i) {
      if (spec.aggregations[i].outputName == spec.orderBy) {
        orderIdx = i;
        break;
      }
    }
    DPSS_CHECK_MSG(orderIdx < spec.aggregations.size(),
                   "orderBy references unknown output: " + spec.orderBy);
    std::sort(rows.begin(), rows.end(),
              [orderIdx](const ResultRow& a, const ResultRow& b) {
                if (a.values[orderIdx] != b.values[orderIdx]) {
                  return a.values[orderIdx] > b.values[orderIdx];
                }
                return a.group < b.group;  // deterministic tie-break
              });
  }
  if (spec.limit > 0 && rows.size() > spec.limit) {
    rows.resize(spec.limit);
  }
  return rows;
}

}  // namespace dpss::query
