#include "query/timeline.h"

namespace dpss::query {

using storage::SegmentId;

void Timeline::add(const SegmentId& id) { segments_.insert(id); }

void Timeline::remove(const SegmentId& id) { segments_.erase(id); }

std::vector<SegmentId> Timeline::lookup(const Interval& interval) const {
  std::vector<SegmentId> candidates;
  for (const auto& id : segments_) {
    if (id.interval.overlaps(interval)) candidates.push_back(id);
  }
  std::vector<SegmentId> visible;
  for (const auto& s : candidates) {
    bool overshadowed = false;
    for (const auto& t : candidates) {
      if (t.version > s.version && t.interval.contains(s.interval)) {
        overshadowed = true;
        break;
      }
    }
    if (!overshadowed) visible.push_back(s);
  }
  return visible;
}

std::vector<SegmentId> Timeline::all() const {
  return {segments_.begin(), segments_.end()};
}

}  // namespace dpss::query
