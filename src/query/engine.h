// Per-segment scan: the unit of work of the paper's concurrency model
// ("one thread scan a segment"). Row selection combines a binary-searched
// timestamp range with the compressed-bitmap filter; selected rows feed
// the aggregators, optionally grouped by a dimension.
#pragma once

#include "query/query.h"
#include "query/result.h"
#include "storage/segment.h"

namespace dpss::query {

/// Scans one segment for `spec`, returning a mergeable partial result.
/// Throws InvalidArgument for unknown dimension/metric names.
QueryResult scanSegment(const storage::Segment& segment,
                        const QuerySpec& spec);

}  // namespace dpss::query
