// Filters (§III-B): "Filters can be represented by the Boolean expression
// of multiple indices. Boolean operations on compressed indices can
// improve performance and save space."
//
// A filter is a boolean tree over dimension predicates; evaluation
// produces the row-selection bitmap of a segment by combining per-value
// inverted indexes in their compressed form.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "storage/concise.h"
#include "storage/segment.h"

namespace dpss::query {

class Filter;
using FilterPtr = std::shared_ptr<const Filter>;

class Filter {
 public:
  virtual ~Filter() = default;

  /// Rows of `segment` matching this filter.
  virtual storage::ConciseBitmap evaluate(
      const storage::Segment& segment) const = 0;

  /// Stable textual form — used in query fingerprints for the broker's
  /// result cache and for logging.
  virtual std::string describe() const = 0;

  /// Wire form (tag + payload), so queries travel between nodes.
  virtual void serialize(ByteWriter& w) const = 0;
  static FilterPtr deserialize(ByteReader& r);
};

/// dimension == value.
FilterPtr selectorFilter(std::string dimension, std::string value);
/// dimension ∈ values (OR of inverted indexes).
FilterPtr inFilter(std::string dimension, std::vector<std::string> values);
FilterPtr andFilter(std::vector<FilterPtr> children);
FilterPtr orFilter(std::vector<FilterPtr> children);
FilterPtr notFilter(FilterPtr child);

}  // namespace dpss::query
