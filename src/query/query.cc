#include "query/query.h"

#include <cstdio>
#include <sstream>
#include <string>

#include "common/error.h"

namespace dpss::query {

namespace {
const char* aggName(AggType t) {
  switch (t) {
    case AggType::kCount: return "count";
    case AggType::kLongSum: return "longSum";
    case AggType::kDoubleSum: return "doubleSum";
    case AggType::kMin: return "min";
    case AggType::kMax: return "max";
    case AggType::kAvg: return "avg";
  }
  return "?";
}
}  // namespace

std::string QuerySpec::fingerprint() const {
  std::ostringstream os;
  os << dataSource << "|" << interval.toString() << "|"
     << (filter ? filter->describe() : "-") << "|";
  for (const auto& a : aggregations) {
    os << aggName(a.type) << "(" << a.metric << ")as" << a.outputName << ",";
  }
  os << "|gb:" << groupByDimension << "|ob:" << orderBy << "|lim:" << limit
     << "|gr:" << granularityMs;
  return os.str();
}

void QuerySpec::serialize(ByteWriter& w) const {
  w.str(dataSource);
  w.i64(interval.start());
  w.i64(interval.end());
  w.u8(filter ? 1 : 0);
  if (filter) filter->serialize(w);
  w.varint(aggregations.size());
  for (const auto& a : aggregations) {
    w.u8(static_cast<std::uint8_t>(a.type));
    w.str(a.outputName);
    w.str(a.metric);
  }
  w.str(groupByDimension);
  w.str(orderBy);
  w.varint(limit);
  w.i64(granularityMs);
}

QuerySpec QuerySpec::deserialize(ByteReader& r) {
  QuerySpec q;
  q.dataSource = r.str();
  const TimeMs start = r.i64();
  const TimeMs end = r.i64();
  q.interval = Interval(start, end);
  if (r.u8() != 0) q.filter = Filter::deserialize(r);
  const std::uint64_t n = r.varint();
  q.aggregations.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    AggregatorSpec a;
    a.type = static_cast<AggType>(r.u8());
    a.outputName = r.str();
    a.metric = r.str();
    q.aggregations.push_back(std::move(a));
  }
  q.groupByDimension = r.str();
  q.orderBy = r.str();
  q.limit = r.varint();
  q.granularityMs = r.i64();
  return q;
}

std::string timeBucketKey(TimeMs bucketStart) {
  // Offset into the non-negative range so lexicographic order matches
  // numeric order even for pre-epoch timestamps.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%020lld",
                static_cast<long long>(bucketStart) + (1LL << 62));
  return buf;
}

TimeMs parseTimeBucketKey(const std::string& key) {
  DPSS_CHECK_MSG(key.size() == 21 && key[0] == 't',
                 "not a time bucket key: " + key);
  return static_cast<TimeMs>(std::stoll(key.substr(1)) - (1LL << 62));
}

namespace {
AggregatorSpec makeAgg(AggType type, std::string metric, std::string name,
                       const char* prefix) {
  AggregatorSpec a;
  a.type = type;
  a.metric = std::move(metric);
  a.outputName = name.empty() ? prefix + ("_" + a.metric) : std::move(name);
  return a;
}
}  // namespace

AggregatorSpec countAgg(std::string outputName) {
  AggregatorSpec a;
  a.type = AggType::kCount;
  a.outputName = std::move(outputName);
  return a;
}

AggregatorSpec longSumAgg(std::string metric, std::string outputName) {
  return makeAgg(AggType::kLongSum, std::move(metric), std::move(outputName),
                 "sum");
}

AggregatorSpec doubleSumAgg(std::string metric, std::string outputName) {
  return makeAgg(AggType::kDoubleSum, std::move(metric), std::move(outputName),
                 "sum");
}

AggregatorSpec minAgg(std::string metric, std::string outputName) {
  return makeAgg(AggType::kMin, std::move(metric), std::move(outputName),
                 "min");
}

AggregatorSpec maxAgg(std::string metric, std::string outputName) {
  return makeAgg(AggType::kMax, std::move(metric), std::move(outputName),
                 "max");
}

AggregatorSpec avgAgg(std::string metric, std::string outputName) {
  return makeAgg(AggType::kAvg, std::move(metric), std::move(outputName),
                 "avg");
}

QuerySpec tableTwoQuery(int queryNumber, std::string dataSource,
                        Interval interval) {
  DPSS_CHECK_MSG(queryNumber >= 1 && queryNumber <= 6,
                 "Table II defines queries 1..6");
  QuerySpec q;
  q.dataSource = std::move(dataSource);
  q.interval = interval;
  q.aggregations.push_back(countAgg("cnt"));
  // Q2/Q5 add one sum; Q3/Q6 add four sums (metric1..metric4 of the paper
  // map onto impressions/clicks/conversions as longs, revenue as double).
  const bool grouped = queryNumber >= 4;
  const int sums = (queryNumber == 2 || queryNumber == 5)   ? 1
                   : (queryNumber == 3 || queryNumber == 6) ? 4
                                                            : 0;
  static const char* kMetrics[] = {"impressions", "clicks", "revenue",
                                   "conversions"};
  for (int m = 0; m < sums; ++m) {
    if (std::string(kMetrics[m]) == "revenue") {
      q.aggregations.push_back(doubleSumAgg(kMetrics[m]));
    } else {
      q.aggregations.push_back(longSumAgg(kMetrics[m]));
    }
  }
  if (grouped) {
    q.groupByDimension = "high_card_dimension";
    q.orderBy = "cnt";
    q.limit = 100;
  }
  return q;
}

}  // namespace dpss::query
