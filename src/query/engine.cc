#include "query/engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/error.h"
#include "obs/metrics.h"

namespace dpss::query {

namespace {

const obs::MetricId kScanCount = obs::internCounter("query.scan.count");
const obs::MetricId kScanNs = obs::internHistogram("query.scan.ns");
const obs::MetricId kScanRows = obs::internCounter("query.scan.rows");
const obs::MetricId kFilterNs = obs::internHistogram("query.filter.ns");

}  // namespace

using storage::MetricType;
using storage::Segment;

namespace {

/// Resolved per-aggregator input: which metric column (if any) feeds it.
struct BoundAgg {
  AggType type;
  const Segment::MetricColumn* column = nullptr;  // null for kCount

  double rowValue(std::size_t row) const {
    if (column == nullptr) return 0;
    return column->type == MetricType::kLong
               ? static_cast<double>(column->longs[row])
               : column->doubles[row];
  }
};

void accumulate(const BoundAgg& agg, std::size_t row, PartialAgg& out) {
  switch (agg.type) {
    case AggType::kCount:
      ++out.count;
      return;
    case AggType::kLongSum:
    case AggType::kDoubleSum: {
      out.sum += agg.rowValue(row);
      ++out.count;
      return;
    }
    case AggType::kMin: {
      out.minValue = std::min(out.minValue, agg.rowValue(row));
      ++out.count;
      return;
    }
    case AggType::kMax: {
      out.maxValue = std::max(out.maxValue, agg.rowValue(row));
      ++out.count;
      return;
    }
    case AggType::kAvg: {
      out.sum += agg.rowValue(row);
      ++out.count;
      return;
    }
  }
}

/// Node-side topN truncation: for ORDER BY ... LIMIT queries a compute
/// node only ships its local top groups (with generous overfetch), the
/// standard Druid-style approximation that keeps the broker merge O(limit)
/// instead of O(distinct groups) — without it, grouped queries stop
/// scaling with nodes (the merge becomes the Amdahl term). Overfetch of
/// 4x the limit makes disagreement between local and global top sets
/// rare in practice; exact results are available by running with
/// limit = 0 and limiting client-side.
void truncateForTopN(const QuerySpec& spec, QueryResult& result) {
  if (spec.limit == 0 || spec.orderBy.empty()) return;
  const std::size_t keep = spec.limit * 4;
  if (result.groups.size() <= keep) return;
  std::size_t orderIdx = spec.aggregations.size();
  for (std::size_t i = 0; i < spec.aggregations.size(); ++i) {
    if (spec.aggregations[i].outputName == spec.orderBy) {
      orderIdx = i;
      break;
    }
  }
  if (orderIdx == spec.aggregations.size()) return;  // finalize will throw

  std::vector<std::pair<double, const std::string*>> ranked;
  ranked.reserve(result.groups.size());
  for (const auto& [group, partials] : result.groups) {
    ranked.emplace_back(
        partialFinalValue(spec.aggregations[orderIdx], partials[orderIdx]),
        &group);
  }
  std::nth_element(ranked.begin(),
                   ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                   ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  const double cutoff = ranked[keep].first;
  for (auto it = result.groups.begin(); it != result.groups.end();) {
    const double v = partialFinalValue(spec.aggregations[orderIdx],
                                       it->second[orderIdx]);
    it = v < cutoff ? result.groups.erase(it) : std::next(it);
  }
}

}  // namespace

QueryResult scanSegment(const Segment& segment, const QuerySpec& spec) {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kScanCount).inc();
  obs::ScopedTimer scanTimer(reg.histogram(kScanNs));

  QueryResult result;
  result.segmentsScanned = 1;

  // Timestamp range -> contiguous row range (rows are time-sorted).
  const auto& ts = segment.timestamps();
  const auto loIt =
      std::lower_bound(ts.begin(), ts.end(), spec.interval.start());
  const auto hiIt = std::lower_bound(ts.begin(), ts.end(), spec.interval.end());
  const std::size_t lo = static_cast<std::size_t>(loIt - ts.begin());
  const std::size_t hi = static_cast<std::size_t>(hiIt - ts.begin());
  if (lo >= hi) return result;

  // Bind aggregators to metric columns once.
  std::vector<BoundAgg> bound;
  bound.reserve(spec.aggregations.size());
  for (const auto& a : spec.aggregations) {
    BoundAgg b;
    b.type = a.type;
    if (a.type != AggType::kCount) {
      b.column = &segment.metric(segment.schema().metricIndex(a.metric));
    }
    bound.push_back(b);
  }

  const Segment::DimColumn* groupDim = nullptr;
  if (!spec.groupByDimension.empty()) {
    if (spec.granularityMs > 0) {
      throw InvalidArgument(
          "granularity and dimension group-by cannot be combined");
    }
    groupDim =
        &segment.dim(segment.schema().dimensionIndex(spec.groupByDimension));
  }

  // Timeseries bucketing: dense per-bucket accumulators over the scanned
  // time range (rows are time-sorted, so the range is tight).
  const TimeMs g = spec.granularityMs;
  auto bucketStartOf = [g](TimeMs t) {
    TimeMs b = t - (t % g);
    if (t < 0 && t % g != 0) b -= g;
    return b;
  };
  TimeMs bucketBase = 0;
  std::vector<PartialAgg> bucketStore;
  std::vector<bool> bucketTouched;
  if (g > 0) {
    bucketBase = bucketStartOf(ts[lo]);
    const std::size_t buckets = static_cast<std::size_t>(
        (bucketStartOf(ts[hi - 1]) - bucketBase) / g) + 1;
    bucketStore.assign(buckets * spec.aggregations.size(), PartialAgg{});
    bucketTouched.assign(buckets, false);
  }

  // Group accumulators. Grouped scans accumulate per dictionary id in one
  // flat buffer (aggCount slots per group) and translate ids to strings
  // once at the end: dense indexing when the dictionary is comparable to
  // the row range, id->offset hashing when a high-cardinality dictionary
  // dwarfs the rows actually present.
  const std::size_t aggs = bound.size();
  std::vector<PartialAgg> global(aggs);
  const bool dense =
      groupDim != nullptr && groupDim->dict.size() <= 2 * (hi - lo) + 1024;
  std::vector<PartialAgg> denseStore;
  std::vector<bool> touched;
  std::unordered_map<std::uint32_t, std::size_t> sparseIdx;
  std::vector<PartialAgg> sparseStore;
  if (groupDim != nullptr) {
    if (dense) {
      denseStore.assign(groupDim->dict.size() * aggs, PartialAgg{});
      touched.assign(groupDim->dict.size(), false);
    } else {
      sparseIdx.reserve(hi - lo);
    }
  }

  auto scanRow = [&](std::size_t row) {
    PartialAgg* target = global.data();
    if (g > 0) {
      const auto idx = static_cast<std::size_t>(
          (bucketStartOf(ts[row]) - bucketBase) / g);
      target = bucketStore.data() + idx * aggs;
      bucketTouched[idx] = true;
    } else if (groupDim != nullptr) {
      const auto id = groupDim->ids[row];
      if (dense) {
        target = denseStore.data() + static_cast<std::size_t>(id) * aggs;
        touched[id] = true;
      } else {
        auto [it, inserted] = sparseIdx.try_emplace(id, sparseStore.size());
        if (inserted) sparseStore.resize(sparseStore.size() + aggs);
        target = sparseStore.data() + it->second;
      }
    }
    for (std::size_t i = 0; i < aggs; ++i) {
      accumulate(bound[i], row, target[i]);
    }
    ++result.rowsScanned;
  };

  if (spec.filter != nullptr) {
    const std::uint64_t filterStart = obs::nowNanos();
    const auto bitmap = spec.filter->evaluate(segment);
    reg.histogram(kFilterNs).observe(obs::nowNanos() - filterStart);
    bitmap.forEach([&](std::size_t row) {
      if (row >= hi) return false;  // ascending iteration: past the range
      if (row >= lo) scanRow(row);
      return true;
    });
  } else {
    for (std::size_t row = lo; row < hi; ++row) scanRow(row);
  }

  if (g > 0) {
    for (std::size_t b = 0; b < bucketTouched.size(); ++b) {
      if (!bucketTouched[b]) continue;
      const PartialAgg* base = bucketStore.data() + b * aggs;
      result.groups.emplace(
          timeBucketKey(bucketBase + static_cast<TimeMs>(b) * g),
          std::vector<PartialAgg>(base, base + aggs));
    }
  } else if (groupDim != nullptr) {
    if (dense) {
      for (std::uint32_t id = 0; id < touched.size(); ++id) {
        if (!touched[id]) continue;
        const PartialAgg* base =
            denseStore.data() + static_cast<std::size_t>(id) * aggs;
        result.groups.emplace(groupDim->dict.valueOf(id),
                              std::vector<PartialAgg>(base, base + aggs));
      }
    } else {
      for (const auto& [id, offset] : sparseIdx) {
        const PartialAgg* base = sparseStore.data() + offset;
        result.groups.emplace(groupDim->dict.valueOf(id),
                              std::vector<PartialAgg>(base, base + aggs));
      }
    }
    truncateForTopN(spec, result);
  } else {
    // Ungrouped queries always produce one row, even over no data.
    result.groups.emplace("", std::move(global));
  }
  reg.counter(kScanRows).inc(result.rowsScanned);
  return result;
}

}  // namespace dpss::query
