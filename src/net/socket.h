// Thin RAII + deadline layer over BSD sockets, the only place in dpss
// that touches raw socket syscalls (enforced by the dpss-lint
// raw-socket rule). Everything above (server/client/transport) works in
// terms of Fd, sendAll/recvSome and millisecond deadlines measured on a
// dpss::Clock.
//
// Deadline semantics: every blocking operation takes an absolute
// `deadlineAtMs` on the caller's clock (0 = no deadline) and surfaces
// expiry as a typed DeadlineExceeded; hard socket failures surface as
// Unavailable. Nothing here ever blocks indefinitely when a deadline is
// set — waits go through poll(2) with the remaining budget.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace dpss::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the descriptor (idempotent).
  void reset();
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// "host:port" pair. parse() accepts "127.0.0.1:8400" (numeric IPv4 or
/// resolvable hostname); throws InvalidArgument on malformed input.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  static Endpoint parse(const std::string& hostPort);
  std::string toString() const { return host + ":" + std::to_string(port); }

  friend bool operator<(const Endpoint& a, const Endpoint& b) {
    return a.host != b.host ? a.host < b.host : a.port < b.port;
  }
};

/// Opens a listening TCP socket on `host:port` (SO_REUSEADDR, non-
/// blocking, backlog 128). port 0 picks a free port; boundPort() reads
/// the result. Throws Unavailable on failure.
Fd listenOn(const std::string& host, std::uint16_t port);

/// The local port a listening/connected socket is bound to.
std::uint16_t boundPort(const Fd& fd);

/// Accepts one pending connection (non-blocking listen socket); returns
/// an invalid Fd when nothing is pending. The accepted socket is
/// non-blocking with TCP_NODELAY. Throws Unavailable on hard failure.
Fd acceptOne(const Fd& listenFd);

/// Non-blocking connect with a deadline: throws DeadlineExceeded when
/// the budget elapses, Unavailable on refusal/failure. The returned
/// socket is non-blocking with TCP_NODELAY.
Fd connectWithDeadline(const Endpoint& ep, Clock& clock, TimeMs deadlineAtMs);

/// Writes all of `data`, polling for writability under the deadline.
/// Throws DeadlineExceeded / Unavailable (peer reset, EPIPE, ...).
void sendAll(const Fd& fd, std::string_view data, Clock& clock,
             TimeMs deadlineAtMs);

/// Reads whatever is available (blocking via poll until readable or
/// deadline). Returns the bytes read; an empty string means the peer
/// closed cleanly. Throws DeadlineExceeded / Unavailable.
std::string recvSome(const Fd& fd, Clock& clock, TimeMs deadlineAtMs);

/// Non-blocking single recv for event-loop use: returns bytes read
/// (possibly empty when EAGAIN), sets *peerClosed when the peer shut the
/// connection. Throws Unavailable on hard error.
std::string recvNow(const Fd& fd, bool* peerClosed);

/// Non-blocking single send for event-loop use: returns the number of
/// bytes written (0 when the socket is full). Throws Unavailable on
/// hard error.
std::size_t sendNow(const Fd& fd, std::string_view data);

/// A connected socket pair (SOCK_STREAM, non-blocking) used as the event
/// loop's wakeup channel. Throws Unavailable on failure.
void socketPair(Fd* a, Fd* b);

}  // namespace dpss::net
