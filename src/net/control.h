// Process control channel (rpc::kControl) every dpss_node binds as
// "<name>.ctl": lets a launcher ping a role, load private-search document
// slices into a historical, produce events into a realtime node's local
// queue, inspect served segments, and request graceful shutdown — the
// out-of-band driving a single-process harness does with direct method
// calls. Both the handler and the client helpers live here so the binary
// and the multi-process test speak the same bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/historical_node.h"
#include "cluster/message_queue.h"
#include "cluster/transport.h"

namespace dpss::net {

/// Sub-operation codes, the byte after rpc::kControl.
namespace control_op {
constexpr std::uint8_t kPing = 1;
constexpr std::uint8_t kLoadDocs = 2;
constexpr std::uint8_t kIngest = 3;
constexpr std::uint8_t kShutdown = 4;
constexpr std::uint8_t kServedSegments = 5;
constexpr std::uint8_t kDecommission = 6;
constexpr std::uint8_t kDrainState = 7;
}  // namespace control_op

/// The control node name for a logical node.
inline std::string controlNode(const std::string& nodeName) {
  return nodeName + ".ctl";
}

/// Role-specific capabilities the control handler can reach. Ops whose
/// target is absent answer with InvalidArgument.
struct ControlTargets {
  cluster::HistoricalNode* historical = nullptr;
  cluster::MessageQueue* queue = nullptr;
  std::string topic;
  std::size_t partition = 0;
};

/// True once any bound control handler received kShutdown (process-wide,
/// polled by dpss_node's main loop).
bool shutdownRequested();

/// Binds "<name>.ctl" on the transport.
void bindControl(cluster::TransportIface& transport,
                 const std::string& nodeName, const std::string& role,
                 ControlTargets targets);

// --- client helpers ------------------------------------------------------

/// Returns the role string the process reports.
std::string controlPing(cluster::TransportIface& transport,
                        const std::string& nodeName);

void controlLoadDocuments(cluster::TransportIface& transport,
                          const std::string& nodeName,
                          const std::string& docSource, std::uint64_t baseIndex,
                          const std::vector<std::string>& documents);

/// Appends event payloads to the realtime node's queue; returns the
/// partition's end offset after the append.
std::uint64_t controlIngest(cluster::TransportIface& transport,
                            const std::string& nodeName,
                            const std::vector<std::string>& payloads);

void controlShutdown(cluster::TransportIface& transport,
                     const std::string& nodeName);

/// Canonical segment-id strings the historical currently serves.
std::vector<std::string> controlServedSegments(
    cluster::TransportIface& transport, const std::string& nodeName);

/// Puts a historical into drain mode (graceful decommission). The node
/// refuses new loads from then on; the coordinator re-replicates its
/// segments elsewhere and flips the flag to complete once it serves
/// nothing. Idempotent.
void controlDecommission(cluster::TransportIface& transport,
                         const std::string& nodeName);

/// Drain progress for a historical.
struct DrainState {
  bool draining = false;
  bool complete = false;
  std::uint64_t servedSegments = 0;
};
DrainState controlDrainState(cluster::TransportIface& transport,
                             const std::string& nodeName);

}  // namespace dpss::net
