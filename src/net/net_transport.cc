#include "net/net_transport.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpss::net {

namespace {

/// Per-op round-trip latency seen by the caller, one histogram per rpc
/// tag (first request byte).
obs::MetricId rpcHistogram(std::uint8_t opTag) {
  static const obs::MetricId ids[] = {
      obs::internHistogram("net.rpc.call_ns", {{"op", "other"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "query_segment"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "pss_info"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "pss_search"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "stats"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "broker_query"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "broker_search"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "substrate"}}),
      obs::internHistogram("net.rpc.call_ns", {{"op", "control"}}),
  };
  return opTag >= 1 && opTag <= 8 ? ids[opTag] : ids[0];
}

}  // namespace

NetTransport::NetTransport(Clock& clock, NetTransportOptions options)
    : clock_(clock),
      server_(clock, options.server),
      client_(clock, options.client) {}

NetTransport::~NetTransport() { stop(); }

void NetTransport::start() { server_.start(); }

void NetTransport::stop() {
  server_.stop();
  client_.closeIdle();
}

void NetTransport::addPeer(const std::string& nodeName,
                           const std::string& hostPort) {
  Endpoint ep = Endpoint::parse(hostPort);
  MutexLock lock(mu_);
  peers_[nodeName] = std::move(ep);
}

void NetTransport::removePeer(const std::string& nodeName) {
  MutexLock lock(mu_);
  peers_.erase(nodeName);
}

void NetTransport::setPeerResolver(PeerResolver resolver) {
  MutexLock lock(mu_);
  resolver_ = std::move(resolver);
}

void NetTransport::bind(const std::string& nodeName,
                        cluster::RpcHandler handler) {
  server_.bind(nodeName, std::move(handler));
}

void NetTransport::unbind(const std::string& nodeName) {
  server_.unbind(nodeName);
}

bool NetTransport::reachable(const std::string& nodeName) const {
  if (server_.serves(nodeName)) return true;
  PeerResolver resolver;
  {
    MutexLock lock(mu_);
    if (peers_.count(nodeName) > 0) return true;
    resolver = resolver_;
  }
  return resolver && resolver(nodeName).has_value();
}

Endpoint NetTransport::endpointFor(const std::string& nodeName) const {
  {
    MutexLock lock(mu_);
    const auto it = peers_.find(nodeName);
    if (it != peers_.end()) return it->second;
  }
  if (server_.serves(nodeName)) {
    // Local logical node: loop back through the real socket, keeping the
    // wire honest even for same-process calls.
    return Endpoint{"127.0.0.1", server_.port()};
  }
  // Unknown at launch: maybe a runtime-joined node whose announcement
  // carries an endpoint. Copy the resolver out so it runs unlocked (it
  // typically reads a registry mirror with its own mutex).
  PeerResolver resolver;
  {
    MutexLock lock(mu_);
    resolver = resolver_;
  }
  if (resolver) {
    if (const auto hostPort = resolver(nodeName)) {
      return Endpoint::parse(*hostPort);
    }
  }
  throw Unavailable("no route to node: " + nodeName);
}

std::string NetTransport::call(const std::string& nodeName,
                               const std::string& request) {
  const Endpoint ep = endpointFor(nodeName);
  const std::uint8_t opTag =
      request.empty() ? 0 : static_cast<std::uint8_t>(request[0]);
  obs::ScopedTimer timer(
      obs::currentRegistry().histogram(rpcHistogram(opTag)));

  // Same envelope as the in-process Transport: [str target][u8 hasTrace]
  // [trace?][raw body]. The target rides inside the frame because one
  // server socket hosts several logical nodes.
  ByteWriter payload;
  payload.str(nodeName);
  const obs::TraceContext ctx = obs::currentTraceContext();
  payload.u8(ctx.active() ? 1 : 0);
  if (ctx.active()) ctx.serialize(payload);
  payload.raw(request);
  return client_.call(ep, payload.take());
}

}  // namespace dpss::net
