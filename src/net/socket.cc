#include "net/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace dpss::net {

namespace {

std::string errnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw Unavailable(errnoString("fcntl(O_NONBLOCK)"));
  }
}

void setNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Remaining poll budget in ms: -1 = wait forever (no deadline), 0 means
/// the deadline already passed.
int pollBudgetMs(Clock& clock, TimeMs deadlineAtMs) {
  if (deadlineAtMs == 0) return -1;
  const TimeMs left = deadlineAtMs - clock.nowMs();
  if (left <= 0) return 0;
  // Cap so a clock skew can't turn into a multi-hour poll.
  return static_cast<int>(left > 60'000 ? 60'000 : left);
}

/// Polls fd for `events`; throws DeadlineExceeded when the deadline
/// passes first, Unavailable on poll failure. Returns revents.
short pollFor(int fd, short events, Clock& clock, TimeMs deadlineAtMs,
              const char* what) {
  for (;;) {
    const int budget = pollBudgetMs(clock, deadlineAtMs);
    if (budget == 0) {
      throw DeadlineExceeded(std::string(what) + ": deadline exceeded");
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, budget);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Unavailable(errnoString("poll"));
    }
    if (rc == 0) continue;  // re-check the deadline
    return pfd.revents;
  }
}

struct AddrInfoHolder {
  struct addrinfo* ai = nullptr;
  ~AddrInfoHolder() {
    if (ai != nullptr) ::freeaddrinfo(ai);
  }
};

AddrInfoHolder resolve(const std::string& host, std::uint16_t port,
                       bool passive) {
  struct addrinfo hints {};
  hints.ai_family = AF_INET;  // loopback clusters; v6 adds nothing here
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV | (passive ? AI_PASSIVE : 0);
  AddrInfoHolder out;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints, &out.ai);
  if (rc != 0 || out.ai == nullptr) {
    throw Unavailable("getaddrinfo(" + host + "): " + ::gai_strerror(rc));
  }
  return out;
}

}  // namespace

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Endpoint Endpoint::parse(const std::string& hostPort) {
  const auto colon = hostPort.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == hostPort.size()) {
    throw InvalidArgument("bad endpoint (want host:port): '" + hostPort + "'");
  }
  Endpoint ep;
  ep.host = hostPort.substr(0, colon);
  const std::string portStr = hostPort.substr(colon + 1);
  char* end = nullptr;
  const long p = std::strtol(portStr.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || p < 1 || p > 65535) {
    throw InvalidArgument("bad port in endpoint: '" + hostPort + "'");
  }
  ep.port = static_cast<std::uint16_t>(p);
  return ep;
}

Fd listenOn(const std::string& host, std::uint16_t port) {
  const AddrInfoHolder addr = resolve(host, port, /*passive=*/true);
  Fd fd(::socket(addr.ai->ai_family, SOCK_STREAM, 0));
  if (!fd.valid()) throw Unavailable(errnoString("socket"));
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), addr.ai->ai_addr, addr.ai->ai_addrlen) < 0) {
    throw Unavailable(errnoString(("bind " + host).c_str()));
  }
  if (::listen(fd.get(), 128) < 0) {
    throw Unavailable(errnoString("listen"));
  }
  setNonBlocking(fd.get());
  return fd;
}

std::uint16_t boundPort(const Fd& fd) {
  struct sockaddr_in sa {};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd.get(), reinterpret_cast<struct sockaddr*>(&sa), &len) <
      0) {
    throw Unavailable(errnoString("getsockname"));
  }
  return ntohs(sa.sin_port);
}

Fd acceptOne(const Fd& listenFd) {
  const int fd = ::accept(listenFd.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Fd();
    }
    throw Unavailable(errnoString("accept"));
  }
  Fd out(fd);
  setNonBlocking(fd);
  setNoDelay(fd);
  return out;
}

Fd connectWithDeadline(const Endpoint& ep, Clock& clock, TimeMs deadlineAtMs) {
  const AddrInfoHolder addr = resolve(ep.host, ep.port, /*passive=*/false);
  Fd fd(::socket(addr.ai->ai_family, SOCK_STREAM, 0));
  if (!fd.valid()) throw Unavailable(errnoString("socket"));
  setNonBlocking(fd.get());
  setNoDelay(fd.get());
  const int rc = ::connect(fd.get(), addr.ai->ai_addr, addr.ai->ai_addrlen);
  if (rc == 0) return fd;
  if (errno != EINPROGRESS) {
    throw Unavailable("connect " + ep.toString() + ": " +
                      std::strerror(errno));
  }
  const short revents =
      pollFor(fd.get(), POLLOUT, clock, deadlineAtMs, "connect");
  int err = 0;
  socklen_t len = sizeof(err);
  if ((revents & (POLLERR | POLLHUP)) != 0 ||
      ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
      err != 0) {
    throw Unavailable("connect " + ep.toString() + ": " +
                      std::strerror(err != 0 ? err : ECONNREFUSED));
  }
  return fd;
}

void sendAll(const Fd& fd, std::string_view data, Clock& clock,
             TimeMs deadlineAtMs) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd.get(), data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollFor(fd.get(), POLLOUT, clock, deadlineAtMs, "send");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw Unavailable(errnoString("send"));
  }
}

std::string recvSome(const Fd& fd, Clock& clock, TimeMs deadlineAtMs) {
  for (;;) {
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
    if (n == 0) return std::string();  // orderly shutdown
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pollFor(fd.get(), POLLIN, clock, deadlineAtMs, "recv");
      continue;
    }
    if (errno == EINTR) continue;
    throw Unavailable(errnoString("recv"));
  }
}

std::string recvNow(const Fd& fd, bool* peerClosed) {
  *peerClosed = false;
  char buf[64 * 1024];
  const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
  if (n == 0) {
    *peerClosed = true;
    return std::string();
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return std::string();
  }
  throw Unavailable(errnoString("recv"));
}

std::size_t sendNow(const Fd& fd, std::string_view data) {
  const ssize_t n =
      ::send(fd.get(), data.data(), data.size(), MSG_NOSIGNAL);
  if (n >= 0) return static_cast<std::size_t>(n);
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
  throw Unavailable(errnoString("send"));
}

void socketPair(Fd* a, Fd* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    throw Unavailable(errnoString("socketpair"));
  }
  *a = Fd(fds[0]);
  *b = Fd(fds[1]);
  setNonBlocking(a->get());
  setNonBlocking(b->get());
}

}  // namespace dpss::net
