// Wires the standard admin endpoints onto an HttpAdminServer, so every
// dpss_node role exposes the same surface (DESIGN.md §10):
//   /          — endpoint index
//   /metrics   — Prometheus text (node registry merged with the
//                process-global one: net.server.* lands in the global
//                registry because the event loop runs outside any
//                ScopedRegistry, while rpc.* lands in the node's)
//   /metrics.json — same data as JSON for scripts/dpss_dump.py
//   /healthz   — {node, role, uptime, registry-lease state}
//   /statusz   — served segments, live sessions, chaos counters
//   /tracez    — assembled traces (coordinator) or local spans (workers),
//                plus the slow-query log; ?trace=<hex id> filters
//   /tracez.json — assembled traces as JSON for tooling
//   /queriesz  — slow-query log as JSON-lines (?recent=1 for the
//                rolling all-queries window)
// Everything renders from snapshots; no handler blocks on node locks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/http_admin.h"
#include "obs/metrics.h"
#include "obs/trace_assembly.h"

namespace dpss::net {

/// What a role hands the admin plane. Callbacks may be empty; the
/// corresponding fields render as absent. All callbacks run on the admin
/// server's loop thread and must be thread-safe.
struct AdminPlane {
  std::string nodeName;
  std::string role;
  /// The role's registry; the process-global registry is merged in
  /// automatically (unless this *is* the global registry).
  obs::MetricsRegistry* registry = nullptr;
  /// Trace sink (coordinator only); workers render their local spans.
  obs::TraceCollector* traces = nullptr;
  /// "active" | "expired" | "none" — registry-lease state for /healthz.
  std::function<std::string()> leaseState;
  std::function<std::vector<std::string>()> servedSegments;
  std::function<std::size_t()> liveSessions;
  /// Role-specific /statusz fields, rendered verbatim into the top-level
  /// JSON object: a `"key":value[,"key":value...]` fragment WITHOUT the
  /// surrounding braces. The coordinator reports its leadership +
  /// rebalancer section here; a historical reports its drain state.
  std::function<std::string()> statusFields;
  std::uint64_t startNs = 0;  // obs::nowNanos() at process start
};

void bindAdminEndpoints(HttpAdminServer& server, AdminPlane plane);

}  // namespace dpss::net
