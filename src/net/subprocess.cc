#include "net/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"

namespace dpss::net {

Subprocess::~Subprocess() {
  if (valid() && !reaped_) {
    ::kill(pid_, SIGKILL);
    (void)wait();
  }
}

Subprocess::Subprocess(Subprocess&& o) noexcept
    : pid_(o.pid_), reaped_(o.reaped_), status_(o.status_) {
  o.pid_ = -1;
  o.reaped_ = false;
}

Subprocess& Subprocess::operator=(Subprocess&& o) noexcept {
  if (this != &o) {
    if (valid() && !reaped_) {
      ::kill(pid_, SIGKILL);
      (void)wait();
    }
    pid_ = o.pid_;
    reaped_ = o.reaped_;
    status_ = o.status_;
    o.pid_ = -1;
    o.reaped_ = false;
  }
  return *this;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) throw InvalidArgument("spawn: empty argv");
  // exec-failure reporting channel: CLOEXEC write end survives the fork;
  // a successful exec closes it silently, a failed exec writes errno.
  int pipeFds[2];
  if (::pipe2(pipeFds, O_CLOEXEC) < 0) {
    throw Unavailable(std::string("pipe2: ") + std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipeFds[0]);
    ::close(pipeFds[1]);
    throw Unavailable(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: build the argv array and exec.
    ::close(pipeFds[0]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    const int err = errno;
    (void)!::write(pipeFds[1], &err, sizeof(err));
    ::_exit(127);
  }
  ::close(pipeFds[1]);
  int execErr = 0;
  const ssize_t n = ::read(pipeFds[0], &execErr, sizeof(execErr));
  ::close(pipeFds[0]);
  if (n > 0) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw Unavailable("execv " + argv[0] + ": " + std::strerror(execErr));
  }
  Subprocess p;
  p.pid_ = pid;
  return p;
}

void Subprocess::kill(int signal) {
  if (valid() && !reaped_) ::kill(pid_, signal);
}

void Subprocess::kill() { kill(SIGKILL); }

int Subprocess::wait() {
  if (!valid() || reaped_) return status_;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0) {
    if (errno != EINTR) {
      reaped_ = true;
      return status_;
    }
  }
  status_ = status;
  reaped_ = true;
  return status_;
}

bool Subprocess::running() {
  if (!valid() || reaped_) return false;
  int status = 0;
  const pid_t rc = ::waitpid(pid_, &status, WNOHANG);
  if (rc == pid_) {
    status_ = status;
    reaped_ = true;
    return false;
  }
  return rc == 0;
}

}  // namespace dpss::net
