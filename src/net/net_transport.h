// TransportIface over real TCP sockets.
//
// One NetTransport per OS process: it runs one NetServer hosting every
// logical node bound in this process (a broker process binds "broker"
// and "broker.ctl" on one port) and one NetClient for outbound calls.
// addPeer() maps logical node names to host:port endpoints — the
// distributed analogue of the in-process transport's handler map.
//
// call() builds exactly the envelope the in-process Transport builds
// (optional trace context + raw rpc body), so node handlers cannot tell
// which transport delivered the bytes, and trace trees still span
// processes. Locally bound names are also served over the loopback
// socket rather than short-circuited: every call crosses a real wire.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "cluster/transport.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "net/client.h"
#include "net/server.h"

namespace dpss::net {

struct NetTransportOptions {
  NetServerOptions server;
  NetClientOptions client;
};

class NetTransport final : public cluster::TransportIface {
 public:
  explicit NetTransport(Clock& clock, NetTransportOptions options = {});
  ~NetTransport() override;

  /// Starts the server (binds the listen port). Idempotent.
  void start();
  void stop();

  /// The server's bound port (valid after start()).
  std::uint16_t port() const { return server_.port(); }

  /// Routes calls for `nodeName` to `hostPort` ("127.0.0.1:8401").
  void addPeer(const std::string& nodeName, const std::string& hostPort);
  void removePeer(const std::string& nodeName);

  /// Dynamic route discovery for nodes that joined after launch: when a
  /// callee is neither a static peer nor served locally, the resolver is
  /// asked for its "host:port" (typically read from the node's registry
  /// announcement). Resolved fresh per call — a returned endpoint is not
  /// cached, so a node that moves re-resolves. Pass nullptr to clear
  /// (required before destroying whatever the resolver captures).
  using PeerResolver =
      std::function<std::optional<std::string>(const std::string& nodeName)>;
  void setPeerResolver(PeerResolver resolver);

  // --- TransportIface --------------------------------------------------
  void bind(const std::string& nodeName, cluster::RpcHandler handler) override;
  void unbind(const std::string& nodeName) override;
  bool reachable(const std::string& nodeName) const override;
  std::string call(const std::string& nodeName,
                   const std::string& request) override;
  Clock& clock() override { return clock_; }

 private:
  Endpoint endpointFor(const std::string& nodeName) const DPSS_EXCLUDES(mu_);

  Clock& clock_;
  NetServer server_;
  NetClient client_;

  mutable Mutex mu_;
  std::map<std::string, Endpoint> peers_ DPSS_GUARDED_BY(mu_);
  PeerResolver resolver_ DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::net
