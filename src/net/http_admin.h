// Per-node HTTP admin server — the operator-facing side of the
// observability plane (DESIGN.md §10). Serves GET-only plaintext/JSON
// endpoints (/metrics, /healthz, /tracez, ...) over the same poll-driven
// single-loop-thread model as NetServer, reusing the RAII socket layer.
// It lives in src/net/ (not src/obs/) because dpss_obs deliberately
// links only dpss_common — socket code in obs would cycle the library
// graph — and because src/net/ is the one directory the raw-socket lint
// rule exempts.
//
// This is an admin plane, not a web server, and it is defensive about
// exactly the hostile inputs that matter for a debug port:
//  * request line + headers are capped (431 past maxRequestBytes);
//  * a connection that dribbles a partial request (slowloris) is cut
//    off with 408 at requestDeadlineMs;
//  * malformed request lines get 400, unknown paths 404, non-GET 405;
//  * every response is Connection: close — pipelined garbage after the
//    first request is never parsed.
// Handlers run on the loop thread: every endpoint renders from snapshots
// of lock-cheap state, so there is nothing to gain from a pool and the
// single thread keeps the server trivially race-free.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "net/socket.h"

namespace dpss::net {

struct HttpRequest {
  std::string method;
  std::string path;                          // without the query string
  std::map<std::string, std::string> query;  // decoded k=v params
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpAdminOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick a free port
  std::size_t maxRequestBytes = 8192;
  TimeMs requestDeadlineMs = 5000;  // slowloris cutoff
  std::size_t maxConnections = 64;
};

class HttpAdminServer {
 public:
  HttpAdminServer(Clock& clock, HttpAdminOptions options = {});
  ~HttpAdminServer();
  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  /// Registers/replaces the handler for an exact path. Call before
  /// start() (routes are read on the loop thread without a lock).
  void route(const std::string& path, HttpHandler handler);

  /// Starts listening + the event loop. Throws Unavailable when the
  /// port cannot be bound. Idempotent.
  void start();
  void stop();

  /// The bound port (valid after start()).
  std::uint16_t port() const;

 private:
  struct Conn {
    Fd fd;
    std::string in;          // bytes received so far (pre-dispatch)
    std::string out;         // encoded response awaiting write
    std::size_t outOffset = 0;
    TimeMs deadlineAtMs = 0;  // request must be complete by then
    bool responding = false;  // request handled; draining out then close
  };

  void loop();
  /// Parses + dispatches once conn.in holds a full request; fills
  /// conn.out and flips conn.responding. Returns false to drop the
  /// connection immediately (unrecoverable input).
  void maybeDispatch(Conn& conn);
  std::string handle(const std::string& requestText);

  Clock& clock_;
  HttpAdminOptions options_;
  std::map<std::string, HttpHandler> routes_;  // frozen at start()

  mutable Mutex mu_;
  bool running_ DPSS_GUARDED_BY(mu_) = false;

  Fd listenFd_;
  Fd wakeRead_;
  Fd wakeWrite_;
  std::thread loopThread_;
  // Loop-thread-only state: live connections by id.
  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t nextConnId_ = 1;
};

}  // namespace dpss::net
