// TCP RPC client: per-endpoint connection pool with connect/read/write
// deadlines and reconnect-on-failure.
//
// One call = one request frame + one matching response frame on a pooled
// connection. Failure handling preserves at-most-once handler execution
// from the client's point of view:
//  * If dialing or the *first* write on a pooled (possibly stale)
//    connection fails, the request provably never reached a handler, so
//    the client transparently redials once and resends.
//  * Any failure after bytes hit the wire surfaces as a typed
//    Unavailable/DeadlineExceeded; the retry decision belongs to
//    cluster::callWithPolicy, exactly as with the in-process transport.
// Broken connections are discarded, never returned to the pool.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "net/frame.h"
#include "net/socket.h"

namespace dpss::net {

struct NetClientOptions {
  /// Budget for establishing one TCP connection.
  TimeMs connectTimeoutMs = 2'000;
  /// Budget for one complete call (write request + read response).
  /// 0 = no deadline. Expiry throws DeadlineExceeded.
  TimeMs callTimeoutMs = 10'000;
  /// Idle connections kept per endpoint; extras are closed on release.
  std::size_t maxIdlePerEndpoint = 4;
};

class NetClient {
 public:
  explicit NetClient(Clock& clock, NetClientOptions options = {});
  ~NetClient() = default;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Sends one request payload to `endpoint` ("host:port") and returns
  /// the response payload. kError responses re-throw the server's typed
  /// error; transport failures throw Unavailable / DeadlineExceeded.
  std::string call(const Endpoint& endpoint, const std::string& payload);

  /// Closes every idle pooled connection.
  void closeIdle();

  Clock& clock() { return clock_; }

 private:
  struct Conn {
    Fd fd;
    FrameDecoder decoder;
    bool fresh = true;  // just dialed (never carried a call)
  };

  /// exchange() outcome: a response payload or a server-sent typed
  /// error, kept distinct from transport failures (which throw) because
  /// only the latter may safely trigger a redial + resend.
  struct Exchanged {
    bool isError = false;
    std::string payload;
  };

  Conn checkout(const Endpoint& endpoint) DPSS_EXCLUDES(mu_);
  void checkin(const Endpoint& endpoint, Conn conn) DPSS_EXCLUDES(mu_);
  Conn dial(const Endpoint& endpoint);
  /// One request/response exchange on an established connection. Throws
  /// only transport-level errors.
  Exchanged exchange(Conn& conn, std::uint64_t requestId,
                     const std::string& payload, TimeMs deadlineAtMs);

  Clock& clock_;
  NetClientOptions options_;

  mutable Mutex mu_;
  std::map<Endpoint, std::deque<Conn>> idle_ DPSS_GUARDED_BY(mu_);
  std::uint64_t nextRequestId_ DPSS_GUARDED_BY(mu_) = 1;
};

}  // namespace dpss::net
