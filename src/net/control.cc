#include "net/control.h"

#include <atomic>

#include "cluster/rpc_policy.h"
#include "common/bytes.h"
#include "common/error.h"

namespace dpss::net {

namespace {

std::atomic<bool> g_shutdownRequested{false};

ByteWriter ctlRequest(std::uint8_t subop) {
  ByteWriter w;
  w.u8(cluster::rpc::kControl);
  w.u8(subop);
  return w;
}

}  // namespace

bool shutdownRequested() {
  return g_shutdownRequested.load(std::memory_order_acquire);
}

void bindControl(cluster::TransportIface& transport,
                 const std::string& nodeName, const std::string& role,
                 ControlTargets targets) {
  transport.bind(controlNode(nodeName), [role,
                                         targets](const std::string& body) {
    ByteReader r(body);
    if (r.u8() != cluster::rpc::kControl) {
      throw InvalidArgument("control handler got a non-control rpc");
    }
    const std::uint8_t subop = r.u8();
    ByteWriter w;
    switch (subop) {
      case control_op::kPing:
        w.str(role);
        break;
      case control_op::kLoadDocs: {
        if (targets.historical == nullptr) {
          throw InvalidArgument("control: this role holds no documents");
        }
        const std::string docSource = r.str();
        const std::uint64_t base = r.u64();
        const std::uint64_t n = r.varint();
        std::vector<std::string> docs;
        docs.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) docs.push_back(r.str());
        targets.historical->loadDocuments(docSource, base, std::move(docs));
        break;
      }
      case control_op::kIngest: {
        if (targets.queue == nullptr) {
          throw InvalidArgument("control: this role consumes no queue");
        }
        const std::uint64_t n = r.varint();
        for (std::uint64_t i = 0; i < n; ++i) {
          targets.queue->append(targets.topic, targets.partition, r.str());
        }
        w.u64(targets.queue->endOffset(targets.topic, targets.partition));
        break;
      }
      case control_op::kShutdown:
        g_shutdownRequested.store(true, std::memory_order_release);
        break;
      case control_op::kServedSegments: {
        if (targets.historical == nullptr) {
          throw InvalidArgument("control: this role serves no segments");
        }
        const auto served = targets.historical->servedSegments();
        w.varint(served.size());
        for (const auto& id : served) w.str(id.toString());
        break;
      }
      case control_op::kDecommission:
        if (targets.historical == nullptr) {
          throw InvalidArgument("control: this role cannot drain");
        }
        targets.historical->requestDrain();
        break;
      case control_op::kDrainState: {
        if (targets.historical == nullptr) {
          throw InvalidArgument("control: this role cannot drain");
        }
        w.u8(targets.historical->draining() ? 1 : 0);
        w.u8(targets.historical->drainComplete() ? 1 : 0);
        w.u64(targets.historical->servedSegments().size());
        break;
      }
      default:
        throw InvalidArgument("control: unknown sub-op " +
                              std::to_string(subop));
    }
    return w.take();
  });
}

std::string controlPing(cluster::TransportIface& transport,
                        const std::string& nodeName) {
  OwnedByteReader r(cluster::callWithPolicy(
      transport, controlNode(nodeName), ctlRequest(control_op::kPing).take()));
  return r.str();
}

void controlLoadDocuments(cluster::TransportIface& transport,
                          const std::string& nodeName,
                          const std::string& docSource, std::uint64_t baseIndex,
                          const std::vector<std::string>& documents) {
  ByteWriter w = ctlRequest(control_op::kLoadDocs);
  w.str(docSource);
  w.u64(baseIndex);
  w.varint(documents.size());
  for (const auto& d : documents) w.str(d);
  cluster::callWithPolicy(transport, controlNode(nodeName), w.take());
}

std::uint64_t controlIngest(cluster::TransportIface& transport,
                            const std::string& nodeName,
                            const std::vector<std::string>& payloads) {
  ByteWriter w = ctlRequest(control_op::kIngest);
  w.varint(payloads.size());
  for (const auto& p : payloads) w.str(p);
  OwnedByteReader r(
      cluster::callWithPolicy(transport, controlNode(nodeName), w.take()));
  return r.u64();
}

void controlShutdown(cluster::TransportIface& transport,
                     const std::string& nodeName) {
  cluster::callWithPolicy(transport, controlNode(nodeName),
                          ctlRequest(control_op::kShutdown).take());
}

std::vector<std::string> controlServedSegments(
    cluster::TransportIface& transport, const std::string& nodeName) {
  OwnedByteReader r(
      cluster::callWithPolicy(transport, controlNode(nodeName),
                              ctlRequest(control_op::kServedSegments).take()));
  const std::uint64_t n = r.varint();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.str());
  return out;
}

void controlDecommission(cluster::TransportIface& transport,
                         const std::string& nodeName) {
  cluster::callWithPolicy(transport, controlNode(nodeName),
                          ctlRequest(control_op::kDecommission).take());
}

DrainState controlDrainState(cluster::TransportIface& transport,
                             const std::string& nodeName) {
  OwnedByteReader r(
      cluster::callWithPolicy(transport, controlNode(nodeName),
                              ctlRequest(control_op::kDrainState).take()));
  DrainState state;
  state.draining = r.u8() != 0;
  state.complete = r.u8() != 0;
  state.servedSegments = r.u64();
  return state;
}

}  // namespace dpss::net
