#include "net/server.h"

#include <poll.h>

#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpss::net {

namespace {

const obs::MetricId kBytesIn = obs::internCounter("net.server.bytes_in");
const obs::MetricId kBytesOut = obs::internCounter("net.server.bytes_out");
const obs::MetricId kConnsOpen =
    obs::internGauge("net.server.connections_open");
const obs::MetricId kAccepts = obs::internCounter("net.server.accepts");
const obs::MetricId kAcceptErrors =
    obs::internCounter("net.server.accept_errors");
const obs::MetricId kReadErrors = obs::internCounter("net.server.read_errors");
const obs::MetricId kWriteErrors =
    obs::internCounter("net.server.write_errors");
const obs::MetricId kProtocolErrors =
    obs::internCounter("net.server.protocol_errors");
const obs::MetricId kRequests = obs::internCounter("net.server.requests");

/// Per-op handler latency: one histogram per rpc tag (the first body
/// byte), interned once.
obs::MetricId handleHistogram(std::uint8_t opTag) {
  static const obs::MetricId ids[] = {
      obs::internHistogram("net.server.handle_ns", {{"op", "other"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "query_segment"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "pss_info"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "pss_search"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "stats"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "broker_query"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "broker_search"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "substrate"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "control"}}),
      obs::internHistogram("net.server.handle_ns", {{"op", "spans"}}),
  };
  return opTag >= 1 && opTag <= 9 ? ids[opTag] : ids[0];
}

}  // namespace

NetServer::NetServer(Clock& clock, NetServerOptions options)
    : clock_(clock), options_(std::move(options)) {}

NetServer::~NetServer() { stop(); }

void NetServer::bind(const std::string& nodeName, cluster::RpcHandler handler) {
  MutexLock lock(mu_);
  handlers_[nodeName] = std::move(handler);
}

void NetServer::unbind(const std::string& nodeName) {
  MutexLock lock(mu_);
  handlers_.erase(nodeName);
}

bool NetServer::serves(const std::string& nodeName) const {
  MutexLock lock(mu_);
  return handlers_.count(nodeName) > 0;
}

void NetServer::start() {
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
  }
  listenFd_ = listenOn(options_.host, options_.port);
  socketPair(&wakeRead_, &wakeWrite_);
  pool_ = std::make_shared<ThreadPool>(
      options_.workerThreads == 0 ? 1 : options_.workerThreads);
  loopThread_ = std::thread([this] { loop(); });
}

void NetServer::stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  wake();
  if (loopThread_.joinable()) loopThread_.join();
  // Workers may still be inside handlers; queueResponse drops their
  // output once running_ is false. Destroying the pool joins them.
  pool_.reset();
  obs::currentRegistry().gauge(kConnsOpen).add(
      -static_cast<std::int64_t>(conns_.size()));
  conns_.clear();
  listenFd_.reset();
  wakeRead_.reset();
  wakeWrite_.reset();
  MutexLock lock(mu_);
  pending_.clear();
  connectionCount_ = 0;
}

std::uint16_t NetServer::port() const { return boundPort(listenFd_); }

std::size_t NetServer::connectionCount() const {
  MutexLock lock(mu_);
  return connectionCount_;
}

void NetServer::wake() {
  try {
    sendNow(wakeWrite_, "w");
  } catch (const Error&) {
    // stop() racing a worker; the loop is exiting anyway.
  }
}

void NetServer::queueResponse(std::uint64_t connId, std::string encodedFrame) {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    pending_[connId].push_back(std::move(encodedFrame));
  }
  wake();
}

void NetServer::handleRequest(std::uint64_t connId, Frame request) {
  obs::currentRegistry().counter(kRequests).inc();
  // shared_ptr keeps the pool's task queue valid even if stop() races.
  pool_->submit([this, connId, request = std::move(request)]() mutable {
    std::string payload;
    std::uint8_t kind = frame::kResponse;
    try {
      ByteReader r(request.payload);
      const std::string target = r.str();
      cluster::RpcHandler handler;
      {
        MutexLock lock(mu_);
        const auto it = handlers_.find(target);
        if (it == handlers_.end()) {
          throw Unavailable("no route to node: " + target);
        }
        handler = it->second;
      }
      // Same envelope the in-process transport builds: optional trace
      // context, then the raw rpc body the handler sees.
      obs::TraceContext remote;
      if (r.u8() == 1) remote = obs::TraceContext::deserialize(r);
      const std::string body(r.raw(r.remaining()));
      const std::uint8_t opTag = body.empty() ? 0 : static_cast<std::uint8_t>(
                                                        body[0]);
      obs::TraceScope scope(remote);
      obs::ScopedTimer timer(
          obs::currentRegistry().histogram(handleHistogram(opTag)));
      payload = handler(body);
    } catch (const std::exception& e) {
      kind = frame::kError;
      payload = encodeErrorPayload(e);
    }
    queueResponse(connId,
                  encodeFrame(Frame{kind, request.requestId,
                                    std::move(payload)}));
  });
}

bool NetServer::drainReadable(std::uint64_t connId, Conn& conn) {
  try {
    for (;;) {
      bool peerClosed = false;
      const std::string bytes = recvNow(conn.fd, &peerClosed);
      if (!bytes.empty()) {
        obs::currentRegistry().counter(kBytesIn).inc(bytes.size());
        conn.decoder.feed(bytes);
      }
      while (auto f = conn.decoder.next()) {
        if (f->kind != frame::kRequest) {
          throw CorruptData("unexpected frame kind from client: " +
                            std::to_string(f->kind));
        }
        handleRequest(connId, std::move(*f));
      }
      if (peerClosed) return false;
      if (bytes.empty()) return true;  // EAGAIN: wait for the next poll
    }
  } catch (const CorruptData& e) {
    obs::currentRegistry().counter(kProtocolErrors).inc();
    DPSS_LOG(Warn) << "net server: protocol error, closing connection: "
                   << e.what();
    return false;
  } catch (const Error& e) {
    obs::currentRegistry().counter(kReadErrors).inc();
    DPSS_LOG(Warn) << "net server: read error: " << e.what();
    return false;
  }
}

bool NetServer::drainWritable(Conn& conn) {
  try {
    while (!conn.outbox.empty()) {
      const std::string& front = conn.outbox.front();
      const std::size_t n = sendNow(
          conn.fd, std::string_view(front).substr(conn.outboxOffset));
      if (n == 0) return true;  // socket full; poll for POLLOUT
      obs::currentRegistry().counter(kBytesOut).inc(n);
      conn.outboxOffset += n;
      if (conn.outboxOffset == front.size()) {
        conn.outbox.pop_front();
        conn.outboxOffset = 0;
      }
    }
    return true;
  } catch (const Error& e) {
    obs::currentRegistry().counter(kWriteErrors).inc();
    DPSS_LOG(Warn) << "net server: write error: " << e.what();
    return false;
  }
}

void NetServer::loop() {
  std::vector<struct pollfd> pfds;
  std::vector<std::uint64_t> ids;  // ids[i] = connId of pfds[i], 0 = special
  for (;;) {
    {
      MutexLock lock(mu_);
      if (!running_) return;
      // Move worker responses into connection outboxes.
      for (auto& [connId, frames] : pending_) {
        const auto it = conns_.find(connId);
        if (it == conns_.end()) continue;  // connection died; drop
        for (auto& f : frames) it->second.outbox.push_back(std::move(f));
      }
      pending_.clear();
      connectionCount_ = conns_.size();
    }

    pfds.clear();
    ids.clear();
    pfds.push_back({listenFd_.get(), POLLIN, 0});
    ids.push_back(0);
    pfds.push_back({wakeRead_.get(), POLLIN, 0});
    ids.push_back(0);
    for (auto& [connId, conn] : conns_) {
      short events = POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      pfds.push_back({conn.fd.get(), events, 0});
      ids.push_back(connId);
    }

    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (rc < 0 && errno != EINTR) {
      DPSS_LOG(Error) << "net server: poll failed, shutting down loop";
      return;
    }
    if (rc <= 0) continue;

    // Wakeup channel: drain and fall through to the outbox sweep above.
    if ((pfds[1].revents & POLLIN) != 0) {
      bool closed = false;
      while (!recvNow(wakeRead_, &closed).empty()) {
      }
    }

    // New connections.
    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        Fd accepted;
        try {
          accepted = acceptOne(listenFd_);
        } catch (const Error& e) {
          obs::currentRegistry().counter(kAcceptErrors).inc();
          DPSS_LOG(Warn) << "net server: accept error: " << e.what();
          break;
        }
        if (!accepted.valid()) break;
        obs::currentRegistry().counter(kAccepts).inc();
        obs::currentRegistry().gauge(kConnsOpen).add(1);
        Conn conn;
        conn.fd = std::move(accepted);
        conns_.emplace(nextConnId_++, std::move(conn));
      }
    }

    // Connection I/O.
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      const std::uint64_t connId = ids[i];
      const auto it = conns_.find(connId);
      if (it == conns_.end()) continue;
      bool alive = true;
      if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfds[i].revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (pfds[i].revents & POLLIN) != 0) {
        alive = drainReadable(connId, it->second);
      }
      if (alive && (pfds[i].revents & POLLOUT) != 0) {
        alive = drainWritable(it->second);
      }
      if (!alive) {
        obs::currentRegistry().gauge(kConnsOpen).add(-1);
        conns_.erase(it);
        MutexLock lock(mu_);
        pending_.erase(connId);
      }
    }
  }
}

}  // namespace dpss::net
