// Wire framing for the TCP transport (src/net/) — the real-network
// counterpart of the in-process Transport's function call.
//
// Every frame is length-prefixed binary:
//
//   [u32 length][u8 kind][u64 requestId][payload ...]
//
// where `length` counts everything after itself (kind + requestId +
// payload, little-endian like the rest of the codec). Three kinds:
//
//   kRequest  — payload = [str targetNode][envelope], envelope being the
//               same trace-context + rpc-body bytes the in-process
//               transport passes to handlers. One server socket hosts
//               several logical nodes (e.g. "broker" and "broker.ctl"),
//               so the target rides in the frame.
//   kResponse — payload = raw handler response bytes.
//   kError    — payload = [u8 errorCode][str message]; decodes back into
//               the same typed dpss exception the handler threw, so
//               Unavailable/NotFound/... survive the wire and the
//               retry/failover logic in rpc_policy keeps working.
//
// Decoding never trusts the peer: oversized lengths, unknown kinds and
// truncated payloads all surface as typed CorruptData — never a crash,
// never an unbounded allocation, never a hang.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/error.h"

namespace dpss::net {

namespace frame {
constexpr std::uint8_t kRequest = 1;
constexpr std::uint8_t kResponse = 2;
constexpr std::uint8_t kError = 3;

/// Frame header bytes after the length prefix: kind (1) + requestId (8).
constexpr std::size_t kHeaderBytes = 9;
/// Hard cap on `length`; anything larger is a protocol violation (or an
/// attack) and is rejected before any allocation happens.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB
}  // namespace frame

/// One decoded frame.
struct Frame {
  std::uint8_t kind = frame::kRequest;
  std::uint64_t requestId = 0;
  std::string payload;

  friend bool operator==(const Frame& a, const Frame& b) = default;
};

/// Serializes a frame, length prefix included.
std::string encodeFrame(const Frame& f);

/// Incremental decoder: feed() whatever the socket produced (any
/// fragmentation — single bytes, half headers, several frames at once),
/// then drain complete frames with next(). Throws CorruptData on an
/// oversized length or unknown kind; after a throw the stream is
/// poisoned and the connection must be dropped.
class FrameDecoder {
 public:
  /// Appends raw socket bytes to the internal buffer.
  void feed(std::string_view bytes);

  /// Pops the next complete frame, or nullopt if more bytes are needed.
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  void compact();

  std::string buf_;
  std::size_t pos_ = 0;
};

// --- typed errors over the wire -----------------------------------------

/// Stable wire codes for the dpss error hierarchy (common/error.h).
namespace wire_error {
constexpr std::uint8_t kInvalidArgument = 1;
constexpr std::uint8_t kNotFound = 2;
constexpr std::uint8_t kAlreadyExists = 3;
constexpr std::uint8_t kCorruptData = 4;
constexpr std::uint8_t kCryptoError = 5;
constexpr std::uint8_t kUnavailable = 6;
constexpr std::uint8_t kDeadlineExceeded = 7;
constexpr std::uint8_t kInternalError = 8;
constexpr std::uint8_t kFenced = 9;
}  // namespace wire_error

/// Builds a kError frame payload for an in-flight exception. Call from a
/// catch block; unknown exception types map to kInternalError.
std::string encodeErrorPayload(const std::exception& e);

/// Decodes a kError payload and throws the corresponding typed dpss
/// exception. Unknown codes throw InternalError (never silent).
[[noreturn]] void throwWireError(const std::string& payload);

}  // namespace dpss::net
