// dpss_node — one cluster role per OS process, wired over TCP.
//
//   dpss_node --role coordinator --name coordinator --listen 127.0.0.1:8400
//   dpss_node --role historical  --name hist-0 --listen 127.0.0.1:8401
//             --peer substrate=127.0.0.1:8400
//   dpss_node --role broker      --name broker --listen 127.0.0.1:8404
//             --peer substrate=127.0.0.1:8400 --peer hist-0=127.0.0.1:8401
//
// By default the coordinator process hosts the authoritative substrates
// (registry, metadata store, deep storage) behind a SubstrateService;
// every other role reaches them through Remote* proxies, so the node
// classes themselves run completely unchanged. For coordinator failover
// the substrates move to their own process (--role substrate) and any
// number of coordinators run against it with --peer substrate=...; they
// elect a leader through the registry and a SIGKILLed leader is replaced
// within its lease (DESIGN.md §13).
//
// Peer routing is static for launch-time nodes (--peer flags), dynamic
// for runtime-joined ones: nodes started with --advertise publish their
// endpoint in their announcement, and processes holding a registry
// mirror resolve unknown callees through it (NetTransport resolver). See
// README "Multi-process quickstart" / "Scaling the cluster" and DESIGN.md
// §9, §13.
//
// Each process also binds "<name>.ctl" (rpc::kControl) for out-of-band
// driving: ping, document loading (historical), event ingestion
// (realtime), decommission/drain-state (historical), and graceful
// shutdown. A draining historical exits on its own once the coordinator
// marks the drain complete.
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/broker_node.h"
#include "cluster/coordinator_node.h"
#include "cluster/historical_node.h"
#include "cluster/message_queue.h"
#include "cluster/metastore.h"
#include "cluster/metastore_journal.h"
#include "cluster/names.h"
#include "cluster/realtime_node.h"
#include "cluster/registry.h"
#include "cluster/rpc_policy.h"
#include "cluster/span_ship.h"
#include "cluster/stats.h"
#include "cluster/subscription_broker.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/logging.h"
#include "net/admin_plane.h"
#include "net/control.h"
#include "net/http_admin.h"
#include "net/net_transport.h"
#include "net/socket.h"
#include "net/substrate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_assembly.h"
#include "storage/deep_storage.h"
#include "storage/schema.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

struct Flags {
  std::string role;
  std::string name;
  std::string listenHost = "127.0.0.1";
  std::uint16_t listenPort = 0;
  std::vector<std::pair<std::string, std::string>> peers;  // name -> host:port
  dpss::TimeMs tickMs = 50;
  dpss::TimeMs leaseMs = 5'000;    // coordinator: substrate lease
  dpss::TimeMs syncMs = 100;       // workers: mirror sync period
  dpss::TimeMs heartbeatMs = 500;  // workers: lease heartbeat period
  std::size_t brokerCache = 4096;  // 0 disables the result cache
  std::size_t rpcAttempts = 3;
  dpss::TimeMs rpcBackoffMs = 50;
  dpss::TimeMs rpcDeadlineMs = 5'000;
  // realtime role
  std::string topic = "events";
  std::size_t partition = 0;
  std::string dataSource = "rt-events";
  // observability plane
  int adminPort = -1;  // -1 = no admin server; 0 = pick a free port
  std::string traceSink = "coordinator";  // "" disables span shipping
  dpss::TimeMs slowQueryMs = 500;         // broker slow-query threshold
  // elastic membership (DESIGN.md §13)
  std::string metaDir;     // substrate/coordinator: journal+snapshot dir
  std::string advertise;   // historical: announced endpoint ("" = listen)
  std::size_t movesPerCycle = 8;      // coordinator rebalancer budget
  std::size_t maxPendingLoads = 4;    // coordinator per-node load cap
};

[[noreturn]] void usage(const std::string& error) {
  std::cerr << "dpss_node: " << error << "\n"
            << "usage: dpss_node --role "
               "substrate|coordinator|historical|realtime|broker"
            << " --name NAME --listen HOST:PORT\n"
            << "  [--peer NAME=HOST:PORT]... [--tick-ms N] [--lease-ms N]\n"
            << "  [--sync-ms N] [--heartbeat-ms N] [--broker-cache N]\n"
            << "  [--rpc-attempts N] [--rpc-backoff-ms N] [--rpc-deadline-ms "
               "N]\n"
            << "  [--topic T --partition P --data-source DS] [--verbose]\n"
            << "  [--admin-port P (0 = auto)] [--trace-sink NODE ('' off)]\n"
            << "  [--slow-query-ms N] [--meta-dir DIR] [--advertise HOST:PORT]\n"
            << "  [--moves-per-cycle N] [--max-pending-loads N]\n";
  std::exit(2);
}

Flags parseFlags(int argc, char** argv) {
  Flags f;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(std::string("missing value for ") + argv[i]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--role") {
      f.role = next(i);
    } else if (arg == "--name") {
      f.name = next(i);
    } else if (arg == "--listen") {
      const dpss::net::Endpoint ep = dpss::net::Endpoint::parse(next(i));
      f.listenHost = ep.host;
      f.listenPort = ep.port;
    } else if (arg == "--peer") {
      const std::string v = next(i);
      const auto eq = v.find('=');
      if (eq == std::string::npos) usage("--peer wants NAME=HOST:PORT");
      f.peers.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg == "--tick-ms") {
      f.tickMs = std::stol(next(i));
    } else if (arg == "--lease-ms") {
      f.leaseMs = std::stol(next(i));
    } else if (arg == "--sync-ms") {
      f.syncMs = std::stol(next(i));
    } else if (arg == "--heartbeat-ms") {
      f.heartbeatMs = std::stol(next(i));
    } else if (arg == "--broker-cache") {
      f.brokerCache = std::stoul(next(i));
    } else if (arg == "--rpc-attempts") {
      f.rpcAttempts = std::stoul(next(i));
    } else if (arg == "--rpc-backoff-ms") {
      f.rpcBackoffMs = std::stol(next(i));
    } else if (arg == "--rpc-deadline-ms") {
      f.rpcDeadlineMs = std::stol(next(i));
    } else if (arg == "--topic") {
      f.topic = next(i);
    } else if (arg == "--partition") {
      f.partition = std::stoul(next(i));
    } else if (arg == "--data-source") {
      f.dataSource = next(i);
    } else if (arg == "--admin-port") {
      f.adminPort = std::stoi(next(i));
    } else if (arg == "--trace-sink") {
      f.traceSink = next(i);
    } else if (arg == "--slow-query-ms") {
      f.slowQueryMs = std::stol(next(i));
    } else if (arg == "--meta-dir") {
      f.metaDir = next(i);
    } else if (arg == "--advertise") {
      f.advertise = next(i);
    } else if (arg == "--moves-per-cycle") {
      f.movesPerCycle = std::stoul(next(i));
    } else if (arg == "--max-pending-loads") {
      f.maxPendingLoads = std::stoul(next(i));
    } else if (arg == "--verbose") {
      dpss::setLogLevel(dpss::LogLevel::kInfo);
    } else {
      usage("unknown flag " + arg);
    }
  }
  if (f.role.empty()) usage("--role is required");
  if (f.name.empty()) usage("--name is required");
  if (f.listenPort == 0) usage("--listen with an explicit port is required");
  return f;
}

dpss::cluster::RpcPolicy rpcPolicy(const Flags& f) {
  dpss::cluster::RpcPolicy policy;
  policy.maxAttempts = f.rpcAttempts;
  policy.initialBackoffMs = f.rpcBackoffMs;
  policy.deadlineMs = f.rpcDeadlineMs;
  return policy;
}

dpss::net::RemoteRegistryOptions registryOptions(const Flags& f) {
  dpss::net::RemoteRegistryOptions opts;
  opts.syncIntervalMs = f.syncMs;
  opts.heartbeatIntervalMs = f.heartbeatMs;
  opts.rpc = rpcPolicy(f);
  return opts;
}

/// The fixed schema dpss_node's realtime role indexes (the realtime
/// pipeline example's ad-event shape); events arrive over the control
/// channel as storage::encodeInputRow payloads matching it.
dpss::storage::Schema realtimeSchema() {
  dpss::storage::Schema s;
  s.dimensions = {"publisher", "country"};
  s.metrics = {{"impressions", dpss::storage::MetricType::kLong},
               {"revenue", dpss::storage::MetricType::kDouble}};
  return s;
}

void announceReady(const Flags& f, dpss::net::NetTransport& transport) {
  std::cout << "dpss_node " << f.role << " '" << f.name << "' listening on "
            << f.listenHost << ":" << transport.port() << std::endl;
}

/// Starts the HTTP admin server when --admin-port was given (0 picks a
/// free port) and prints the bound port on its own parseable line.
std::unique_ptr<dpss::net::HttpAdminServer> startAdmin(
    const Flags& f, dpss::Clock& clock, dpss::net::AdminPlane plane) {
  if (f.adminPort < 0) return nullptr;
  dpss::net::HttpAdminOptions opts;
  opts.host = f.listenHost;
  opts.port = static_cast<std::uint16_t>(f.adminPort);
  auto server = std::make_unique<dpss::net::HttpAdminServer>(clock, opts);
  dpss::net::bindAdminEndpoints(*server, std::move(plane));
  server->start();
  std::cout << "dpss_node '" << f.name << "' admin on " << f.listenHost << ":"
            << server->port() << std::endl;
  return server;
}

/// The span shipper every worker role runs from its tick: drains the
/// node registry's span ring toward --trace-sink (default the
/// coordinator). Disabled with --trace-sink ''.
std::optional<dpss::cluster::SpanShipper> makeShipper(
    const Flags& f, dpss::obs::MetricsRegistry& registry,
    dpss::net::NetTransport& transport) {
  if (f.traceSink.empty()) return std::nullopt;
  dpss::cluster::SpanShipper::Options opts;
  opts.rpc = rpcPolicy(f);
  return std::make_optional<dpss::cluster::SpanShipper>(registry, transport,
                                                        f.traceSink, opts);
}

void mainLoop(const Flags& f, dpss::Clock& clock,
              const std::function<void()>& tick,
              const std::function<bool()>& done = nullptr) {
  while (g_stop == 0 && !dpss::net::shutdownRequested()) {
    tick();
    if (done && done()) return;
    clock.sleepFor(f.tickMs);
  }
}

/// The authoritative metadata store: journaled + snapshotted when
/// --meta-dir was given (survives a process restart), in-memory
/// otherwise.
std::unique_ptr<dpss::cluster::MetaStore> makeMetaStore(const Flags& f) {
  if (f.metaDir.empty()) return std::make_unique<dpss::cluster::MetaStore>();
  return std::make_unique<dpss::cluster::JournaledMetaStore>(f.metaDir);
}

/// True when `name` is wired to another process. A peer entry that points
/// back at this process's own listen endpoint does not count: launcher
/// scripts hand every node the same wiring map, so a standalone
/// coordinator routinely sees "substrate=<its own address>".
bool hasRemotePeer(const Flags& f, const std::string& name) {
  for (const auto& [peer, hostPort] : f.peers) {
    if (peer != name) continue;
    try {
      const dpss::net::Endpoint ep = dpss::net::Endpoint::parse(hostPort);
      if (ep.host == f.listenHost && ep.port == f.listenPort) continue;
    } catch (const dpss::Error&) {
    }
    return true;
  }
  return false;
}

/// Routes callees unknown at launch (runtime scale-out) through their
/// registry announcements. The caller must clear the resolver before
/// `registry` dies.
void installResolver(dpss::net::NetTransport& transport,
                     dpss::cluster::Registry& registry) {
  transport.setPeerResolver(
      [&registry](const std::string& node) -> std::optional<std::string> {
        const auto data =
            registry.getData(dpss::cluster::paths::nodeAnnouncement(node));
        if (!data) return std::nullopt;
        const std::string ep = dpss::cluster::paths::announceEndpoint(*data);
        if (ep.empty()) return std::nullopt;
        return ep;
      });
}

/// The realtime role's /statusz subscription table (one entry per hosted
/// standing query), consumed by `dpss_dump.py --subscriptions`.
std::string subscriptionStatusFields(dpss::cluster::RealtimeNode& node) {
  std::string out = "\"subscriptions\":[";
  bool first = true;
  for (const auto& s : node.subscriptionStatus()) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(s.id);
    out += ",\"active\":" + std::string(s.active ? "true" : "false");
    out += ",\"age_ms\":" + std::to_string(s.ageMs);
    out += ",\"fill_percent\":" + std::to_string(s.fillPercent);
    out += ",\"documents_seen\":" + std::to_string(s.documentsSeen);
    out += ",\"snapshots_sealed\":" + std::to_string(s.snapshotsSealed);
    out += ",\"pending_snapshots\":" + std::to_string(s.pendingSnapshots);
    out += ",\"acked_seq\":" + std::to_string(s.ackedSeq);
    out += "}";
  }
  out += "]";
  return out;
}

/// The broker's /statusz view of the registered standing queries.
std::string subscriptionBrokerStatusFields(
    dpss::cluster::SubscriptionBroker& subs, dpss::Clock& clock) {
  const dpss::TimeMs now = clock.nowMs();
  std::string out = "\"subscriptions\":[";
  bool first = true;
  for (const auto& s : subs.status()) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(s.id);
    out += ",\"doc_source\":\"" + s.docSource + "\"";
    out += ",\"age_ms\":" + std::to_string(now - s.createdMs);
    out += ",\"snapshots_collected\":" + std::to_string(s.snapshotsCollected);
    out += "}";
  }
  out += "],\"subscription_reconcile_rounds\":" +
         std::to_string(subs.reconcileRounds());
  return out;
}

/// The coordinator's role-specific /statusz section: election state plus
/// the most recent reconciliation cycle's rebalancer numbers.
std::string coordinatorStatusFields(dpss::cluster::CoordinatorNode& c) {
  const auto s = c.lastStats();
  std::string out;
  out += "\"leader\":" + std::string(s.leader ? "true" : "false");
  out += ",\"epoch\":" + std::to_string(s.epoch);
  out += ",\"rebalancer\":{";
  out += "\"activeNodes\":" + std::to_string(s.activeNodes);
  out += ",\"drainingNodes\":" + std::to_string(s.drainingNodes);
  out += ",\"imbalance\":" + std::to_string(s.imbalance);
  out += ",\"movesIssued\":" + std::to_string(s.movesIssued);
  out += ",\"throttledMoves\":" + std::to_string(s.throttledMoves);
  out += ",\"throttledLoads\":" + std::to_string(s.throttledLoads);
  out += ",\"totalLoads\":" + std::to_string(c.totalLoadsIssued());
  out += ",\"totalDrops\":" + std::to_string(c.totalDropsIssued());
  out += ",\"totalMoves\":" + std::to_string(c.totalMovesIssued());
  out += "}";
  return out;
}

/// Standalone substrate host for multi-coordinator deployments: the
/// registry, metadata store and deep storage live here so no coordinator
/// is special and a SIGKILLed leader loses nothing but its lease.
int runSubstrate(const Flags& f, dpss::Clock& clock,
                 dpss::net::NetTransport& transport) {
  dpss::cluster::Registry registry;
  auto metaStore = makeMetaStore(f);
  dpss::storage::MemoryDeepStorage deepStorage;
  dpss::net::SubstrateService substrate(registry, *metaStore, deepStorage,
                                        clock, f.leaseMs);
  transport.bind(dpss::net::kSubstrateNode, substrate.handler());
  dpss::net::bindControl(transport, f.name, "substrate", {});
  dpss::net::AdminPlane plane;
  plane.nodeName = f.name;
  plane.role = "substrate";
  plane.registry = &dpss::obs::globalRegistry();
  plane.leaseState = [] { return std::string("none"); };
  plane.liveSessions = [&substrate] { return substrate.liveSessionCount(); };
  plane.startNs = dpss::obs::nowNanos();
  auto admin = startAdmin(f, clock, std::move(plane));
  announceReady(f, transport);
  mainLoop(f, clock, [&] { substrate.sweepExpiredLeases(); });
  if (admin) admin->stop();
  return 0;
}

int runCoordinator(const Flags& f, dpss::Clock& clock,
                   dpss::net::NetTransport& transport) {
  // Two deployments share this role. Standalone (no substrate peer): this
  // process hosts the authoritative substrates, as the single-coordinator
  // topology always has. Standby-capable (--peer substrate=...): the
  // substrates live in a substrate process and several coordinators run
  // this same code against Remote* proxies, electing a leader among
  // themselves — the node class cannot tell the difference.
  const bool remoteSubstrate = hasRemotePeer(f, dpss::net::kSubstrateNode);
  std::unique_ptr<dpss::cluster::Registry> localRegistry;
  std::unique_ptr<dpss::cluster::MetaStore> localMeta;
  std::unique_ptr<dpss::storage::MemoryDeepStorage> localDeep;
  std::unique_ptr<dpss::net::SubstrateService> substrate;
  std::unique_ptr<dpss::net::RemoteRegistry> remoteRegistry;
  std::unique_ptr<dpss::net::RemoteMetaStore> remoteMeta;
  dpss::cluster::Registry* registry = nullptr;
  dpss::cluster::MetaStore* metaStore = nullptr;
  if (remoteSubstrate) {
    remoteRegistry = std::make_unique<dpss::net::RemoteRegistry>(
        transport, dpss::net::kSubstrateNode, registryOptions(f));
    remoteMeta = std::make_unique<dpss::net::RemoteMetaStore>(
        transport, dpss::net::kSubstrateNode, rpcPolicy(f));
    registry = remoteRegistry.get();
    metaStore = remoteMeta.get();
  } else {
    localRegistry = std::make_unique<dpss::cluster::Registry>();
    localMeta = makeMetaStore(f);
    localDeep = std::make_unique<dpss::storage::MemoryDeepStorage>();
    substrate = std::make_unique<dpss::net::SubstrateService>(
        *localRegistry, *localMeta, *localDeep, clock, f.leaseMs);
    transport.bind(dpss::net::kSubstrateNode, substrate->handler());
    registry = localRegistry.get();
    metaStore = localMeta.get();
  }
  dpss::cluster::CoordinatorOptions copts;
  copts.maxMovesPerCycle = f.movesPerCycle;
  copts.maxPendingLoadsPerNode = f.maxPendingLoads;
  dpss::cluster::CoordinatorNode coordinator(f.name, *registry, *metaStore,
                                             clock, copts);
  // Stats collection dials every announced node; runtime-joined ones are
  // only dialable through their announced endpoints.
  installResolver(transport, *registry);
  // The coordinator is the cluster's trace sink: workers ship their span
  // batches here (rpc::kSpans) and /tracez serves the assembled trees.
  dpss::obs::TraceCollector collector;
  transport.bind(f.name, [&collector](const std::string& req) {
    if (req.empty()) throw dpss::CorruptData("empty coordinator rpc");
    switch (static_cast<std::uint8_t>(req[0])) {
      case dpss::cluster::rpc::kStats:
        return dpss::cluster::handleStatsRpc(dpss::obs::globalRegistry(),
                                             req.substr(1));
      case dpss::cluster::rpc::kSpans:
        return dpss::cluster::handleSpansRpc(collector, req);
      default:
        throw dpss::CorruptData("unknown coordinator rpc tag");
    }
  });
  dpss::net::bindControl(transport, f.name, "coordinator", {});
  dpss::net::AdminPlane plane;
  plane.nodeName = f.name;
  plane.role = "coordinator";
  // The coordinator's own runOnce() runs outside any ScopedRegistry, so
  // its metrics live in the process-global registry.
  plane.registry = &dpss::obs::globalRegistry();
  plane.traces = &collector;
  plane.leaseState = [] { return std::string("none"); };
  if (substrate) {
    plane.liveSessions = [&substrate] {
      return substrate->liveSessionCount();
    };
  }
  plane.statusFields = [&coordinator] {
    return coordinatorStatusFields(coordinator);
  };
  plane.startNs = dpss::obs::nowNanos();
  auto admin = startAdmin(f, clock, std::move(plane));
  if (remoteRegistry) remoteRegistry->start();
  announceReady(f, transport);
  // Local spans (coordinator.* and net.server handlers) feed the
  // collector directly; there is no point shipping them over TCP.
  std::uint64_t spanCursor = 0;
  mainLoop(f, clock, [&] {
    coordinator.runOnce();
    if (substrate) substrate->sweepExpiredLeases();
    auto spans = dpss::obs::globalRegistry().spans().collectSince(&spanCursor);
    if (!spans.empty()) collector.add(std::move(spans));
  });
  if (remoteRegistry) remoteRegistry->stop();
  transport.setPeerResolver(nullptr);  // it captures *registry
  if (admin) admin->stop();
  return 0;
}

int runHistorical(const Flags& f, dpss::Clock& clock,
                  dpss::net::NetTransport& transport) {
  dpss::net::RemoteRegistry registry(transport, dpss::net::kSubstrateNode,
                                     registryOptions(f));
  dpss::net::RemoteDeepStorage deepStorage(transport,
                                           dpss::net::kSubstrateNode,
                                           rpcPolicy(f));
  dpss::cluster::HistoricalNodeOptions nodeOptions;
  // Announce a dialable endpoint so processes that did not know this node
  // at launch (runtime scale-out) can resolve a route to it.
  nodeOptions.advertiseEndpoint =
      f.advertise.empty()
          ? f.listenHost + ":" + std::to_string(transport.port())
          : f.advertise;
  dpss::cluster::HistoricalNode node(f.name, registry, deepStorage, transport,
                                     nodeOptions);
  dpss::net::ControlTargets targets;
  targets.historical = &node;
  dpss::net::bindControl(transport, f.name, "historical", targets);
  node.start();
  registry.start();
  dpss::net::AdminPlane plane;
  plane.nodeName = f.name;
  plane.role = "historical";
  plane.registry = &node.metrics();
  plane.leaseState = [&node] {
    return std::string(node.registryLeaseActive() ? "active" : "expired");
  };
  plane.servedSegments = [&node] {
    std::vector<std::string> out;
    for (const auto& id : node.servedSegments()) out.push_back(id.toString());
    return out;
  };
  plane.statusFields = [&node] {
    std::string out;
    out += "\"pending_loads\":" + std::to_string(node.pendingLoads());
    out += ",\"drain\":{\"draining\":";
    out += node.draining() ? "true" : "false";
    out += ",\"complete\":";
    out += node.drainComplete() ? "true" : "false";
    out += "}";
    return out;
  };
  plane.startNs = dpss::obs::nowNanos();
  auto admin = startAdmin(f, clock, std::move(plane));
  auto shipper = makeShipper(f, node.metrics(), transport);
  announceReady(f, transport);
  mainLoop(
      f, clock,
      [&] {
        node.tick();
        if (shipper) shipper->tick();
      },
      // A drained node has nothing left to serve: deregister and exit so
      // the operator (or launcher) can reclaim the process.
      [&node] { return node.drainComplete(); });
  if (node.drainComplete()) {
    std::cout << "dpss_node '" << f.name << "' drain complete, exiting"
              << std::endl;
  }
  registry.stop();
  node.stop();
  if (admin) admin->stop();
  return 0;
}

int runRealtime(const Flags& f, dpss::Clock& clock,
                dpss::net::NetTransport& transport) {
  dpss::net::RemoteRegistry registry(transport, dpss::net::kSubstrateNode,
                                     registryOptions(f));
  dpss::net::RemoteMetaStore metaStore(transport, dpss::net::kSubstrateNode,
                                       rpcPolicy(f));
  dpss::net::RemoteDeepStorage deepStorage(transport,
                                           dpss::net::kSubstrateNode,
                                           rpcPolicy(f));
  // The queue is process-local — the node consumes its own partition's
  // log, like a Kafka consumer colocated with its broker — and the
  // control channel is its producer.
  dpss::cluster::MessageQueue queue;
  queue.createTopic(f.topic, f.partition + 1);
  dpss::cluster::NodeDisk disk;
  dpss::cluster::RealtimeNode node(f.name, registry, queue, f.topic,
                                   f.partition, deepStorage, metaStore,
                                   transport, clock, realtimeSchema(),
                                   f.dataSource, disk);
  dpss::net::ControlTargets targets;
  targets.queue = &queue;
  targets.topic = f.topic;
  targets.partition = f.partition;
  dpss::net::bindControl(transport, f.name, "realtime", targets);
  // A process restarted right after a crash races its dead predecessor's
  // ephemeral announcement: wait out the lease sweep instead of dying.
  for (int attempt = 0;; ++attempt) {
    try {
      node.start();
      break;
    } catch (const dpss::AlreadyExists&) {
      if (attempt >= 40 || g_stop != 0) throw;
      clock.sleepFor(250);
    }
  }
  registry.start();
  dpss::net::AdminPlane plane;
  plane.nodeName = f.name;
  plane.role = "realtime";
  plane.registry = &node.metrics();
  plane.leaseState = [&node] {
    return std::string(node.registryLeaseActive() ? "active" : "expired");
  };
  plane.servedSegments = [&node] {
    std::vector<std::string> out;
    for (const auto& id : node.announcedSegments()) out.push_back(id.toString());
    return out;
  };
  plane.statusFields = [&node] { return subscriptionStatusFields(node); };
  plane.startNs = dpss::obs::nowNanos();
  auto admin = startAdmin(f, clock, std::move(plane));
  auto shipper = makeShipper(f, node.metrics(), transport);
  announceReady(f, transport);
  mainLoop(f, clock, [&] {
    node.tick();
    if (shipper) shipper->tick();
  });
  registry.stop();
  node.stop();
  if (admin) admin->stop();
  return 0;
}

int runBroker(const Flags& f, dpss::Clock& clock,
              dpss::net::NetTransport& transport) {
  dpss::net::RemoteRegistry registry(transport, dpss::net::kSubstrateNode,
                                     registryOptions(f));
  // The subscription plane persists standing queries in the authoritative
  // metastore (journaled when the substrate runs with --meta-dir, so they
  // survive coordinator failover) and fans them out to realtime nodes.
  dpss::net::RemoteMetaStore metaStore(transport, dpss::net::kSubstrateNode,
                                       rpcPolicy(f));
  dpss::cluster::BrokerOptions options;
  options.resultCacheCapacity = f.brokerCache;
  options.rpcPolicy = rpcPolicy(f);
  options.slowQueryMs = f.slowQueryMs;
  dpss::cluster::BrokerNode broker(f.name, registry, transport, options);
  dpss::cluster::SubscriptionBrokerOptions subOptions;
  subOptions.rpc = rpcPolicy(f);
  dpss::cluster::SubscriptionBroker subscriptions(registry, metaStore,
                                                  transport, subOptions);
  broker.attachSubscriptions(&subscriptions);
  // The broker dials whatever serves a segment; historicals that joined
  // after launch are routed through their announced endpoints.
  installResolver(transport, registry);
  dpss::net::bindControl(transport, f.name, "broker", {});
  broker.start();
  registry.start();
  dpss::net::AdminPlane plane;
  plane.nodeName = f.name;
  plane.role = "broker";
  plane.registry = &broker.metrics();
  plane.leaseState = [&broker] {
    return std::string(broker.registryLeaseActive() ? "active" : "expired");
  };
  plane.statusFields = [&subscriptions, &clock] {
    return subscriptionBrokerStatusFields(subscriptions, clock);
  };
  plane.startNs = dpss::obs::nowNanos();
  auto admin = startAdmin(f, clock, std::move(plane));
  auto shipper = makeShipper(f, broker.metrics(), transport);
  announceReady(f, transport);
  // The reconcile loop is throttled well below the tick rate: it probes
  // every realtime node, which is pointless more than ~twice a second.
  dpss::TimeMs lastReconcile = 0;
  mainLoop(f, clock, [&] {
    if (shipper) shipper->tick();
    const dpss::TimeMs now = clock.nowMs();
    if (now - lastReconcile >= 500) {
      lastReconcile = now;
      try {
        subscriptions.reconcile();
      } catch (const dpss::Error&) {
        // Substrate unreachable: the next round retries.
      }
    }
  });
  registry.stop();
  broker.stop();
  transport.setPeerResolver(nullptr);  // it captures `registry`
  if (admin) admin->stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags f = parseFlags(argc, argv);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // The process-global registry collects everything recorded outside a
  // ScopedRegistry (net loop threads, the coordinator's whole plane);
  // name it after this node so merged /metrics label those series too.
  // Safe here: no other thread exists yet.
  dpss::obs::globalRegistry().setNodeName(f.name);

  dpss::Clock& clock = dpss::SystemClock::instance();
  dpss::net::NetTransportOptions topts;
  topts.server.host = f.listenHost;
  topts.server.port = f.listenPort;
  dpss::net::NetTransport transport(clock, topts);
  try {
    transport.start();
    for (const auto& [name, hostPort] : f.peers) {
      transport.addPeer(name, hostPort);
    }
    int rc = 0;
    if (f.role == "substrate") {
      rc = runSubstrate(f, clock, transport);
    } else if (f.role == "coordinator") {
      rc = runCoordinator(f, clock, transport);
    } else if (f.role == "historical") {
      rc = runHistorical(f, clock, transport);
    } else if (f.role == "realtime") {
      rc = runRealtime(f, clock, transport);
    } else if (f.role == "broker") {
      rc = runBroker(f, clock, transport);
    } else {
      usage("unknown role " + f.role);
    }
    transport.stop();
    return rc;
  } catch (const dpss::Error& e) {
    std::cerr << "dpss_node '" << f.name << "': " << e.what() << std::endl;
    return 1;
  }
}
