#include "net/frame.h"

#include <cstring>

namespace dpss::net {

namespace {

std::uint32_t readU32Le(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));  // codec is little-endian, as is x86/arm
  return v;
}

std::uint64_t readU64Le(const char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

std::string encodeFrame(const Frame& f) {
  const std::uint64_t length = frame::kHeaderBytes + f.payload.size();
  if (length > frame::kMaxFrameBytes) {
    throw InvalidArgument("frame payload too large: " +
                          std::to_string(f.payload.size()) + " bytes");
  }
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(length));
  w.u8(f.kind);
  w.u64(f.requestId);
  w.raw(f.payload);
  return w.take();
}

void FrameDecoder::feed(std::string_view bytes) { buf_.append(bytes); }

void FrameDecoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection doesn't grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < sizeof(std::uint32_t)) return std::nullopt;
  const std::uint32_t length = readU32Le(buf_.data() + pos_);
  if (length < frame::kHeaderBytes) {
    throw CorruptData("frame length " + std::to_string(length) +
                      " below header size");
  }
  if (length > frame::kMaxFrameBytes) {
    throw CorruptData("oversized frame: " + std::to_string(length) +
                      " bytes (max " + std::to_string(frame::kMaxFrameBytes) +
                      ")");
  }
  if (avail < sizeof(std::uint32_t) + length) return std::nullopt;

  const char* p = buf_.data() + pos_ + sizeof(std::uint32_t);
  Frame f;
  f.kind = static_cast<std::uint8_t>(*p);
  if (f.kind != frame::kRequest && f.kind != frame::kResponse &&
      f.kind != frame::kError) {
    throw CorruptData("unknown frame kind: " + std::to_string(f.kind));
  }
  f.requestId = readU64Le(p + 1);
  f.payload.assign(p + frame::kHeaderBytes, length - frame::kHeaderBytes);
  pos_ += sizeof(std::uint32_t) + length;
  compact();
  return f;
}

std::string encodeErrorPayload(const std::exception& e) {
  std::uint8_t code = wire_error::kInternalError;
  // Most-derived first: DeadlineExceeded is an Unavailable.
  if (dynamic_cast<const DeadlineExceeded*>(&e) != nullptr) {
    code = wire_error::kDeadlineExceeded;
  } else if (dynamic_cast<const Unavailable*>(&e) != nullptr) {
    code = wire_error::kUnavailable;
  } else if (dynamic_cast<const InvalidArgument*>(&e) != nullptr) {
    code = wire_error::kInvalidArgument;
  } else if (dynamic_cast<const NotFound*>(&e) != nullptr) {
    code = wire_error::kNotFound;
  } else if (dynamic_cast<const AlreadyExists*>(&e) != nullptr) {
    code = wire_error::kAlreadyExists;
  } else if (dynamic_cast<const CorruptData*>(&e) != nullptr) {
    code = wire_error::kCorruptData;
  } else if (dynamic_cast<const CryptoError*>(&e) != nullptr) {
    code = wire_error::kCryptoError;
  } else if (dynamic_cast<const Fenced*>(&e) != nullptr) {
    code = wire_error::kFenced;
  }
  ByteWriter w;
  w.u8(code);
  w.str(e.what());
  return w.take();
}

void throwWireError(const std::string& payload) {
  ByteReader r(payload);
  const std::uint8_t code = r.u8();
  const std::string msg = r.str();
  switch (code) {
    case wire_error::kInvalidArgument:
      throw InvalidArgument(msg);
    case wire_error::kNotFound:
      throw NotFound(msg);
    case wire_error::kAlreadyExists:
      throw AlreadyExists(msg);
    case wire_error::kCorruptData:
      throw CorruptData(msg);
    case wire_error::kCryptoError:
      throw CryptoError(msg);
    case wire_error::kUnavailable:
      throw Unavailable(msg);
    case wire_error::kDeadlineExceeded:
      throw DeadlineExceeded(msg);
    case wire_error::kInternalError:
      throw InternalError(msg);
    case wire_error::kFenced:
      throw Fenced(msg);
    default:
      throw InternalError("unknown wire error code " + std::to_string(code) +
                          ": " + msg);
  }
}

}  // namespace dpss::net
