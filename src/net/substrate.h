// Cross-process substrates: how worker processes reach the coordinator
// process's authoritative Registry / MetaStore / DeepStorage.
//
// The single-process cluster hands every node a reference to the same
// Registry (the in-process ZooKeeper), MetaStore (the in-process MySQL)
// and DeepStorage (the in-process HDFS). In a multi-process deployment
// those live in the coordinator process behind a SubstrateService bound
// as logical node "substrate" (rpc::kSubstrate); worker processes use:
//
//  * RemoteRegistry — a Registry subclass that doubles as a local,
//    watch-firing mirror. Mutations are forwarded to the authority
//    synchronously (read-your-writes), then applied to the mirror;
//    reads and watches are served entirely from the mirror; a sync
//    thread pulls versioned snapshots and reconciles the mirror through
//    the base-class ops so watches fire naturally; a heartbeat thread
//    keeps per-session leases alive — a missed lease expires the local
//    session exactly like a ZK session loss, which is what the nodes'
//    existing re-registration logic (PR 4) already handles.
//  * RemoteMetaStore / RemoteDeepStorage — plain forwarding proxies.
//
// Every remote call goes through cluster::callWithPolicy, so retries,
// backoff and deadlines govern substrate traffic like any other RPC.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/metastore.h"
#include "cluster/registry.h"
#include "cluster/rpc_policy.h"
#include "cluster/transport.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "storage/deep_storage.h"

namespace dpss::net {

/// Default logical node name the substrate service binds as.
inline constexpr const char* kSubstrateNode = "substrate";

/// Sub-operation codes, the byte after rpc::kSubstrate.
namespace substrate_op {
constexpr std::uint8_t kRegOpenSession = 1;
constexpr std::uint8_t kRegHeartbeat = 2;
constexpr std::uint8_t kRegCloseSession = 3;
constexpr std::uint8_t kRegCreate = 4;
constexpr std::uint8_t kRegSetData = 5;
constexpr std::uint8_t kRegRemove = 6;
constexpr std::uint8_t kRegSnapshot = 7;
constexpr std::uint8_t kRegCreateFenced = 8;
constexpr std::uint8_t kRegSetDataFenced = 9;
constexpr std::uint8_t kMetaUpsert = 10;
constexpr std::uint8_t kMetaMarkUnused = 11;
constexpr std::uint8_t kMetaGet = 12;
constexpr std::uint8_t kMetaUsed = 13;
constexpr std::uint8_t kMetaAll = 14;
constexpr std::uint8_t kMetaSetRules = 15;
constexpr std::uint8_t kMetaRulesFor = 16;
constexpr std::uint8_t kMetaSetDefaultRules = 17;
constexpr std::uint8_t kDsPut = 20;
constexpr std::uint8_t kDsGet = 21;
constexpr std::uint8_t kDsExists = 22;
constexpr std::uint8_t kDsRemove = 23;
constexpr std::uint8_t kDsList = 24;
constexpr std::uint8_t kDsChecksum = 25;
constexpr std::uint8_t kDsVerify = 26;
constexpr std::uint8_t kRegAcquireLeader = 30;
constexpr std::uint8_t kMetaSubUpsert = 31;
constexpr std::uint8_t kMetaSubRemove = 32;
constexpr std::uint8_t kMetaSubList = 33;
}  // namespace substrate_op

/// Serves the authoritative substrates over rpc::kSubstrate. Host the
/// handler on the coordinator process's transport:
///   transport.bind(kSubstrateNode, service.handler());
/// and call sweepExpiredLeases() from the process's periodic loop so
/// crashed workers lose their ephemerals (ZK lease-timeout semantics).
class SubstrateService {
 public:
  SubstrateService(cluster::Registry& registry, cluster::MetaStore& metaStore,
                   storage::DeepStorage& deepStorage, Clock& clock,
                   TimeMs leaseMs = 5'000);

  cluster::RpcHandler handler();

  /// Expires every session whose last heartbeat is older than the lease.
  /// Returns the number of sessions expired.
  std::size_t sweepExpiredLeases();

  std::size_t liveSessionCount() const;

 private:
  std::string handle(const std::string& body);

  struct Lease {
    cluster::SessionPtr session;
    TimeMs lastBeatMs = 0;
  };

  cluster::Registry& registry_;
  cluster::MetaStore& metaStore_;
  storage::DeepStorage& deepStorage_;
  Clock& clock_;
  TimeMs leaseMs_;

  mutable Mutex mu_;
  std::map<std::uint64_t, Lease> leases_ DPSS_GUARDED_BY(mu_);
  std::uint64_t nextToken_ DPSS_GUARDED_BY(mu_) = 1;
};

// --- worker-side proxies -------------------------------------------------

struct RemoteRegistryOptions {
  /// Mirror reconciliation period (snapshot pull).
  TimeMs syncIntervalMs = 100;
  /// Session heartbeat period; keep well under the service's lease.
  TimeMs heartbeatIntervalMs = 500;
  /// Policy for every substrate RPC.
  cluster::RpcPolicy rpc{};
};

class RemoteRegistry final : public cluster::Registry {
 public:
  RemoteRegistry(cluster::TransportIface& transport, std::string substrateNode,
                 RemoteRegistryOptions options = {});
  ~RemoteRegistry() override;

  /// Starts the sync + heartbeat threads (idempotent).
  void start();
  void stop();

  /// One synchronous mirror reconciliation / heartbeat round — the
  /// loops call these; tests may too.
  void syncNow();
  void heartbeatNow();

  // Mutations forward to the authority, then apply to the local mirror.
  cluster::SessionPtr connect(const std::string& ownerName) override;
  void create(const std::string& path, const std::string& data,
              const cluster::SessionPtr& session, bool ephemeral) override;
  void setData(const std::string& path, const std::string& data) override;
  void remove(const std::string& path) override;
  void expire(const cluster::SessionPtr& session) override;
  // Fenced writes and leader election go to the authority, where the
  // epoch check is atomic with the mutation; the mirror just follows.
  void createFenced(const std::string& path, const std::string& data,
                    const cluster::SessionPtr& session, bool ephemeral,
                    const std::string& fencePath, std::uint64_t epoch) override;
  void setDataFenced(const std::string& path, const std::string& data,
                     const std::string& fencePath,
                     std::uint64_t epoch) override;
  std::uint64_t acquireLeadership(const std::string& leaderPath,
                                  const std::string& epochPath,
                                  const std::string& ownerTag,
                                  const cluster::SessionPtr& session) override;
  // Reads, watches, dump() and version() inherit the mirror's behavior.

 private:
  std::string call(const std::string& bytes);
  void applySnapshot(std::uint64_t version,
                     std::vector<cluster::RegistryEntry> entries);
  std::optional<std::uint64_t> tokenFor(const cluster::SessionPtr& session)
      DPSS_EXCLUDES(mu_);

  cluster::TransportIface& transport_;
  std::string substrateNode_;
  RemoteRegistryOptions options_;

  // Serializes forwarded mutations against mirror reconciliation so a
  // stale snapshot cannot undo a just-applied local write. Recursive:
  // applying a mutation fires watch callbacks synchronously, and those
  // callbacks (broker view invalidation, historical load processing) may
  // re-enter a mutator on the same thread.
  std::recursive_mutex syncMu_;
  std::uint64_t mutationFloor_ = 0;  // guarded by syncMu_

  mutable Mutex mu_;
  struct SessionRef {
    std::uint64_t token = 0;
    std::weak_ptr<cluster::RegistrySession> session;
  };
  // local session id -> authority token.
  std::map<std::uint64_t, SessionRef> sessions_ DPSS_GUARDED_BY(mu_);
  cluster::SessionPtr mirrorSession_ DPSS_GUARDED_BY(mu_);

  std::atomic<bool> threadsRunning_{false};
  std::thread syncThread_;
  std::thread heartbeatThread_;
};

class RemoteMetaStore final : public cluster::MetaStore {
 public:
  RemoteMetaStore(cluster::TransportIface& transport, std::string substrateNode,
                  cluster::RpcPolicy rpc = {});

  void upsertSegment(const cluster::SegmentRecord& record) override;
  void markUnused(const storage::SegmentId& id) override;
  std::optional<cluster::SegmentRecord> getSegment(
      const storage::SegmentId& id) const override;
  std::vector<cluster::SegmentRecord> usedSegments() const override;
  std::vector<cluster::SegmentRecord> allSegments() const override;
  void setRules(const std::string& dataSource,
                cluster::LoadRules rules) override;
  cluster::LoadRules rulesFor(const std::string& dataSource) const override;
  void setDefaultRules(cluster::LoadRules rules) override;
  void upsertSubscription(const cluster::SubscriptionRecord& record) override;
  void removeSubscription(std::uint64_t id) override;
  std::vector<cluster::SubscriptionRecord> subscriptions() const override;

 private:
  std::string call(const std::string& bytes) const;

  cluster::TransportIface& transport_;
  std::string substrateNode_;
  cluster::RpcPolicy rpc_;
};

class RemoteDeepStorage final : public storage::DeepStorage {
 public:
  RemoteDeepStorage(cluster::TransportIface& transport,
                    std::string substrateNode, cluster::RpcPolicy rpc = {});

  void put(const std::string& key, const std::string& bytes) override;
  std::string get(const std::string& key) override;
  bool exists(const std::string& key) override;
  void remove(const std::string& key) override;
  std::vector<std::string> list() override;
  std::optional<std::uint64_t> storedChecksum(const std::string& key) override;
  bool verify(const std::string& key) override;

 private:
  std::string call(const std::string& bytes);

  cluster::TransportIface& transport_;
  std::string substrateNode_;
  cluster::RpcPolicy rpc_;
};

}  // namespace dpss::net
