#include "net/http_admin.h"

#include <poll.h>

#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpss::net {

namespace {

const obs::MetricId kRequests = obs::internCounter("http.admin.requests");
const obs::MetricId kErrors = obs::internCounter("http.admin.errors");
const obs::MetricId kBytesOut = obs::internCounter("http.admin.bytes_out");
const obs::MetricId kOversize =
    obs::internCounter("http.admin.oversize_closes");
const obs::MetricId kDeadlineCloses =
    obs::internCounter("http.admin.deadline_closes");
const obs::MetricId kConnsRejected =
    obs::internCounter("http.admin.connections_rejected");

const char* reasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

std::string encodeResponse(const HttpResponse& resp) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    reasonPhrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.contentType + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  return out;
}

std::string decodePercent(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

/// Parses "METHOD SP target SP HTTP/1.x"; false on anything else.
bool parseRequestLine(std::string_view line, HttpRequest* req) {
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  const std::string_view version = line.substr(sp2 + 1);
  if (version.substr(0, 7) != "HTTP/1.") return false;
  req->method = std::string(line.substr(0, sp1));
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const std::size_t qmark = target.find('?');
  req->path = std::string(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (!pair.empty()) {
        req->query[decodePercent(pair.substr(0, eq))] =
            eq == std::string_view::npos ? ""
                                         : decodePercent(pair.substr(eq + 1));
      }
      if (amp == std::string_view::npos) break;
      qs.remove_prefix(amp + 1);
    }
  }
  return true;
}

}  // namespace

HttpAdminServer::HttpAdminServer(Clock& clock, HttpAdminOptions options)
    : clock_(clock), options_(std::move(options)) {}

HttpAdminServer::~HttpAdminServer() { stop(); }

void HttpAdminServer::route(const std::string& path, HttpHandler handler) {
  routes_[path] = std::move(handler);
}

void HttpAdminServer::start() {
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
  }
  listenFd_ = listenOn(options_.host, options_.port);
  socketPair(&wakeRead_, &wakeWrite_);
  loopThread_ = std::thread([this] { loop(); });
}

void HttpAdminServer::stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  try {
    sendNow(wakeWrite_, "w");
  } catch (const Error&) {
    // loop already exiting
  }
  if (loopThread_.joinable()) loopThread_.join();
  conns_.clear();
  listenFd_.reset();
  wakeRead_.reset();
  wakeWrite_.reset();
}

std::uint16_t HttpAdminServer::port() const { return boundPort(listenFd_); }

std::string HttpAdminServer::handle(const std::string& requestText) {
  obs::currentRegistry().counter(kRequests).inc();
  HttpResponse resp;
  HttpRequest req;
  const std::size_t eol = requestText.find("\r\n");
  const std::string_view line =
      std::string_view(requestText).substr(0, eol);
  if (!parseRequestLine(line, &req)) {
    resp = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (req.method != "GET") {
    resp = HttpResponse{405, "text/plain; charset=utf-8",
                        "only GET is served here\n"};
  } else {
    // Request paths are attacker-controlled: boundedLabelValue caps the
    // label set so a path scan cannot exhaust the metric table.
    obs::currentRegistry()
        .counter(obs::internCounter(
            "http.admin.requests_by_path",
            {{"path", obs::boundedLabelValue("http.admin.requests_by_path",
                                             "path", req.path)}}))
        .inc();
    const auto it = routes_.find(req.path);
    if (it == routes_.end()) {
      std::string body = "not found; try:\n";
      for (const auto& [path, handler] : routes_) body += "  " + path + "\n";
      resp = HttpResponse{404, "text/plain; charset=utf-8", std::move(body)};
    } else {
      try {
        resp = it->second(req);
      } catch (const std::exception& e) {
        resp = HttpResponse{500, "text/plain; charset=utf-8",
                            std::string("internal error: ") + e.what() + "\n"};
      }
    }
  }
  if (resp.status >= 400) obs::currentRegistry().counter(kErrors).inc();
  return encodeResponse(resp);
}

void HttpAdminServer::maybeDispatch(Conn& conn) {
  if (conn.responding) return;
  if (conn.in.size() > options_.maxRequestBytes) {
    obs::currentRegistry().counter(kOversize).inc();
    obs::currentRegistry().counter(kErrors).inc();
    conn.out = encodeResponse(HttpResponse{
        431, "text/plain; charset=utf-8", "request too large\n"});
    conn.responding = true;
    return;
  }
  // A request is complete at the end of its headers; bodies are never
  // read (GET-only plane), and anything pipelined past the first request
  // dies with the Connection: close.
  if (conn.in.find("\r\n\r\n") == std::string::npos &&
      conn.in.find("\n\n") == std::string::npos) {
    return;
  }
  conn.out = handle(conn.in);
  conn.responding = true;
}

void HttpAdminServer::loop() {
  std::vector<struct pollfd> pfds;
  std::vector<std::uint64_t> ids;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (!running_) return;
    }

    // Slowloris sweep: connections that never completed their request.
    const TimeMs now = clock_.nowMs();
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn& conn = it->second;
      if (!conn.responding && now >= conn.deadlineAtMs) {
        obs::currentRegistry().counter(kDeadlineCloses).inc();
        obs::currentRegistry().counter(kErrors).inc();
        conn.out = encodeResponse(HttpResponse{
            408, "text/plain; charset=utf-8", "request timeout\n"});
        conn.responding = true;
        // Best-effort synchronous flush; the deadline already expired,
        // so the connection closes now either way.
        try {
          sendNow(conn.fd, conn.out);
        } catch (const Error&) {
        }
        it = conns_.erase(it);
        continue;
      }
      ++it;
    }

    pfds.clear();
    ids.clear();
    pfds.push_back({listenFd_.get(), POLLIN, 0});
    ids.push_back(0);
    pfds.push_back({wakeRead_.get(), POLLIN, 0});
    ids.push_back(0);
    for (auto& [connId, conn] : conns_) {
      short events = POLLIN;
      if (conn.responding && conn.outOffset < conn.out.size()) {
        events = POLLOUT;
      }
      pfds.push_back({conn.fd.get(), events, 0});
      ids.push_back(connId);
    }

    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) {
      DPSS_LOG(Error) << "http admin: poll failed, shutting down loop";
      return;
    }
    if (rc <= 0) continue;

    if ((pfds[1].revents & POLLIN) != 0) {
      bool closed = false;
      while (!recvNow(wakeRead_, &closed).empty()) {
      }
    }

    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        Fd accepted;
        try {
          accepted = acceptOne(listenFd_);
        } catch (const Error& e) {
          DPSS_LOG(Warn) << "http admin: accept error: " << e.what();
          break;
        }
        if (!accepted.valid()) break;
        if (conns_.size() >= options_.maxConnections) {
          obs::currentRegistry().counter(kConnsRejected).inc();
          continue;  // RAII closes it
        }
        Conn conn;
        conn.fd = std::move(accepted);
        conn.deadlineAtMs = clock_.nowMs() + options_.requestDeadlineMs;
        conns_.emplace(nextConnId_++, std::move(conn));
      }
    }

    for (std::size_t i = 2; i < pfds.size(); ++i) {
      const auto it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      bool alive = true;
      if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (pfds[i].revents & (POLLIN | POLLOUT)) == 0) {
        alive = false;
      }
      if (alive && (pfds[i].revents & POLLIN) != 0) {
        try {
          bool peerClosed = false;
          const std::string bytes = recvNow(conn.fd, &peerClosed);
          conn.in += bytes;
          maybeDispatch(conn);
          if (peerClosed && !conn.responding) alive = false;
        } catch (const Error&) {
          alive = false;
        }
      }
      if (alive && conn.responding && (pfds[i].revents & POLLOUT) != 0) {
        try {
          const std::size_t n = sendNow(
              conn.fd, std::string_view(conn.out).substr(conn.outOffset));
          obs::currentRegistry().counter(kBytesOut).inc(n);
          conn.outOffset += n;
          if (conn.outOffset >= conn.out.size()) alive = false;  // done
        } catch (const Error&) {
          alive = false;
        }
      }
      if (!alive) conns_.erase(it);
    }
  }
}

}  // namespace dpss::net
