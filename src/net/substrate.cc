#include "net/substrate.h"

#include <algorithm>
#include <set>

#include "cluster/meta_codec.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/logging.h"

namespace dpss::net {

namespace {

using cluster::LoadRules;
using cluster::RegistryEntry;
using cluster::SegmentRecord;
using cluster::SubscriptionRecord;

// Row codecs are shared with the metastore journal (one format on the
// wire and on disk).
using cluster::meta_codec::readRecord;
using cluster::meta_codec::readRecords;
using cluster::meta_codec::readRules;
using cluster::meta_codec::readSubscription;
using cluster::meta_codec::readSubscriptions;
using cluster::meta_codec::writeRecord;
using cluster::meta_codec::writeRecords;
using cluster::meta_codec::writeRules;
using cluster::meta_codec::writeSubscription;
using cluster::meta_codec::writeSubscriptions;

/// Request builder: [rpc::kSubstrate][subop][args...].
ByteWriter subRequest(std::uint8_t subop) {
  ByteWriter w;
  w.u8(cluster::rpc::kSubstrate);
  w.u8(subop);
  return w;
}

}  // namespace

// --- SubstrateService ----------------------------------------------------

SubstrateService::SubstrateService(cluster::Registry& registry,
                                   cluster::MetaStore& metaStore,
                                   storage::DeepStorage& deepStorage,
                                   Clock& clock, TimeMs leaseMs)
    : registry_(registry),
      metaStore_(metaStore),
      deepStorage_(deepStorage),
      clock_(clock),
      leaseMs_(leaseMs) {}

cluster::RpcHandler SubstrateService::handler() {
  return [this](const std::string& body) { return handle(body); };
}

std::size_t SubstrateService::liveSessionCount() const {
  MutexLock lock(mu_);
  return leases_.size();
}

std::size_t SubstrateService::sweepExpiredLeases() {
  std::vector<cluster::SessionPtr> expired;
  {
    MutexLock lock(mu_);
    const TimeMs now = clock_.nowMs();
    for (auto it = leases_.begin(); it != leases_.end();) {
      if (now - it->second.lastBeatMs > leaseMs_) {
        expired.push_back(it->second.session);
        it = leases_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Expire outside the lock: registry watches fire synchronously.
  for (const auto& session : expired) {
    DPSS_LOG(Warn) << "substrate: lease expired for session of '"
                   << session->owner() << "'";
    registry_.expire(session);
  }
  return expired.size();
}

std::string SubstrateService::handle(const std::string& body) {
  ByteReader r(body);
  const std::uint8_t tag = r.u8();
  if (tag != cluster::rpc::kSubstrate) {
    throw InvalidArgument("substrate handler got rpc tag " +
                          std::to_string(tag));
  }
  const std::uint8_t subop = r.u8();
  ByteWriter w;
  // Resolves a session token, refreshing its lease.
  const auto sessionFor = [this](std::uint64_t token) {
    MutexLock lock(mu_);
    const auto it = leases_.find(token);
    if (it == leases_.end()) {
      throw Unavailable("substrate: unknown or expired session token");
    }
    it->second.lastBeatMs = clock_.nowMs();
    return it->second.session;
  };

  switch (subop) {
    case substrate_op::kRegOpenSession: {
      const std::string owner = r.str();
      cluster::SessionPtr session = registry_.connect(owner);
      MutexLock lock(mu_);
      const std::uint64_t token = nextToken_++;
      leases_[token] = Lease{std::move(session), clock_.nowMs()};
      w.u64(token);
      break;
    }
    case substrate_op::kRegHeartbeat: {
      const std::uint64_t token = r.u64();
      MutexLock lock(mu_);
      const auto it = leases_.find(token);
      if (it == leases_.end()) {
        w.u8(0);
      } else {
        it->second.lastBeatMs = clock_.nowMs();
        w.u8(1);
      }
      break;
    }
    case substrate_op::kRegCloseSession: {
      const std::uint64_t token = r.u64();
      cluster::SessionPtr session;
      {
        MutexLock lock(mu_);
        const auto it = leases_.find(token);
        if (it != leases_.end()) {
          session = it->second.session;
          leases_.erase(it);
        }
      }
      if (session != nullptr) registry_.expire(session);
      break;
    }
    case substrate_op::kRegCreate: {
      const std::uint64_t token = r.u64();
      const std::string path = r.str();
      const std::string data = r.str();
      const bool ephemeral = r.u8() != 0;
      registry_.create(path, data, sessionFor(token), ephemeral);
      w.u64(registry_.version());
      break;
    }
    case substrate_op::kRegSetData: {
      const std::string path = r.str();
      const std::string data = r.str();
      registry_.setData(path, data);
      w.u64(registry_.version());
      break;
    }
    case substrate_op::kRegRemove: {
      const std::string path = r.str();
      registry_.remove(path);
      w.u64(registry_.version());
      break;
    }
    case substrate_op::kRegCreateFenced: {
      const std::uint64_t token = r.u64();
      const std::string path = r.str();
      const std::string data = r.str();
      const bool ephemeral = r.u8() != 0;
      const std::string fencePath = r.str();
      const std::uint64_t epoch = r.u64();
      registry_.createFenced(path, data, sessionFor(token), ephemeral,
                             fencePath, epoch);
      w.u64(registry_.version());
      break;
    }
    case substrate_op::kRegSetDataFenced: {
      const std::string path = r.str();
      const std::string data = r.str();
      const std::string fencePath = r.str();
      const std::uint64_t epoch = r.u64();
      registry_.setDataFenced(path, data, fencePath, epoch);
      w.u64(registry_.version());
      break;
    }
    case substrate_op::kRegAcquireLeader: {
      const std::uint64_t token = r.u64();
      const std::string leaderPath = r.str();
      const std::string epochPath = r.str();
      const std::string ownerTag = r.str();
      const std::uint64_t epoch = registry_.acquireLeadership(
          leaderPath, epochPath, ownerTag, sessionFor(token));
      w.u64(epoch);
      w.u64(registry_.version());
      break;
    }
    case substrate_op::kRegSnapshot: {
      // Version first, read before the dump: a concurrent mutation can
      // only make the dump newer than the version, and a too-old version
      // just means the mirror re-pulls next round.
      w.u64(registry_.version());
      const auto entries = registry_.dump();
      w.varint(entries.size());
      for (const auto& e : entries) {
        w.str(e.path);
        w.str(e.data);
        w.u8(e.ephemeral ? 1 : 0);
      }
      break;
    }
    case substrate_op::kMetaUpsert:
      metaStore_.upsertSegment(readRecord(r));
      break;
    case substrate_op::kMetaMarkUnused:
      metaStore_.markUnused(storage::SegmentId::deserialize(r));
      break;
    case substrate_op::kMetaGet: {
      const auto rec = metaStore_.getSegment(storage::SegmentId::deserialize(r));
      w.u8(rec.has_value() ? 1 : 0);
      if (rec.has_value()) writeRecord(w, *rec);
      break;
    }
    case substrate_op::kMetaUsed:
      writeRecords(w, metaStore_.usedSegments());
      break;
    case substrate_op::kMetaAll:
      writeRecords(w, metaStore_.allSegments());
      break;
    case substrate_op::kMetaSetRules: {
      const std::string ds = r.str();
      metaStore_.setRules(ds, readRules(r));
      break;
    }
    case substrate_op::kMetaRulesFor:
      writeRules(w, metaStore_.rulesFor(r.str()));
      break;
    case substrate_op::kMetaSetDefaultRules:
      metaStore_.setDefaultRules(readRules(r));
      break;
    case substrate_op::kMetaSubUpsert:
      metaStore_.upsertSubscription(readSubscription(r));
      break;
    case substrate_op::kMetaSubRemove:
      metaStore_.removeSubscription(r.varint());
      break;
    case substrate_op::kMetaSubList:
      writeSubscriptions(w, metaStore_.subscriptions());
      break;
    case substrate_op::kDsPut: {
      const std::string key = r.str();
      deepStorage_.put(key, r.str());
      break;
    }
    case substrate_op::kDsGet:
      w.str(deepStorage_.get(r.str()));
      break;
    case substrate_op::kDsExists:
      w.u8(deepStorage_.exists(r.str()) ? 1 : 0);
      break;
    case substrate_op::kDsRemove:
      deepStorage_.remove(r.str());
      break;
    case substrate_op::kDsList: {
      const auto keys = deepStorage_.list();
      w.varint(keys.size());
      for (const auto& k : keys) w.str(k);
      break;
    }
    case substrate_op::kDsChecksum: {
      const auto sum = deepStorage_.storedChecksum(r.str());
      w.u8(sum.has_value() ? 1 : 0);
      if (sum.has_value()) w.u64(*sum);
      break;
    }
    case substrate_op::kDsVerify:
      w.u8(deepStorage_.verify(r.str()) ? 1 : 0);
      break;
    default:
      throw InvalidArgument("substrate: unknown sub-op " +
                            std::to_string(subop));
  }
  return w.take();
}

// --- RemoteRegistry ------------------------------------------------------

RemoteRegistry::RemoteRegistry(cluster::TransportIface& transport,
                               std::string substrateNode,
                               RemoteRegistryOptions options)
    : transport_(transport),
      substrateNode_(std::move(substrateNode)),
      options_(options) {}

RemoteRegistry::~RemoteRegistry() { stop(); }

std::string RemoteRegistry::call(const std::string& bytes) {
  return cluster::callWithPolicy(transport_, substrateNode_, bytes,
                                 options_.rpc);
}

void RemoteRegistry::start() {
  bool expected = false;
  if (!threadsRunning_.compare_exchange_strong(expected, true)) return;
  // Heartbeats ride their own thread so a long reconcile (watch
  // callbacks may download segments) can never starve the lease.
  const auto sleepChunked = [this](TimeMs total) {
    // 10ms granularity so stop() is prompt without a timed condvar.
    for (TimeMs slept = 0; slept < total && threadsRunning_.load();
         slept += 10) {
      transport_.clock().sleepFor(10);
    }
  };
  syncThread_ = std::thread([this, sleepChunked] {
    while (threadsRunning_.load()) {
      try {
        syncNow();
      } catch (const Error& e) {
        DPSS_LOG(Debug) << "remote registry: sync failed: " << e.what();
      }
      sleepChunked(options_.syncIntervalMs);
    }
  });
  heartbeatThread_ = std::thread([this, sleepChunked] {
    while (threadsRunning_.load()) {
      try {
        heartbeatNow();
      } catch (const Error& e) {
        DPSS_LOG(Debug) << "remote registry: heartbeat failed: " << e.what();
      }
      sleepChunked(options_.heartbeatIntervalMs);
    }
  });
}

void RemoteRegistry::stop() {
  if (!threadsRunning_.exchange(false)) return;
  if (syncThread_.joinable()) syncThread_.join();
  if (heartbeatThread_.joinable()) heartbeatThread_.join();
}

std::optional<std::uint64_t> RemoteRegistry::tokenFor(
    const cluster::SessionPtr& session) {
  if (session == nullptr) return std::nullopt;
  MutexLock lock(mu_);
  const auto it = sessions_.find(session->id());
  if (it == sessions_.end()) return std::nullopt;
  return it->second.token;
}

cluster::SessionPtr RemoteRegistry::connect(const std::string& ownerName) {
  // Open the authority session first: if the substrate is unreachable
  // the caller gets Unavailable and no local state is created.
  ByteWriter req = subRequest(substrate_op::kRegOpenSession);
  req.str(ownerName);
  OwnedByteReader resp(call(req.take()));
  const std::uint64_t token = resp.u64();

  cluster::SessionPtr session = Registry::connect(ownerName);
  MutexLock lock(mu_);
  sessions_[session->id()] = SessionRef{token, session};
  return session;
}

void RemoteRegistry::create(const std::string& path, const std::string& data,
                            const cluster::SessionPtr& session,
                            bool ephemeral) {
  const auto token = tokenFor(session);
  if (!token.has_value()) {
    throw Unavailable("remote registry: session has no authority token");
  }
  std::lock_guard<std::recursive_mutex> sync(syncMu_);
  ByteWriter req = subRequest(substrate_op::kRegCreate);
  req.u64(*token);
  req.str(path);
  req.str(data);
  req.u8(ephemeral ? 1 : 0);
  OwnedByteReader resp(call(req.take()));
  mutationFloor_ = std::max(mutationFloor_, resp.u64());
  // Mirror apply is best-effort: the sync loop may already have pulled
  // this write (then the data matches), and reconcile fixes any drift.
  try {
    Registry::create(path, data, session, ephemeral);
  } catch (const AlreadyExists&) {
    try {
      Registry::setData(path, data);
    } catch (const Error&) {
    }
  }
}

void RemoteRegistry::setData(const std::string& path, const std::string& data) {
  std::lock_guard<std::recursive_mutex> sync(syncMu_);
  ByteWriter req = subRequest(substrate_op::kRegSetData);
  req.str(path);
  req.str(data);
  OwnedByteReader resp(call(req.take()));
  mutationFloor_ = std::max(mutationFloor_, resp.u64());
  try {
    Registry::setData(path, data);
  } catch (const NotFound&) {
    // Mirror lags; reconcile will create it.
  }
}

void RemoteRegistry::remove(const std::string& path) {
  std::lock_guard<std::recursive_mutex> sync(syncMu_);
  ByteWriter req = subRequest(substrate_op::kRegRemove);
  req.str(path);
  OwnedByteReader resp(call(req.take()));
  mutationFloor_ = std::max(mutationFloor_, resp.u64());
  Registry::remove(path);
}

void RemoteRegistry::createFenced(const std::string& path,
                                  const std::string& data,
                                  const cluster::SessionPtr& session,
                                  bool ephemeral, const std::string& fencePath,
                                  std::uint64_t epoch) {
  const auto token = tokenFor(session);
  if (!token.has_value()) {
    throw Unavailable("remote registry: session has no authority token");
  }
  std::lock_guard<std::recursive_mutex> sync(syncMu_);
  ByteWriter req = subRequest(substrate_op::kRegCreateFenced);
  req.u64(*token);
  req.str(path);
  req.str(data);
  req.u8(ephemeral ? 1 : 0);
  req.str(fencePath);
  req.u64(epoch);
  // Fenced/AlreadyExists rejections propagate from the authority before
  // any mirror change — the epoch check only means anything there.
  OwnedByteReader resp(call(req.take()));
  mutationFloor_ = std::max(mutationFloor_, resp.u64());
  try {
    Registry::create(path, data, session, ephemeral);
  } catch (const AlreadyExists&) {
    try {
      Registry::setData(path, data);
    } catch (const Error&) {
    }
  }
}

void RemoteRegistry::setDataFenced(const std::string& path,
                                   const std::string& data,
                                   const std::string& fencePath,
                                   std::uint64_t epoch) {
  std::lock_guard<std::recursive_mutex> sync(syncMu_);
  ByteWriter req = subRequest(substrate_op::kRegSetDataFenced);
  req.str(path);
  req.str(data);
  req.str(fencePath);
  req.u64(epoch);
  OwnedByteReader resp(call(req.take()));
  mutationFloor_ = std::max(mutationFloor_, resp.u64());
  try {
    Registry::setData(path, data);
  } catch (const NotFound&) {
    // Mirror lags; reconcile will create it.
  }
}

std::uint64_t RemoteRegistry::acquireLeadership(
    const std::string& leaderPath, const std::string& epochPath,
    const std::string& ownerTag, const cluster::SessionPtr& session) {
  const auto token = tokenFor(session);
  if (!token.has_value()) {
    throw Unavailable("remote registry: session has no authority token");
  }
  std::lock_guard<std::recursive_mutex> sync(syncMu_);
  ByteWriter req = subRequest(substrate_op::kRegAcquireLeader);
  req.u64(*token);
  req.str(leaderPath);
  req.str(epochPath);
  req.str(ownerTag);
  // AlreadyExists (a rival leads) propagates before any mirror change.
  OwnedByteReader resp(call(req.take()));
  const std::uint64_t epoch = resp.u64();
  mutationFloor_ = std::max(mutationFloor_, resp.u64());
  // Mirror-apply with the authority's epoch — NOT base acquireLeadership,
  // which would mint a divergent local epoch.
  const std::string tag = ownerTag + "#" + std::to_string(epoch);
  try {
    Registry::create(epochPath, std::to_string(epoch), session,
                     /*ephemeral=*/false);
  } catch (const AlreadyExists&) {
    try {
      Registry::setData(epochPath, std::to_string(epoch));
    } catch (const Error&) {
    }
  }
  try {
    Registry::create(leaderPath, tag, session, /*ephemeral=*/true);
  } catch (const AlreadyExists&) {
    try {
      Registry::setData(leaderPath, tag);
    } catch (const Error&) {
    }
  }
  return epoch;
}

void RemoteRegistry::expire(const cluster::SessionPtr& session) {
  const auto token = tokenFor(session);
  if (token.has_value()) {
    {
      MutexLock lock(mu_);
      sessions_.erase(session->id());
    }
    try {
      ByteWriter req = subRequest(substrate_op::kRegCloseSession);
      req.u64(*token);
      call(req.take());
    } catch (const Error& e) {
      // The authority's lease sweep will finish the job.
      DPSS_LOG(Debug) << "remote registry: close session failed: " << e.what();
    }
  }
  Registry::expire(session);
}

void RemoteRegistry::heartbeatNow() {
  std::vector<std::pair<std::uint64_t, SessionRef>> refs;
  {
    MutexLock lock(mu_);
    refs.assign(sessions_.begin(), sessions_.end());
  }
  for (auto& [localId, ref] : refs) {
    cluster::SessionPtr session = ref.session.lock();
    if (session == nullptr || session->expired()) {
      MutexLock lock(mu_);
      sessions_.erase(localId);
      continue;
    }
    ByteWriter req = subRequest(substrate_op::kRegHeartbeat);
    req.u64(ref.token);
    OwnedByteReader resp(call(req.take()));
    if (resp.u8() == 0) {
      // The authority no longer knows this session (lease timed out or
      // the coordinator restarted): this IS a ZK session expiry. Expire
      // locally so the node's re-registration logic kicks in.
      DPSS_LOG(Warn) << "remote registry: lease lost for '"
                     << session->owner() << "', expiring local session";
      {
        MutexLock lock(mu_);
        sessions_.erase(localId);
      }
      Registry::expire(session);
    }
  }
}

void RemoteRegistry::syncNow() {
  OwnedByteReader resp(call(subRequest(substrate_op::kRegSnapshot).take()));
  const std::uint64_t version = resp.u64();
  const std::uint64_t n = resp.varint();
  std::vector<RegistryEntry> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    RegistryEntry e;
    e.path = resp.str();
    e.data = resp.str();
    e.ephemeral = resp.u8() != 0;
    entries.push_back(std::move(e));
  }
  applySnapshot(version, std::move(entries));
}

void RemoteRegistry::applySnapshot(std::uint64_t version,
                                   std::vector<RegistryEntry> entries) {
  std::lock_guard<std::recursive_mutex> sync(syncMu_);
  if (version < mutationFloor_) return;  // stale: predates a local write

  cluster::SessionPtr mirror;
  {
    MutexLock lock(mu_);
    if (mirrorSession_ == nullptr) {
      // A base-class session: mirror entries are local bookkeeping, not
      // authority state, so connecting must not round-trip.
      mirrorSession_ = Registry::connect("remote-registry-mirror");
    }
    mirror = mirrorSession_;
  }

  std::map<std::string, const RegistryEntry*> want;
  for (const auto& e : entries) want[e.path] = &e;

  // Removals first, deepest path first so each remove() takes out at
  // most the node itself (its subtree, if any, is already gone).
  const auto mirrorEntries = dump();
  for (auto it = mirrorEntries.rbegin(); it != mirrorEntries.rend(); ++it) {
    if (want.count(it->path) == 0) Registry::remove(it->path);
  }

  // Creates / data updates, shallow first (map order is sorted).
  for (const auto& [path, e] : want) {
    const auto existing = getData(path);
    if (!existing.has_value()) {
      try {
        // Remote ephemerals become plain mirror entries: their lifetime
        // is governed by the authority (and future snapshots), not by
        // any local session.
        Registry::create(path, e->data, mirror, /*ephemeral=*/false);
      } catch (const AlreadyExists&) {
        // An implicit parent materialized by a deeper create; align data.
        if (!e->data.empty()) {
          try {
            Registry::setData(path, e->data);
          } catch (const Error&) {
          }
        }
      }
    } else if (*existing != e->data) {
      Registry::setData(path, e->data);
    }
  }
}

// --- RemoteMetaStore -----------------------------------------------------

RemoteMetaStore::RemoteMetaStore(cluster::TransportIface& transport,
                                 std::string substrateNode,
                                 cluster::RpcPolicy rpc)
    : transport_(transport),
      substrateNode_(std::move(substrateNode)),
      rpc_(rpc) {}

std::string RemoteMetaStore::call(const std::string& bytes) const {
  return cluster::callWithPolicy(transport_, substrateNode_, bytes, rpc_);
}

void RemoteMetaStore::upsertSegment(const SegmentRecord& record) {
  ByteWriter req = subRequest(substrate_op::kMetaUpsert);
  writeRecord(req, record);
  call(req.take());
}

void RemoteMetaStore::markUnused(const storage::SegmentId& id) {
  ByteWriter req = subRequest(substrate_op::kMetaMarkUnused);
  id.serialize(req);
  call(req.take());
}

std::optional<SegmentRecord> RemoteMetaStore::getSegment(
    const storage::SegmentId& id) const {
  ByteWriter req = subRequest(substrate_op::kMetaGet);
  id.serialize(req);
  OwnedByteReader resp(call(req.take()));
  if (resp.u8() == 0) return std::nullopt;
  return readRecord(resp);
}

std::vector<SegmentRecord> RemoteMetaStore::usedSegments() const {
  OwnedByteReader resp(call(subRequest(substrate_op::kMetaUsed).take()));
  return readRecords(resp);
}

std::vector<SegmentRecord> RemoteMetaStore::allSegments() const {
  OwnedByteReader resp(call(subRequest(substrate_op::kMetaAll).take()));
  return readRecords(resp);
}

void RemoteMetaStore::setRules(const std::string& dataSource,
                               LoadRules rules) {
  ByteWriter req = subRequest(substrate_op::kMetaSetRules);
  req.str(dataSource);
  writeRules(req, rules);
  call(req.take());
}

LoadRules RemoteMetaStore::rulesFor(const std::string& dataSource) const {
  ByteWriter req = subRequest(substrate_op::kMetaRulesFor);
  req.str(dataSource);
  OwnedByteReader resp(call(req.take()));
  return readRules(resp);
}

void RemoteMetaStore::setDefaultRules(LoadRules rules) {
  ByteWriter req = subRequest(substrate_op::kMetaSetDefaultRules);
  writeRules(req, rules);
  call(req.take());
}

void RemoteMetaStore::upsertSubscription(const SubscriptionRecord& record) {
  ByteWriter req = subRequest(substrate_op::kMetaSubUpsert);
  writeSubscription(req, record);
  call(req.take());
}

void RemoteMetaStore::removeSubscription(std::uint64_t id) {
  ByteWriter req = subRequest(substrate_op::kMetaSubRemove);
  req.varint(id);
  call(req.take());
}

std::vector<SubscriptionRecord> RemoteMetaStore::subscriptions() const {
  OwnedByteReader resp(call(subRequest(substrate_op::kMetaSubList).take()));
  return readSubscriptions(resp);
}

// --- RemoteDeepStorage ---------------------------------------------------

RemoteDeepStorage::RemoteDeepStorage(cluster::TransportIface& transport,
                                     std::string substrateNode,
                                     cluster::RpcPolicy rpc)
    : transport_(transport),
      substrateNode_(std::move(substrateNode)),
      rpc_(rpc) {}

std::string RemoteDeepStorage::call(const std::string& bytes) {
  return cluster::callWithPolicy(transport_, substrateNode_, bytes, rpc_);
}

void RemoteDeepStorage::put(const std::string& key, const std::string& bytes) {
  ByteWriter req = subRequest(substrate_op::kDsPut);
  req.str(key);
  req.str(bytes);
  call(req.take());
}

std::string RemoteDeepStorage::get(const std::string& key) {
  ByteWriter req = subRequest(substrate_op::kDsGet);
  req.str(key);
  OwnedByteReader resp(call(req.take()));
  return resp.str();
}

bool RemoteDeepStorage::exists(const std::string& key) {
  ByteWriter req = subRequest(substrate_op::kDsExists);
  req.str(key);
  OwnedByteReader resp(call(req.take()));
  return resp.u8() != 0;
}

void RemoteDeepStorage::remove(const std::string& key) {
  ByteWriter req = subRequest(substrate_op::kDsRemove);
  req.str(key);
  call(req.take());
}

std::vector<std::string> RemoteDeepStorage::list() {
  OwnedByteReader resp(call(subRequest(substrate_op::kDsList).take()));
  const std::uint64_t n = resp.varint();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(resp.str());
  return out;
}

std::optional<std::uint64_t> RemoteDeepStorage::storedChecksum(
    const std::string& key) {
  ByteWriter req = subRequest(substrate_op::kDsChecksum);
  req.str(key);
  OwnedByteReader resp(call(req.take()));
  if (resp.u8() == 0) return std::nullopt;
  return resp.u64();
}

bool RemoteDeepStorage::verify(const std::string& key) {
  ByteWriter req = subRequest(substrate_op::kDsVerify);
  req.str(key);
  OwnedByteReader resp(call(req.take()));
  return resp.u8() != 0;
}

}  // namespace dpss::net
