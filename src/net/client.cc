#include "net/client.h"

#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpss::net {

namespace {

const obs::MetricId kBytesOut = obs::internCounter("net.client.bytes_out");
const obs::MetricId kBytesIn = obs::internCounter("net.client.bytes_in");
const obs::MetricId kConnects = obs::internCounter("net.client.connects");
const obs::MetricId kConnectErrors =
    obs::internCounter("net.client.connect_errors");
const obs::MetricId kReconnects = obs::internCounter("net.client.reconnects");
const obs::MetricId kCallErrors = obs::internCounter("net.client.call_errors");
const obs::MetricId kCalls = obs::internCounter("net.client.calls");
const obs::MetricId kCallNs = obs::internHistogram("net.client.call_ns");

}  // namespace

NetClient::NetClient(Clock& clock, NetClientOptions options)
    : clock_(clock), options_(options) {}

NetClient::Conn NetClient::checkout(const Endpoint& endpoint) {
  {
    MutexLock lock(mu_);
    auto it = idle_.find(endpoint);
    if (it != idle_.end() && !it->second.empty()) {
      Conn conn = std::move(it->second.front());
      it->second.pop_front();
      conn.fresh = false;
      return conn;
    }
  }
  return dial(endpoint);
}

void NetClient::checkin(const Endpoint& endpoint, Conn conn) {
  MutexLock lock(mu_);
  auto& pool = idle_[endpoint];
  if (pool.size() >= options_.maxIdlePerEndpoint) return;  // close extra
  pool.push_back(std::move(conn));
}

void NetClient::closeIdle() {
  MutexLock lock(mu_);
  idle_.clear();
}

NetClient::Conn NetClient::dial(const Endpoint& endpoint) {
  const TimeMs deadlineAt =
      options_.connectTimeoutMs == 0
          ? 0
          : clock_.nowMs() + options_.connectTimeoutMs;
  try {
    Conn conn;
    conn.fd = connectWithDeadline(endpoint, clock_, deadlineAt);
    conn.fresh = true;
    obs::currentRegistry().counter(kConnects).inc();
    return conn;
  } catch (const Error&) {
    obs::currentRegistry().counter(kConnectErrors).inc();
    throw;
  }
}

NetClient::Exchanged NetClient::exchange(Conn& conn, std::uint64_t requestId,
                                         const std::string& payload,
                                         TimeMs deadlineAtMs) {
  const std::string wire =
      encodeFrame(Frame{frame::kRequest, requestId, payload});
  sendAll(conn.fd, wire, clock_, deadlineAtMs);
  obs::currentRegistry().counter(kBytesOut).inc(wire.size());
  for (;;) {
    while (auto f = conn.decoder.next()) {
      if (f->requestId != requestId) {
        // A stale response from a previous timed-out call on this
        // connection; skip it and keep reading.
        continue;
      }
      if (f->kind == frame::kResponse) {
        return Exchanged{false, std::move(f->payload)};
      }
      if (f->kind == frame::kError) {
        return Exchanged{true, std::move(f->payload)};
      }
      throw CorruptData("unexpected frame kind from server: " +
                        std::to_string(f->kind));
    }
    const std::string bytes = recvSome(conn.fd, clock_, deadlineAtMs);
    if (bytes.empty()) {
      throw Unavailable("connection closed by peer mid-call");
    }
    obs::currentRegistry().counter(kBytesIn).inc(bytes.size());
    conn.decoder.feed(bytes);
  }
}

std::string NetClient::call(const Endpoint& endpoint,
                            const std::string& payload) {
  obs::currentRegistry().counter(kCalls).inc();
  obs::ScopedTimer timer(obs::currentRegistry().histogram(kCallNs));
  const TimeMs deadlineAt =
      options_.callTimeoutMs == 0 ? 0 : clock_.nowMs() + options_.callTimeoutMs;
  std::uint64_t requestId;
  {
    MutexLock lock(mu_);
    requestId = nextRequestId_++;
  }

  Conn conn = checkout(endpoint);
  Exchanged result;
  try {
    result = exchange(conn, requestId, payload, deadlineAt);
  } catch (const DeadlineExceeded&) {
    obs::currentRegistry().counter(kCallErrors).inc();
    throw;
  } catch (const CorruptData&) {
    // Garbled stream: the request may have executed; redialing and
    // resending could run it twice, so surface the error as-is.
    obs::currentRegistry().counter(kCallErrors).inc();
    throw;
  } catch (const Error& e) {
    // Transport failure. A pooled connection may have been closed by the
    // server (restart, idle reaping) between calls; exchange() throws on
    // the first write or read, before any handler could have produced a
    // frame for *this* request on a dead socket — but only the stale-
    // pooled-connection case is provably "never reached a handler", so
    // only that case gets a transparent redial.
    if (conn.fresh) {
      obs::currentRegistry().counter(kCallErrors).inc();
      throw;
    }
    obs::currentRegistry().counter(kReconnects).inc();
    DPSS_LOG(Debug) << "net client: pooled connection to "
                    << endpoint.toString() << " failed (" << e.what()
                    << "), redialing";
    Conn retry;
    try {
      retry = dial(endpoint);
      result = exchange(retry, requestId, payload, deadlineAt);
    } catch (const Error&) {
      obs::currentRegistry().counter(kCallErrors).inc();
      throw;
    }
    checkin(endpoint, std::move(retry));
    if (result.isError) throwWireError(result.payload);
    return std::move(result.payload);
  }
  // The exchange completed: the connection is healthy either way.
  checkin(endpoint, std::move(conn));
  if (result.isError) throwWireError(result.payload);
  return std::move(result.payload);
}

}  // namespace dpss::net
