// Poll-driven TCP RPC server.
//
// Threading model (documented in DESIGN.md §9):
//  * One event-loop thread owns every socket: it polls the listen socket,
//    a wakeup channel, and all live connections; reads feed per-
//    connection FrameDecoders; writes drain per-connection outboxes.
//  * Complete request frames are dispatched to a fixed ThreadPool; the
//    worker runs the bound RpcHandler (with the caller's trace context
//    installed) and enqueues the response — or a typed kError frame —
//    back onto the connection's outbox via the wakeup channel. The loop
//    never runs user code, so a slow handler stalls one worker, not the
//    whole server.
//  * Connections are identified by id; a worker finishing after its
//    connection died simply drops the response.
//
// One server hosts several logical nodes (bind("broker", ...),
// bind("broker.ctl", ...)): the request frame carries the target name.
// Malformed frames (oversized, unknown kind, truncated payload) poison
// only their connection — the server logs, closes it and keeps serving.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "cluster/transport.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"

namespace dpss::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick a free port (see NetServer::port())
  std::size_t workerThreads = 8;
};

class NetServer {
 public:
  NetServer(Clock& clock, NetServerOptions options = {});
  ~NetServer();
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Registers/replaces the handler serving logical node `nodeName`.
  void bind(const std::string& nodeName, cluster::RpcHandler handler);
  void unbind(const std::string& nodeName);
  bool serves(const std::string& nodeName) const;

  /// Starts listening + the event loop. Throws Unavailable when the
  /// port cannot be bound. Idempotent.
  void start();
  /// Stops the loop, closes every connection, joins workers.
  void stop();

  /// The bound port (valid after start()).
  std::uint16_t port() const;

  /// Live connection count (event-loop snapshot, for tests).
  std::size_t connectionCount() const;

 private:
  struct Conn {
    Fd fd;
    FrameDecoder decoder;
    std::deque<std::string> outbox;  // encoded frames awaiting write
    std::size_t outboxOffset = 0;    // bytes of outbox.front() already sent
  };

  void loop();
  void wake();
  void handleRequest(std::uint64_t connId, Frame request);
  void queueResponse(std::uint64_t connId, std::string encodedFrame);
  bool drainReadable(std::uint64_t connId, Conn& conn);
  bool drainWritable(Conn& conn);

  Clock& clock_;
  NetServerOptions options_;

  mutable Mutex mu_;
  bool running_ DPSS_GUARDED_BY(mu_) = false;
  std::map<std::string, cluster::RpcHandler> handlers_ DPSS_GUARDED_BY(mu_);
  // connId -> encoded frames queued by workers, pulled by the loop.
  std::map<std::uint64_t, std::deque<std::string>> pending_
      DPSS_GUARDED_BY(mu_);
  std::size_t connectionCount_ DPSS_GUARDED_BY(mu_) = 0;

  Fd listenFd_;        // loop thread + start()/stop()
  Fd wakeRead_;        // loop side of the wakeup channel
  Fd wakeWrite_;       // worker side
  std::thread loopThread_;
  std::shared_ptr<ThreadPool> pool_;
  // Loop-thread-only state (no lock needed): live connections by id.
  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t nextConnId_ = 1;
};

}  // namespace dpss::net
