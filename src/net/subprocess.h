// Minimal fork/exec subprocess handle for multi-process deployments:
// the integration test and the multi-process example spawn dpss_node
// binaries with it. Not a general process library — just spawn, signal,
// wait, with no shell involved (argv goes straight to execv).
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace dpss::net {

class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();
  Subprocess(Subprocess&& o) noexcept;
  Subprocess& operator=(Subprocess&& o) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// fork+execv. argv[0] is the binary path. Throws Unavailable when the
  /// fork fails or the binary cannot be executed (detected via an
  /// O_CLOEXEC pipe, so a bad path fails fast instead of at wait()).
  static Subprocess spawn(const std::vector<std::string>& argv);

  pid_t pid() const { return pid_; }
  bool valid() const { return pid_ > 0; }

  /// Sends a signal (default SIGKILL). No-op on an already-reaped child.
  void kill(int signal);
  void kill();

  /// Waits for exit and reaps; returns the raw waitpid status, or -1 if
  /// already reaped. Idempotent.
  int wait();

  /// True while the child exists and has not been reaped.
  bool running();

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  int status_ = -1;
};

}  // namespace dpss::net
