#include "net/admin_plane.h"

#include <algorithm>
#include <cstdio>

#include "cluster/rpc_policy.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace dpss::net {

namespace {

std::string jsonEscape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// The node registry plus the process-global one (deduped when the node
/// *is* the global registry — the coordinator's case).
std::vector<obs::MetricsSnapshot> snapshots(const AdminPlane& plane) {
  std::vector<obs::MetricsSnapshot> out;
  if (plane.registry != nullptr) out.push_back(plane.registry->snapshot());
  if (plane.registry != &obs::globalRegistry()) {
    out.push_back(obs::globalRegistry().snapshot());
  }
  return out;
}

std::uint64_t parseHexTraceId(const std::string& s) {
  std::uint64_t id = 0;
  for (const char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return 0;
    id = (id << 4) | static_cast<std::uint64_t>(d);
  }
  return id;
}

/// Assembled traces for /tracez: from the collector when this node is
/// the sink, else from the node's own span ring.
std::vector<obs::TraceTree> tracesFor(const AdminPlane& plane,
                                      std::uint64_t filter, std::size_t n) {
  if (plane.traces != nullptr) {
    if (filter != 0) {
      return {obs::assembleTrace(plane.traces->spansFor(filter))};
    }
    return plane.traces->recent(n);
  }
  std::vector<obs::Span> spans;
  if (plane.registry != nullptr) {
    spans = filter != 0 ? plane.registry->spans().forTrace(filter)
                        : plane.registry->spans().all();
  }
  std::vector<obs::TraceTree> trees = obs::assembleTraces(std::move(spans));
  // Newest first, like the collector's recent().
  std::reverse(trees.begin(), trees.end());
  if (trees.size() > n) trees.resize(n);
  return trees;
}

}  // namespace

void bindAdminEndpoints(HttpAdminServer& server, AdminPlane plane) {
  server.route("/", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        "dpss admin endpoints:\n"
                        "  /metrics       Prometheus text exposition\n"
                        "  /metrics.json  metrics as JSON\n"
                        "  /healthz       liveness + lease state\n"
                        "  /statusz       served segments, sessions, chaos\n"
                        "  /tracez        assembled traces + slow queries\n"
                        "  /tracez.json   assembled traces as JSON\n"
                        "  /queriesz      slow-query log (JSON-lines)\n"};
  });

  // Pre-touch the rpc.* counters so the series is present on every node
  // from the first scrape (Prometheus needs the zero point to rate()).
  if (plane.registry != nullptr) {
    static const obs::MetricId kRpcSeries[] = {
        obs::internCounter(cluster::rpcmetrics::kAttempts),
        obs::internCounter(cluster::rpcmetrics::kRetries),
        obs::internCounter(cluster::rpcmetrics::kRetryExhausted),
        obs::internCounter(cluster::rpcmetrics::kDeadlineExceeded),
    };
    for (const auto id : kRpcSeries) plane.registry->counter(id).inc(0);
  }
  // Same for net.server.*, which the net loop threads record into the
  // process-global registry: a node that nobody has dialed yet must
  // still expose the series at zero.
  {
    static const obs::MetricId kNetSeries[] = {
        obs::internCounter("net.server.accepts"),
        obs::internCounter("net.server.requests"),
        obs::internCounter("net.server.bytes_in"),
        obs::internCounter("net.server.bytes_out"),
    };
    for (const auto id : kNetSeries) obs::globalRegistry().counter(id).inc(0);
  }

  server.route("/metrics", [plane](const HttpRequest&) {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        obs::renderTextMulti(snapshots(plane))};
  });

  server.route("/metrics.json", [plane](const HttpRequest&) {
    return HttpResponse{200, "application/json",
                        obs::renderJsonMulti(snapshots(plane))};
  });

  server.route("/healthz", [plane](const HttpRequest&) {
    char buf[64];
    std::string out = "{\"status\":\"ok\",\"node\":\"" +
                      jsonEscape(plane.nodeName) + "\",\"role\":\"" +
                      jsonEscape(plane.role) + "\"";
    std::snprintf(buf, sizeof(buf), ",\"uptime_ms\":%llu",
                  static_cast<unsigned long long>(
                      (obs::nowNanos() - plane.startNs) / 1000000));
    out += buf;
    out += ",\"registry_lease\":\"" +
           jsonEscape(plane.leaseState ? plane.leaseState() : "none") + "\"}";
    return HttpResponse{200, "application/json", std::move(out)};
  });

  server.route("/statusz", [plane](const HttpRequest&) {
    char buf[64];
    std::string out = "{\"node\":\"" + jsonEscape(plane.nodeName) +
                      "\",\"role\":\"" + jsonEscape(plane.role) + "\"";
    if (plane.servedSegments) {
      out += ",\"served_segments\":[";
      const auto segments = plane.servedSegments();
      for (std::size_t i = 0; i < segments.size(); ++i) {
        if (i > 0) out += ",";
        out += '"';
        out += jsonEscape(segments[i]);
        out += '"';
      }
      out += "]";
    }
    if (plane.liveSessions) {
      std::snprintf(buf, sizeof(buf), ",\"live_sessions\":%zu",
                    plane.liveSessions());
      out += buf;
    }
    // Chaos + span-plane counters, pulled from the merged snapshots.
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& snap : snapshots(plane)) {
      for (const auto& s : snap.samples) {
        if (s.kind != obs::MetricKind::kCounter) continue;
        const bool interesting = s.name.rfind("chaos.", 0) == 0 ||
                                 s.name.rfind("obs.spans.", 0) == 0 ||
                                 s.name.rfind("broker.query", 0) == 0 ||
                                 s.name.rfind("coordinator.", 0) == 0;
        if (!interesting) continue;
        if (!first) out += ",";
        first = false;
        out += '"';
        out += jsonEscape(s.name);
        out += '"';
        std::snprintf(buf, sizeof(buf), ":%llu",
                      static_cast<unsigned long long>(s.counterValue));
        out += buf;
      }
    }
    out += "}";
    if (plane.registry != nullptr) {
      std::snprintf(buf, sizeof(buf), ",\"spans_buffered\":%zu",
                    plane.registry->spans().size());
      out += buf;
      std::snprintf(buf, sizeof(buf), ",\"queries_logged\":%llu",
                    static_cast<unsigned long long>(
                        plane.registry->queryLog().totalRecorded()));
      out += buf;
    }
    if (plane.traces != nullptr) {
      std::snprintf(buf, sizeof(buf), ",\"traces_collected\":%zu",
                    plane.traces->traceCount());
      out += buf;
    }
    if (plane.statusFields) {
      const std::string extra = plane.statusFields();
      if (!extra.empty()) {
        out += ",";
        out += extra;
      }
    }
    out += "}";
    return HttpResponse{200, "application/json", std::move(out)};
  });

  server.route("/tracez", [plane](const HttpRequest& req) {
    std::uint64_t filter = 0;
    const auto it = req.query.find("trace");
    if (it != req.query.end()) filter = parseHexTraceId(it->second);
    std::string out;
    out += "== recent traces ==\n";
    for (const auto& tree : tracesFor(plane, filter, 10)) {
      out += renderTraceText(tree);
    }
    if (plane.traces != nullptr && filter == 0) {
      out += "\n== slowest traces ==\n";
      for (const auto& tree : plane.traces->slowest(5)) {
        out += renderTraceText(tree);
      }
    }
    if (plane.registry != nullptr) {
      out += "\n== slow-query log (kept) ==\n";
      out += obs::renderQueryLogLines(plane.registry->queryLog().kept());
    }
    return HttpResponse{200, "text/plain; charset=utf-8", std::move(out)};
  });

  server.route("/tracez.json", [plane](const HttpRequest& req) {
    std::uint64_t filter = 0;
    const auto it = req.query.find("trace");
    if (it != req.query.end()) filter = parseHexTraceId(it->second);
    std::string out = "{\"traces\":[";
    const auto trees = tracesFor(plane, filter, 20);
    for (std::size_t i = 0; i < trees.size(); ++i) {
      if (i > 0) out += ",";
      out += renderTraceJson(trees[i]);
    }
    out += "]}";
    return HttpResponse{200, "application/json", std::move(out)};
  });

  server.route("/queriesz", [plane](const HttpRequest& req) {
    if (plane.registry == nullptr) {
      return HttpResponse{200, "application/x-ndjson", ""};
    }
    obs::QueryLog& log = plane.registry->queryLog();
    const bool recent = req.query.count("recent") != 0;
    return HttpResponse{200, "application/x-ndjson",
                        obs::renderQueryLogLines(recent ? log.recent()
                                                        : log.kept())};
  });
}

}  // namespace dpss::net
