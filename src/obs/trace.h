// Span-based query tracing (§III-C steps 1–4 / §III-A scatter-merge).
//
// One distributed query carries one trace id from the broker through the
// transport onto every historical / realtime node it fans out to; each
// hop records spans (scatter, per-segment scan, merge, cache probe) into
// its own node's SpanStore. The stats RPC collects per-node spans and the
// coordinator (or a test) reassembles the span tree by parent ids.
//
// Propagation is thread-local: SpanGuard pushes itself as the current
// context, Transport::call serializes the current context into the wire
// envelope, and the receiving side installs it with TraceScope before the
// handler runs — so crossing the (emulated) network is explicit, exactly
// like trace headers on real HTTP hops.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/thread_annotations.h"

namespace dpss::obs {

/// The per-thread trace position: which trace we are in and which span is
/// the innermost parent. traceId == 0 means "not tracing".
struct TraceContext {
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;

  bool active() const { return traceId != 0; }

  void serialize(ByteWriter& w) const;
  static TraceContext deserialize(ByteReader& r);
};

/// One finished span.
struct Span {
  std::uint64_t traceId = 0;
  std::uint64_t spanId = 0;
  std::uint64_t parentId = 0;  // 0 = root
  std::string name;
  std::string node;  // registry owner that recorded it
  std::uint64_t startNs = 0;
  std::uint64_t durationNs = 0;
  std::vector<std::pair<std::string, std::string>> tags;

  void serialize(ByteWriter& w) const;
  static Span deserialize(ByteReader& r);
};

/// Bounded collector of finished spans (per MetricsRegistry). Drops the
/// oldest spans past the cap so long-running processes stay bounded.
class SpanStore {
 public:
  explicit SpanStore(std::size_t capacity = 8192) : capacity_(capacity) {}

  void record(Span span);
  std::vector<Span> forTrace(std::uint64_t traceId) const;
  std::vector<Span> all() const;
  std::size_t size() const;
  void clear();

  /// Incremental drain for span shipping: returns every span recorded at
  /// or after *cursor (a monotone per-store sequence number; start from
  /// 0), oldest first, and advances *cursor past them. Spans the cap
  /// already evicted are skipped silently — shipping is lossy-but-bounded
  /// by design, and droppedBatches() tells the operator it happened.
  std::vector<Span> collectSince(std::uint64_t* cursor) const;

  /// Times the cap dropped the oldest half of the buffer.
  std::size_t droppedBatches() const;

 private:
  mutable Mutex mu_;
  std::size_t capacity_;  // set once in the constructor
  std::vector<Span> spans_ DPSS_GUARDED_BY(mu_);
  std::size_t dropped_ DPSS_GUARDED_BY(mu_) = 0;
  // Sequence number of the next span record() will append; spans_[i] has
  // sequence nextSeq_ - spans_.size() + i.
  std::uint64_t nextSeq_ DPSS_GUARDED_BY(mu_) = 0;
};

/// Steady-clock nanoseconds (the time base of every span and histogram).
std::uint64_t nowNanos();

/// Fresh process-unique ids (counter mixed through splitmix64, so ids are
/// well distributed but runs stay deterministic for tests).
std::uint64_t newTraceId();

TraceContext currentTraceContext();

/// Installs a received context as this thread's current one (no span is
/// created — the transport's server side uses this so handler spans
/// parent onto the caller's span).
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext prev_;
};

/// RAII span: on construction becomes the current context (starting a new
/// trace if none is active); on destruction records itself into the
/// current MetricsRegistry's SpanStore and restores the parent context.
class SpanGuard {
 public:
  explicit SpanGuard(std::string name);
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  void tag(std::string key, std::string value);
  std::uint64_t traceId() const { return span_.traceId; }
  std::uint64_t spanId() const { return span_.spanId; }

 private:
  Span span_;
  TraceContext prev_;
};

}  // namespace dpss::obs
