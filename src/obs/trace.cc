#include "obs/trace.h"

#include <unistd.h>

#include <chrono>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dpss::obs {

namespace {

thread_local TraceContext t_current;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t nextId() {
  // Span ids must be unique across every *process* in a cluster — the
  // trace sink stitches parent links by id, and a collision silently
  // re-parents another node's span. Start the counter from per-process
  // entropy so no two processes walk the same splitmix64 sequence.
  static std::atomic<std::uint64_t> counter{
      splitmix64(static_cast<std::uint64_t>(::getpid()) ^ nowNanos())};
  std::uint64_t id = 0;
  // splitmix64 is a bijection over nonzero seeds here, but guard anyway:
  // a zero id would read as "not tracing".
  while (id == 0) {
    id = splitmix64(counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

}  // namespace

void TraceContext::serialize(ByteWriter& w) const {
  w.u64(traceId);
  w.u64(spanId);
}

TraceContext TraceContext::deserialize(ByteReader& r) {
  TraceContext ctx;
  ctx.traceId = r.u64();
  ctx.spanId = r.u64();
  return ctx;
}

void Span::serialize(ByteWriter& w) const {
  w.u64(traceId);
  w.u64(spanId);
  w.u64(parentId);
  w.str(name);
  w.str(node);
  w.u64(startNs);
  w.u64(durationNs);
  w.varint(tags.size());
  for (const auto& [k, v] : tags) {
    w.str(k);
    w.str(v);
  }
}

Span Span::deserialize(ByteReader& r) {
  Span s;
  s.traceId = r.u64();
  s.spanId = r.u64();
  s.parentId = r.u64();
  s.name = r.str();
  s.node = r.str();
  s.startNs = r.u64();
  s.durationNs = r.u64();
  const std::uint64_t n = r.varint();
  s.tags.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string k = r.str();
    std::string v = r.str();
    s.tags.emplace_back(std::move(k), std::move(v));
  }
  return s;
}

void SpanStore::record(Span span) {
  MutexLock lock(mu_);
  if (spans_.size() >= capacity_) {
    // Keep the newest half; bulk drop amortizes the erase.
    spans_.erase(spans_.begin(),
                 spans_.begin() + static_cast<std::ptrdiff_t>(spans_.size() / 2));
    ++dropped_;
  }
  spans_.push_back(std::move(span));
  ++nextSeq_;
}

std::vector<Span> SpanStore::collectSince(std::uint64_t* cursor) const {
  MutexLock lock(mu_);
  const std::uint64_t firstSeq = nextSeq_ - spans_.size();
  std::uint64_t from = *cursor;
  if (from < firstSeq) from = firstSeq;  // the cap evicted the gap
  std::vector<Span> out;
  if (from < nextSeq_) {
    out.assign(spans_.begin() + static_cast<std::ptrdiff_t>(from - firstSeq),
               spans_.end());
  }
  *cursor = nextSeq_;
  return out;
}

std::size_t SpanStore::droppedBatches() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::vector<Span> SpanStore::forTrace(std::uint64_t traceId) const {
  MutexLock lock(mu_);
  std::vector<Span> out;
  for (const auto& s : spans_) {
    if (s.traceId == traceId) out.push_back(s);
  }
  return out;
}

std::vector<Span> SpanStore::all() const {
  MutexLock lock(mu_);
  return spans_;
}

std::size_t SpanStore::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

void SpanStore::clear() {
  MutexLock lock(mu_);
  spans_.clear();
}

std::uint64_t nowNanos() {
  // dpss-lint: allow(wall-clock) spans and histograms measure real elapsed
  // time by design; nothing schedules or branches on this value.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t newTraceId() { return nextId(); }

TraceContext currentTraceContext() { return t_current; }

TraceScope::TraceScope(TraceContext ctx) : prev_(t_current) {
  t_current = ctx;
  setLogTraceId(ctx.traceId);
}

TraceScope::~TraceScope() {
  t_current = prev_;
  setLogTraceId(prev_.traceId);
}

SpanGuard::SpanGuard(std::string name) : prev_(t_current) {
  span_.name = std::move(name);
  span_.traceId = prev_.active() ? prev_.traceId : newTraceId();
  span_.spanId = nextId();
  span_.parentId = prev_.spanId;
  span_.startNs = nowNanos();
  t_current = TraceContext{span_.traceId, span_.spanId};
  setLogTraceId(span_.traceId);
}

SpanGuard::~SpanGuard() {
  span_.durationNs = nowNanos() - span_.startNs;
  MetricsRegistry& reg = currentRegistry();
  span_.node = reg.nodeName();
  reg.spans().record(std::move(span_));
  t_current = prev_;
  setLogTraceId(prev_.traceId);
}

void SpanGuard::tag(std::string key, std::string value) {
  span_.tags.emplace_back(std::move(key), std::move(value));
}

}  // namespace dpss::obs
