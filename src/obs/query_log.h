// Slow-query log with per-segment latency attribution (§IV's evaluation
// questions — "where does a scatter spend its time" — asked of a live
// broker instead of a bench).
//
// Brokers append one structured record per distributed query: the trace
// id (joinable against the assembled trace tree), the per-segment latency
// breakdown with each hop's outcome, retries folded into the latency,
// partial-result bookkeeping, and bytes moved. Two bounded rings provide
// the retention policy:
//   * `recent` — every query, newest-first, FIFO eviction; a rolling
//     window for /tracez and dpss_dump.
//   * `kept`   — only queries worth keeping: over the slow threshold,
//     typed-partial outcomes, or errors. Also FIFO-bounded, but because
//     admission is selective a burst of fast healthy traffic can never
//     flush out the interesting records.
// Exposition is JSON-lines (one record per line) so logs can be streamed
// to a file and grepped/jq'd without a parser.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace dpss::obs {

/// One segment-level hop of a distributed query, as the broker saw it.
struct QuerySegmentLatency {
  std::string segment;
  std::string node;  // replica that answered ("" when none did)
  std::uint64_t latencyNs = 0;
  /// "ok" | "cache_hit" | "cache_after_loss" | "unreachable"
  std::string outcome;
};

struct QueryLogRecord {
  std::uint64_t traceId = 0;
  std::string kind;    // "query" | "pss"
  std::string target;  // data source / document source
  std::uint64_t startNs = 0;
  std::uint64_t durationNs = 0;
  std::size_t segmentsQueried = 0;
  std::size_t cacheHits = 0;
  std::uint64_t bytesMoved = 0;  // response payload bytes merged
  bool partial = false;
  std::vector<std::string> unreachableSegments;
  std::vector<QuerySegmentLatency> segments;
  std::string error;  // nonempty when the query threw

  /// Worth keeping regardless of age: slow, partial, or errored.
  bool notable(std::uint64_t slowThresholdNs) const {
    return durationNs >= slowThresholdNs || partial || !error.empty();
  }
};

class QueryLog {
 public:
  struct Options {
    std::size_t recentCapacity = 256;
    std::size_t keptCapacity = 256;
    std::uint64_t slowThresholdNs = 500'000'000;  // 500ms
  };

  QueryLog() : QueryLog(Options()) {}
  explicit QueryLog(Options options) : options_(options) {}

  void record(QueryLogRecord record);

  /// Retention knob (broker --slow-query-ms); 0 keeps every query.
  void setSlowThresholdNs(std::uint64_t ns);
  std::uint64_t slowThresholdNs() const;

  /// Rolling window of all queries, newest first.
  std::vector<QueryLogRecord> recent() const;
  /// Slow/partial/errored queries, newest first.
  std::vector<QueryLogRecord> kept() const;
  std::uint64_t totalRecorded() const;

 private:
  mutable Mutex mu_;
  Options options_;  // slowThresholdNs mutable under mu_
  std::deque<QueryLogRecord> recent_ DPSS_GUARDED_BY(mu_);
  std::deque<QueryLogRecord> kept_ DPSS_GUARDED_BY(mu_);
  std::uint64_t total_ DPSS_GUARDED_BY(mu_) = 0;
};

/// One record as a single JSON object (no trailing newline).
std::string renderQueryLogLine(const QueryLogRecord& record);

/// JSON-lines: one renderQueryLogLine per record, newline-terminated.
std::string renderQueryLogLines(const std::vector<QueryLogRecord>& records);

}  // namespace dpss::obs
