#include "obs/trace_assembly.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace dpss::obs {

namespace {

void sortChildren(TraceNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const TraceNode& a, const TraceNode& b) {
              return a.span.startNs < b.span.startNs;
            });
  for (auto& c : node.children) sortChildren(c);
}

TraceNode buildNode(const Span& span,
                    const std::multimap<std::uint64_t, const Span*>& byParent,
                    std::set<std::uint64_t>& placed) {
  TraceNode node;
  node.span = span;
  auto [lo, hi] = byParent.equal_range(span.spanId);
  for (auto it = lo; it != hi; ++it) {
    const Span& child = *it->second;
    if (!placed.insert(child.spanId).second) continue;  // id collision guard
    TraceNode childNode = buildNode(child, byParent, placed);
    if (child.node != span.node) {
      childNode.wireNs = span.durationNs > child.durationNs
                             ? span.durationNs - child.durationNs
                             : 0;
    }
    node.children.push_back(std::move(childNode));
  }
  return node;
}

const TraceNode* findIn(const std::vector<TraceNode>& nodes,
                        std::string_view name) {
  for (const auto& n : nodes) {
    if (n.span.name == name) return &n;
    if (const TraceNode* hit = findIn(n.children, name)) return hit;
  }
  return nullptr;
}

std::string fmtMs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

void renderNodeText(const TraceNode& node, std::size_t depth,
                    std::string& out) {
  out.append(2 + depth * 2, ' ');
  out += node.span.name;
  for (const auto& [k, v] : node.span.tags) {
    out += " " + k + "=" + v;
  }
  out += "  [" + (node.span.node.empty() ? "-" : node.span.node) + "]  " +
         fmtMs(node.span.durationNs);
  if (node.wireNs > 0) out += "  (wire " + fmtMs(node.wireNs) + ")";
  out += "\n";
  for (const auto& c : node.children) renderNodeText(c, depth + 1, out);
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void renderNodeJson(const TraceNode& node, std::string& out) {
  char buf[96];
  out += "{\"name\":\"" + jsonEscape(node.span.name) + "\",\"node\":\"" +
         jsonEscape(node.span.node) + "\"";
  std::snprintf(buf, sizeof(buf),
                ",\"start_ns\":%llu,\"duration_ns\":%llu,\"wire_ns\":%llu",
                static_cast<unsigned long long>(node.span.startNs),
                static_cast<unsigned long long>(node.span.durationNs),
                static_cast<unsigned long long>(node.wireNs));
  out += buf;
  if (!node.span.tags.empty()) {
    out += ",\"tags\":{";
    for (std::size_t i = 0; i < node.span.tags.size(); ++i) {
      if (i > 0) out += ",";
      out += '"';
      out += jsonEscape(node.span.tags[i].first);
      out += "\":\"";
      out += jsonEscape(node.span.tags[i].second);
      out += '"';
    }
    out += "}";
  }
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    renderNodeJson(node.children[i], out);
  }
  out += "]}";
}

}  // namespace

const TraceNode* TraceTree::find(std::string_view name) const {
  return findIn(roots, name);
}

TraceTree assembleTrace(std::vector<Span> spans) {
  TraceTree tree;
  if (spans.empty()) return tree;
  tree.traceId = spans.front().traceId;
  tree.spanCount = spans.size();

  std::set<std::uint64_t> spanIds;
  std::set<std::string> nodes;
  std::uint64_t minStart = ~0ULL;
  for (const auto& s : spans) {
    spanIds.insert(s.spanId);
    if (!s.node.empty()) nodes.insert(s.node);
    minStart = std::min(minStart, s.startNs);
    tree.durationNs = std::max(tree.durationNs, s.durationNs);
  }
  tree.startNs = minStart;
  tree.nodes.assign(nodes.begin(), nodes.end());

  std::multimap<std::uint64_t, const Span*> byParent;
  for (const auto& s : spans) byParent.emplace(s.parentId, &s);

  // Roots: parentId 0, or a parent that never arrived (dropped ring,
  // still-open span) — those orphans must stay visible.
  std::set<std::uint64_t> placed;
  for (const auto& s : spans) {
    const bool isRoot = s.parentId == 0 || spanIds.count(s.parentId) == 0;
    if (!isRoot) continue;
    if (!placed.insert(s.spanId).second) continue;
    tree.roots.push_back(buildNode(s, byParent, placed));
  }
  std::sort(tree.roots.begin(), tree.roots.end(),
            [](const TraceNode& a, const TraceNode& b) {
              return a.span.startNs < b.span.startNs;
            });
  for (auto& r : tree.roots) sortChildren(r);
  return tree;
}

std::vector<TraceTree> assembleTraces(std::vector<Span> spans) {
  std::map<std::uint64_t, std::vector<Span>> byTrace;
  for (auto& s : spans) byTrace[s.traceId].push_back(std::move(s));
  std::vector<TraceTree> trees;
  trees.reserve(byTrace.size());
  for (auto& [id, group] : byTrace) trees.push_back(assembleTrace(std::move(group)));
  std::sort(trees.begin(), trees.end(),
            [](const TraceTree& a, const TraceTree& b) {
              return a.startNs < b.startNs;
            });
  return trees;
}

std::string renderTraceText(const TraceTree& tree) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "trace %016llx",
                static_cast<unsigned long long>(tree.traceId));
  std::string out = buf;
  out += "  " + fmtMs(tree.durationNs);
  std::snprintf(buf, sizeof(buf), "  %zu spans  nodes:", tree.spanCount);
  out += buf;
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    out += i == 0 ? " " : ",";
    out += tree.nodes[i];
  }
  out += "\n";
  for (const auto& r : tree.roots) renderNodeText(r, 0, out);
  return out;
}

std::string renderTraceJson(const TraceTree& tree) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"trace_id\":\"%016llx\"",
                static_cast<unsigned long long>(tree.traceId));
  std::string out = buf;
  std::snprintf(buf, sizeof(buf),
                ",\"start_ns\":%llu,\"duration_ns\":%llu,\"span_count\":%zu",
                static_cast<unsigned long long>(tree.startNs),
                static_cast<unsigned long long>(tree.durationNs),
                tree.spanCount);
  out += buf;
  out += ",\"nodes\":[";
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    if (i > 0) out += ",";
    out += '"';
    out += jsonEscape(tree.nodes[i]);
    out += '"';
  }
  out += "],\"spans\":[";
  for (std::size_t i = 0; i < tree.roots.size(); ++i) {
    if (i > 0) out += ",";
    renderNodeJson(tree.roots[i], out);
  }
  out += "]}";
  return out;
}

void TraceCollector::add(std::vector<Span> spans) {
  MutexLock lock(mu_);
  for (auto& s : spans) {
    ++received_;
    auto& entry = live_[s.traceId];
    entry.lastTouch = ++touchCounter_;
    entry.maxDurationNs = std::max(entry.maxDurationNs, s.durationNs);
    if (entry.spans.size() < options_.maxSpansPerTrace) {
      entry.spans.push_back(std::move(s));
    }
  }
  while (live_.size() > options_.maxTraces) evictOneLocked();
}

void TraceCollector::evictOneLocked() {
  auto victim = live_.begin();
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->second.lastTouch < victim->second.lastTouch) victim = it;
  }
  // Demote rather than discard when the victim is among the slowest.
  if (options_.slowKeep > 0) {
    if (slow_.size() < options_.slowKeep) {
      slow_[victim->first] = std::move(victim->second);
    } else {
      auto fastest = slow_.begin();
      for (auto it = slow_.begin(); it != slow_.end(); ++it) {
        if (it->second.maxDurationNs < fastest->second.maxDurationNs) {
          fastest = it;
        }
      }
      if (victim->second.maxDurationNs > fastest->second.maxDurationNs) {
        slow_.erase(fastest);
        slow_[victim->first] = std::move(victim->second);
      }
    }
  }
  live_.erase(victim);
}

std::vector<TraceTree> TraceCollector::recent(std::size_t n) const {
  MutexLock lock(mu_);
  std::vector<const std::pair<const std::uint64_t, Entry>*> entries;
  entries.reserve(live_.size());
  for (const auto& e : live_) entries.push_back(&e);
  std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
    return a->second.lastTouch > b->second.lastTouch;
  });
  std::vector<TraceTree> out;
  for (const auto* e : entries) {
    if (out.size() >= n) break;
    out.push_back(assembleTrace(e->second.spans));
  }
  return out;
}

std::vector<TraceTree> TraceCollector::slowest(std::size_t n) const {
  MutexLock lock(mu_);
  std::vector<const std::pair<const std::uint64_t, Entry>*> entries;
  entries.reserve(live_.size() + slow_.size());
  for (const auto& e : live_) entries.push_back(&e);
  for (const auto& e : slow_) entries.push_back(&e);
  std::sort(entries.begin(), entries.end(), [](const auto* a, const auto* b) {
    return a->second.maxDurationNs > b->second.maxDurationNs;
  });
  std::vector<TraceTree> out;
  for (const auto* e : entries) {
    if (out.size() >= n) break;
    out.push_back(assembleTrace(e->second.spans));
  }
  return out;
}

std::vector<Span> TraceCollector::spansFor(std::uint64_t traceId) const {
  MutexLock lock(mu_);
  std::vector<Span> out;
  const auto take = [&](const std::map<std::uint64_t, Entry>& table) {
    for (const auto& [id, entry] : table) {
      if (traceId != 0 && id != traceId) continue;
      out.insert(out.end(), entry.spans.begin(), entry.spans.end());
    }
  };
  take(live_);
  take(slow_);
  return out;
}

std::size_t TraceCollector::traceCount() const {
  MutexLock lock(mu_);
  return live_.size() + slow_.size();
}

std::uint64_t TraceCollector::spansReceived() const {
  MutexLock lock(mu_);
  return received_;
}

}  // namespace dpss::obs
