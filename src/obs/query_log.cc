#include "obs/query_log.h"

#include <cstdio>

namespace dpss::obs {

namespace {

std::string escape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void appendU64(std::string& out, const char* key, std::uint64_t v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

void QueryLog::record(QueryLogRecord record) {
  MutexLock lock(mu_);
  ++total_;
  if (record.notable(options_.slowThresholdNs)) {
    kept_.push_back(record);
    while (kept_.size() > options_.keptCapacity) kept_.pop_front();
  }
  recent_.push_back(std::move(record));
  while (recent_.size() > options_.recentCapacity) recent_.pop_front();
}

void QueryLog::setSlowThresholdNs(std::uint64_t ns) {
  MutexLock lock(mu_);
  options_.slowThresholdNs = ns;
}

std::uint64_t QueryLog::slowThresholdNs() const {
  MutexLock lock(mu_);
  return options_.slowThresholdNs;
}

std::vector<QueryLogRecord> QueryLog::recent() const {
  MutexLock lock(mu_);
  return {recent_.rbegin(), recent_.rend()};
}

std::vector<QueryLogRecord> QueryLog::kept() const {
  MutexLock lock(mu_);
  return {kept_.rbegin(), kept_.rend()};
}

std::uint64_t QueryLog::totalRecorded() const {
  MutexLock lock(mu_);
  return total_;
}

std::string renderQueryLogLine(const QueryLogRecord& r) {
  std::string out = "{";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"trace_id\":\"%016llx\",",
                static_cast<unsigned long long>(r.traceId));
  out += buf;
  out += "\"kind\":\"" + escape(r.kind) + "\",";
  out += "\"target\":\"" + escape(r.target) + "\",";
  appendU64(out, "start_ns", r.startNs);
  out += ",";
  appendU64(out, "duration_ns", r.durationNs);
  out += ",";
  appendU64(out, "segments_queried", r.segmentsQueried);
  out += ",";
  appendU64(out, "cache_hits", r.cacheHits);
  out += ",";
  appendU64(out, "bytes_moved", r.bytesMoved);
  out += ",\"partial\":";
  out += r.partial ? "true" : "false";
  out += ",\"unreachable_segments\":[";
  for (std::size_t i = 0; i < r.unreachableSegments.size(); ++i) {
    if (i > 0) out += ",";
    out += '"';
    out += escape(r.unreachableSegments[i]);
    out += '"';
  }
  out += "],\"segments\":[";
  for (std::size_t i = 0; i < r.segments.size(); ++i) {
    const auto& s = r.segments[i];
    if (i > 0) out += ",";
    out += "{\"segment\":\"" + escape(s.segment) + "\",";
    out += "\"node\":\"" + escape(s.node) + "\",";
    appendU64(out, "latency_ns", s.latencyNs);
    out += ",\"outcome\":\"" + escape(s.outcome) + "\"}";
  }
  out += "]";
  if (!r.error.empty()) out += ",\"error\":\"" + escape(r.error) + "\"";
  out += "}";
  return out;
}

std::string renderQueryLogLines(const std::vector<QueryLogRecord>& records) {
  std::string out;
  for (const auto& r : records) {
    out += renderQueryLogLine(r);
    out += "\n";
  }
  return out;
}

}  // namespace dpss::obs
