#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "common/error.h"
#include "common/logging.h"

namespace dpss::obs {

namespace {

struct Descriptor {
  MetricKind kind;
  std::string name;
  Labels labels;
};

struct InternTable {
  Mutex mu;
  std::map<std::string, MetricId> byKey DPSS_GUARDED_BY(mu);
  std::vector<Descriptor> descriptors DPSS_GUARDED_BY(mu);
};

InternTable& internTable() {
  static InternTable* table = new InternTable();  // leaked: outlives statics
  return *table;
}

std::string internKey(MetricKind kind, const std::string& name,
                      const Labels& labels) {
  std::string key;
  key.push_back(static_cast<char>('0' + static_cast<int>(kind)));
  key += name;
  for (const auto& [k, v] : labels) {
    key.push_back('\x01');
    key += k;
    key.push_back('\x02');
    key += v;
  }
  return key;
}

MetricId intern(MetricKind kind, std::string name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  InternTable& table = internTable();
  MutexLock lock(table.mu);
  const std::string key = internKey(kind, name, labels);
  const auto it = table.byKey.find(key);
  if (it != table.byKey.end()) return it->second;
  DPSS_CHECK_MSG(table.descriptors.size() < MetricsRegistry::kMaxMetrics,
                 "metric intern table full; raise kMaxMetrics");
  const MetricId id = static_cast<MetricId>(table.descriptors.size());
  table.descriptors.push_back(Descriptor{kind, std::move(name), std::move(labels)});
  table.byKey.emplace(key, id);
  return id;
}

Descriptor descriptorOf(MetricId id) {
  InternTable& table = internTable();
  MutexLock lock(table.mu);
  return table.descriptors.at(id);
}

std::size_t internCount() {
  InternTable& table = internTable();
  MutexLock lock(table.mu);
  return table.descriptors.size();
}

thread_local MetricsRegistry* t_registry = nullptr;

// boundedLabelValue state: per (metric, labelKey) set of admitted values.
// Process-wide like the intern table, and leaked for the same reason.
struct LabelBoundTable {
  Mutex mu;
  std::map<std::string, std::set<std::string>> admitted DPSS_GUARDED_BY(mu);
};

LabelBoundTable& labelBoundTable() {
  static LabelBoundTable* table = new LabelBoundTable();
  return *table;
}

}  // namespace

MetricId internCounter(std::string name, Labels labels) {
  return intern(MetricKind::kCounter, std::move(name), std::move(labels));
}
MetricId internGauge(std::string name, Labels labels) {
  return intern(MetricKind::kGauge, std::move(name), std::move(labels));
}
MetricId internHistogram(std::string name, Labels labels) {
  return intern(MetricKind::kHistogram, std::move(name), std::move(labels));
}

std::string boundedLabelValue(const std::string& metricName,
                              const std::string& labelKey, std::string value,
                              std::size_t cap) {
  LabelBoundTable& table = labelBoundTable();
  MutexLock lock(table.mu);
  std::set<std::string>& admitted = table.admitted[metricName + '\x01' + labelKey];
  if (admitted.count(value) != 0) return value;
  if (admitted.size() >= cap) return "other";
  admitted.insert(value);
  return value;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = seen + buckets[i];
    if (static_cast<double>(next) >= rank) {
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(1ULL << (i - 1));
      const double upper = static_cast<double>(Histogram::bucketUpper(i)) + 1.0;
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * frac;
    }
    seen = next;
  }
  return static_cast<double>(Histogram::bucketUpper(buckets.size() - 1));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void MetricSample::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind));
  w.str(name);
  w.varint(labels.size());
  for (const auto& [k, v] : labels) {
    w.str(k);
    w.str(v);
  }
  switch (kind) {
    case MetricKind::kCounter:
      w.u64(counterValue);
      break;
    case MetricKind::kGauge:
      w.i64(gaugeValue);
      break;
    case MetricKind::kHistogram: {
      w.u64(histogram.count);
      w.u64(histogram.sum);
      std::uint64_t nonzero = 0;
      for (const auto b : histogram.buckets) nonzero += b != 0 ? 1 : 0;
      w.varint(nonzero);
      for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
        if (histogram.buckets[i] == 0) continue;
        w.varint(i);
        w.varint(histogram.buckets[i]);
      }
      break;
    }
  }
}

MetricSample MetricSample::deserialize(ByteReader& r) {
  MetricSample s;
  s.kind = static_cast<MetricKind>(r.u8());
  s.name = r.str();
  const std::uint64_t nLabels = r.varint();
  s.labels.reserve(nLabels);
  for (std::uint64_t i = 0; i < nLabels; ++i) {
    std::string k = r.str();
    std::string v = r.str();
    s.labels.emplace_back(std::move(k), std::move(v));
  }
  switch (s.kind) {
    case MetricKind::kCounter:
      s.counterValue = r.u64();
      break;
    case MetricKind::kGauge:
      s.gaugeValue = r.i64();
      break;
    case MetricKind::kHistogram: {
      s.histogram.count = r.u64();
      s.histogram.sum = r.u64();
      const std::uint64_t nonzero = r.varint();
      for (std::uint64_t i = 0; i < nonzero; ++i) {
        const std::uint64_t idx = r.varint();
        const std::uint64_t cnt = r.varint();
        if (idx < s.histogram.buckets.size()) s.histogram.buckets[idx] = cnt;
      }
      break;
    }
  }
  return s;
}

void MetricsSnapshot::serialize(ByteWriter& w) const {
  w.str(node);
  w.varint(samples.size());
  for (const auto& s : samples) s.serialize(w);
}

MetricsSnapshot MetricsSnapshot::deserialize(ByteReader& r) {
  MetricsSnapshot snap;
  snap.node = r.str();
  const std::uint64_t n = r.varint();
  snap.samples.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    snap.samples.push_back(MetricSample::deserialize(r));
  }
  return snap;
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counterValue(std::string_view name) const {
  const auto* s = find(name);
  return s != nullptr && s->kind == MetricKind::kCounter ? s->counterValue : 0;
}

std::uint64_t MetricsSnapshot::histogramCount(std::string_view name) const {
  const auto* s = find(name);
  return s != nullptr && s->kind == MetricKind::kHistogram ? s->histogram.count
                                                           : 0;
}

struct MetricsRegistry::Cell {
  MetricKind kind;
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricsRegistry::MetricsRegistry(std::string nodeName)
    : node_(std::move(nodeName)) {}

MetricsRegistry::~MetricsRegistry() {
  // If this registry is still installed somewhere we cannot fix that here,
  // but the common case — destroyed on the thread that scoped it — is
  // already safe because ScopedRegistry restored the previous pointer.
}

MetricsRegistry::Cell& MetricsRegistry::cell(MetricId id, MetricKind kind) {
  DPSS_CHECK_MSG(id < kMaxMetrics, "metric id out of range");
  Cell* c = cells_[id].load(std::memory_order_acquire);
  if (c == nullptr) {
    MutexLock lock(mu_);
    c = cells_[id].load(std::memory_order_relaxed);
    if (c == nullptr) {
      auto fresh = std::make_unique<Cell>();
      fresh->kind = kind;
      c = fresh.get();
      owned_.push_back(std::move(fresh));
      cells_[id].store(c, std::memory_order_release);
    }
  }
  return *c;
}

Counter& MetricsRegistry::counter(MetricId id) {
  return cell(id, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(MetricId id) {
  return cell(id, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(MetricId id) {
  return cell(id, MetricKind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.node = node_;
  const std::size_t n = std::min<std::size_t>(internCount(), kMaxMetrics);
  for (MetricId id = 0; id < n; ++id) {
    const Cell* c = cells_[id].load(std::memory_order_acquire);
    if (c == nullptr) continue;  // never touched in this registry
    const Descriptor d = descriptorOf(id);
    MetricSample s;
    s.kind = d.kind;
    s.name = d.name;
    s.labels = d.labels;
    switch (d.kind) {
      case MetricKind::kCounter:
        s.counterValue = c->counter.value();
        break;
      case MetricKind::kGauge:
        s.gaugeValue = c->gauge.value();
        break;
      case MetricKind::kHistogram:
        s.histogram = c->histogram.snapshot();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

MetricsRegistry& globalRegistry() {
  static MetricsRegistry* reg = new MetricsRegistry("");  // leaked on purpose
  return *reg;
}

MetricsRegistry& currentRegistry() {
  return t_registry != nullptr ? *t_registry : globalRegistry();
}

ScopedRegistry::ScopedRegistry(MetricsRegistry& r) : prev_(t_registry) {
  t_registry = &r;
  setLogNodeName(r.nodeName());
}

ScopedRegistry::~ScopedRegistry() {
  t_registry = prev_;
  setLogNodeName(prev_ != nullptr ? prev_->nodeName() : std::string());
}

// --- exposition ----------------------------------------------------------

namespace {

std::string sanitizeMetricName(std::string_view name) {
  std::string out = "dpss_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string labelBlock(const MetricsSnapshot& snap, const MetricSample& s,
                       const std::string& extraKey = "",
                       const std::string& extraValue = "") {
  std::vector<std::pair<std::string, std::string>> labels;
  if (!snap.node.empty()) labels.emplace_back("node", snap.node);
  for (const auto& l : s.labels) labels.push_back(l);
  if (!extraKey.empty()) labels.emplace_back(extraKey, extraValue);
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"";
    for (const char c : labels[i].second) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    out += "\"";
  }
  out += "}";
  return out;
}

const char* kindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

namespace {

void renderSampleText(const MetricsSnapshot& snap, const MetricSample& s,
                      std::set<std::string>& typed, std::string& out) {
  char buf[64];
  const std::string name = sanitizeMetricName(s.name);
  if (typed.insert(name).second) {
    out += "# TYPE " + name + " " + kindName(s.kind) + "\n";
  }
  switch (s.kind) {
    case MetricKind::kCounter:
      std::snprintf(buf, sizeof(buf), " %llu\n",
                    static_cast<unsigned long long>(s.counterValue));
      out += name + labelBlock(snap, s) + buf;
      break;
    case MetricKind::kGauge:
      std::snprintf(buf, sizeof(buf), " %lld\n",
                    static_cast<long long>(s.gaugeValue));
      out += name + labelBlock(snap, s) + buf;
      break;
    case MetricKind::kHistogram: {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.histogram.buckets.size(); ++i) {
        if (s.histogram.buckets[i] == 0) continue;
        cumulative += s.histogram.buckets[i];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(Histogram::bucketUpper(i)));
        out += name + "_bucket" + labelBlock(snap, s, "le", buf);
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(cumulative));
        out += buf;
      }
      out += name + "_bucket" + labelBlock(snap, s, "le", "+Inf");
      std::snprintf(buf, sizeof(buf), " %llu\n",
                    static_cast<unsigned long long>(s.histogram.count));
      out += buf;
      std::snprintf(buf, sizeof(buf), " %llu\n",
                    static_cast<unsigned long long>(s.histogram.sum));
      out += name + "_sum" + labelBlock(snap, s) + buf;
      std::snprintf(buf, sizeof(buf), " %llu\n",
                    static_cast<unsigned long long>(s.histogram.count));
      out += name + "_count" + labelBlock(snap, s) + buf;
      break;
    }
  }
}

}  // namespace

std::string renderText(const MetricsSnapshot& snapshot) {
  return renderTextMulti({snapshot});
}

std::string renderTextMulti(const std::vector<MetricsSnapshot>& snapshots) {
  std::string out;
  std::set<std::string> typed;  // one # TYPE per sanitized name
  for (const auto& snap : snapshots) {
    for (const auto& s : snap.samples) renderSampleText(snap, s, typed, out);
  }
  return out;
}

std::string renderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"node\":\"" + jsonEscape(snapshot.node) +
                    "\",\"metrics\":[";
  char buf[64];
  bool first = true;
  for (const auto& s : snapshot.samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + jsonEscape(s.name) + "\",\"kind\":\"" +
           kindName(s.kind) + "\"";
    if (!s.labels.empty()) {
      out += ",\"labels\":{";
      for (std::size_t i = 0; i < s.labels.size(); ++i) {
        if (i > 0) out += ",";
        // Sequential appends: `"..." + jsonEscape(...) + ...` trips
        // GCC 12's spurious -Wrestrict (PR 105651) under -Werror.
        out += '"';
        out += jsonEscape(s.labels[i].first);
        out += "\":\"";
        out += jsonEscape(s.labels[i].second);
        out += '"';
      }
      out += "}";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), ",\"value\":%llu}",
                      static_cast<unsigned long long>(s.counterValue));
        out += buf;
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), ",\"value\":%lld}",
                      static_cast<long long>(s.gaugeValue));
        out += buf;
        break;
      case MetricKind::kHistogram:
        std::snprintf(buf, sizeof(buf), ",\"count\":%llu,\"sum\":%llu",
                      static_cast<unsigned long long>(s.histogram.count),
                      static_cast<unsigned long long>(s.histogram.sum));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"p50\":%.1f,\"p95\":%.1f",
                      s.histogram.quantile(0.5), s.histogram.quantile(0.95));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",\"p99\":%.1f}",
                      s.histogram.quantile(0.99));
        out += buf;
        break;
    }
  }
  out += "]}";
  return out;
}

std::string renderJsonMulti(const std::vector<MetricsSnapshot>& snapshots) {
  std::string out = "{\"nodes\":[";
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    if (i > 0) out += ",";
    out += renderJson(snapshots[i]);
  }
  out += "]}";
  return out;
}

}  // namespace dpss::obs
