// Cross-process trace assembly — the coordinator's half of the tracing
// story. Worker nodes record finished spans into their bounded SpanStore
// (obs/trace.h) and ship batches to the coordinator (cluster/span_ship.h,
// rpc::kSpans); this file stitches every span sharing a trace id back
// into a tree, so one PSS query renders as
//   client -> broker scatter -> per-historical slice scans -> fold -> gather
// with per-hop wire time separated from handler time.
//
// Wire-time attribution: a child span recorded on a *different* node than
// its parent got there over an RPC, so the slice of the parent's duration
// its handler did not account for is wire + queue + frame time:
//   wireNs = parent.durationNs - child.durationNs   (clamped at 0)
// Spans use CLOCK_MONOTONIC, which all processes on one host share, so
// nesting assertions across processes are meaningful; the subtraction
// above never compares absolute timestamps across hosts, only durations,
// so it stays valid even without a shared clock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace dpss::obs {

/// One span with its resolved children (children sorted by startNs).
struct TraceNode {
  Span span;
  /// Wire + queue time for a remote hop: parent duration minus this
  /// handler's duration. 0 for same-node children and for roots.
  std::uint64_t wireNs = 0;
  std::vector<TraceNode> children;
};

/// One assembled trace. Spans whose parent never arrived (dropped by a
/// ring, or the parent is still open) surface as extra roots rather than
/// vanishing.
struct TraceTree {
  std::uint64_t traceId = 0;
  std::uint64_t startNs = 0;     // earliest span start
  std::uint64_t durationNs = 0;  // longest span duration (the root's, normally)
  std::size_t spanCount = 0;
  std::vector<std::string> nodes;  // distinct recording nodes, sorted
  std::vector<TraceNode> roots;    // sorted by startNs

  /// Depth-first search for the first node with this span name.
  const TraceNode* find(std::string_view name) const;
};

TraceTree assembleTrace(std::vector<Span> spans);

/// Groups by trace id and assembles each; trees sorted by startNs.
std::vector<TraceTree> assembleTraces(std::vector<Span> spans);

/// Human-readable tree (one span per line, indented, durations in ms).
std::string renderTraceText(const TraceTree& tree);

/// JSON: {"trace_id","start_ns","duration_ns","span_count","nodes",
///        "spans":[recursive {name,node,start_ns,duration_ns,wire_ns,
///                            tags,children}]}.
std::string renderTraceJson(const TraceTree& tree);

/// Bounded sink for shipped spans, keyed by trace id. Eviction is
/// least-recently-updated, but a trace evicted from the live table whose
/// root duration ranks among the slowest seen is demoted into a small
/// side table instead of discarded — so /tracez can always answer "what
/// were the slowest queries" even after a flood of fast traffic.
class TraceCollector {
 public:
  struct Options {
    std::size_t maxTraces = 256;
    std::size_t maxSpansPerTrace = 512;
    std::size_t slowKeep = 32;
  };

  TraceCollector() : TraceCollector(Options()) {}
  explicit TraceCollector(Options options) : options_(options) {}

  void add(std::vector<Span> spans);

  /// Most recently updated traces, assembled, newest first.
  std::vector<TraceTree> recent(std::size_t n) const;
  /// Slowest traces (live + demoted), assembled, slowest first.
  std::vector<TraceTree> slowest(std::size_t n) const;
  /// Raw spans for one trace (0 = every buffered span), live + demoted.
  std::vector<Span> spansFor(std::uint64_t traceId) const;
  std::size_t traceCount() const;
  std::uint64_t spansReceived() const;

 private:
  struct Entry {
    std::vector<Span> spans;
    std::uint64_t lastTouch = 0;
    std::uint64_t maxDurationNs = 0;
  };

  void evictOneLocked() DPSS_REQUIRES(mu_);

  mutable Mutex mu_;
  Options options_;
  std::uint64_t touchCounter_ DPSS_GUARDED_BY(mu_) = 0;
  std::uint64_t received_ DPSS_GUARDED_BY(mu_) = 0;
  std::map<std::uint64_t, Entry> live_ DPSS_GUARDED_BY(mu_);
  std::map<std::uint64_t, Entry> slow_ DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::obs
