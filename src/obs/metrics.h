// Cluster observability: lock-cheap metrics registry (§IV is entirely
// about where time goes — scan rate, per-core throughput, Paillier fold
// cost — so the instrumentation layer is first-class infrastructure).
//
// Design:
//  * Metric identities (kind + name + labels) are interned process-wide
//    into dense MetricIds at static-init time. Interning takes a mutex;
//    it happens once per call site.
//  * A MetricsRegistry is a fixed-size array of lazily created cells
//    indexed by MetricId. The hot path — Counter::inc, Histogram::observe
//    — is one relaxed atomic op after an atomic pointer load. No locks,
//    no string hashing.
//  * Every node (broker / historical / realtime) owns its own registry;
//    low-level code (Paillier, segment scan, bitmap intersection) records
//    into the *current* registry, a thread-local installed by
//    ScopedRegistry around each RPC handler and pool task. Code running
//    outside any node scope falls back to the process-global registry —
//    which is what single-process benches read.
//  * Histograms are log2-bucketed (bucket i counts values with
//    bit_width == i), giving ~2x-relative-error quantiles over the full
//    ns..minutes range in 64 fixed slots.
//
// Exposition: snapshot() produces a serializable MetricsSnapshot; the
// stats RPC (cluster/stats.h) ships it across the transport, and
// renderText()/renderJson() emit Prometheus text / JSON for benches and
// operators.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/thread_annotations.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace dpss::obs {

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// Label set attached to a metric identity ("name+labels"), e.g.
/// {{"op", "encrypt"}}. Kept sorted by key at intern time.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Dense process-wide metric identity. Intern once (function-local
/// static at the call site), then index registries with it forever.
using MetricId = std::uint32_t;

MetricId internCounter(std::string name, Labels labels = {});
MetricId internGauge(std::string name, Labels labels = {});
MetricId internHistogram(std::string name, Labels labels = {});

/// Bounds the cardinality of a dynamic label value. The first `cap`
/// distinct values ever seen for (metricName, labelKey) pass through
/// unchanged; every later value collapses to "other". Required whenever
/// an intern* label value is not a string literal (segment ids, peer
/// names, data sources, ...): the intern table is capped at kMaxMetrics
/// and DPSS_CHECK-aborts on overflow, so an unbounded label value is a
/// process-killing leak, not just an exposition nuisance. Enforced by
/// the dpss-lint "metric-label" rule.
std::string boundedLabelValue(const std::string& metricName,
                              const std::string& labelKey, std::string value,
                              std::size_t cap = 16);

/// Monotonic counter. All ops relaxed: totals are exact because every
/// increment lands; ordering against other metrics is irrelevant.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, 64> buckets{};  // buckets[i]: bit_width(v) == i

  /// Quantile estimate (q in [0,1]) with linear interpolation inside the
  /// containing log2 bucket; exact to ~2x relative error.
  double quantile(double q) const;
  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
};

/// Log2-bucketed histogram for nonnegative values (typically nanoseconds).
class Histogram {
 public:
  void observe(std::uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;

  static std::size_t bucketOf(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  /// Inclusive upper bound of bucket i: 2^i - 1 (v in [2^(i-1), 2^i)).
  static std::uint64_t bucketUpper(std::size_t i) {
    return i >= 64 ? ~0ULL : (1ULL << i) - 1;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, 64> buckets_{};
};

/// One exported sample: the identity plus the kind-specific payload.
struct MetricSample {
  MetricKind kind = MetricKind::kCounter;
  std::string name;
  Labels labels;
  std::uint64_t counterValue = 0;
  std::int64_t gaugeValue = 0;
  HistogramSnapshot histogram;

  void serialize(ByteWriter& w) const;
  static MetricSample deserialize(ByteReader& r);
};

/// Point-in-time export of one registry, self-describing and wire-ready.
struct MetricsSnapshot {
  std::string node;  // registry owner ("" for the process-global one)
  std::vector<MetricSample> samples;

  void serialize(ByteWriter& w) const;
  static MetricsSnapshot deserialize(ByteReader& r);

  /// First sample with this name (any labels), or nullptr.
  const MetricSample* find(std::string_view name) const;
  /// Counter value by name, 0 when absent.
  std::uint64_t counterValue(std::string_view name) const;
  /// Histogram observation count by name, 0 when absent.
  std::uint64_t histogramCount(std::string_view name) const;
};

/// Per-node metric + span store. See file comment for the threading model.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::string nodeName = "");
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  Counter& counter(MetricId id);
  Gauge& gauge(MetricId id);
  Histogram& histogram(MetricId id);

  SpanStore& spans() { return spans_; }
  QueryLog& queryLog() { return queryLog_; }
  const std::string& nodeName() const { return node_; }
  /// Names the registry after the fact — for the process-global registry,
  /// whose owner (main) only learns the node name from flags. Call before
  /// any other thread can snapshot(); the name is unsynchronized.
  void setNodeName(std::string name) { node_ = std::move(name); }

  /// Every cell ever touched in this registry, in MetricId order.
  MetricsSnapshot snapshot() const;

  static constexpr std::size_t kMaxMetrics = 512;

 private:
  struct Cell;
  Cell& cell(MetricId id, MetricKind kind);

  std::string node_;
  std::array<std::atomic<Cell*>, kMaxMetrics> cells_{};
  Mutex mu_;  // guards cell creation only; reads go through the atomics
  std::vector<std::unique_ptr<Cell>> owned_ DPSS_GUARDED_BY(mu_);
  SpanStore spans_;
  QueryLog queryLog_;
};

/// Process-global fallback registry (benches, client-side code).
MetricsRegistry& globalRegistry();

/// The registry instrumentation records into on this thread: the
/// innermost ScopedRegistry, else the global one.
MetricsRegistry& currentRegistry();

/// Installs `r` as the current registry for this thread (RAII, nestable).
/// Also routes the node name into the logger prefix (common/logging.h) so
/// multi-node logs attribute lines to the node whose code is running.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry& r);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

/// Observes the elapsed steady-clock nanoseconds into a histogram on
/// destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(h), start_(nowNanos()) {}
  ~ScopedTimer() { h_.observe(nowNanos() - start_); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& h_;
  std::uint64_t start_;
};

// --- exposition ----------------------------------------------------------

/// Prometheus text exposition (histograms expand to
/// _bucket{le=...}/_sum/_count; one # TYPE line per metric name). Names
/// are sanitized to the Prometheus charset and prefixed "dpss_"; the
/// registry's node name becomes a node="..." label.
std::string renderText(const MetricsSnapshot& snapshot);

/// Prometheus text over several registries at once (the admin server
/// serves the node registry merged with the process-global one, since
/// net.server.* lands in the global registry while rpc.* lands in the
/// node's). Samples sharing a name render under a single # TYPE line and
/// stay distinguishable by their node label.
std::string renderTextMulti(const std::vector<MetricsSnapshot>& snapshots);

/// Compact JSON: {"node":...,"metrics":[{name, kind, value|histogram}]}.
std::string renderJson(const MetricsSnapshot& snapshot);

/// JSON over several registries: {"nodes":[<renderJson>, ...]}.
std::string renderJsonMulti(const std::vector<MetricsSnapshot>& snapshots);

}  // namespace dpss::obs
