// Abstract broker surface the PSS client driver needs (§III-C): scatter
// one encrypted query over a document source and hand back the per-slice
// envelopes. BrokerNode implements it in-process; net::RemoteBroker
// (src/net/) implements it over TCP, so runDistributedPrivateSearch is
// transport-agnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "pss/dictionary.h"
#include "pss/query.h"
#include "pss/searcher.h"

namespace dpss::cluster {

class PrivateSearchBroker {
 public:
  virtual ~PrivateSearchBroker() = default;

  /// Scatters `encryptedQuery` to every node announcing a slice of
  /// `docSource`; returns one envelope per slice. Throws Unavailable on
  /// whole-batch failure, NotFound when nothing serves the source.
  virtual std::vector<pss::SearchResultEnvelope> privateSearch(
      const std::string& docSource, const pss::Dictionary& dictionary,
      const pss::EncryptedQuery& encryptedQuery,
      std::uint64_t* traceIdOut = nullptr) = 0;

  /// The clock batch-retry backoff sleeps on.
  virtual Clock& clock() = 0;
};

}  // namespace dpss::cluster
