// Segment compaction: merge many small segments covering an interval into
// one new higher-version segment — the paper's replacement model ("the
// historical segment can be updated through the creation of a new
// historical segment that obsoletes the older one") applied to the
// classic many-small-segments problem left behind by fine-grained
// real-time handoffs.
#pragma once

#include <string>

#include "cluster/metastore.h"
#include "common/interval.h"
#include "storage/deep_storage.h"

namespace dpss::cluster {

struct CompactionResult {
  std::size_t inputSegments = 0;
  std::size_t outputRows = 0;
  storage::SegmentId outputId;
};

/// Merges every used segment of `dataSource` fully inside `interval` into
/// one segment with version `newVersion` (must sort above the inputs'
/// versions), uploads it, registers it, and marks the inputs unused.
/// Returns nullopt-like zero-input result when nothing qualifies.
/// The next coordinator cycle drops the old copies and loads the new one;
/// the broker timeline overshadows in the meantime.
CompactionResult compactInterval(storage::DeepStorage& deepStorage,
                                 MetaStore& metaStore,
                                 const std::string& dataSource,
                                 const Interval& interval,
                                 const std::string& newVersion);

}  // namespace dpss::cluster
