// Cluster-wide seeded fault injection (the whole-cluster extension of the
// transport's ChaosPolicy, PR 2).
//
// From one (seed, virtual-clock) pair the scheduler derives a replayable
// schedule of faults across every layer the paper's architecture (§III)
// assumes can fail:
//   - node crash/restart cycles: historical, realtime, broker
//   - deep-storage faults: failed gets/puts, slow reads, transient
//     read corruption, at-rest bit-flipped blobs
//   - registry lease churn: session expiries with re-registration backoff
//   - membership churn (DESIGN.md §13, weights default 0 so pre-existing
//     seeds replay unchanged): runtime historical joins, graceful
//     decommissions, coordinator leader deposition
//
// Determinism contract: buildSchedule() is a pure function of
// (options, historicalCount, realtimeCount, startMs) — same seed, same
// topology, byte-identical schedule. The applied-event log is equally
// deterministic when the harness drives the clock and pump() the same way
// (the tests step a ManualClock and compare logs element-wise). Wire-level
// chaos (drops/dups/latency/partitions) rides the same seed: the
// transport's ChaosOptions seed is derived from the scheduler seed, so one
// number replays the entire failure story, logged alongside
// Transport::chaosEvents() and counted in chaos.* metrics.
//
// The scheduler only injects; recovery is the cluster's job — coordinator
// re-replication, historical re-download/re-announce + checksum self-heal,
// realtime replay from the committed offset, registry re-registration with
// backoff. heal() ends the story: it restarts whatever is still down and
// cancels outstanding storage/transport faults so the harness can assert
// the cluster converges back to full replication with checksums verified.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/transport.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace dpss::cluster {

enum class ChaosEventKind : std::uint8_t {
  kHistoricalCrash,
  kHistoricalRestart,
  kRealtimeCrash,
  kRealtimeRestart,
  kBrokerStop,
  kBrokerRestart,
  kStorageGetOutage,    // param = number of gets that fail Unavailable
  kStoragePutOutage,    // param = number of puts that fail Unavailable
  kStorageSlowReads,    // param = number of gets, param2 = delay ms
  kStorageCorruptReads, // param = number of gets returning flipped bytes
  kStorageCorruptBlob,  // at-rest bit rot; blob chosen at apply time
  kRegistryExpiry,      // lease loss on a historical or realtime node
  kHistoricalJoin,          // runtime scale-out: a new historical starts
  kHistoricalDecommission,  // graceful drain; skipped if it would empty
                            // the cluster (node chosen at apply time)
  kCoordinatorDepose,       // leader loses its session without noticing;
                            // exercises epoch fencing + re-election
  kSubscriptionSubscribe,    // harness hook registers a standing query
                             // (the scheduler cannot build an encrypted
                             // query itself — that needs client keys)
  kSubscriptionUnsubscribe,  // harness hook retires a standing query
  kSubscriptionSnapshotDeadline,  // forces the seal barrier on one
                                  // realtime node mid-stream
};

const char* toString(ChaosEventKind kind);

/// One scheduled fault. `target` is a raw draw reduced modulo the live
/// node/blob count at apply time; `param`/`param2` are kind-specific (see
/// ChaosEventKind).
struct ClusterChaosEvent {
  TimeMs at = 0;
  ChaosEventKind kind = ChaosEventKind::kHistoricalCrash;
  std::uint32_t target = 0;
  std::int64_t param = 0;
  std::int64_t param2 = 0;

  friend bool operator==(const ClusterChaosEvent&,
                         const ClusterChaosEvent&) = default;
};

/// A schedule entry after pump() processed it: `detail` names the resolved
/// target (node name or blob key); `applied` is false when the event was
/// skipped because its target was already down/up/empty.
struct AppliedChaosEvent {
  ClusterChaosEvent event;
  std::string detail;
  bool applied = false;

  friend bool operator==(const AppliedChaosEvent&,
                         const AppliedChaosEvent&) = default;
};

struct ChaosScheduleOptions {
  std::uint64_t seed = 0;
  /// Faults are scheduled in (start, start + horizonMs].
  TimeMs horizonMs = 20'000;
  /// Mean gap between consecutive events (uniform in [gap/2, 3*gap/2]).
  TimeMs meanEventGapMs = 1'000;

  /// Relative weights per fault class; 0 disables a class. Classes whose
  /// targets don't exist (e.g. realtime faults with no realtime nodes)
  /// are disabled automatically so schedules stay comparable across runs
  /// of the same topology.
  double historicalCrashWeight = 1.0;
  double realtimeCrashWeight = 1.0;
  double brokerRestartWeight = 0.5;
  double storageGetOutageWeight = 1.0;
  double storagePutOutageWeight = 0.5;
  double storageSlowReadWeight = 0.0;  // needs a driven clock; see header
  double storageCorruptReadWeight = 0.5;
  double storageCorruptBlobWeight = 0.0;  // heals only via replica re-upload
  double registryExpiryWeight = 1.0;
  /// Membership churn. All default 0.0: schedules built before these
  /// classes existed must replay byte-identically from the same seed.
  double historicalJoinWeight = 0.0;
  double decommissionWeight = 0.0;
  double coordinatorDeposeWeight = 0.0;
  /// Subscription churn (PR 10). Also default 0.0 for the same replay
  /// guarantee: a zero-weight class is dropped before any RNG draw, so
  /// pre-existing seeds keep producing byte-identical schedules.
  double subscriptionSubscribeWeight = 0.0;
  double subscriptionUnsubscribeWeight = 0.0;
  double subscriptionSnapshotDeadlineWeight = 0.0;

  /// Harness hooks for subscription churn — registering a standing query
  /// needs client-side key material the scheduler must never hold. The
  /// argument is the event's raw target draw; return false to log the
  /// event as skipped. Unset hooks skip their events.
  std::function<bool(std::uint32_t)> onSubscriptionSubscribe;
  std::function<bool(std::uint32_t)> onSubscriptionUnsubscribe;

  /// Crash events pair with an explicit restart event this far out.
  TimeMs crashDownMinMs = 500;
  TimeMs crashDownMaxMs = 3'000;
  /// Storage outage/corruption burst sizes are uniform in [1, max].
  std::int64_t storageBurstMaxOps = 4;
  /// Slow-read delay uniform in [min, max] ms.
  TimeMs slowReadMinMs = 5;
  TimeMs slowReadMaxMs = 30;

  /// Wire-level chaos installed on the cluster transport for the story's
  /// duration; its seed is overwritten with one derived from `seed`. All
  /// probabilities zero (the default) leaves the transport untouched.
  ChaosOptions transport{};
};

class ChaosScheduler {
 public:
  /// Precomputes the schedule from (options, cluster topology, clock now)
  /// and, when options.transport has any nonzero probability, installs
  /// seed-derived chaos on the cluster's transport.
  ChaosScheduler(Cluster& cluster, ChaosScheduleOptions options);
  ~ChaosScheduler();

  ChaosScheduler(const ChaosScheduler&) = delete;
  ChaosScheduler& operator=(const ChaosScheduler&) = delete;

  /// The full precomputed schedule — a pure function of (options,
  /// historicalCount, realtimeCount, startMs); exposed for determinism
  /// tests and for replaying a story from its seed.
  const std::vector<ClusterChaosEvent>& schedule() const { return schedule_; }

  static std::vector<ClusterChaosEvent> buildSchedule(
      const ChaosScheduleOptions& options, std::size_t historicalCount,
      std::size_t realtimeCount, TimeMs startMs);

  /// Applies every not-yet-applied event whose time has passed on the
  /// cluster clock. Returns how many events were processed.
  std::size_t pump();

  /// True once every scheduled event has been processed.
  bool done() const;

  /// Ends the story: restarts every node a crash left down, cancels
  /// outstanding storage faults, and removes the transport chaos this
  /// scheduler installed. Recovery (re-replication, checksum repair,
  /// realtime replay) is then the cluster's own machinery.
  void heal();

  /// Applied/skipped events in processing order, for replay comparison
  /// alongside Transport::chaosEvents().
  std::vector<AppliedChaosEvent> log() const;

  /// chaos.* counters (events applied/skipped, crashes, restarts, storage
  /// faults, corruptions, registry expiries). Also served over rpc::kStats
  /// under the node name "chaos-scheduler".
  obs::MetricsRegistry& metrics() { return obs_; }

 private:
  void apply(const ClusterChaosEvent& event) DPSS_EXCLUDES(mu_);
  void record(const ClusterChaosEvent& event, bool applied,
              std::string detail) DPSS_EXCLUDES(mu_);

  Cluster& cluster_;
  ChaosScheduleOptions options_;
  std::vector<ClusterChaosEvent> schedule_;
  bool transportChaosInstalled_ = false;
  obs::MetricsRegistry obs_{"chaos-scheduler"};

  mutable Mutex mu_;
  std::size_t next_ DPSS_GUARDED_BY(mu_) = 0;
  std::vector<AppliedChaosEvent> log_ DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::cluster
