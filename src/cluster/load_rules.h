// Rule table entries (§III-A-4): "MySQL database also contains a rule
// table to manage how segments are created, destroyed and replicated in
// the cluster."
#pragma once

#include <cstddef>

#include "common/clock.h"

namespace dpss::cluster {

struct LoadRules {
  /// Copies of each segment the coordinator maintains across historical
  /// nodes (the paper's "management of the replicated segments").
  std::size_t replicationFactor = 1;

  /// Segments whose interval ended more than this long before now are
  /// dropped from the cluster (0 = keep forever). Deep-storage blobs are
  /// never deleted by retention — only serving copies.
  TimeMs retentionMs = 0;
};

}  // namespace dpss::cluster
