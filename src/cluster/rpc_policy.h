// Client-side RPC call policy: bounded retries with exponential backoff
// and a per-call deadline, both measured against the transport's virtual
// Clock so tests drive every schedule deterministically.
//
// The in-process transport makes a retry essentially free, so the default
// policy retries immediately (zero backoff) — real deployments raise
// initialBackoffMs. A deadline of 0 means "no deadline". Deadline expiry
// throws the typed DeadlineExceeded (a subclass of Unavailable, so
// replica-failover paths keep working unchanged).
//
// Every attempt/retry/deadline event is counted into the *current*
// obs::MetricsRegistry — on the broker's scatter threads that is the
// broker's registry, so the counters travel over rpc::kStats and show up
// in Cluster::collectStats() like any other node metric.
#pragma once

#include <cstddef>
#include <string>

#include "cluster/transport.h"
#include "common/clock.h"

namespace dpss::cluster {

struct RpcPolicy {
  /// Total tries per call (first attempt included). >= 1.
  std::size_t maxAttempts = 3;
  /// Backoff before the first retry; 0 disables backoff sleeping.
  TimeMs initialBackoffMs = 0;
  /// Growth factor between consecutive backoffs.
  double backoffMultiplier = 2.0;
  /// Upper bound on any single backoff (0 = uncapped).
  TimeMs maxBackoffMs = 1000;
  /// Per-call time budget across all attempts and backoffs (0 = none).
  TimeMs deadlineMs = 0;
};

/// Backoff before retry number `retryIndex` (0-based): initial *
/// multiplier^retryIndex, capped at maxBackoffMs. Pure function.
TimeMs backoffDelayMs(const RpcPolicy& policy, std::size_t retryIndex);

/// Metric names recorded by callWithPolicy (all counters).
namespace rpcmetrics {
inline constexpr const char* kAttempts = "rpc.attempts";
inline constexpr const char* kRetries = "rpc.retries";
inline constexpr const char* kRetryExhausted = "rpc.retry_exhausted";
inline constexpr const char* kDeadlineExceeded = "rpc.deadline_exceeded";
}  // namespace rpcmetrics

/// Issues `request` to `nodeName`, retrying Unavailable failures per the
/// policy. Backoff sleeps and the deadline run on the transport's clock.
/// Throws DeadlineExceeded when the budget elapses, otherwise rethrows
/// the last attempt's error once attempts are exhausted. Non-Unavailable
/// errors (NotFound, CorruptData, ...) are never retried: the node
/// answered, it just didn't like the request.
std::string callWithPolicy(TransportIface& transport, const std::string& nodeName,
                           const std::string& request,
                           const RpcPolicy& policy = {});

}  // namespace dpss::cluster
