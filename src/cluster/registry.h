// Coordination service — the in-process Zookeeper (§III-A).
//
// The paper's nodes interact exclusively through znodes: historical nodes
// publish "announcements" (online status + served segments) as ephemeral
// nodes, the coordinator writes assignments into per-node "load queue"
// paths, and the broker watches announcements to build its global view.
// This class reproduces exactly those primitives: a hierarchical key
// space, ephemeral nodes bound to sessions, and child/data watches.
//
// Thread-safety: all operations lock a single registry mutex; watch
// callbacks fire synchronously after the mutation, outside the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace dpss::cluster {

/// A session handle. Destroying it (or calling expire()) removes every
/// ephemeral node it owns — the Zookeeper session-loss semantics that
/// drive failure detection in the cluster.
class RegistrySession;
using SessionPtr = std::shared_ptr<RegistrySession>;

/// One znode in a registry snapshot (see Registry::dump()).
struct RegistryEntry {
  std::string path;
  std::string data;
  bool ephemeral = false;

  friend bool operator==(const RegistryEntry& a,
                         const RegistryEntry& b) = default;
};

/// The methods are virtual so net::RemoteRegistry (src/net/) can forward
/// mutations to an authoritative registry in another OS process while
/// reusing this class as its local, watch-firing mirror. In-process
/// clusters keep using this class directly and pay one virtual dispatch.
class Registry {
 public:
  using Watch = std::function<void(const std::string& path)>;

  Registry() = default;
  virtual ~Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Opens a session for a node.
  virtual SessionPtr connect(const std::string& ownerName);

  /// Creates a node at `path` with `data`. Parents are created implicitly
  /// (as persistent nodes). Throws AlreadyExists.
  virtual void create(const std::string& path, const std::string& data,
                      const SessionPtr& session, bool ephemeral);

  /// Updates data; throws NotFound.
  virtual void setData(const std::string& path, const std::string& data);

  // --- epoch-fenced writes (coordinator failover, DESIGN.md §13) --------
  // A fenced write names an epoch znode (integer data) and the epoch the
  // writer believes it holds. The comparison and the mutation are one
  // atomic step under the registry mutex — ZooKeeper's multi-op
  // check+create. A write whose epoch is below the stored one throws
  // Fenced and mutates nothing: that writer was deposed.

  virtual void createFenced(const std::string& path, const std::string& data,
                            const SessionPtr& session, bool ephemeral,
                            const std::string& fencePath, std::uint64_t epoch);
  virtual void setDataFenced(const std::string& path, const std::string& data,
                             const std::string& fencePath,
                             std::uint64_t epoch);

  /// Atomic leader acquisition: if no znode exists at `leaderPath`, bumps
  /// the integer epoch at `epochPath` (creating it at 1 if absent) and
  /// creates an ephemeral leader znode with data "<ownerTag>#<epoch>" in
  /// the same mutation. Throws AlreadyExists when a leader already holds
  /// the znode. Returns the newly minted epoch.
  virtual std::uint64_t acquireLeadership(const std::string& leaderPath,
                                          const std::string& epochPath,
                                          const std::string& ownerTag,
                                          const SessionPtr& session);

  virtual std::optional<std::string> getData(const std::string& path) const;
  virtual bool exists(const std::string& path) const;

  /// Deletes a node (and its subtree). Unknown paths are ignored.
  virtual void remove(const std::string& path);

  /// Direct children names (not full paths), sorted.
  virtual std::vector<std::string> children(const std::string& path) const;

  /// Fires `watch` whenever the direct-children set of `path` changes or
  /// data of a direct child changes. Persistent (re-arms itself).
  /// Returns an id usable with unwatch().
  virtual std::uint64_t watchChildren(const std::string& path, Watch watch);
  virtual void unwatch(std::uint64_t watchId);

  /// Ends a session: every ephemeral node it owns disappears (with
  /// watches firing) — simulates a node crash / network partition.
  virtual void expire(const SessionPtr& session);

  /// Every znode, sorted by path, plus the mutation version it reflects.
  /// The substrate service serializes this for cross-process mirrors.
  virtual std::vector<RegistryEntry> dump() const;

  /// Monotone counter bumped by every mutation (create/setData/remove/
  /// expire-with-ephemerals). Lets mirrors order snapshots against their
  /// own forwarded writes.
  virtual std::uint64_t version() const;

 private:
  struct Node {
    std::string data;
    bool ephemeral = false;
    std::uint64_t sessionId = 0;  // owner session for ephemerals
  };
  struct WatchEntry {
    std::string path;
    Watch fn;
  };

  void notifyLocked(const std::string& parentPath,
                    std::vector<Watch>& toFire) const DPSS_REQUIRES(mu_);
  static std::string parentOf(const std::string& path);
  void createLocked(const std::string& path, const std::string& data,
                    const SessionPtr& session, bool ephemeral)
      DPSS_REQUIRES(mu_);
  std::uint64_t epochAtLocked(const std::string& epochPath) const
      DPSS_REQUIRES(mu_);
  void checkFenceLocked(const std::string& fencePath, std::uint64_t epoch,
                        const std::string& op) const DPSS_REQUIRES(mu_);
  void removeSubtreeLocked(const std::string& path,
                           std::set<std::string>& changedParents)
      DPSS_REQUIRES(mu_);

  mutable Mutex mu_;

 public:
  /// The registry mutex as a referenceable capability, so node classes
  /// can declare lock order against it (DPSS_ACQUIRED_BEFORE). The
  /// registry is the innermost lock in the cluster: nodes hold their own
  /// mutex across registry calls (connect, create, children), and the
  /// registry never calls back out under mu_ — watches fire after the
  /// mutation, outside the lock (see the class comment). Exposed for
  /// annotation only; nothing outside this class locks it.
  Mutex& internalMutex() const DPSS_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  std::map<std::string, Node> nodes_ DPSS_GUARDED_BY(mu_);
  std::map<std::uint64_t, WatchEntry> watches_ DPSS_GUARDED_BY(mu_);
  std::uint64_t nextWatchId_ DPSS_GUARDED_BY(mu_) = 1;
  std::uint64_t nextSessionId_ DPSS_GUARDED_BY(mu_) = 1;
  std::uint64_t version_ DPSS_GUARDED_BY(mu_) = 0;

  friend class RegistrySession;
};

class RegistrySession {
 public:
  ~RegistrySession();
  std::uint64_t id() const { return id_; }
  const std::string& owner() const { return owner_; }
  bool expired() const { return expired_.load(std::memory_order_acquire); }

 private:
  friend class Registry;
  RegistrySession(Registry* registry, std::uint64_t id, std::string owner)
      : registry_(registry), id_(id), owner_(std::move(owner)) {}

  Registry* registry_;
  std::uint64_t id_;
  std::string owner_;
  // Written by Registry::expire() (under the registry mutex), read by any
  // thread via expired() — atomic so unlocked reads are race-free.
  std::atomic<bool> expired_{false};
};

}  // namespace dpss::cluster
