// Cluster harness: wires the shared substrates (registry, metadata store,
// message queue, deep storage, transport) and manages node lifecycles.
// This is the top-level object examples, tests and benches drive; it is
// the "test cluster" of §IV in miniature.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/broker_node.h"
#include "cluster/coordinator_node.h"
#include "cluster/historical_node.h"
#include "cluster/message_queue.h"
#include "cluster/metastore.h"
#include "cluster/realtime_node.h"
#include "cluster/registry.h"
#include "cluster/subscription_broker.h"
#include "cluster/transport.h"
#include "common/clock.h"
#include "storage/deep_storage.h"
#include "storage/segment.h"

namespace dpss::cluster {

struct ClusterOptions {
  std::size_t historicalNodes = 2;
  std::size_t workerThreadsPerNode = 15;  // the paper's configuration
  std::size_t brokerScatterThreads = 16;
  std::size_t brokerCacheCapacity = 4096;  // 0 disables the result cache
  LoadRules defaultRules{};  // replication factor 1, keep forever
  /// Retry/backoff/deadline policy for the broker's outbound RPCs.
  RpcPolicy rpcPolicy{};
  /// Documents per packed PSS segment (BrokerOptions::pssPackFactor).
  std::size_t pssPackFactor = 1;
  /// Rebalancer/throttle knobs forwarded to the coordinator.
  CoordinatorOptions coordinator{};
};

class Cluster {
 public:
  /// `clock` must outlive the cluster. All nodes are started.
  Cluster(Clock& clock, ClusterOptions options = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- substrates -------------------------------------------------------
  Registry& registry() { return registry_; }
  MetaStore& metaStore() { return metaStore_; }
  MessageQueue& messageQueue() { return queue_; }
  storage::MemoryDeepStorage& deepStorage() { return deepStorage_; }
  Transport& transport() { return transport_; }
  Clock& clock() { return clock_; }

  // --- nodes --------------------------------------------------------------
  BrokerNode& broker() { return *broker_; }
  CoordinatorNode& coordinator() { return *coordinator_; }
  /// The broker-side subscription plane (registration, fan-out,
  /// snapshot collection). Already attached to broker().
  SubscriptionBroker& subscriptionBroker() { return *subscriptionBroker_; }
  HistoricalNode& historical(std::size_t i) { return *historicals_.at(i); }
  std::size_t historicalCount() const { return historicals_.size(); }

  /// Adds one more historical node (scale-out); returns its index.
  std::size_t addHistoricalNode();

  /// Creates a real-time node consuming (topic, partition). The node's
  /// disk survives crashes; drive it with realtime(i).tick().
  std::size_t addRealtimeNode(const std::string& topic, std::size_t partition,
                              const storage::Schema& schema,
                              const std::string& dataSource,
                              RealtimeNodeOptions options = {});
  RealtimeNode& realtime(std::size_t i) { return *realtimes_.at(i); }
  std::size_t realtimeCount() const { return realtimes_.size(); }
  /// Crash a real-time node (lossy: un-persisted index dies), leaving it
  /// down until restartRealtime() brings a new instance up over the
  /// surviving disk. The chaos scheduler uses the split form to model
  /// down-time between crash and restart.
  void crashRealtime(std::size_t i);
  /// Crash (if still up) + restart a real-time node over its surviving
  /// disk.
  void restartRealtime(std::size_t i);

  // --- convenience ---------------------------------------------------------
  /// Publishes segments: encode -> deep storage -> segment table ->
  /// coordinator cycle (which assigns them to historical nodes).
  void publishSegments(const std::vector<storage::SegmentPtr>& segments);

  /// Runs coordinator cycles until no new work is issued (stable state).
  void converge(int maxCycles = 10);

  /// Cluster-wide metrics + span snapshot, assembled by the coordinator
  /// over rpc::kStats (the broker never announces, so it is polled
  /// explicitly). Pass a trace id to restrict spans to one query.
  ClusterStats collectStats(std::uint64_t traceIdFilter = 0);

 private:
  Clock& clock_;
  ClusterOptions options_;
  Registry registry_;
  MetaStore metaStore_;
  MessageQueue queue_;
  storage::MemoryDeepStorage deepStorage_;
  Transport transport_;

  std::vector<std::unique_ptr<HistoricalNode>> historicals_;
  struct RealtimeSlot {
    std::unique_ptr<RealtimeNode> node;
    std::unique_ptr<NodeDisk> disk;
    // Construction parameters retained for restart.
    std::string topic;
    std::size_t partition;
    storage::Schema schema;
    std::string dataSource;
    RealtimeNodeOptions options;
    std::string name;
  };
  std::vector<RealtimeSlot> realtimes_impl_;
  std::vector<RealtimeNode*> realtimes_;
  std::unique_ptr<BrokerNode> broker_;
  std::unique_ptr<SubscriptionBroker> subscriptionBroker_;
  std::unique_ptr<CoordinatorNode> coordinator_;
};

}  // namespace dpss::cluster
