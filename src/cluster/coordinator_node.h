// Coordination node (§III-A-4).
//
// "At running time, the coordination node compares the expected state of
// the cluster and the actual state of the cluster to make decision."
// Expected state comes from the metadata store (segment table + rule
// table); actual state from the registry (announcements + pending load
// queues). The coordinator never talks to a compute node directly: every
// decision is a znode written into some node's load-queue path.
//
// Responsibilities reproduced: loading new segments, dropping outdated /
// unused ones, maintaining the replication factor, and least-loaded
// balancing of assignments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/metastore.h"
#include "cluster/registry.h"
#include "cluster/stats.h"
#include "cluster/transport.h"
#include "common/clock.h"

namespace dpss::cluster {

struct CoordinatorStats {
  std::size_t loadsIssued = 0;
  std::size_t dropsIssued = 0;
  std::size_t segmentsEvaluated = 0;
};

class CoordinatorNode {
 public:
  CoordinatorNode(std::string name, Registry& registry, MetaStore& metaStore,
                  Clock& clock);

  /// One reconciliation cycle ("periodically checks the current status of
  /// the cluster"). Deterministic and idempotent: a second run with no
  /// state change issues nothing.
  CoordinatorStats runOnce();

  /// Assembles the cluster-wide observability snapshot by polling every
  /// announced node (plus `extraNodes`, e.g. the broker, which answers
  /// queries but never announces) over rpc::kStats.
  ClusterStats collectClusterStats(
      TransportIface& transport, const std::vector<std::string>& extraNodes = {},
      std::uint64_t traceIdFilter = 0);

  const std::string& name() const { return name_; }

 private:
  struct NodeState {
    std::string node;
    std::size_t load = 0;  // served + pending assignments
  };

  std::string name_;
  Registry& registry_;
  MetaStore& metaStore_;
  Clock& clock_;
  SessionPtr session_;
};

}  // namespace dpss::cluster
