// Coordination node (§III-A-4).
//
// "At running time, the coordination node compares the expected state of
// the cluster and the actual state of the cluster to make decision."
// Expected state comes from the metadata store (segment table + rule
// table); actual state from the registry (announcements + pending load
// queues). The coordinator never talks to a compute node directly: every
// decision is a znode written into some node's load-queue path.
//
// Responsibilities reproduced: loading new segments, dropping outdated /
// unused ones, maintaining the replication factor, least-loaded balancing
// of assignments — plus, since DESIGN.md §13: graceful node drain
// (re-replicate before dropping, load-before-drop), a throttled
// continuous rebalancer, and leader election with epoch fencing so only
// one coordinator writes load queues at a time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/leader_election.h"
#include "cluster/metastore.h"
#include "cluster/registry.h"
#include "cluster/stats.h"
#include "cluster/transport.h"
#include "common/clock.h"
#include "common/thread_annotations.h"

namespace dpss::cluster {

struct CoordinatorOptions {
  /// Rebalance moves issued per runOnce() cycle; 0 disables rebalancing.
  std::size_t maxMovesPerCycle = 8;
  /// Per-node cap on outstanding (unacked) load-queue loads. New loads —
  /// deficit repair, drain re-replication, rebalance moves alike — are
  /// deferred to a later cycle when the target is at the cap, so a
  /// scale-out never floods one node's download path.
  std::size_t maxPendingLoadsPerNode = 4;
  /// A node pair is "imbalanced" when their (served + pending) load
  /// differs by more than this; the rebalancer stops below it.
  std::size_t imbalanceThreshold = 1;
};

struct CoordinatorStats {
  std::size_t loadsIssued = 0;    // deficit repair + drain re-replication
  std::size_t dropsIssued = 0;
  std::size_t movesIssued = 0;    // rebalance loads (subset of loadsIssued)
  std::size_t throttledLoads = 0;  // deferred by the per-node pending cap
  std::size_t throttledMoves = 0;  // rebalance moves deferred by the cap
  std::size_t drainsCompleted = 0;
  std::size_t fencedWrites = 0;  // writes rejected: we were deposed
  std::size_t segmentsEvaluated = 0;
  std::size_t activeNodes = 0;    // announced historicals not draining
  std::size_t drainingNodes = 0;
  std::size_t imbalance = 0;  // max-min load spread after this cycle
  bool leader = false;
  std::uint64_t epoch = 0;
};

class CoordinatorNode {
 public:
  CoordinatorNode(std::string name, Registry& registry, MetaStore& metaStore,
                  Clock& clock, CoordinatorOptions options = {});

  /// One reconciliation cycle ("periodically checks the current status of
  /// the cluster"). Runs an election round first; a non-leader cycle
  /// issues nothing. Deterministic and idempotent: a second run with no
  /// state change issues nothing.
  CoordinatorStats runOnce();

  /// Assembles the cluster-wide observability snapshot by polling every
  /// announced node (plus `extraNodes`, e.g. the broker, which answers
  /// queries but never announces) over rpc::kStats.
  ClusterStats collectClusterStats(
      TransportIface& transport, const std::vector<std::string>& extraNodes = {},
      std::uint64_t traceIdFilter = 0);

  /// Requests a graceful drain of `node`: subsequent cycles re-replicate
  /// its segments elsewhere, drop its copies only once replacements are
  /// announced serving, and finally flip the flag to drain-complete.
  /// Idempotent. Any coordinator (or the node itself, via the control
  /// channel) may request; only the leader acts on it.
  void requestDrain(const std::string& node);

  /// Stats of the most recent runOnce() (admin-plane thread-safe).
  CoordinatorStats lastStats() const;

  // Cumulative since construction (survive across cycles; the failover
  // test reads these off the NEW leader to prove it took over the work).
  std::uint64_t totalLoadsIssued() const { return totalLoads_.load(); }
  std::uint64_t totalDropsIssued() const { return totalDrops_.load(); }
  std::uint64_t totalMovesIssued() const { return totalMoves_.load(); }

  /// The election handle — exposed for the chaos scheduler's
  /// leader-depose hook and for /statusz.
  LeaderElector& elector() { return elector_; }

  const std::string& name() const { return name_; }

 private:
  void reconcile(CoordinatorStats& stats);

  std::string name_;
  Registry& registry_;
  MetaStore& metaStore_;
  Clock& clock_;
  CoordinatorOptions options_;
  SessionPtr session_;
  LeaderElector elector_;

  std::atomic<std::uint64_t> totalLoads_{0};
  std::atomic<std::uint64_t> totalDrops_{0};
  std::atomic<std::uint64_t> totalMoves_{0};

  mutable Mutex statsMu_;
  CoordinatorStats lastStats_ DPSS_GUARDED_BY(statsMu_);
};

}  // namespace dpss::cluster
