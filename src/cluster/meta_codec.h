// Byte codecs for metastore rows (SegmentRecord, LoadRules), shared by
// the substrate wire protocol (src/net/substrate.cc) and the metastore
// journal/snapshot files (cluster/metastore_journal.cc) — one format,
// whether the row crosses a socket or a disk.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/load_rules.h"
#include "cluster/metastore.h"
#include "common/bytes.h"

namespace dpss::cluster::meta_codec {

inline void writeRules(ByteWriter& w, const LoadRules& rules) {
  w.varint(rules.replicationFactor);
  w.i64(rules.retentionMs);
}

inline LoadRules readRules(ByteReader& r) {
  LoadRules rules;
  rules.replicationFactor = static_cast<std::size_t>(r.varint());
  rules.retentionMs = r.i64();
  return rules;
}

inline void writeRecord(ByteWriter& w, const SegmentRecord& rec) {
  rec.id.serialize(w);
  w.str(rec.deepStorageKey);
  w.u8(rec.used ? 1 : 0);
  w.varint(rec.sizeBytes);
}

inline SegmentRecord readRecord(ByteReader& r) {
  SegmentRecord rec;
  rec.id = storage::SegmentId::deserialize(r);
  rec.deepStorageKey = r.str();
  rec.used = r.u8() != 0;
  rec.sizeBytes = static_cast<std::size_t>(r.varint());
  return rec;
}

inline void writeRecords(ByteWriter& w,
                         const std::vector<SegmentRecord>& recs) {
  w.varint(recs.size());
  for (const auto& rec : recs) writeRecord(w, rec);
}

inline std::vector<SegmentRecord> readRecords(ByteReader& r) {
  const std::uint64_t n = r.varint();
  std::vector<SegmentRecord> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(readRecord(r));
  return out;
}

inline void writeSubscription(ByteWriter& w, const SubscriptionRecord& rec) {
  w.varint(rec.id);
  w.str(rec.specBytes);
  w.i64(rec.createdMs);
}

inline SubscriptionRecord readSubscription(ByteReader& r) {
  SubscriptionRecord rec;
  rec.id = r.varint();
  rec.specBytes = r.str();
  rec.createdMs = r.i64();
  return rec;
}

inline void writeSubscriptions(ByteWriter& w,
                               const std::vector<SubscriptionRecord>& recs) {
  w.varint(recs.size());
  for (const auto& rec : recs) writeSubscription(w, rec);
}

inline std::vector<SubscriptionRecord> readSubscriptions(ByteReader& r) {
  const std::uint64_t n = r.varint();
  std::vector<SubscriptionRecord> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(readSubscription(r));
  return out;
}

}  // namespace dpss::cluster::meta_codec
