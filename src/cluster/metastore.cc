#include "cluster/metastore.h"

namespace dpss::cluster {

void MetaStore::upsertSegment(const SegmentRecord& record) {
  MutexLock lock(mu_);
  segments_[record.id] = record;
}

void MetaStore::markUnused(const storage::SegmentId& id) {
  MutexLock lock(mu_);
  const auto it = segments_.find(id);
  if (it != segments_.end()) it->second.used = false;
}

std::optional<SegmentRecord> MetaStore::getSegment(
    const storage::SegmentId& id) const {
  MutexLock lock(mu_);
  const auto it = segments_.find(id);
  if (it == segments_.end()) return std::nullopt;
  return it->second;
}

std::vector<SegmentRecord> MetaStore::usedSegments() const {
  MutexLock lock(mu_);
  std::vector<SegmentRecord> out;
  for (const auto& [id, rec] : segments_) {
    (void)id;
    if (rec.used) out.push_back(rec);
  }
  return out;
}

std::vector<SegmentRecord> MetaStore::allSegments() const {
  MutexLock lock(mu_);
  std::vector<SegmentRecord> out;
  out.reserve(segments_.size());
  for (const auto& [id, rec] : segments_) {
    (void)id;
    out.push_back(rec);
  }
  return out;
}

void MetaStore::setRules(const std::string& dataSource, LoadRules rules) {
  MutexLock lock(mu_);
  rules_[dataSource] = rules;
}

LoadRules MetaStore::rulesFor(const std::string& dataSource) const {
  MutexLock lock(mu_);
  const auto it = rules_.find(dataSource);
  return it == rules_.end() ? defaultRules_ : it->second;
}

void MetaStore::setDefaultRules(LoadRules rules) {
  MutexLock lock(mu_);
  defaultRules_ = rules;
}

void MetaStore::upsertSubscription(const SubscriptionRecord& record) {
  MutexLock lock(mu_);
  subscriptions_[record.id] = record;
}

void MetaStore::removeSubscription(std::uint64_t id) {
  MutexLock lock(mu_);
  subscriptions_.erase(id);
}

std::vector<SubscriptionRecord> MetaStore::subscriptions() const {
  MutexLock lock(mu_);
  std::vector<SubscriptionRecord> out;
  out.reserve(subscriptions_.size());
  for (const auto& [id, rec] : subscriptions_) {
    (void)id;
    out.push_back(rec);
  }
  return out;
}

std::vector<std::pair<std::string, LoadRules>> MetaStore::ruleTable() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, LoadRules>> out;
  out.reserve(rules_.size());
  for (const auto& [ds, rules] : rules_) out.emplace_back(ds, rules);
  return out;
}

LoadRules MetaStore::defaultRules() const {
  MutexLock lock(mu_);
  return defaultRules_;
}

}  // namespace dpss::cluster
