#include "cluster/historical_node.h"

#include <algorithm>
#include <future>
#include <set>
#include <string_view>

#include "cluster/names.h"
#include "cluster/stats.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "pss/searcher.h"
#include "query/engine.h"
#include "storage/segment_codec.h"

namespace dpss::cluster {

using storage::SegmentId;
using storage::SegmentPtr;

namespace {

const obs::MetricId kSegmentsScanned =
    obs::internCounter("historical.segments.scanned");
const obs::MetricId kScanNs = obs::internHistogram("historical.scan.ns");
const obs::MetricId kSegmentsLoaded =
    obs::internCounter("historical.segments.loaded");
const obs::MetricId kLoadNs = obs::internHistogram("historical.load.ns");
const obs::MetricId kDownloads =
    obs::internCounter("historical.deep_storage.downloads");
const obs::MetricId kDiskCacheHits =
    obs::internCounter("historical.disk_cache.hits");
const obs::MetricId kPssSlices =
    obs::internCounter("historical.pss.slice_searches");
const obs::MetricId kServedGauge = obs::internGauge("historical.segments.served");
const obs::MetricId kChecksumFailures =
    obs::internCounter("historical.deep_storage.checksum_failures");
const obs::MetricId kRefetchHeals =
    obs::internCounter("historical.deep_storage.refetch_heals");
const obs::MetricId kRepairs =
    obs::internCounter("historical.deep_storage.repairs");
const obs::MetricId kReregistrations =
    obs::internCounter("historical.registry.reregistrations");
const obs::MetricId kReregisterFailures =
    obs::internCounter("historical.registry.reregister_failures");

}  // namespace

HistoricalNode::HistoricalNode(std::string name, Registry& registry,
                               storage::DeepStorage& deepStorage,
                               TransportIface& transport,
                               HistoricalNodeOptions options)
    : name_(std::move(name)),
      registry_(registry),
      deepStorage_(deepStorage),
      transport_(transport),
      options_(options) {
  DPSS_CHECK_MSG(options_.workerThreads >= 1, "need at least one worker");
}

HistoricalNode::~HistoricalNode() { stop(); }

void HistoricalNode::start() {
  SessionPtr session;
  {
    MutexLock lock(mu_);
    DPSS_CHECK_MSG(!running_, "node already running");
    session_ = registry_.connect(name_);
    session = session_;
    pool_ = std::make_shared<ThreadPool>(options_.workerThreads);
    running_ = true;
  }
  // Announce the node itself (ephemeral: crash -> vanishes).
  registry_.create(paths::nodeAnnouncement(name_),
                   paths::announceData("historical", options_.advertiseEndpoint),
                   session,
                   /*ephemeral=*/true);
  transport_.bind(name_, [this](const std::string& req) {
    return handleRpc(req);
  });
  // A persistent drain flag survives a crash: resume draining before
  // touching the queue, so queued loads are refused, not taken.
  refreshDrainState();
  // Arm the load-queue watch, then drain anything already assigned.
  const std::uint64_t watchId = registry_.watchChildren(
      paths::loadQueue(name_),
      [this](const std::string&) { onLoadQueueEvent(); });
  {
    MutexLock lock(mu_);
    watchId_ = watchId;
  }
  onLoadQueueEvent();
  DPSS_LOG(Info) << "historical node " << name_ << " online";
}

void HistoricalNode::stop() {
  SessionPtr session;
  std::shared_ptr<ThreadPool> pool;
  std::uint64_t watchId = 0;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    served_.clear();
    session = std::move(session_);
    session_.reset();
    pool = std::move(pool_);
    pool_.reset();
    watchId = watchId_;
    watchId_ = 0;
  }
  transport_.unbind(name_);
  registry_.unwatch(watchId);
  registry_.expire(session);  // removes announcement + served ephemerals
  // A finished drain deregisters fully: the flag served its purpose. An
  // unfinished one stays, so a restart resumes draining where it left off.
  if (drainComplete_.load(std::memory_order_acquire)) {
    registry_.remove(paths::drainFlag(name_));
    draining_.store(false, std::memory_order_release);
    drainComplete_.store(false, std::memory_order_release);
  }
  // Join workers outside mu_: in-flight scans pin the pool and take mu_.
  pool.reset();
}

void HistoricalNode::crash() {
  SessionPtr session;
  std::shared_ptr<ThreadPool> pool;
  std::uint64_t watchId = 0;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    served_.clear();  // in-memory state dies; localDisk_ survives
    session = std::move(session_);
    session_.reset();
    pool = std::move(pool_);
    pool_.reset();
    watchId = watchId_;
    watchId_ = 0;
  }
  transport_.unbind(name_);
  registry_.unwatch(watchId);
  registry_.expire(session);
  pool.reset();
}

void HistoricalNode::loseRegistrySession() {
  SessionPtr session;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    session = session_;
  }
  registry_.expire(session);
  DPSS_LOG(Warn) << name_ << " lost registry session (lease expiry)";
}

void HistoricalNode::maybeReregister() {
  {
    MutexLock lock(mu_);
    if (!running_ || session_ == nullptr || !session_->expired()) return;
    const TimeMs now = transport_.clock().nowMs();
    if (reregisterNotBeforeMs_ == 0) {
      // First tick after lease loss: schedule the reconnect one backoff
      // period out, as a real client would after a ZK session expiry.
      reregisterNotBeforeMs_ = now + reregisterBackoffMs_;
      return;
    }
    if (now < reregisterNotBeforeMs_) return;
  }
  try {
    SessionPtr session = registry_.connect(name_);
    try {
      registry_.create(
          paths::nodeAnnouncement(name_),
          paths::announceData("historical", options_.advertiseEndpoint),
          session,
          /*ephemeral=*/true);
    } catch (const AlreadyExists&) {
    }
    std::map<SegmentId, SegmentPtr> served;
    {
      MutexLock lock(mu_);
      served = served_;
    }
    for (const auto& [id, seg] : served) {
      (void)seg;
      try {
        registry_.create(paths::servedSegment(name_, id), id.toString(),
                         session, /*ephemeral=*/true);
      } catch (const AlreadyExists&) {
      }
    }
    {
      MutexLock lock(mu_);
      if (!running_) return;  // stopped while reconnecting
      session_ = std::move(session);
      reregisterBackoffMs_ = options_.reregisterBackoffMs;
      reregisterNotBeforeMs_ = 0;
    }
    obs_.counter(kReregistrations).inc();
    DPSS_LOG(Info) << name_ << " re-registered after session expiry";
  } catch (const Error& e) {
    obs_.counter(kReregisterFailures).inc();
    MutexLock lock(mu_);
    reregisterBackoffMs_ =
        std::min<TimeMs>(reregisterBackoffMs_ * 2, options_.reregisterBackoffMaxMs);
    reregisterNotBeforeMs_ = transport_.clock().nowMs() + reregisterBackoffMs_;
  }
}

void HistoricalNode::requestDrain() {
  SessionPtr session;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    session = session_;
  }
  try {
    // Persistent on purpose: the flag must survive this node's session
    // (and process) so a crash mid-drain resumes draining on restart. For
    // the same reason it must not depend on the lease being healthy — a
    // decommission can land mid-reregistration, so write through a
    // throwaway session when ours is dead.
    if (session == nullptr || session->expired()) {
      session = registry_.connect(name_ + ".drain");
    }
    registry_.create(paths::drainFlag(name_), paths::kDrainRequested, session,
                     /*ephemeral=*/false);
    DPSS_LOG(Info) << name_ << " drain requested";
  } catch (const AlreadyExists&) {
    // Already draining; idempotent.
  }
  draining_.store(true, std::memory_order_release);
}

void HistoricalNode::refreshDrainState() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  const auto flag = registry_.getData(paths::drainFlag(name_));
  draining_.store(flag.has_value(), std::memory_order_release);
  drainComplete_.store(flag.has_value() && *flag == paths::kDrainComplete,
                       std::memory_order_release);
}

void HistoricalNode::onLoadQueueEvent() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  for (const auto& entry : registry_.children(paths::loadQueue(name_))) {
    processAssignment(entry);
  }
}

void HistoricalNode::processAssignment(const std::string& entryName) {
  const std::string path = paths::loadQueue(name_) + "/" + entryName;
  const auto data = registry_.getData(path);
  if (!data) return;  // already acked by this node
  try {
    if (const auto load = paths::parseLoadEntry(*data)) {
      if (draining()) {
        // A draining node takes no new work. Ack-removing the entry (below)
        // is the refusal: the coordinator sees the pending load vanish and
        // places the replica on an active node instead.
        DPSS_LOG(Info) << name_ << " draining, refused load " << entryName;
      } else {
        loadSegment(load->id, load->deepStorageKey);
      }
    } else if (*data == "drop") {
      // Entry name is the escaped segment id; recover it from served set.
      std::optional<SegmentId> victim;
      {
        MutexLock lock(mu_);
        for (const auto& [id, seg] : served_) {
          (void)seg;
          if (paths::segmentNode(id) == entryName) {
            victim = id;
            break;
          }
        }
      }
      if (victim) dropSegment(*victim);
    }
  } catch (const Error& e) {
    DPSS_LOG(Warn) << name_ << " failed assignment " << entryName << ": "
                   << e.what();
    return;  // leave the queue entry so a later event retries
  }
  registry_.remove(path);  // ack
}

void HistoricalNode::loadSegment(const SegmentId& id, const std::string& key) {
  {
    MutexLock lock(mu_);
    if (served_.count(id) > 0) return;  // idempotent
  }
  obs::ScopedRegistry obsScope(obs_);
  obs::ScopedTimer loadTimer(obs_.histogram(kLoadNs));
  std::string blob;
  bool fromCache = false;
  {
    MutexLock lock(mu_);
    const auto it = localDisk_.find(key);
    if (it != localDisk_.end()) {
      blob = it->second;
      fromCache = true;
    }
  }
  if (fromCache) {
    cacheHits_.fetch_add(1);
    obs_.counter(kDiskCacheHits).inc();
  } else {
    bool healedByRefetch = false;
    try {
      // Verified download: only checksum-clean bytes ever reach the local
      // disk cache or a decoded scan. May throw Unavailable/NotFound.
      blob = deepStorage_.getVerified(key, &healedByRefetch);
    } catch (const CorruptData&) {
      // Leave the assignment queued: a replica holding good bytes must
      // re-upload before this node can load the segment.
      obs_.counter(kChecksumFailures).inc();
      throw;
    }
    if (healedByRefetch) {
      obs_.counter(kChecksumFailures).inc();
      obs_.counter(kRefetchHeals).inc();
    }
    downloads_.fetch_add(1);
    obs_.counter(kDownloads).inc();
    MutexLock lock(mu_);
    localDisk_[key] = blob;
  }
  SegmentPtr segment = storage::decodeSegment(blob);
  SessionPtr session;
  {
    MutexLock lock(mu_);
    served_[id] = std::move(segment);
    obs_.gauge(kServedGauge).set(static_cast<std::int64_t>(served_.size()));
    session = session_;
  }
  if (session == nullptr) throw Unavailable("node stopping: " + name_);
  obs_.counter(kSegmentsLoaded).inc();
  // Publish: the segment is queryable from this moment. The znode data is
  // the canonical id string (the znode name is an escaped, lossy form).
  registry_.create(paths::servedSegment(name_, id), id.toString(), session,
                   /*ephemeral=*/true);
  DPSS_LOG(Info) << name_ << " serving " << id.toString();
  // Self-heal: a cache-hit load skipped deep storage entirely, so check
  // whether the permanent copy rotted (or vanished) and re-upload this
  // node's good bytes — re-replication elsewhere depends on it.
  if (fromCache && !deepStorage_.verify(key)) {
    try {
      deepStorage_.put(key, blob);
      obs_.counter(kRepairs).inc();
      DPSS_LOG(Warn) << name_ << " re-uploaded corrupt/missing blob " << key;
    } catch (const Error& e) {
      DPSS_LOG(Warn) << name_ << " re-upload of " << key
                     << " failed: " << e.what();
    }
  }
}

void HistoricalNode::dropSegment(const SegmentId& id) {
  {
    MutexLock lock(mu_);
    served_.erase(id);
    obs_.gauge(kServedGauge).set(static_cast<std::int64_t>(served_.size()));
  }
  registry_.remove(paths::servedSegment(name_, id));
  DPSS_LOG(Info) << name_ << " dropped " << id.toString();
}

std::vector<SegmentId> HistoricalNode::servedSegments() const {
  MutexLock lock(mu_);
  std::vector<SegmentId> out;
  out.reserve(served_.size());
  for (const auto& [id, seg] : served_) {
    (void)seg;
    out.push_back(id);
  }
  return out;
}

bool HistoricalNode::serves(const SegmentId& id) const {
  MutexLock lock(mu_);
  return served_.count(id) > 0;
}

std::size_t HistoricalNode::pendingLoads() const {
  // Registry reads take the registry's own lock; mu_ must not be held
  // (lock order: node mutex before registry mutex, and this needs
  // neither).
  std::size_t pending = 0;
  const std::string queue = paths::loadQueue(name_);
  for (const auto& child : registry_.children(queue)) {
    const auto data = registry_.getData(queue + "/" + child);
    if (data && paths::parseLoadEntry(*data)) ++pending;
  }
  return pending;
}

bool HistoricalNode::cachedLocally(const std::string& key) const {
  MutexLock lock(mu_);
  return localDisk_.count(key) > 0;
}

void HistoricalNode::loadDocuments(const std::string& docSource,
                                   std::uint64_t baseIndex,
                                   std::vector<std::string> documents) {
  MutexLock lock(mu_);
  docSlices_[docSource] = DocSlice{baseIndex, std::move(documents)};
}

std::string HistoricalNode::handleRpc(const std::string& request) {
  if (request.empty()) throw CorruptData("empty rpc");
  const auto tag = static_cast<std::uint8_t>(request[0]);
  const std::string body = request.substr(1);

  // Everything node-side records into this node's registry; the trace
  // context was installed by the transport before we got here.
  obs::ScopedRegistry obsScope(obs_);

  if (tag == rpc::kStats) {
    return handleStatsRpc(obs_, body);
  }

  if (tag == rpc::kQuerySegment) {
    obs::SpanGuard rpcSpan("historical.query_segment");
    const auto req = SegmentQueryRequest::decode(body);
    rpcSpan.tag("segment", req.segment.toString());
    SegmentPtr segment;
    std::shared_ptr<ThreadPool> pool;
    {
      MutexLock lock(mu_);
      const auto it = served_.find(req.segment);
      if (it == served_.end()) {
        throw NotFound("segment not served here: " + req.segment.toString());
      }
      segment = it->second;
      pool = pool_;  // pin across a concurrent crash()/stop()
    }
    if (pool == nullptr) throw Unavailable("node stopping: " + name_);
    // The scan runs on the node's bounded pool: with many concurrent
    // segment RPCs the pool enforces the paper's threads-per-node cap.
    const obs::TraceContext traceCtx = obs::currentTraceContext();
    auto fut = pool->submit([this, segment, spec = req.spec, traceCtx] {
      obs::ScopedRegistry scanScope(obs_);
      obs::TraceScope traceScope(traceCtx);
      obs::SpanGuard scanSpan("historical.scan.segment");
      obs_.counter(kSegmentsScanned).inc();
      obs::ScopedTimer scanTimer(obs_.histogram(kScanNs));
      return query::scanSegment(*segment, spec);
    });
    ByteWriter w;
    try {
      fut.get().serialize(w);
    } catch (const std::future_error&) {
      // The pool died under us anyway; to the caller this is a node loss.
      throw Unavailable("node stopped mid-scan: " + name_);
    }
    return w.take();
  }

  if (tag == rpc::kPssInfo) {
    ByteReader r(body);
    const std::string docSource = r.str();
    MutexLock lock(mu_);
    const auto it = docSlices_.find(docSource);
    if (it == docSlices_.end()) {
      throw NotFound("no document slice for: " + docSource);
    }
    std::size_t maxPayload = 0;
    for (const auto& d : it->second.documents) {
      maxPayload = std::max(maxPayload, d.size());
    }
    ByteWriter w;
    w.u64(it->second.baseIndex);
    w.varint(it->second.documents.size());
    w.varint(maxPayload);
    return w.take();
  }

  if (tag == rpc::kPssSearch) {
    obs::SpanGuard sliceSpan("historical.pss.slice_search");
    obs_.counter(kPssSlices).inc();
    ByteReader r(body);
    const std::string docSource = r.str();
    const std::uint64_t dictSize = r.varint();
    std::vector<std::string> words;
    words.reserve(dictSize);
    for (std::uint64_t i = 0; i < dictSize; ++i) words.push_back(r.str());
    auto encQuery = pss::EncryptedQuery::deserialize(r);
    const std::size_t blocks = r.varint();
    const std::uint64_t seed = r.u64();
    const std::size_t pack =
        std::max<std::size_t>(r.remaining() > 0 ? r.varint() : 1, 1);

    DocSlice slice;
    {
      MutexLock lock(mu_);
      const auto it = docSlices_.find(docSource);
      if (it == docSlices_.end()) {
        throw NotFound("no document slice for: " + docSource);
      }
      slice = it->second;
    }
    std::shared_ptr<ThreadPool> pool;
    {
      MutexLock lock(mu_);
      pool = pool_;  // pin across a concurrent crash()/stop()
    }
    if (pool == nullptr) throw Unavailable("node stopping: " + name_);
    const pss::Dictionary dict(words);
    Rng rng(seed);
    pss::StreamSearcher searcher(dict, std::move(encQuery), blocks, rng);
    // The per-segment slot fold shards across the node's bounded pool; the
    // shards own disjoint contiguous slot ranges, so the envelope bytes
    // match the serial fold exactly.
    searcher.setFoldOptions({pool.get(), 0});
    const std::size_t docs = slice.documents.size();
    try {
      if (pack <= 1) {
        for (std::size_t i = 0; i < docs; ++i) {
          searcher.processSegment(slice.baseIndex + i, slice.documents[i]);
        }
      } else {
        // Packed fold: group g covers slice documents [g·P, (g+1)·P); its
        // keyword set is the union over members so any member's match
        // folds the group. Group indices restart at 0 per envelope —
        // reconstruction is per-envelope, and firstDocIndex anchors the
        // unpacked document indices back onto the global stream.
        for (std::size_t i = 0, g = 0; i < docs; i += pack, ++g) {
          const std::size_t count = std::min(pack, docs - i);
          std::vector<std::string_view> members;
          members.reserve(count);
          std::set<std::string> words;
          for (std::size_t o = 0; o < count; ++o) {
            members.push_back(slice.documents[i + o]);
            for (auto& w : pss::distinctWords(slice.documents[i + o])) {
              words.insert(std::move(w));
            }
          }
          searcher.processSegment(
              g, std::vector<std::string>(words.begin(), words.end()),
              searcher.codec().encode(pss::packPayloads(members), blocks));
        }
      }
    } catch (const std::future_error&) {
      // A fold shard was abandoned by a dying pool: a node loss upstream.
      throw Unavailable("node stopped mid-search: " + name_);
    }
    auto envelope = searcher.finish();
    if (pack > 1) {
      envelope.packFactor = pack;
      envelope.firstDocIndex = slice.baseIndex;
      envelope.documentCount = docs;
    }
    ByteWriter w;
    envelope.serialize(w);
    return w.take();
  }

  throw CorruptData("unknown rpc tag");
}

}  // namespace dpss::cluster
