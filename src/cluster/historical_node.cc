#include "cluster/historical_node.h"

#include <future>

#include "cluster/names.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/logging.h"
#include "common/rng.h"
#include "pss/searcher.h"
#include "query/engine.h"
#include "storage/segment_codec.h"

namespace dpss::cluster {

using storage::SegmentId;
using storage::SegmentPtr;

HistoricalNode::HistoricalNode(std::string name, Registry& registry,
                               storage::DeepStorage& deepStorage,
                               Transport& transport,
                               HistoricalNodeOptions options)
    : name_(std::move(name)),
      registry_(registry),
      deepStorage_(deepStorage),
      transport_(transport),
      options_(options) {
  DPSS_CHECK_MSG(options_.workerThreads >= 1, "need at least one worker");
}

HistoricalNode::~HistoricalNode() {
  if (running_) stop();
}

void HistoricalNode::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DPSS_CHECK_MSG(!running_, "node already running");
    session_ = registry_.connect(name_);
    pool_ = std::make_unique<ThreadPool>(options_.workerThreads);
    running_ = true;
  }
  // Announce the node itself (ephemeral: crash -> vanishes).
  registry_.create(paths::nodeAnnouncement(name_), "historical", session_,
                   /*ephemeral=*/true);
  transport_.bind(name_, [this](const std::string& req) {
    return handleRpc(req);
  });
  // Arm the load-queue watch, then drain anything already assigned.
  watchId_ = registry_.watchChildren(paths::loadQueue(name_),
                                     [this](const std::string&) {
                                       onLoadQueueEvent();
                                     });
  onLoadQueueEvent();
  DPSS_LOG(Info) << "historical node " << name_ << " online";
}

void HistoricalNode::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    served_.clear();
  }
  transport_.unbind(name_);
  registry_.unwatch(watchId_);
  registry_.expire(session_);  // removes announcement + served ephemerals
  std::lock_guard<std::mutex> lock(mu_);
  session_.reset();
  pool_.reset();
}

void HistoricalNode::crash() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
    served_.clear();  // in-memory state dies; localDisk_ survives
  }
  transport_.unbind(name_);
  registry_.unwatch(watchId_);
  registry_.expire(session_);
  std::lock_guard<std::mutex> lock(mu_);
  session_.reset();
  pool_.reset();
}

void HistoricalNode::onLoadQueueEvent() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
  }
  for (const auto& entry : registry_.children(paths::loadQueue(name_))) {
    processAssignment(entry);
  }
}

void HistoricalNode::processAssignment(const std::string& entryName) {
  const std::string path = paths::loadQueue(name_) + "/" + entryName;
  const auto data = registry_.getData(path);
  if (!data) return;  // already acked by this node
  try {
    if (data->rfind("load:", 0) == 0) {
      const SegmentId id = SegmentId::parse(data->substr(5, data->find('\x01') - 5));
      const std::string key = data->substr(data->find('\x01') + 1);
      loadSegment(id, key);
    } else if (*data == "drop") {
      // Entry name is the escaped segment id; recover it from served set.
      std::optional<SegmentId> victim;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [id, seg] : served_) {
          (void)seg;
          if (paths::segmentNode(id) == entryName) {
            victim = id;
            break;
          }
        }
      }
      if (victim) dropSegment(*victim);
    }
  } catch (const Error& e) {
    DPSS_LOG(Warn) << name_ << " failed assignment " << entryName << ": "
                   << e.what();
    return;  // leave the queue entry so a later event retries
  }
  registry_.remove(path);  // ack
}

void HistoricalNode::loadSegment(const SegmentId& id, const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (served_.count(id) > 0) return;  // idempotent
  }
  std::string blob;
  bool fromCache = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = localDisk_.find(key);
    if (it != localDisk_.end()) {
      blob = it->second;
      fromCache = true;
    }
  }
  if (fromCache) {
    cacheHits_.fetch_add(1);
  } else {
    blob = deepStorage_.get(key);  // may throw Unavailable/NotFound
    downloads_.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu_);
    localDisk_[key] = blob;
  }
  SegmentPtr segment = storage::decodeSegment(blob);
  {
    std::lock_guard<std::mutex> lock(mu_);
    served_[id] = std::move(segment);
  }
  // Publish: the segment is queryable from this moment. The znode data is
  // the canonical id string (the znode name is an escaped, lossy form).
  registry_.create(paths::servedSegment(name_, id), id.toString(), session_,
                   /*ephemeral=*/true);
  DPSS_LOG(Info) << name_ << " serving " << id.toString();
}

void HistoricalNode::dropSegment(const SegmentId& id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    served_.erase(id);
  }
  registry_.remove(paths::servedSegment(name_, id));
  DPSS_LOG(Info) << name_ << " dropped " << id.toString();
}

std::vector<SegmentId> HistoricalNode::servedSegments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentId> out;
  out.reserve(served_.size());
  for (const auto& [id, seg] : served_) {
    (void)seg;
    out.push_back(id);
  }
  return out;
}

bool HistoricalNode::serves(const SegmentId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return served_.count(id) > 0;
}

bool HistoricalNode::cachedLocally(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return localDisk_.count(key) > 0;
}

void HistoricalNode::loadDocuments(const std::string& docSource,
                                   std::uint64_t baseIndex,
                                   std::vector<std::string> documents) {
  std::lock_guard<std::mutex> lock(mu_);
  docSlices_[docSource] = DocSlice{baseIndex, std::move(documents)};
}

std::string HistoricalNode::handleRpc(const std::string& request) {
  if (request.empty()) throw CorruptData("empty rpc");
  const auto tag = static_cast<std::uint8_t>(request[0]);
  const std::string body = request.substr(1);

  if (tag == rpc::kQuerySegment) {
    const auto req = SegmentQueryRequest::decode(body);
    SegmentPtr segment;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = served_.find(req.segment);
      if (it == served_.end()) {
        throw NotFound("segment not served here: " + req.segment.toString());
      }
      segment = it->second;
    }
    // The scan runs on the node's bounded pool: with many concurrent
    // segment RPCs the pool enforces the paper's threads-per-node cap.
    auto fut = pool_->submit([segment, spec = req.spec] {
      return query::scanSegment(*segment, spec);
    });
    ByteWriter w;
    fut.get().serialize(w);
    return w.take();
  }

  if (tag == rpc::kPssInfo) {
    ByteReader r(body);
    const std::string docSource = r.str();
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = docSlices_.find(docSource);
    if (it == docSlices_.end()) {
      throw NotFound("no document slice for: " + docSource);
    }
    std::size_t maxPayload = 0;
    for (const auto& d : it->second.documents) {
      maxPayload = std::max(maxPayload, d.size());
    }
    ByteWriter w;
    w.u64(it->second.baseIndex);
    w.varint(it->second.documents.size());
    w.varint(maxPayload);
    return w.take();
  }

  if (tag == rpc::kPssSearch) {
    ByteReader r(body);
    const std::string docSource = r.str();
    const std::uint64_t dictSize = r.varint();
    std::vector<std::string> words;
    words.reserve(dictSize);
    for (std::uint64_t i = 0; i < dictSize; ++i) words.push_back(r.str());
    auto encQuery = pss::EncryptedQuery::deserialize(r);
    const std::size_t blocks = r.varint();
    const std::uint64_t seed = r.u64();

    DocSlice slice;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = docSlices_.find(docSource);
      if (it == docSlices_.end()) {
        throw NotFound("no document slice for: " + docSource);
      }
      slice = it->second;
    }
    const pss::Dictionary dict(words);
    Rng rng(seed);
    pss::StreamSearcher searcher(dict, std::move(encQuery), blocks, rng);
    for (std::size_t i = 0; i < slice.documents.size(); ++i) {
      searcher.processSegment(slice.baseIndex + i, slice.documents[i]);
    }
    const auto envelope = searcher.finish();
    ByteWriter w;
    envelope.serialize(w);
    return w.take();
  }

  throw CorruptData("unknown rpc tag");
}

}  // namespace dpss::cluster
