#include "cluster/compaction.h"

#include <vector>

#include "common/error.h"
#include "common/logging.h"
#include "storage/segment_builder.h"
#include "storage/segment_codec.h"

namespace dpss::cluster {

CompactionResult compactInterval(storage::DeepStorage& deepStorage,
                                 MetaStore& metaStore,
                                 const std::string& dataSource,
                                 const Interval& interval,
                                 const std::string& newVersion) {
  std::vector<SegmentRecord> inputs;
  for (const auto& record : metaStore.usedSegments()) {
    if (record.id.dataSource != dataSource) continue;
    if (!interval.contains(record.id.interval)) continue;
    DPSS_CHECK_MSG(record.id.version < newVersion,
                   "compaction version must exceed every input version");
    inputs.push_back(record);
  }
  CompactionResult result;
  result.inputSegments = inputs.size();
  if (inputs.empty()) return result;

  std::vector<storage::SegmentPtr> parts;
  parts.reserve(inputs.size());
  for (const auto& record : inputs) {
    parts.push_back(storage::decodeSegment(
        deepStorage.get(record.deepStorageKey)));
  }

  storage::SegmentId outId;
  outId.dataSource = dataSource;
  outId.interval = interval;
  outId.version = newVersion;
  outId.partition = 0;
  const storage::SegmentPtr merged = storage::mergeSegments(parts, outId);

  const std::string key = outId.toString();
  const std::string blob = storage::encodeSegment(*merged);
  deepStorage.put(key, blob);
  SegmentRecord record;
  record.id = outId;
  record.deepStorageKey = key;
  record.sizeBytes = blob.size();
  metaStore.upsertSegment(record);
  for (const auto& input : inputs) metaStore.markUnused(input.id);

  result.outputRows = merged->rowCount();
  result.outputId = outId;
  DPSS_LOG(Info) << "compacted " << inputs.size() << " segments into "
                 << key << " (" << merged->rowCount() << " rows)";
  return result;
}

}  // namespace dpss::cluster
