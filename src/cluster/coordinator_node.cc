#include "cluster/coordinator_node.h"

#include <algorithm>
#include <map>
#include <set>

#include "cluster/names.h"
#include "common/error.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace dpss::cluster {

namespace {

const obs::MetricId kLoadsIssued =
    obs::internCounter("coordinator.loads.issued");
const obs::MetricId kDropsIssued =
    obs::internCounter("coordinator.drops.issued");
const obs::MetricId kRebalanceMoves =
    obs::internCounter("coordinator.rebalance.moves");
const obs::MetricId kRebalanceThrottledMoves =
    obs::internCounter("coordinator.rebalance.throttled_moves");
const obs::MetricId kRebalanceThrottledLoads =
    obs::internCounter("coordinator.rebalance.throttled_loads");
const obs::MetricId kRebalanceImbalance =
    obs::internGauge("coordinator.rebalance.imbalance");
const obs::MetricId kDrainsCompleted =
    obs::internCounter("coordinator.drains.completed");
const obs::MetricId kFencedWrites =
    obs::internCounter("coordinator.writes.fenced");
const obs::MetricId kNodesActive = obs::internGauge("coordinator.nodes.active");
const obs::MetricId kNodesDraining =
    obs::internGauge("coordinator.nodes.draining");
const obs::MetricId kLeaderGauge = obs::internGauge("coordinator.leader");
const obs::MetricId kEpochGauge = obs::internGauge("coordinator.epoch");

}  // namespace

using storage::SegmentId;

CoordinatorNode::CoordinatorNode(std::string name, Registry& registry,
                                 MetaStore& metaStore, Clock& clock,
                                 CoordinatorOptions options)
    : name_(std::move(name)),
      registry_(registry),
      metaStore_(metaStore),
      clock_(clock),
      options_(options),
      elector_(name_, registry_) {
  session_ = registry_.connect(name_);
}

CoordinatorStats CoordinatorNode::runOnce() {
  CoordinatorStats stats;
  stats.leader = elector_.tick();
  stats.epoch = elector_.epoch();
  if (stats.leader) {
    if (session_ == nullptr || session_->expired()) {
      session_ = registry_.connect(name_);
    }
    try {
      reconcile(stats);
    } catch (const Fenced& e) {
      // Deposed mid-cycle: a successor minted a larger epoch. Stop writing
      // immediately; the next tick() observes the new leader.
      ++stats.fencedWrites;
      DPSS_LOG(Warn) << name_ << " deposed mid-cycle: " << e.what();
    }
  }

  totalLoads_.fetch_add(stats.loadsIssued, std::memory_order_relaxed);
  totalDrops_.fetch_add(stats.dropsIssued, std::memory_order_relaxed);
  totalMoves_.fetch_add(stats.movesIssued, std::memory_order_relaxed);

  auto& obs = obs::currentRegistry();
  obs.counter(kLoadsIssued).inc(stats.loadsIssued);
  obs.counter(kDropsIssued).inc(stats.dropsIssued);
  obs.counter(kRebalanceMoves).inc(stats.movesIssued);
  obs.counter(kRebalanceThrottledMoves).inc(stats.throttledMoves);
  obs.counter(kRebalanceThrottledLoads).inc(stats.throttledLoads);
  obs.counter(kDrainsCompleted).inc(stats.drainsCompleted);
  obs.counter(kFencedWrites).inc(stats.fencedWrites);
  obs.gauge(kRebalanceImbalance).set(static_cast<std::int64_t>(stats.imbalance));
  obs.gauge(kNodesActive).set(static_cast<std::int64_t>(stats.activeNodes));
  obs.gauge(kNodesDraining).set(static_cast<std::int64_t>(stats.drainingNodes));
  obs.gauge(kLeaderGauge).set(stats.leader ? 1 : 0);
  obs.gauge(kEpochGauge).set(static_cast<std::int64_t>(stats.epoch));

  {
    MutexLock lock(statsMu_);
    lastStats_ = stats;
  }
  if (stats.loadsIssued + stats.dropsIssued > 0) {
    DPSS_LOG(Info) << name_ << " issued " << stats.loadsIssued << " loads ("
                   << stats.movesIssued << " rebalance moves), "
                   << stats.dropsIssued << " drops";
  }
  return stats;
}

void CoordinatorNode::reconcile(CoordinatorStats& stats) {
  const std::uint64_t epoch = elector_.epoch();

  // ---- actual state: live historical nodes, drain flags. --------------
  std::vector<std::string> historicals;
  for (const auto& node : registry_.children(paths::announcements())) {
    const auto data = registry_.getData(paths::nodeAnnouncement(node));
    if (data && paths::announceType(*data) == "historical") {
      historicals.push_back(node);
    }
  }

  // Any node with a drain flag (requested or already complete) is out of
  // the assignment target set.
  std::set<std::string> draining;
  std::set<std::string> drainRequested;
  for (const auto& node : registry_.children(paths::drainsRoot())) {
    draining.insert(node);
    const auto d = registry_.getData(paths::drainFlag(node));
    if (d && *d == paths::kDrainRequested) drainRequested.insert(node);
  }

  std::vector<std::string> active;
  for (const auto& node : historicals) {
    if (draining.count(node) == 0) active.push_back(node);
  }
  stats.activeNodes = active.size();
  stats.drainingNodes = draining.size();

  // Per-node serving and pending-load state. A pending load-queue entry
  // counts toward a node's load (it will serve soon) but deliberately NOT
  // as a replica holder for drop decisions: only announced-serving copies
  // can answer queries.
  std::map<std::string, std::set<std::string>> serving;  // seg -> nodes
  std::map<std::string, std::set<std::string>> pending;  // seg -> nodes
  std::map<std::string, std::set<std::string>> servingByNode;
  std::map<std::string, std::size_t> nodeLoad;
  std::map<std::string, std::size_t> pendingLoads;
  for (const auto& node : historicals) {
    nodeLoad[node] = 0;
    pendingLoads[node] = 0;
    for (const auto& child : registry_.children(paths::nodeAnnouncement(node))) {
      serving[child].insert(node);
      servingByNode[node].insert(child);
      ++nodeLoad[node];
    }
    for (const auto& child : registry_.children(paths::loadQueue(node))) {
      const auto data = registry_.getData(paths::loadQueue(node) + "/" + child);
      if (data && data->rfind("load:", 0) == 0) {
        pending[child].insert(node);
        ++nodeLoad[node];
        ++pendingLoads[node];
      }
    }
  }

  // ---- expected state: the segment table filtered by retention. -------
  const TimeMs now = clock_.nowMs();
  std::map<std::string, SegmentRecord> expected;  // segName -> record
  for (const auto& record : metaStore_.usedSegments()) {
    ++stats.segmentsEvaluated;
    const LoadRules rules = metaStore_.rulesFor(record.id.dataSource);
    const bool expired = rules.retentionMs > 0 &&
                         record.id.interval.end() + rules.retentionMs < now;
    if (!expired) expected.emplace(paths::segmentNode(record.id), record);
  }

  // Every decision is an epoch-fenced znode: a deposed coordinator's
  // writes die at the registry instead of corrupting the queues.
  const auto issueLoad = [&](const std::string& node,
                             const SegmentRecord& rec) {
    const std::string entry = paths::loadQueueEntry(node, rec.id);
    if (registry_.exists(entry)) return false;
    registry_.createFenced(
        entry, paths::loadEntryData(rec.id, rec.deepStorageKey, epoch),
        session_, /*ephemeral=*/false, paths::epochNode(), epoch);
    return true;
  };
  const auto issueDrop = [&](const std::string& node,
                             const std::string& segName) {
    const std::string entry = paths::loadQueue(node) + "/" + segName;
    if (registry_.exists(entry)) return false;
    registry_.createFenced(entry, "drop", session_, /*ephemeral=*/false,
                           paths::epochNode(), epoch);
    return true;
  };

  // ---- per-segment replication repair. --------------------------------
  for (const auto& [segName, rec] : expected) {
    const LoadRules rules = metaStore_.rulesFor(rec.id.dataSource);
    const std::size_t want = std::min(rules.replicationFactor, active.size());

    // Active coverage: serving replicas answer queries now; pending loads
    // will, so both block double-assignment — but only serving ones
    // satisfy drop preconditions below.
    std::set<std::string> covered;
    std::size_t servingActive = 0;
    for (const auto& node : serving[segName]) {
      if (draining.count(node) == 0) {
        covered.insert(node);
        ++servingActive;
      }
    }
    for (const auto& node : pending[segName]) {
      if (draining.count(node) == 0) covered.insert(node);
    }

    // Deficit: assign to the least-loaded active nodes, respecting the
    // per-node pending cap (scale-out throttle).
    while (covered.size() < want) {
      std::string best;
      std::size_t bestLoad = 0;
      bool capped = false;
      for (const auto& node : active) {
        if (covered.count(node) > 0) continue;
        if (pendingLoads[node] >= options_.maxPendingLoadsPerNode) {
          capped = true;
          continue;
        }
        if (best.empty() || nodeLoad[node] < bestLoad) {
          best = node;
          bestLoad = nodeLoad[node];
        }
      }
      if (best.empty()) {
        if (capped) ++stats.throttledLoads;  // retry next cycle
        break;
      }
      if (issueLoad(best, rec)) ++stats.loadsIssued;
      covered.insert(best);
      ++nodeLoad[best];
      ++pendingLoads[best];
    }

    // Surplus: drop from the most-loaded holders — counting only
    // announced-SERVING active replicas. A pending load is not a holder:
    // dropping against it could kill the last copy that can actually
    // answer queries while its replacement is still downloading.
    while (servingActive > want) {
      std::string worst;
      std::size_t worstLoad = 0;
      for (const auto& node : serving[segName]) {
        if (draining.count(node) > 0) continue;
        if (worst.empty() || nodeLoad[node] > worstLoad) {
          worst = node;
          worstLoad = nodeLoad[node];
        }
      }
      if (worst.empty()) break;
      if (issueDrop(worst, segName)) ++stats.dropsIssued;
      serving[segName].erase(worst);
      servingByNode[worst].erase(segName);
      --nodeLoad[worst];
      --servingActive;
    }

    // Drain: a draining holder's copy goes only after enough ACTIVE
    // replicas are announced serving — load-before-drop.
    if (want > 0 && servingActive >= want) {
      const std::set<std::string> holders = serving[segName];
      for (const auto& node : holders) {
        if (draining.count(node) == 0) continue;
        if (issueDrop(node, segName)) ++stats.dropsIssued;
        serving[segName].erase(node);
        servingByNode[node].erase(segName);
        --nodeLoad[node];
      }
    }
  }

  // ---- segments served but no longer expected: drop everywhere. -------
  for (const auto& [segName, nodes] : serving) {
    if (expected.count(segName) > 0) continue;
    for (const auto& node : nodes) {
      if (issueDrop(node, segName)) ++stats.dropsIssued;
    }
  }

  // ---- throttled rebalance: migrate load from the most- to the least-
  // loaded active node, a bounded number of moves per cycle. A move is
  // just a load — the surplus pass of a later cycle drops the source copy
  // once the new replica is announced serving, so moves inherit
  // load-before-drop (and survive coordinator failover: any leader's
  // surplus pass finishes any leader's move).
  while (stats.movesIssued < options_.maxMovesPerCycle && active.size() > 1) {
    std::string maxNode = active.front();
    std::string minNode = active.front();
    for (const auto& node : active) {
      if (nodeLoad[node] > nodeLoad[maxNode]) maxNode = node;
      if (nodeLoad[node] < nodeLoad[minNode]) minNode = node;
    }
    if (nodeLoad[maxNode] - nodeLoad[minNode] <= options_.imbalanceThreshold) {
      break;
    }
    if (pendingLoads[minNode] >= options_.maxPendingLoadsPerNode) {
      ++stats.throttledMoves;  // underloaded node is busy loading; defer
      break;
    }
    std::string pick;
    for (const auto& segName : servingByNode[maxNode]) {
      if (expected.count(segName) == 0) continue;
      if (serving[segName].count(minNode) > 0 ||
          pending[segName].count(minNode) > 0) {
        continue;
      }
      pick = segName;
      break;
    }
    if (pick.empty()) break;  // everything movable already on minNode
    if (!issueLoad(minNode, expected.at(pick))) break;
    ++stats.loadsIssued;
    ++stats.movesIssued;
    pending[pick].insert(minNode);
    ++nodeLoad[minNode];
    ++pendingLoads[minNode];
    // Book the source's eventual drop so this cycle's arithmetic
    // converges; the real drop waits for the replica to serve.
    servingByNode[maxNode].erase(pick);
    --nodeLoad[maxNode];
  }

  // ---- drain completion: flip the flag once the node serves nothing
  // and its queue has fully drained; the node deregisters on seeing it.
  for (const auto& node : drainRequested) {
    const bool servesNothing =
        registry_.children(paths::nodeAnnouncement(node)).empty();
    const bool queueEmpty = registry_.children(paths::loadQueue(node)).empty();
    if (servesNothing && queueEmpty) {
      registry_.setDataFenced(paths::drainFlag(node), paths::kDrainComplete,
                              paths::epochNode(), epoch);
      ++stats.drainsCompleted;
      DPSS_LOG(Info) << name_ << ": drain of " << node << " complete";
    }
  }

  // Load spread across active nodes after this cycle's (virtual) moves.
  if (!active.empty()) {
    std::size_t lo = nodeLoad[active.front()];
    std::size_t hi = lo;
    for (const auto& node : active) {
      lo = std::min(lo, nodeLoad[node]);
      hi = std::max(hi, nodeLoad[node]);
    }
    stats.imbalance = hi - lo;
  }
}

void CoordinatorNode::requestDrain(const std::string& node) {
  const std::string flag = paths::drainFlag(node);
  if (registry_.exists(flag)) return;
  try {
    // Unfenced on purpose: a drain request is operator intent (like a
    // rule-table edit), recorded by whoever received it; only the leader
    // ACTS on it. Persistent so a crash mid-drain resumes draining.
    registry_.create(flag, paths::kDrainRequested, session_,
                     /*ephemeral=*/false);
  } catch (const AlreadyExists&) {
    // Concurrent request; the flag is there, which is all we wanted.
  }
}

CoordinatorStats CoordinatorNode::lastStats() const {
  MutexLock lock(statsMu_);
  return lastStats_;
}

ClusterStats CoordinatorNode::collectClusterStats(
    TransportIface& transport, const std::vector<std::string>& extraNodes,
    std::uint64_t traceIdFilter) {
  return dpss::cluster::collectClusterStats(registry_, transport, extraNodes,
                                            traceIdFilter);
}

}  // namespace dpss::cluster
