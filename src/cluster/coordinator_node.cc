#include "cluster/coordinator_node.h"

#include <algorithm>
#include <map>
#include <set>

#include "cluster/names.h"
#include "common/error.h"
#include "common/logging.h"

namespace dpss::cluster {

using storage::SegmentId;

CoordinatorNode::CoordinatorNode(std::string name, Registry& registry,
                                 MetaStore& metaStore, Clock& clock)
    : name_(std::move(name)),
      registry_(registry),
      metaStore_(metaStore),
      clock_(clock) {
  session_ = registry_.connect(name_);
}

CoordinatorStats CoordinatorNode::runOnce() {
  CoordinatorStats stats;

  // ---- actual state: live historical nodes, serving + pending sets. ---
  std::vector<std::string> historicals;
  for (const auto& node : registry_.children(paths::announcements())) {
    const auto type = registry_.getData(paths::nodeAnnouncement(node));
    if (type && *type == "historical") historicals.push_back(node);
  }

  // servingNodes[segmentNodeName] = nodes serving or assigned the segment.
  std::map<std::string, std::set<std::string>> holders;
  std::map<std::string, std::size_t> nodeLoad;
  for (const auto& node : historicals) {
    nodeLoad[node] = 0;
    for (const auto& child : registry_.children(paths::nodeAnnouncement(node))) {
      holders[child].insert(node);
      ++nodeLoad[node];
    }
    for (const auto& child : registry_.children(paths::loadQueue(node))) {
      const auto data =
          registry_.getData(paths::loadQueue(node) + "/" + child);
      if (data && data->rfind("load:", 0) == 0) {
        holders[child].insert(node);
        ++nodeLoad[node];
      }
    }
  }

  // ---- expected state: the segment table filtered by retention. -------
  const TimeMs now = clock_.nowMs();
  std::set<std::string> expectedNames;
  for (const auto& record : metaStore_.usedSegments()) {
    ++stats.segmentsEvaluated;
    const LoadRules rules = metaStore_.rulesFor(record.id.dataSource);
    const bool expired = rules.retentionMs > 0 &&
                         record.id.interval.end() + rules.retentionMs < now;
    const std::string segName = paths::segmentNode(record.id);
    if (!expired) expectedNames.insert(segName);
    if (expired) continue;
    if (historicals.empty()) continue;

    const std::size_t want = std::min(rules.replicationFactor,
                                      historicals.size());
    auto& holding = holders[segName];
    // Deficit: assign to the least-loaded nodes not already holding it.
    while (holding.size() < want) {
      std::string best;
      std::size_t bestLoad = 0;
      for (const auto& node : historicals) {
        if (holding.count(node) > 0) continue;
        if (best.empty() || nodeLoad[node] < bestLoad) {
          best = node;
          bestLoad = nodeLoad[node];
        }
      }
      if (best.empty()) break;  // fewer nodes than the target replication
      const std::string entry = paths::loadQueueEntry(best, record.id);
      if (!registry_.exists(entry)) {
        registry_.create(entry,
                         "load:" + record.id.toString() + "\x01" +
                             record.deepStorageKey,
                         session_, /*ephemeral=*/false);
        ++stats.loadsIssued;
      }
      holding.insert(best);
      ++nodeLoad[best];
    }
    // Surplus: drop from the most-loaded holders.
    while (holding.size() > want) {
      std::string worst;
      std::size_t worstLoad = 0;
      for (const auto& node : holding) {
        if (worst.empty() || nodeLoad[node] > worstLoad) {
          worst = node;
          worstLoad = nodeLoad[node];
        }
      }
      const std::string entry = paths::loadQueueEntry(worst, record.id);
      if (!registry_.exists(entry)) {
        registry_.create(entry, "drop", session_, /*ephemeral=*/false);
        ++stats.dropsIssued;
      }
      holding.erase(worst);
      --nodeLoad[worst];
    }
  }

  // ---- segments served but no longer expected: drop everywhere. -------
  for (const auto& [segName, nodes] : holders) {
    if (expectedNames.count(segName) > 0) continue;
    for (const auto& node : nodes) {
      const std::string entry = paths::loadQueue(node) + "/" + segName;
      if (!registry_.exists(entry)) {
        registry_.create(entry, "drop", session_, /*ephemeral=*/false);
        ++stats.dropsIssued;
      }
    }
  }

  if (stats.loadsIssued + stats.dropsIssued > 0) {
    DPSS_LOG(Info) << name_ << " issued " << stats.loadsIssued << " loads, "
                   << stats.dropsIssued << " drops";
  }
  return stats;
}

ClusterStats CoordinatorNode::collectClusterStats(
    TransportIface& transport, const std::vector<std::string>& extraNodes,
    std::uint64_t traceIdFilter) {
  return dpss::cluster::collectClusterStats(registry_, transport, extraNodes,
                                            traceIdFilter);
}

}  // namespace dpss::cluster
