#include "cluster/subscription_client.h"

#include <algorithm>
#include <utility>

#include "cluster/subscription_rpc.h"
#include "common/error.h"

namespace dpss::cluster {

SubscriptionClient::SubscriptionClient(TransportIface& transport,
                                       std::string brokerNode,
                                       pss::PrivateSearchClient& search,
                                       RpcPolicy rpc)
    : transport_(transport),
      brokerNode_(std::move(brokerNode)),
      search_(search),
      rpc_(rpc) {}

pss::SubscriptionId SubscriptionClient::subscribe(
    const std::set<std::string>& keywords, const std::string& docSource,
    std::size_t blocksPerSegment, pss::SnapshotPolicy policy) {
  pss::SubscriptionSpec spec;
  spec.docSource = docSource;
  spec.dictionaryWords = search_.dictionary().words();
  spec.query = search_.makeQuery(keywords);
  spec.blocksPerSegment = blocksPerSegment;
  spec.policy = policy;
  const auto id = registerSubscription(transport_, brokerNode_, spec, rpc_);
  subs_.emplace(id, Sub{pss::SubscriptionFeed(search_.privateKey()), {}, {}});
  return id;
}

void SubscriptionClient::unsubscribe(pss::SubscriptionId id) {
  unsubscribeOn(transport_, brokerNode_, id, rpc_);
  subs_.erase(id);
}

std::vector<pss::RecoveredDocument> SubscriptionClient::poll(
    pss::SubscriptionId id) {
  auto it = subs_.find(id);
  if (it == subs_.end()) {
    throw InvalidArgument("poll: unknown subscription id " +
                          std::to_string(id));
  }
  Sub& sub = it->second;
  std::vector<pss::RecoveredDocument> fresh;
  for (const auto& snap :
       collectSnapshots(transport_, brokerNode_, id, sub.acks, rpc_)) {
    try {
      for (auto& doc : sub.feed.apply(snap.node, snap.envelope)) {
        fresh.push_back(doc);
        sub.docs.push_back(std::move(doc));
      }
    } catch (const CryptoError&) {
      // An unsolvable envelope (e.g. more matches than l_F slots — buffer
      // overflow, the paper's known limitation) yields nothing. Ack it
      // anyway: retrying the same ciphertext can never succeed.
      ++unsolvable_;
    }
    auto& ack = sub.acks[snap.node];
    ack = std::max(ack, snap.seq);
  }
  return fresh;
}

const std::vector<pss::RecoveredDocument>& SubscriptionClient::documents(
    pss::SubscriptionId id) const {
  const auto it = subs_.find(id);
  if (it == subs_.end()) {
    throw InvalidArgument("documents: unknown subscription id " +
                          std::to_string(id));
  }
  return it->second.docs;
}

std::uint64_t SubscriptionClient::snapshotsApplied(
    pss::SubscriptionId id) const {
  const auto it = subs_.find(id);
  return it == subs_.end() ? 0 : it->second.feed.snapshotsApplied();
}

}  // namespace dpss::cluster
