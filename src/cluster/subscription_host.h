// Realtime-node side of the subscription plane: the set of standing
// matchers one ingesting node runs, plus the durable snapshot store that
// ties delivery to the node's committed-offset recovery contract (PR 4).
//
// The invariant the host maintains (with RealtimeNode driving it):
// before the node commits queue offset C, every live subscription's
// in-progress batch has been sealed into a snapshot persisted on the
// node's local disk. A crash therefore loses only matches past the
// committed offset — exactly the range the queue replays — and the
// client's feed dedups the overlap. Snapshots are retired only when the
// collector acks their seq, so delivery is at-least-once end to end.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "pss/subscription.h"

namespace dpss::cluster {

/// Durable per-subscription state on the node's local disk (lives inside
/// NodeDisk, so it survives crash/restart exactly like persisted index
/// snapshots). `pending` holds serialized SubscriptionSnapshots in seq
/// order, sealed but not yet acked by a collector.
struct SubscriptionDurable {
  std::string specBytes;
  std::uint64_t nextSeq = 1;
  struct PendingSnapshot {
    std::uint64_t seq = 0;
    std::string bytes;
  };
  std::vector<PendingSnapshot> pending;
};
using SubscriptionDiskState = std::map<std::uint64_t, SubscriptionDurable>;

struct SubscriptionHostOptions {
  /// Unacked snapshots retained per subscription; beyond this the oldest
  /// is dropped (and counted) so an absent collector cannot OOM the node.
  std::size_t maxPendingPerSubscription = 1024;
  /// Fold sharding for every matcher (PR 7 thread-parallel fold).
  pss::FoldOptions fold;
};

/// One /statusz row per live subscription.
struct SubscriptionHostStatus {
  pss::SubscriptionId id = 0;
  bool active = false;  // false: stored but matching a different source
  std::int64_t ageMs = 0;
  std::uint64_t fillPercent = 0;
  std::uint64_t documentsSeen = 0;
  std::uint64_t snapshotsSealed = 0;
  std::uint64_t pendingSnapshots = 0;
  std::uint64_t ackedSeq = 0;
};

class SubscriptionHost {
 public:
  /// `disk` must outlive the host (it is the NodeDisk's subscription
  /// table, owned by the harness so it survives crash/restart).
  SubscriptionHost(std::string node, std::string dataSource,
                   SubscriptionDiskState& disk, Clock& clock,
                   SubscriptionHostOptions options = {});

  /// Rebuilds matchers from the disk specs (node start/restart). Sequence
  /// numbers and pending snapshots resume where the disk left them.
  void restore();

  /// Attaches a subscription (idempotent). Specs for a different
  /// docSource are recorded but never matched on this node.
  void attach(pss::SubscriptionId id, const pss::SubscriptionSpec& spec);
  void detach(pss::SubscriptionId id);
  std::vector<pss::SubscriptionId> ids() const;

  /// Feeds one ingested document to every active matcher. Called from the
  /// node's ingest loop with the document's queue offset.
  void onDocument(std::uint64_t offset, std::string_view matchText,
                  std::string_view payload);

  /// Seals batches whose period or fill-threshold fired (node tick).
  void sealDue();

  /// Seals every non-empty batch — the seal-before-commit barrier the
  /// node runs right before committing its queue offset.
  void sealAll();

  /// Acks everything at or below `ackSeq` (GC) and returns the rest.
  std::vector<pss::SubscriptionSnapshot> fetch(pss::SubscriptionId id,
                                               std::uint64_t ackSeq);

  /// Serves one kSubscribe(attach/list) / kUnsubscribe / kSnapshot(fetch)
  /// request, full bytes with the verb tag included.
  std::string handleRpc(const std::string& request);

  std::vector<SubscriptionHostStatus> status() const;
  std::uint64_t documentsMatched() const;
  std::uint64_t snapshotsSealed() const;
  std::uint64_t snapshotsDropped() const;

 private:
  struct Entry {
    // null when the spec's docSource is not this node's (inactive).
    std::unique_ptr<pss::SubscriptionMatcher> matcher;
    std::int64_t attachedMs = 0;
    std::uint64_t ackedSeq = 0;
  };

  void sealLocked(pss::SubscriptionId id, Entry& entry, bool force)
      DPSS_REQUIRES(mu_);
  std::uint64_t seedFor(pss::SubscriptionId id) const;

  std::string node_;
  std::string dataSource_;
  Clock& clock_;
  SubscriptionHostOptions options_;

  mutable Mutex mu_;
  SubscriptionDiskState& disk_ DPSS_GUARDED_BY(mu_);
  std::map<pss::SubscriptionId, Entry> entries_ DPSS_GUARDED_BY(mu_);
  std::uint64_t documentsMatched_ DPSS_GUARDED_BY(mu_) = 0;
  std::uint64_t snapshotsSealed_ DPSS_GUARDED_BY(mu_) = 0;
  std::uint64_t snapshotsDropped_ DPSS_GUARDED_BY(mu_) = 0;
};

}  // namespace dpss::cluster
