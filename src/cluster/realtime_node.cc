#include "cluster/realtime_node.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "cluster/names.h"
#include "cluster/stats.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "query/engine.h"
#include "storage/segment_builder.h"
#include "storage/segment_codec.h"

namespace dpss::cluster {

using storage::SegmentId;
using storage::SegmentPtr;

namespace {

const obs::MetricId kEventsIngested =
    obs::internCounter("realtime.events.ingested");
const obs::MetricId kPersistCount = obs::internCounter("realtime.persist.count");
const obs::MetricId kPersistNs = obs::internHistogram("realtime.persist.ns");
const obs::MetricId kHandoffCount = obs::internCounter("realtime.handoff.count");
const obs::MetricId kScanCount =
    obs::internCounter("realtime.segments.scanned");
const obs::MetricId kScanNs = obs::internHistogram("realtime.scan.ns");
const obs::MetricId kHandoffFailures =
    obs::internCounter("realtime.handoff.failures");
const obs::MetricId kReregistrations =
    obs::internCounter("realtime.registry.reregistrations");
const obs::MetricId kReregisterFailures =
    obs::internCounter("realtime.registry.reregister_failures");

}  // namespace

RealtimeNode::RealtimeNode(std::string name, Registry& registry,
                           MessageQueue& queue, std::string topic,
                           std::size_t partition,
                           storage::DeepStorage& deepStorage,
                           MetaStore& metaStore, TransportIface& transport,
                           Clock& clock, storage::Schema schema,
                           std::string dataSource, NodeDisk& disk,
                           RealtimeNodeOptions options)
    : name_(std::move(name)),
      registry_(registry),
      queue_(queue),
      topic_(std::move(topic)),
      partition_(partition),
      deepStorage_(deepStorage),
      metaStore_(metaStore),
      transport_(transport),
      clock_(clock),
      schema_(std::move(schema)),
      dataSource_(std::move(dataSource)),
      disk_(disk),
      options_(options),
      subsHost_(name_, dataSource_, disk_.subscriptions, clock_,
                options_.subscriptions) {
  DPSS_CHECK_MSG(options_.segmentGranularityMs > 0, "granularity must be > 0");
}

RealtimeNode::~RealtimeNode() { stop(); }

TimeMs RealtimeNode::bucketStart(TimeMs t) const {
  const TimeMs g = options_.segmentGranularityMs;
  TimeMs b = t - (t % g);
  if (t < 0 && t % g != 0) b -= g;
  return b;
}

SegmentId RealtimeNode::realtimeSegmentId(TimeMs bucket) const {
  SegmentId id;
  id.dataSource = dataSource_;
  id.interval = Interval(bucket, bucket + options_.segmentGranularityMs);
  // All real-time partitions of a stream share one version so none
  // overshadows another ("each real-time segment has a partition
  // number"); "rt" < "v..." lexicographically, so a handed-off historical
  // version always overshadows the live one.
  id.version = SegmentId::kRealtimeVersion;
  id.partition = static_cast<std::uint32_t>(partition_);
  return id;
}

void RealtimeNode::start() {
  SessionPtr session;
  std::uint64_t startOffset = 0;
  {
    MutexLock lock(mu_);
    DPSS_CHECK_MSG(!running_, "node already running");
    session_ = registry_.connect(name_);
    session = session_;
    running_ = true;
    // Recovery: "reload any index which has been persisted to disk and
    // then read the message queue from the last committed offset".
    offset_ = queue_.committed(name_, topic_, partition_);
    startOffset = offset_;
    lastPersist_ = clock_.nowMs();
    // Handoff versions must keep increasing across restarts so newer
    // re-handoffs overshadow older ones; seed the sequence from the clock.
    if (versionCounter_ == 0) {
      versionCounter_ = static_cast<std::uint64_t>(clock_.nowMs()) * 1000;
    }
  }
  try {
    registry_.create(paths::nodeAnnouncement(name_), "realtime", session,
                     /*ephemeral=*/true);
  } catch (...) {
    // Announce conflict (a crashed predecessor's ephemeral not yet swept)
    // or registry outage: roll back so the caller can retry start().
    MutexLock lock(mu_);
    running_ = false;
    session_.reset();
    throw;
  }
  transport_.bind(name_, [this](const std::string& req) {
    return handleRpc(req);
  });
  // Re-announce buckets with surviving persisted data.
  std::vector<TimeMs> buckets;
  {
    MutexLock lock(mu_);
    for (const auto& [bucket, snaps] : disk_.persisted) {
      if (!snaps.empty()) buckets.push_back(bucket);
    }
  }
  for (const auto b : buckets) announceBucket(b);
  // Rebuild standing matchers from the specs that survived on disk; their
  // seq counters and unacked snapshots resume where the crash left them.
  subsHost_.restore();
  DPSS_LOG(Info) << "realtime node " << name_ << " online from offset "
                 << startOffset;
}

void RealtimeNode::stop() {
  // Graceful shutdown flushes live indexes and commits the consumed
  // offset, so a restart resumes without re-scanning. crash() skips this
  // flush — that durability gap is exactly what replay-from-committed-
  // offset recovery covers.
  std::uint64_t offsetToCommit = 0;
  bool flushed = false;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    for (auto& [bucket, index] : live_) {
      if (index == nullptr || index->empty()) continue;
      SegmentId snapId = realtimeSegmentId(bucket);
      snapId.version += "-p" + std::to_string(disk_.persisted[bucket].size());
      disk_.persisted[bucket].push_back(index->persistAndClear(snapId));
    }
    offsetToCommit = offset_;
    flushed = true;
  }
  if (flushed) {
    // Seal-before-commit: every subscription batch reaches disk before
    // the offset does, so nothing at or below the commit is only in RAM.
    subsHost_.sealAll();
    queue_.commit(name_, topic_, partition_, offsetToCommit);
  }
  teardown();
}

void RealtimeNode::crash() {
  // Abrupt failure: the un-persisted incremental index dies with the
  // process and the committed offset stays wherever the last persist left
  // it — start() re-consumes the gap from the message queue.
  teardown();
}

void RealtimeNode::teardown() {
  SessionPtr session;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    live_.clear();
    announced_.clear();
    awaitingServe_.clear();
    session = std::move(session_);
    session_.reset();
  }
  transport_.unbind(name_);
  registry_.expire(session);
}

void RealtimeNode::loseRegistrySession() {
  SessionPtr session;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    session = session_;
  }
  registry_.expire(session);
  DPSS_LOG(Warn) << name_ << " lost registry session (lease expiry)";
}

void RealtimeNode::maybeReregister() {
  {
    MutexLock lock(mu_);
    if (!running_ || session_ == nullptr || !session_->expired()) return;
    const TimeMs now = clock_.nowMs();
    if (reregisterNotBeforeMs_ == 0) {
      // First tick after lease loss: schedule the reconnect one backoff
      // period out, as a real client would after a ZK session expiry.
      reregisterNotBeforeMs_ = now + reregisterBackoffMs_;
      return;
    }
    if (now < reregisterNotBeforeMs_) return;
  }
  try {
    SessionPtr session = registry_.connect(name_);
    try {
      registry_.create(paths::nodeAnnouncement(name_), "realtime", session,
                       /*ephemeral=*/true);
    } catch (const AlreadyExists&) {
    }
    std::vector<TimeMs> buckets;
    {
      MutexLock lock(mu_);
      if (!running_) return;  // stopped while reconnecting
      for (const auto& [bucket, flag] : announced_) {
        if (flag) buckets.push_back(bucket);
      }
      session_ = session;
      reregisterBackoffMs_ = options_.reregisterBackoffMs;
      reregisterNotBeforeMs_ = 0;
    }
    for (const auto bucket : buckets) {
      const SegmentId id = realtimeSegmentId(bucket);
      try {
        registry_.create(paths::servedSegment(name_, id), id.toString(),
                         session, /*ephemeral=*/true);
      } catch (const AlreadyExists&) {
      }
    }
    obs_.counter(kReregistrations).inc();
    DPSS_LOG(Info) << name_ << " re-registered after session expiry";
  } catch (const Error& e) {
    obs_.counter(kReregisterFailures).inc();
    MutexLock lock(mu_);
    reregisterBackoffMs_ = std::min<TimeMs>(reregisterBackoffMs_ * 2,
                                            options_.reregisterBackoffMaxMs);
    reregisterNotBeforeMs_ = clock_.nowMs() + reregisterBackoffMs_;
  }
}

void RealtimeNode::tick() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
  }
  maybeReregister();
  ingest();
  subsHost_.sealDue();
  persistIfDue();
  handoffIfDue();
}

void RealtimeNode::ingest() {
  obs::ScopedRegistry obsScope(obs_);
  for (;;) {
    std::uint64_t pollFrom = 0;
    {
      MutexLock lock(mu_);
      pollFrom = offset_;
    }
    const auto messages =
        queue_.poll(topic_, partition_, pollFrom, options_.maxPollBatch);
    if (messages.empty()) return;
    obs_.counter(kEventsIngested).inc(messages.size());
    std::vector<storage::InputRow> rows;
    rows.reserve(messages.size());
    for (const auto& m : messages) {
      rows.push_back(storage::decodeInputRow(m.payload));
    }
    std::vector<TimeMs> newBuckets;
    {
      MutexLock lock(mu_);
      for (std::size_t i = 0; i < messages.size(); ++i) {
        const auto& row = rows[i];
        const TimeMs bucket = bucketStart(row.timestamp);
        auto& index = live_[bucket];
        if (index == nullptr) {
          index = std::make_unique<storage::IncrementalIndex>(
              schema_, options_.rollupGranularityMs);
          newBuckets.push_back(bucket);
        }
        index->add(row);
        ++eventsIngested_;
        offset_ = messages[i].offset + 1;
      }
    }
    // Standing subscriptions: match every ingested document outside mu_
    // (the host has its own lock, and the homomorphic fold is by far the
    // most expensive step of this loop). The dictionary matches against
    // the row's dimension values; the recoverable payload is the raw
    // queue message, so the client reconstructs the full event.
    for (std::size_t i = 0; i < messages.size(); ++i) {
      std::string matchText;
      for (const auto& d : rows[i].dimensions) {
        if (!matchText.empty()) matchText += ' ';
        matchText += d;
      }
      subsHost_.onDocument(messages[i].offset, matchText,
                           messages[i].payload);
    }
    for (const auto b : newBuckets) announceBucket(b);
  }
}

void RealtimeNode::announceBucket(TimeMs bucket) {
  bool needed = false;
  SessionPtr session;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    if (!announced_[bucket]) {
      announced_[bucket] = true;
      needed = true;
    }
    session = session_;
  }
  if (!needed) return;
  const SegmentId id = realtimeSegmentId(bucket);
  try {
    registry_.create(paths::servedSegment(name_, id), id.toString(), session,
                     /*ephemeral=*/true);
  } catch (const AlreadyExists&) {
    // Restart within the same process lifetime; announcement persists.
  }
}

void RealtimeNode::persistIfDue() {
  const TimeMs now = clock_.nowMs();
  std::uint64_t offsetToCommit = 0;
  obs::ScopedRegistry obsScope(obs_);
  {
    MutexLock lock(mu_);
    if (now - lastPersist_ < options_.persistPeriodMs) return;
    lastPersist_ = now;
    obs_.counter(kPersistCount).inc();
    obs::ScopedTimer persistTimer(obs_.histogram(kPersistNs));
    for (auto& [bucket, index] : live_) {
      if (index == nullptr || index->empty()) continue;
      // Each persisted index is unchangeable.
      SegmentId snapId = realtimeSegmentId(bucket);
      snapId.version += "-p" + std::to_string(disk_.persisted[bucket].size());
      disk_.persisted[bucket].push_back(index->persistAndClear(snapId));
    }
    offsetToCommit = offset_;
  }
  // Seal-before-commit: subscription batches covering offsets at or below
  // the commit must be on disk before the offset moves, otherwise a crash
  // right after the commit would lose matches the queue never replays.
  subsHost_.sealAll();
  // "a real-time compute node uses the offset of the last message of the
  // most recently persisted index to update the message queue".
  queue_.commit(name_, topic_, partition_, offsetToCommit);
  DPSS_LOG(Info) << name_ << " persisted indexes, committed offset "
                 << offsetToCommit;
}

void RealtimeNode::handoffIfDue() {
  const TimeMs now = clock_.nowMs();

  // Phase 1: buckets past end + window -> merge, upload, register.
  std::vector<TimeMs> ready;
  {
    MutexLock lock(mu_);
    for (const auto& [bucket, flag] : announced_) {
      (void)flag;
      if (awaitingServe_.count(bucket) > 0) continue;
      const TimeMs bucketEnd = bucket + options_.segmentGranularityMs;
      if (bucketEnd + options_.windowMs <= now) ready.push_back(bucket);
    }
  }
  for (const auto bucket : ready) {
    std::vector<SegmentPtr> parts;
    {
      MutexLock lock(mu_);
      // Late data still in memory joins the merge.
      auto liveIt = live_.find(bucket);
      if (liveIt != live_.end() && liveIt->second != nullptr &&
          !liveIt->second->empty()) {
        SegmentId snapId = realtimeSegmentId(bucket);
        snapId.version +=
            "-p" + std::to_string(disk_.persisted[bucket].size());
        disk_.persisted[bucket].push_back(
            liveIt->second->persistAndClear(snapId));
      }
      parts = disk_.persisted[bucket];
    }
    SegmentId historicalId;
    historicalId.dataSource = dataSource_;
    historicalId.interval =
        Interval(bucket, bucket + options_.segmentGranularityMs);
    std::uint64_t version = 0;
    {
      MutexLock lock(mu_);
      version = ++versionCounter_;
    }
    char versionBuf[32];
    std::snprintf(versionBuf, sizeof(versionBuf), "v%020" PRIu64, version);
    historicalId.version = versionBuf;
    historicalId.partition = static_cast<std::uint32_t>(partition_);

    if (parts.empty()) {
      // Nothing ever arrived for this bucket; just unannounce.
      MutexLock lock(mu_);
      awaitingServe_[bucket] = PendingHandoff{historicalId};
      continue;
    }
    const SegmentPtr merged = storage::mergeSegments(parts, historicalId);
    const std::string blob = storage::encodeSegment(*merged);
    const std::string key = historicalId.toString();
    try {
      deepStorage_.put(key, blob);
    } catch (const Error& e) {
      // Upload-side outage: the bucket stays announced (still queryable
      // live) and the next tick retries the whole handoff under a fresh
      // version. No data is lost, only delayed.
      obs_.counter(kHandoffFailures).inc();
      DPSS_LOG(Warn) << name_ << " handoff upload failed for " << key << ": "
                     << e.what();
      continue;
    }
    SegmentRecord record;
    record.id = historicalId;
    record.deepStorageKey = key;
    record.sizeBytes = blob.size();
    metaStore_.upsertSegment(record);
    {
      MutexLock lock(mu_);
      awaitingServe_[bucket] = PendingHandoff{historicalId};
    }
    obs_.counter(kHandoffCount).inc();
    DPSS_LOG(Info) << name_ << " handed off " << historicalId.toString();
  }

  // Phase 2: buckets whose historical segment is now served somewhere ->
  // delete local state and unannounce ("publish it will never serve this
  // segment").
  std::vector<TimeMs> done;
  {
    MutexLock lock(mu_);
    for (const auto& [bucket, pending] : awaitingServe_) {
      const std::string segName = paths::segmentNode(pending.historicalId);
      bool servedSomewhere = disk_.persisted[bucket].empty();  // empty bucket
      if (!servedSomewhere) {
        for (const auto& node : registry_.children(paths::announcements())) {
          if (node == name_) continue;
          if (registry_.exists(paths::nodeAnnouncement(node) + "/" +
                               segName)) {
            servedSomewhere = true;
            break;
          }
        }
      }
      if (servedSomewhere) done.push_back(bucket);
    }
    for (const auto bucket : done) {
      live_.erase(bucket);
      disk_.persisted.erase(bucket);
      awaitingServe_.erase(bucket);
      announced_.erase(bucket);
    }
  }
  for (const auto bucket : done) {
    registry_.remove(paths::servedSegment(name_, realtimeSegmentId(bucket)));
    DPSS_LOG(Info) << name_ << " retired real-time segment for bucket "
                   << bucket;
  }
}

std::size_t RealtimeNode::pendingHandoffs() const {
  MutexLock lock(mu_);
  return awaitingServe_.size();
}

std::vector<SegmentId> RealtimeNode::announcedSegments() const {
  MutexLock lock(mu_);
  std::vector<SegmentId> out;
  for (const auto& [bucket, flag] : announced_) {
    if (flag) out.push_back(realtimeSegmentId(bucket));
  }
  return out;
}

std::string RealtimeNode::handleRpc(const std::string& request) {
  if (request.empty()) throw CorruptData("empty rpc");
  const auto tag = static_cast<std::uint8_t>(request[0]);
  obs::ScopedRegistry obsScope(obs_);
  if (tag == rpc::kStats) return handleStatsRpc(obs_, request.substr(1));
  if (tag == rpc::kSubscribe || tag == rpc::kUnsubscribe ||
      tag == rpc::kSnapshot) {
    return subsHost_.handleRpc(request);
  }
  if (tag != rpc::kQuerySegment) throw CorruptData("unsupported rpc");
  obs::SpanGuard rpcSpan("realtime.query_segment");
  const auto req = SegmentQueryRequest::decode(request.substr(1));
  rpcSpan.tag("segment", req.segment.toString());

  // "The real-time compute node maintains a comprehensive view of the
  // current index being updated and of all indexes persisted to disk.
  // This comprehensive view allows all indexes on a node to be queried."
  const TimeMs bucket = req.segment.interval.start();
  std::vector<SegmentPtr> view;
  {
    MutexLock lock(mu_);
    const auto diskIt = disk_.persisted.find(bucket);
    if (diskIt != disk_.persisted.end()) {
      view = diskIt->second;
    }
    const auto liveIt = live_.find(bucket);
    if (liveIt != live_.end() && liveIt->second != nullptr &&
        !liveIt->second->empty()) {
      view.push_back(liveIt->second->snapshot(req.segment));
    }
  }
  query::QueryResult result;
  {
    obs::ScopedTimer scanTimer(obs_.histogram(kScanNs));
    for (const auto& part : view) {
      result.mergeFrom(query::scanSegment(*part, req.spec));
    }
  }
  if (!view.empty()) obs_.counter(kScanCount).inc();
  result.segmentsScanned = view.empty() ? 0 : 1;
  ByteWriter w;
  result.serialize(w);
  return w.take();
}

}  // namespace dpss::cluster
