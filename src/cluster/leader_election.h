// Coordinator leader election over the registry (DESIGN.md §13).
//
// Standby coordinators all run an elector against the same pair of
// znodes: a persistent epoch counter and an ephemeral leader znode owned
// by the current leader's session. Registry::acquireLeadership() makes
// bump-epoch + take-leader one atomic step, so every successful
// acquisition observes a strictly larger epoch than any predecessor —
// that epoch fences the leader's writes (createFenced/setDataFenced):
// a deposed leader that has not yet noticed its session died gets Fenced
// on its next decision instead of corrupting the load queues.
//
// tick() is the whole protocol: reconnect if the session expired, read
// the leader znode, acquire it if free. Called from the coordinator's
// periodic loop; a SIGKILLed leader's ephemeral znode vanishes when its
// substrate lease times out, and the next standby tick takes over.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "cluster/names.h"
#include "cluster/registry.h"

namespace dpss::cluster {

struct LeaderElectorOptions {
  std::string leaderPath = paths::leaderNode();
  std::string epochPath = paths::epochNode();
};

class LeaderElector {
 public:
  using Options = LeaderElectorOptions;

  /// Does not touch the registry; the first tick() connects.
  LeaderElector(std::string owner, Registry& registry, Options options = {});

  /// One election round; returns the post-round isLeader(). Never throws:
  /// a registry outage just means "not leader this round".
  bool tick();

  /// Leadership as of the last tick(). Safe from any thread (/statusz).
  bool isLeader() const { return leader_.load(std::memory_order_acquire); }

  /// The epoch minted by this elector's latest acquisition (0 = never
  /// led). Stays readable after deposition — fenced writes carrying it
  /// are exactly the ones the registry must reject.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Steps down voluntarily: removes the leader znode if ours and forgets
  /// leadership. The next tick() (here or on a standby) re-elects.
  void resign();

  /// Chaos hook: expires the elector's registry session without telling
  /// it — the authority moves on while this elector still believes it
  /// leads, exercising the fencing path. (In-process analogue of
  /// SIGKILLing the leader and waiting out its lease.)
  void depose();

  const std::string& owner() const { return owner_; }

 private:
  std::string owner_;
  Registry& registry_;
  Options options_;

  // tick()/resign()/depose() run on the coordinator's single driver
  // thread; only the atomics are read cross-thread (admin plane).
  SessionPtr session_;
  std::string tag_;  // "<owner>#<epoch>" of our latest acquisition
  std::atomic<bool> leader_{false};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace dpss::cluster
