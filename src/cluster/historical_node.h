// Historical compute node (§III-A-1) — "the main worker of our system".
//
// Shared-nothing: historical nodes never talk to each other and learn
// about work only through their registry load-queue path. The lifecycle
// per assignment is exactly the paper's: check the local cache first,
// otherwise download the blob from deep storage, decode, then publish the
// served segment under the node's announcement path — at which point the
// segment is queryable.
//
// Queries arrive over the transport as one RPC per segment; each scan is
// executed on the node's bounded worker pool ("one thread scan a
// segment", 15 workers in the paper's test configuration).
//
// For the private-search integration the node can also hold a slice of a
// document stream and run the broker-shipped encrypted query over it,
// returning the three-buffer envelope for its slice.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/registry.h"
#include "cluster/transport.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "pss/dictionary.h"
#include "storage/deep_storage.h"
#include "storage/segment.h"

namespace dpss::cluster {

struct HistoricalNodeOptions {
  std::size_t workerThreads = 15;  // the paper's per-node thread count
  // Reconnect backoff after a registry session expiry (doubles per failed
  // attempt up to the max, measured on the transport's virtual clock).
  TimeMs reregisterBackoffMs = 50;
  TimeMs reregisterBackoffMaxMs = 2000;
  // "host:port" published in the node announcement so peers that did not
  // know this node at startup (runtime scale-out) can resolve a route to
  // it (net::NetTransport's peer resolver). Empty: announce type only.
  std::string advertiseEndpoint;
};

class HistoricalNode {
 public:
  HistoricalNode(std::string name, Registry& registry,
                 storage::DeepStorage& deepStorage, TransportIface& transport,
                 HistoricalNodeOptions options = {});
  ~HistoricalNode();

  HistoricalNode(const HistoricalNode&) = delete;
  HistoricalNode& operator=(const HistoricalNode&) = delete;

  /// Connects the session, announces the node, arms the load-queue watch
  /// and processes any assignments already queued.
  void start();

  /// Graceful stop: unannounces everything and leaves the network.
  void stop();

  /// Simulates a crash: the registry session expires (announcements
  /// vanish) and the node drops off the transport, but the local disk
  /// cache survives for a later restart.
  void crash();

  /// Simulates losing the registry lease (ZK session expiry) while the
  /// node itself keeps running: announcements and served ephemerals
  /// vanish, but the process, pool and transport binding stay up. tick()
  /// re-registers with backoff.
  void loseRegistrySession();

  /// Periodic maintenance: re-registers after a lost registry session,
  /// refreshes drain state (the flag may be written by the coordinator or
  /// a control verb, not just by this node) and re-processes any
  /// load-queue entries that a previous attempt left behind (e.g. a
  /// deep-storage outage). Watch events cover the steady state; tick() is
  /// the recovery path a real node runs on a timer.
  void tick() {
    maybeReregister();
    refreshDrainState();
    onLoadQueueEvent();
  }

  // --- graceful drain (decommission; DESIGN.md §13) ---------------------
  /// Enters drain mode: this node refuses new loads (ack-removing them so
  /// the coordinator places the replica elsewhere) while the coordinator
  /// re-replicates its segments and then drops them, load-before-drop.
  /// Persistent flag: a crash mid-drain resumes draining after restart.
  /// Idempotent.
  void requestDrain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  /// True once the coordinator flipped the flag: nothing served, queue
  /// empty. The node can now stop() — which deregisters the flag.
  bool drainComplete() const {
    return drainComplete_.load(std::memory_order_acquire);
  }

  const std::string& name() const { return name_; }
  bool running() const {
    MutexLock lock(mu_);
    return running_;
  }

  std::vector<storage::SegmentId> servedSegments() const;
  bool serves(const storage::SegmentId& id) const;

  /// Load-queue entries issued to this node and not yet applied (mid
  /// download, or stalled behind a deep-storage outage until the next
  /// tick). Steady state is 0; /statusz reports it for the placement
  /// view.
  std::size_t pendingLoads() const;

  /// Local-disk-cache introspection for tests and the cache ablation.
  bool cachedLocally(const std::string& deepStorageKey) const;
  std::uint64_t deepStorageDownloads() const { return downloads_.load(); }
  std::uint64_t cacheHits() const { return cacheHits_.load(); }

  /// Loads a slice of a private-search document stream (batch path; see
  /// broker_node.h for how slices are discovered and searched).
  void loadDocuments(const std::string& docSource, std::uint64_t baseIndex,
                     std::vector<std::string> documents);

  /// This node's metrics + span store (also served over rpc::kStats).
  obs::MetricsRegistry& metrics() { return obs_; }

  /// Whether the node still holds a live registry session (/healthz).
  bool registryLeaseActive() const {
    MutexLock lock(mu_);
    return session_ != nullptr && !session_->expired();
  }

 private:
  void maybeReregister();
  void refreshDrainState();
  void onLoadQueueEvent();
  void processAssignment(const std::string& entryName);
  void loadSegment(const storage::SegmentId& id, const std::string& key);
  void dropSegment(const storage::SegmentId& id);
  std::string handleRpc(const std::string& request);

  std::string name_;
  Registry& registry_;
  storage::DeepStorage& deepStorage_;
  TransportIface& transport_;
  HistoricalNodeOptions options_;
  obs::MetricsRegistry obs_{name_};

  // Lock order: historical mutex before registry mutex — announce /
  // reregister paths call the registry with mu_ held (see broker_node.h
  // for why the inverse order cannot occur).
  mutable Mutex mu_ DPSS_ACQUIRED_BEFORE(registry_.internalMutex());
  SessionPtr session_ DPSS_GUARDED_BY(mu_);
  std::uint64_t watchId_ DPSS_GUARDED_BY(mu_) = 0;
  bool running_ DPSS_GUARDED_BY(mu_) = false;
  // Session-expiry recovery state: 0 means "no reconnect scheduled yet".
  TimeMs reregisterNotBeforeMs_ DPSS_GUARDED_BY(mu_) = 0;
  TimeMs reregisterBackoffMs_ DPSS_GUARDED_BY(mu_) =
      options_.reregisterBackoffMs;
  // "Local disk": encoded blobs that survive crash()/start() cycles.
  std::map<std::string, std::string> localDisk_ DPSS_GUARDED_BY(mu_);
  // Decoded, servable segments.
  std::map<storage::SegmentId, storage::SegmentPtr> served_
      DPSS_GUARDED_BY(mu_);
  struct DocSlice {
    std::uint64_t baseIndex = 0;
    std::vector<std::string> documents;
  };
  // docSource -> slice
  std::map<std::string, DocSlice> docSlices_ DPSS_GUARDED_BY(mu_);

  // Shared so an in-flight RPC can pin the pool across a concurrent
  // crash()/stop(): its scan still runs and the pool is destroyed by the
  // last holder, instead of abandoning the task (broken promise) or
  // racing the reset (use-after-free).
  std::shared_ptr<ThreadPool> pool_ DPSS_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> downloads_{0};
  std::atomic<std::uint64_t> cacheHits_{0};
  // Drain state mirrors the /drains/<node> flag (see refreshDrainState);
  // atomics so the assignment path and admin plane read them lock-free.
  std::atomic<bool> draining_{false};
  std::atomic<bool> drainComplete_{false};
};

}  // namespace dpss::cluster
