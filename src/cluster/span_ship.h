// Cross-process span shipping (rpc::kSpans).
//
// Worker nodes record finished spans into their registry's bounded
// SpanStore; a SpanShipper drains the new ones each maintenance tick and
// ships them to the trace sink (normally the coordinator), which feeds
// them into an obs::TraceCollector. The same RPC also serves a fetch
// sub-op so tests and admin tooling can pull a trace's raw spans back
// out of the sink over the transport.
//
// Shipping is best-effort and bounded end to end: the SpanStore drops
// the oldest spans under pressure, the shipper re-queues a failed batch
// at most up to its pending cap, and the collector evicts whole traces
// LRU (demoting the slowest; see obs/trace_assembly.h). Losing spans
// degrades a trace to a forest — assembly keeps orphans visible — but
// never wedges a node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/rpc_policy.h"
#include "cluster/transport.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace_assembly.h"

namespace dpss::cluster {

namespace spans_op {
constexpr std::uint8_t kShip = 1;   // node -> sink: batch of spans
constexpr std::uint8_t kFetch = 2;  // admin/test -> sink: spans by trace
}  // namespace spans_op

/// One shipped batch: the origin node plus its new spans.
struct SpanBatch {
  std::string fromNode;
  std::vector<obs::Span> spans;

  std::string encode() const;  // includes the kSpans tag + kShip sub-op
  static SpanBatch decode(ByteReader& r);  // after tag + sub-op
};

/// Encodes a fetch request (traceId 0 = every buffered span).
std::string encodeSpanFetchRequest(std::uint64_t traceId);

/// Sink-side kSpans dispatch (request includes the tag byte); nodes call
/// this from their RPC handler.
std::string handleSpansRpc(obs::TraceCollector& collector,
                           const std::string& request);

/// Pulls spans for one trace (0 = all) from the sink.
std::vector<obs::Span> callSpansFetch(TransportIface& transport,
                                      const std::string& sinkNode,
                                      std::uint64_t traceId,
                                      const RpcPolicy& policy = {});

/// Periodically drains a registry's SpanStore and ships the new spans to
/// the sink. tick() never throws: a failed ship keeps the batch pending
/// (bounded) and retries next round.
class SpanShipper {
 public:
  struct Options {
    std::size_t maxBatch = 512;       // spans per kShip RPC
    std::size_t maxPending = 4096;    // buffered across failed ships
    RpcPolicy rpc{};
  };

  SpanShipper(obs::MetricsRegistry& registry, TransportIface& transport,
              std::string sinkNode)
      : SpanShipper(registry, transport, std::move(sinkNode), Options()) {}
  SpanShipper(obs::MetricsRegistry& registry, TransportIface& transport,
              std::string sinkNode, Options options);

  /// One shipping round; no-op when nothing new is buffered.
  void tick();

  std::uint64_t spansShipped() const;

 private:
  obs::MetricsRegistry& registry_;
  TransportIface& transport_;
  std::string sink_;
  Options options_;

  mutable Mutex mu_;
  std::uint64_t cursor_ DPSS_GUARDED_BY(mu_) = 0;
  std::vector<obs::Span> pending_ DPSS_GUARDED_BY(mu_);
  std::uint64_t shipped_ DPSS_GUARDED_BY(mu_) = 0;
};

}  // namespace dpss::cluster
