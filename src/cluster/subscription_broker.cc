#include "cluster/subscription_broker.h"

#include <algorithm>
#include <utility>

#include "cluster/names.h"
#include "cluster/subscription_rpc.h"
#include "common/bytes.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace dpss::cluster {
namespace {

const obs::MetricId kMetricSubscribed =
    obs::internCounter("broker.subscriptions.registered");
const obs::MetricId kMetricUnsubscribed =
    obs::internCounter("broker.subscriptions.removed");
const obs::MetricId kMetricCollected =
    obs::internCounter("broker.subscriptions.snapshots");
const obs::MetricId kMetricReconcilePushes =
    obs::internCounter("broker.subscriptions.reconcile_pushes");

}  // namespace

SubscriptionBroker::SubscriptionBroker(Registry& registry, MetaStore& metaStore,
                                       TransportIface& transport,
                                       SubscriptionBrokerOptions options)
    : registry_(registry),
      metaStore_(metaStore),
      transport_(transport),
      options_(options) {}

std::vector<std::string> SubscriptionBroker::realtimeNodes() const {
  std::vector<std::string> out;
  for (const auto& node : registry_.children(paths::announcements())) {
    const auto data = registry_.getData(paths::nodeAnnouncement(node));
    if (data.has_value() && paths::announceType(*data) == "realtime") {
      out.push_back(node);
    }
  }
  return out;
}

pss::SubscriptionId SubscriptionBroker::subscribe(
    const pss::SubscriptionSpec& spec) {
  SubscriptionRecord record;
  {
    // Id assignment and the metastore upsert happen under one lock so two
    // racing registrations cannot mint the same id.
    MutexLock lock(mu_);
    pss::SubscriptionId next = 1;
    for (const auto& existing : metaStore_.subscriptions()) {
      next = std::max<pss::SubscriptionId>(next, existing.id + 1);
    }
    record.id = next;
    ByteWriter w;
    spec.serialize(w);
    record.specBytes = w.take();
    record.createdMs = transport_.clock().nowMs();
    metaStore_.upsertSubscription(record);
    collected_.emplace(record.id, 0);
  }
  obs::currentRegistry().counter(kMetricSubscribed).inc();
  // Best-effort immediate fan-out; a node that is down right now gets the
  // subscription from the next reconcile() round instead.
  for (const auto& node : realtimeNodes()) {
    try {
      attachSubscription(transport_, node, record.id, spec, options_.rpc);
    } catch (const Unavailable&) {
    }
  }
  return record.id;
}

void SubscriptionBroker::unsubscribe(pss::SubscriptionId id) {
  {
    MutexLock lock(mu_);
    metaStore_.removeSubscription(id);
    collected_.erase(id);
  }
  obs::currentRegistry().counter(kMetricUnsubscribed).inc();
  for (const auto& node : realtimeNodes()) {
    try {
      unsubscribeOn(transport_, node, id, options_.rpc);
    } catch (const Unavailable&) {
    }
  }
}

std::vector<pss::SubscriptionSnapshot> SubscriptionBroker::collect(
    pss::SubscriptionId id, const std::map<std::string, std::uint64_t>& acks) {
  std::vector<pss::SubscriptionSnapshot> out;
  for (const auto& node : realtimeNodes()) {
    const auto ackIt = acks.find(node);
    const std::uint64_t ackSeq = ackIt == acks.end() ? 0 : ackIt->second;
    try {
      auto snaps = fetchSnapshots(transport_, node, id, ackSeq, options_.rpc);
      for (auto& s : snaps) out.push_back(std::move(s));
    } catch (const Unavailable&) {
      // Unreachable node: its snapshots stay pending on its disk; the
      // client re-collects after the node recovers.
    }
  }
  if (!out.empty()) {
    MutexLock lock(mu_);
    collected_[id] += out.size();
    snapshotsCollected_ += out.size();
  }
  obs::currentRegistry().counter(kMetricCollected).inc(out.size());
  return out;
}

std::size_t SubscriptionBroker::reconcile() {
  // Desired state is whatever the (journaled) metastore says. Probe each
  // realtime node for what it actually runs and push the difference, in
  // both directions: attach repairs crash-restarted or newly joined
  // nodes, unsubscribe repairs nodes that missed a removal.
  const auto records = metaStore_.subscriptions();
  std::size_t pushes = 0;
  for (const auto& node : realtimeNodes()) {
    std::vector<pss::SubscriptionId> have;
    try {
      have = listSubscriptions(transport_, node, options_.rpc);
    } catch (const Unavailable&) {
      continue;
    }
    for (const auto& record : records) {
      if (std::find(have.begin(), have.end(), record.id) != have.end()) {
        continue;
      }
      try {
        ByteReader r(record.specBytes);
        attachSubscription(transport_, node, record.id,
                           pss::SubscriptionSpec::deserialize(r),
                           options_.rpc);
        ++pushes;
      } catch (const Unavailable&) {
      }
    }
    for (const auto id : have) {
      const bool desired =
          std::any_of(records.begin(), records.end(),
                      [&](const SubscriptionRecord& r) { return r.id == id; });
      if (desired) continue;
      try {
        unsubscribeOn(transport_, node, id, options_.rpc);
        ++pushes;
      } catch (const Unavailable&) {
      }
    }
  }
  {
    MutexLock lock(mu_);
    ++reconcileRounds_;
  }
  obs::currentRegistry().counter(kMetricReconcilePushes).inc(pushes);
  return pushes;
}

std::string SubscriptionBroker::handleRpc(const std::string& request) {
  ByteReader r(request);
  const std::uint8_t verb = r.u8();
  switch (verb) {
    case rpc::kSubscribe: {
      const std::uint8_t sub = r.u8();
      if (sub != subrpc::kRegister) {
        throw InvalidArgument("broker: unknown kSubscribe sub-op " +
                              std::to_string(sub));
      }
      const auto id = subscribe(pss::SubscriptionSpec::deserialize(r));
      ByteWriter w;
      w.varint(id);
      return w.take();
    }
    case rpc::kUnsubscribe:
      unsubscribe(r.varint());
      return {};
    case rpc::kSnapshot: {
      const std::uint8_t sub = r.u8();
      if (sub != subrpc::kCollect) {
        throw InvalidArgument("broker: unknown kSnapshot sub-op " +
                              std::to_string(sub));
      }
      const pss::SubscriptionId id = r.varint();
      const std::uint64_t n = r.varint();
      std::map<std::string, std::uint64_t> acks;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string node = std::string(r.str());
        const std::uint64_t seq = r.u64();
        acks.emplace(std::move(node), seq);
      }
      return encodeSnapshotList(collect(id, acks));
    }
    default:
      throw InvalidArgument("subscription broker: unexpected verb " +
                            std::to_string(verb));
  }
}

std::vector<SubscriptionBrokerStatus> SubscriptionBroker::status() const {
  const auto records = metaStore_.subscriptions();
  MutexLock lock(mu_);
  std::vector<SubscriptionBrokerStatus> out;
  out.reserve(records.size());
  for (const auto& record : records) {
    SubscriptionBrokerStatus row;
    row.id = record.id;
    row.createdMs = record.createdMs;
    ByteReader r(record.specBytes);
    row.docSource = pss::SubscriptionSpec::deserialize(r).docSource;
    const auto it = collected_.find(record.id);
    if (it != collected_.end()) row.snapshotsCollected = it->second;
    out.push_back(std::move(row));
  }
  return out;
}

std::uint64_t SubscriptionBroker::snapshotsCollected() const {
  MutexLock lock(mu_);
  return snapshotsCollected_;
}

std::uint64_t SubscriptionBroker::reconcileRounds() const {
  MutexLock lock(mu_);
  return reconcileRounds_;
}

}  // namespace dpss::cluster
