// Broker-as-a-service: the wire codecs and handler that let a client in
// another OS process run full distributed queries (rpc::kBrokerQuery) and
// private-search rounds (rpc::kBrokerSearch) against a BrokerNode, plus
// the RemoteBroker proxy that speaks them.
//
// In-process deployments call BrokerNode directly and never touch this;
// dpss_node's broker role serves these rpcs and its client side drives
// runDistributedPrivateSearch through a RemoteBroker unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/broker_node.h"
#include "cluster/rpc_policy.h"
#include "cluster/search_broker.h"
#include "cluster/transport.h"
#include "pss/dictionary.h"
#include "pss/query.h"
#include "pss/searcher.h"
#include "query/query.h"

namespace dpss::cluster {

// --- wire codecs (exposed for tests) -------------------------------------

/// kBrokerQuery request: [rpc::kBrokerQuery][QuerySpec].
std::string encodeBrokerQueryRequest(const query::QuerySpec& spec);
/// Outcome round-trips losslessly, partial-result annotations included.
std::string encodeBrokerQueryOutcome(const BrokerQueryOutcome& outcome);
BrokerQueryOutcome decodeBrokerQueryOutcome(const std::string& bytes);

struct BrokerSearchRequest {
  std::string docSource;
  pss::Dictionary dictionary;
  pss::EncryptedQuery query;
};

/// kBrokerSearch request: [rpc::kBrokerSearch][docSource][dict][query].
std::string encodeBrokerSearchRequest(const BrokerSearchRequest& req);

struct BrokerSearchResponse {
  std::vector<pss::SearchResultEnvelope> envelopes;
  std::uint64_t traceId = 0;
};

std::string encodeBrokerSearchResponse(const BrokerSearchResponse& resp);
BrokerSearchResponse decodeBrokerSearchResponse(const std::string& bytes);

/// Serves one kBrokerQuery / kBrokerSearch request (full bytes, tag
/// included) on behalf of `broker`. BrokerNode's bound handler dispatches
/// here; errors (Unavailable on majority loss, etc.) propagate to the
/// transport as usual.
std::string handleBrokerRpc(BrokerNode& broker, const std::string& request);

// --- client proxy --------------------------------------------------------

/// Drives a broker living behind a transport (typically another OS
/// process over TCP). Same surface as BrokerNode where it matters:
/// query() for distributed queries, the PrivateSearchBroker interface so
/// runDistributedPrivateSearch works unchanged.
class RemoteBroker final : public PrivateSearchBroker {
 public:
  RemoteBroker(TransportIface& transport, std::string brokerNode,
               RpcPolicy rpc = {});

  BrokerQueryOutcome query(const query::QuerySpec& spec);

  std::vector<pss::SearchResultEnvelope> privateSearch(
      const std::string& docSource, const pss::Dictionary& dictionary,
      const pss::EncryptedQuery& encryptedQuery,
      std::uint64_t* traceIdOut = nullptr) override;

  Clock& clock() override { return transport_.clock(); }

 private:
  TransportIface& transport_;
  std::string brokerNode_;
  RpcPolicy rpc_;
};

}  // namespace dpss::cluster
