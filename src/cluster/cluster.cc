#include "cluster/cluster.h"

#include "common/error.h"
#include "storage/segment_codec.h"

namespace dpss::cluster {

Cluster::Cluster(Clock& clock, ClusterOptions options)
    : clock_(clock), options_(options), transport_(clock) {
  metaStore_.setDefaultRules(options_.defaultRules);
  deepStorage_.setClock(&clock_);  // serves injected slow-read delays
  for (std::size_t i = 0; i < options_.historicalNodes; ++i) {
    addHistoricalNode();
  }
  broker_ = std::make_unique<BrokerNode>(
      "broker", registry_, transport_,
      BrokerOptions{.scatterThreads = options_.brokerScatterThreads,
                    .resultCacheCapacity = options_.brokerCacheCapacity,
                    .rpcPolicy = options_.rpcPolicy,
                    .pssPackFactor = options_.pssPackFactor});
  broker_->start();
  subscriptionBroker_ = std::make_unique<SubscriptionBroker>(
      registry_, metaStore_, transport_,
      SubscriptionBrokerOptions{.rpc = options_.rpcPolicy});
  broker_->attachSubscriptions(subscriptionBroker_.get());
  coordinator_ = std::make_unique<CoordinatorNode>(
      "coordinator", registry_, metaStore_, clock_, options_.coordinator);
}

Cluster::~Cluster() {
  // Stop brokers first so no queries race node teardown.
  if (broker_) broker_->stop();
  for (auto& slot : realtimes_impl_) {
    if (slot.node) slot.node->stop();
  }
  for (auto& h : historicals_) {
    if (h) h->stop();
  }
}

std::size_t Cluster::addHistoricalNode() {
  const std::size_t index = historicals_.size();
  HistoricalNodeOptions nodeOptions;
  nodeOptions.workerThreads = options_.workerThreadsPerNode;
  auto node = std::make_unique<HistoricalNode>(
      "historical-" + std::to_string(index), registry_, deepStorage_,
      transport_, nodeOptions);
  node->start();
  historicals_.push_back(std::move(node));
  return index;
}

std::size_t Cluster::addRealtimeNode(const std::string& topic,
                                     std::size_t partition,
                                     const storage::Schema& schema,
                                     const std::string& dataSource,
                                     RealtimeNodeOptions options) {
  const std::size_t index = realtimes_impl_.size();
  RealtimeSlot slot;
  slot.disk = std::make_unique<NodeDisk>();
  slot.topic = topic;
  slot.partition = partition;
  slot.schema = schema;
  slot.dataSource = dataSource;
  slot.options = options;
  slot.name = "realtime-" + std::to_string(index);
  slot.node = std::make_unique<RealtimeNode>(
      slot.name, registry_, queue_, topic, partition, deepStorage_,
      metaStore_, transport_, clock_, schema, dataSource, *slot.disk,
      options);
  slot.node->start();
  realtimes_impl_.push_back(std::move(slot));
  realtimes_.push_back(realtimes_impl_.back().node.get());
  return index;
}

void Cluster::crashRealtime(std::size_t i) {
  realtimes_impl_.at(i).node->crash();
}

void Cluster::restartRealtime(std::size_t i) {
  auto& slot = realtimes_impl_.at(i);
  slot.node->crash();
  slot.node = std::make_unique<RealtimeNode>(
      slot.name, registry_, queue_, slot.topic, slot.partition, deepStorage_,
      metaStore_, transport_, clock_, slot.schema, slot.dataSource,
      *slot.disk, slot.options);
  slot.node->start();
  realtimes_[i] = slot.node.get();
}

void Cluster::publishSegments(
    const std::vector<storage::SegmentPtr>& segments) {
  for (const auto& segment : segments) {
    const std::string key = segment->id().toString();
    deepStorage_.put(key, storage::encodeSegment(*segment));
    SegmentRecord record;
    record.id = segment->id();
    record.deepStorageKey = key;
    record.sizeBytes = segment->memoryFootprint();
    metaStore_.upsertSegment(record);
  }
  converge();
}

void Cluster::converge(int maxCycles) {
  for (int i = 0; i < maxCycles; ++i) {
    const auto stats = coordinator_->runOnce();
    if (stats.loadsIssued == 0 && stats.dropsIssued == 0) return;
  }
}

ClusterStats Cluster::collectStats(std::uint64_t traceIdFilter) {
  return coordinator_->collectClusterStats(transport_, {broker_->name()},
                                           traceIdFilter);
}

}  // namespace dpss::cluster
