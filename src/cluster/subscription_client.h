// Trusted-zone client for standing subscriptions: builds the encrypted
// spec from a keyword set (the server tier only ever sees the encrypted
// query), registers it at a broker, and incrementally reconstructs the
// stream of matches from collected snapshots.
//
// This translation unit is deliberately NOT marked DPSS_SERVER_ROLE_TU —
// it holds the Paillier private key (via PrivateSearchClient) and is the
// only place in the cluster layer where subscription ciphertext becomes
// plaintext.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/rpc_policy.h"
#include "cluster/transport.h"
#include "pss/session.h"
#include "pss/subscription.h"

namespace dpss::cluster {

class SubscriptionClient {
 public:
  /// `search` supplies the dictionary, query encryption and the private
  /// key; it must outlive the client.
  SubscriptionClient(TransportIface& transport, std::string brokerNode,
                     pss::PrivateSearchClient& search, RpcPolicy rpc = {});

  /// Registers a standing disjunction over `keywords` against documents
  /// from `docSource`. Returns the broker-assigned id.
  pss::SubscriptionId subscribe(const std::set<std::string>& keywords,
                                const std::string& docSource,
                                std::size_t blocksPerSegment = 1,
                                pss::SnapshotPolicy policy = {});

  /// Retires the subscription cluster-wide.
  void unsubscribe(pss::SubscriptionId id);

  /// Collects pending snapshots through the broker, applies them to the
  /// subscription's feed and advances the per-node ack watermarks.
  /// Returns only the documents new in this poll.
  std::vector<pss::RecoveredDocument> poll(pss::SubscriptionId id);

  /// Every document recovered so far for `id`, in recovery order.
  const std::vector<pss::RecoveredDocument>& documents(
      pss::SubscriptionId id) const;

  std::uint64_t snapshotsApplied(pss::SubscriptionId id) const;
  std::uint64_t snapshotsUnsolvable() const { return unsolvable_; }

 private:
  struct Sub {
    pss::SubscriptionFeed feed;
    // Highest snapshot seq applied per realtime node; sent as the ack on
    // the next collect, which lets the node GC delivered snapshots.
    std::map<std::string, std::uint64_t> acks;
    std::vector<pss::RecoveredDocument> docs;
  };

  TransportIface& transport_;
  std::string brokerNode_;
  pss::PrivateSearchClient& search_;
  RpcPolicy rpc_;
  std::map<pss::SubscriptionId, Sub> subs_;
  std::uint64_t unsolvable_ = 0;
};

}  // namespace dpss::cluster
