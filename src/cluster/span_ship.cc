#include "cluster/span_ship.h"

#include "common/error.h"
#include "common/logging.h"

namespace dpss::cluster {

namespace {

const obs::MetricId kShipped = obs::internCounter("obs.spans.shipped");
const obs::MetricId kShipFailures =
    obs::internCounter("obs.spans.ship_failures");
const obs::MetricId kShipDropped = obs::internCounter("obs.spans.ship_dropped");

std::string encodeSpans(const std::vector<obs::Span>& spans) {
  ByteWriter w;
  w.varint(spans.size());
  for (const auto& s : spans) s.serialize(w);
  return w.take();
}

std::vector<obs::Span> decodeSpans(ByteReader& r) {
  const std::uint64_t n = r.varint();
  std::vector<obs::Span> spans;
  spans.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    spans.push_back(obs::Span::deserialize(r));
  }
  return spans;
}

}  // namespace

std::string SpanBatch::encode() const {
  ByteWriter w;
  w.u8(rpc::kSpans);
  w.u8(spans_op::kShip);
  w.str(fromNode);
  w.varint(spans.size());
  for (const auto& s : spans) s.serialize(w);
  return w.take();
}

SpanBatch SpanBatch::decode(ByteReader& r) {
  SpanBatch batch;
  batch.fromNode = r.str();
  batch.spans = decodeSpans(r);
  return batch;
}

std::string encodeSpanFetchRequest(std::uint64_t traceId) {
  ByteWriter w;
  w.u8(rpc::kSpans);
  w.u8(spans_op::kFetch);
  w.u64(traceId);
  return w.take();
}

std::string handleSpansRpc(obs::TraceCollector& collector,
                           const std::string& request) {
  ByteReader r(request);
  const std::uint8_t tag = r.u8();
  if (tag != rpc::kSpans) {
    throw CorruptData("span rpc: unexpected tag " + std::to_string(tag));
  }
  const std::uint8_t op = r.u8();
  switch (op) {
    case spans_op::kShip: {
      SpanBatch batch = SpanBatch::decode(r);
      collector.add(std::move(batch.spans));
      return {};
    }
    case spans_op::kFetch: {
      const std::uint64_t traceId = r.u64();
      return encodeSpans(collector.spansFor(traceId));
    }
    default:
      throw CorruptData("span rpc: unknown sub-op " + std::to_string(op));
  }
}

std::vector<obs::Span> callSpansFetch(TransportIface& transport,
                                      const std::string& sinkNode,
                                      std::uint64_t traceId,
                                      const RpcPolicy& policy) {
  const std::string response = callWithPolicy(
      transport, sinkNode, encodeSpanFetchRequest(traceId), policy);
  ByteReader r(response);
  return decodeSpans(r);
}

SpanShipper::SpanShipper(obs::MetricsRegistry& registry,
                         TransportIface& transport, std::string sinkNode,
                         Options options)
    : registry_(registry),
      transport_(transport),
      sink_(std::move(sinkNode)),
      options_(options) {}

void SpanShipper::tick() {
  MutexLock lock(mu_);
  std::vector<obs::Span> fresh = registry_.spans().collectSince(&cursor_);
  for (auto& s : fresh) {
    if (pending_.size() >= options_.maxPending) {
      // Drop the oldest half: the newest spans are the ones an operator
      // is about to ask about.
      const std::size_t drop = pending_.size() / 2;
      registry_.counter(kShipDropped).inc(drop);
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    pending_.push_back(std::move(s));
  }
  while (!pending_.empty()) {
    SpanBatch batch;
    batch.fromNode = registry_.nodeName();
    const std::size_t n = std::min(options_.maxBatch, pending_.size());
    batch.spans.assign(pending_.begin(),
                       pending_.begin() + static_cast<std::ptrdiff_t>(n));
    try {
      callWithPolicy(transport_, sink_, batch.encode(), options_.rpc);
    } catch (const Error&) {
      registry_.counter(kShipFailures).inc();
      return;  // keep the batch pending; retry next tick
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(n));
    shipped_ += n;
    registry_.counter(kShipped).inc(n);
  }
}

std::uint64_t SpanShipper::spansShipped() const {
  MutexLock lock(mu_);
  return shipped_;
}

}  // namespace dpss::cluster
