// Wire codecs + client helpers for the subscription plane
// (rpc::kSubscribe / kUnsubscribe / kSnapshot).
//
// Two hops speak these verbs:
//   client -> broker   register a spec (broker assigns the id), retire an
//                      id, collect snapshots across all realtime nodes
//                      with per-node ack sequence numbers
//   broker -> realtime attach/detach a known id on an ingesting node,
//                      list the ids a node is matching (the reconcile
//                      probe), fetch one node's pending snapshots
//
// Snapshot delivery is ack-based at-least-once: every sealed snapshot
// carries a per-(node, subscription) monotonic seq; a fetch carries the
// highest seq the caller has durably applied, the node garbage-collects
// everything at or below it and returns the rest. Replayed snapshots are
// harmless — the client's SubscriptionFeed dedups by stream position.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/rpc_policy.h"
#include "cluster/transport.h"
#include "pss/subscription.h"

namespace dpss::cluster {

/// Sub-operation byte after rpc::kSubscribe.
namespace subrpc {
constexpr std::uint8_t kRegister = 0;  // client -> broker: spec, id assigned
constexpr std::uint8_t kAttach = 1;    // broker -> realtime: id + spec
constexpr std::uint8_t kList = 2;      // broker -> realtime: live ids
/// Sub-operation byte after rpc::kSnapshot.
constexpr std::uint8_t kCollect = 0;  // client -> broker: fan-in collect
constexpr std::uint8_t kFetch = 1;    // broker -> realtime: one node
}  // namespace subrpc

// --- wire codecs (exposed for tests and handlers) ------------------------

std::string encodeRegisterRequest(const pss::SubscriptionSpec& spec);
std::string encodeAttachRequest(pss::SubscriptionId id,
                                const pss::SubscriptionSpec& spec);
std::string encodeListRequest();
std::string encodeUnsubscribeRequest(pss::SubscriptionId id);
std::string encodeCollectRequest(
    pss::SubscriptionId id, const std::map<std::string, std::uint64_t>& acks);
std::string encodeFetchRequest(pss::SubscriptionId id, std::uint64_t ackSeq);

std::string encodeSnapshotList(
    const std::vector<pss::SubscriptionSnapshot>& snapshots);
std::vector<pss::SubscriptionSnapshot> decodeSnapshotList(
    const std::string& bytes);

// --- client helpers (all through callWithPolicy) -------------------------

/// Registers a standing query at the broker; returns the assigned id.
pss::SubscriptionId registerSubscription(TransportIface& transport,
                                         const std::string& brokerNode,
                                         const pss::SubscriptionSpec& spec,
                                         const RpcPolicy& rpc = {});

/// Attaches a known subscription on one realtime node (idempotent).
void attachSubscription(TransportIface& transport, const std::string& node,
                        pss::SubscriptionId id,
                        const pss::SubscriptionSpec& spec,
                        const RpcPolicy& rpc = {});

/// Ids the node is currently matching (the broker's reconcile probe).
std::vector<pss::SubscriptionId> listSubscriptions(TransportIface& transport,
                                                   const std::string& node,
                                                   const RpcPolicy& rpc = {});

/// Retires a subscription on a broker or a realtime node (idempotent).
void unsubscribeOn(TransportIface& transport, const std::string& node,
                   pss::SubscriptionId id, const RpcPolicy& rpc = {});

/// Collects pending snapshots for `id` across the cluster via the broker.
/// `acks` maps realtime node name -> highest seq already applied.
std::vector<pss::SubscriptionSnapshot> collectSnapshots(
    TransportIface& transport, const std::string& brokerNode,
    pss::SubscriptionId id, const std::map<std::string, std::uint64_t>& acks,
    const RpcPolicy& rpc = {});

/// Fetches one realtime node's pending snapshots past `ackSeq`.
std::vector<pss::SubscriptionSnapshot> fetchSnapshots(
    TransportIface& transport, const std::string& node, pss::SubscriptionId id,
    std::uint64_t ackSeq, const RpcPolicy& rpc = {});

}  // namespace dpss::cluster
