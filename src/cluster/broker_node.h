// Broker node (§III-A-3) — query router, result merger, result cache,
// and (§III-C) the entry point of the private search scheme.
//
// The broker builds its global view from the registry: which queryable
// nodes exist and which segments each serves. Per data source it derives
// the versioned timeline (query/timeline.h) and routes one RPC per
// visible segment to a serving node, scattering across replicas, then
// merges the partials and finalizes.
//
// The result cache keys on (segment id, query fingerprint). When every
// replica of a segment is unreachable, a cached partial still answers —
// the paper's "if the information has already been stored in the cache,
// the segment results can still be returned".
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/registry.h"
#include "cluster/rpc_policy.h"
#include "cluster/search_broker.h"
#include "cluster/transport.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "pss/query.h"
#include "pss/searcher.h"
#include "query/result.h"
#include "query/timeline.h"

namespace dpss::cluster {

class SubscriptionBroker;

struct BrokerOptions {
  std::size_t scatterThreads = 16;   // parallel per-segment RPCs
  std::size_t resultCacheCapacity = 4096;  // cached (segment, query) entries
  /// Retry/backoff/deadline policy for every outbound RPC (segment
  /// scatter, PSS info/search probes).
  RpcPolicy rpcPolicy{};
  /// Queries at or above this duration are always kept in the slow-query
  /// log (partials and errors are kept regardless); 0 keeps every query.
  TimeMs slowQueryMs = 500;
  /// Documents per packed PSS segment (1 = unpacked). With P > 1 every
  /// storage node folds P consecutive documents as one plaintext group,
  /// cutting per-document fold and decryption work ~P×; the envelopes
  /// advertise the factor so the client unpacks transparently. Buffer
  /// sizing then applies to groups: each slice must hold more than l_F
  /// groups, i.e. > l_F · P documents.
  std::size_t pssPackFactor = 1;
};

struct BrokerQueryOutcome {
  std::vector<query::ResultRow> rows;
  std::uint64_t rowsScanned = 0;
  std::size_t segmentsQueried = 0;
  std::size_t cacheHits = 0;
  std::size_t servedFromCacheAfterLoss = 0;
  /// Segments with no reachable replica and no cached partial. Non-empty
  /// means `rows` is a partial answer (graceful degradation: a strict
  /// minority of segments may be missing; losing half or more throws
  /// Unavailable instead).
  std::vector<storage::SegmentId> unreachableSegments;
  /// Trace id of this query's span tree (cumulative totals live in the
  /// broker's obs::MetricsRegistry, not here).
  std::uint64_t traceId = 0;

  bool partial() const { return !unreachableSegments.empty(); }
};

class BrokerNode : public PrivateSearchBroker {
 public:
  BrokerNode(std::string name, Registry& registry, TransportIface& transport,
             BrokerOptions options = {});
  ~BrokerNode();

  void start();
  void stop();

  const std::string& name() const { return name_; }
  bool running() const {
    MutexLock lock(mu_);
    return running_;
  }

  /// Routes, scatters, merges and finalizes one query. When a strict
  /// minority of the visible segments has no reachable replica and no
  /// cached result, returns a partial outcome annotated with the
  /// unreachable segments; when half or more are lost (or the broker is
  /// stopped) throws Unavailable.
  BrokerQueryOutcome query(const query::QuerySpec& spec);

  /// Runs the paper's private stream search over a distributed document
  /// source: every node announcing a slice of `docSource` searches its
  /// slice in parallel with the client's encrypted query; the returned
  /// envelopes (one per slice) go back to the client for reconstruction.
  /// `traceIdOut`, when non-null, receives the search's trace id.
  std::vector<pss::SearchResultEnvelope> privateSearch(
      const std::string& docSource, const pss::Dictionary& dictionary,
      const pss::EncryptedQuery& encryptedQuery,
      std::uint64_t* traceIdOut = nullptr) override;

  /// This node's metrics + span store (also served over rpc::kStats).
  obs::MetricsRegistry& metrics() { return obs_; }

  /// Attaches the subscription plane: kSubscribe/kUnsubscribe/kSnapshot
  /// requests are forwarded to `broker` (which must outlive this node or
  /// be detached with nullptr first). Unattached brokers reject the verbs.
  void attachSubscriptions(SubscriptionBroker* broker) {
    MutexLock lock(mu_);
    subscriptions_ = broker;
  }

  /// Whether the broker still holds a live registry session (/healthz).
  bool registryLeaseActive() const {
    MutexLock lock(mu_);
    return session_ != nullptr && !session_->expired();
  }

  /// The clock RPC deadlines and retry backoff run on (the transport's).
  Clock& clock() override { return transport_.clock(); }

  /// Current global view, for tests: data source -> timeline.
  std::vector<storage::SegmentId> visibleSegments(
      const std::string& dataSource, const Interval& interval);

 private:
  struct View {
    // segment -> nodes serving it.
    std::map<storage::SegmentId, std::set<std::string>> serving;
    // data source -> timeline.
    std::map<std::string, query::Timeline> timelines;
  };

  View buildView() DPSS_REQUIRES(mu_);
  void invalidateView() DPSS_EXCLUDES(mu_);

  std::string name_;
  Registry& registry_;
  TransportIface& transport_;
  BrokerOptions options_;
  obs::MetricsRegistry obs_{name_};

  // Lock order: broker mutex before registry mutex — start()/buildView()
  // call into the registry (connect, children, watchChildren) with mu_
  // held; the registry never calls back out under its lock (watches fire
  // post-mutation, unlocked), so the inverse order cannot occur.
  mutable Mutex mu_ DPSS_ACQUIRED_BEFORE(registry_.internalMutex());
  SessionPtr session_ DPSS_GUARDED_BY(mu_);
  bool running_ DPSS_GUARDED_BY(mu_) = false;
  bool viewDirty_ DPSS_GUARDED_BY(mu_) = true;
  SubscriptionBroker* subscriptions_ DPSS_GUARDED_BY(mu_) = nullptr;
  View view_ DPSS_GUARDED_BY(mu_);
  std::vector<std::uint64_t> watchIds_ DPSS_GUARDED_BY(mu_);
  // node paths already watched
  std::set<std::string> nodeWatches_ DPSS_GUARDED_BY(mu_);
  // shared_ptr so queries in flight pin the pool across a concurrent
  // stop(): the same pattern as HistoricalNode::handleRpc (the fix for
  // the stop-mid-query pool race).
  std::shared_ptr<ThreadPool> pool_ DPSS_GUARDED_BY(mu_);
  Rng rng_ DPSS_GUARDED_BY(mu_){0xb20c};

  // LRU result cache: (segment id string + query fingerprint) -> partial.
  struct CacheEntry {
    std::string key;
    query::QueryResult result;
  };
  // front = most recent
  std::list<CacheEntry> cacheList_ DPSS_GUARDED_BY(mu_);
  std::map<std::string, std::list<CacheEntry>::iterator> cacheIndex_
      DPSS_GUARDED_BY(mu_);

  void cachePut(const std::string& key, const query::QueryResult& result)
      DPSS_EXCLUDES(mu_);
  std::optional<query::QueryResult> cacheGet(const std::string& key)
      DPSS_EXCLUDES(mu_);
};

}  // namespace dpss::cluster
