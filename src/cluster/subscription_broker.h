// Broker side of the subscription plane: registration (id assignment +
// journaled metastore persistence, so standing queries survive
// coordinator failover), fan-out to the realtime tier, and snapshot
// collection (fan-in).
//
// Fan-out is reconciliation-based rather than fire-and-forget: every
// reconcile() round probes each announced realtime node for the ids it
// is matching, attaches whatever the metastore says it should have, and
// detaches what it should not. A realtime node that crashed and restarted
// empty, or joined at runtime (PR 9 membership), converges on the next
// round — the same registry announcements the query scatter path uses
// resolve the routes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/metastore.h"
#include "cluster/registry.h"
#include "cluster/rpc_policy.h"
#include "cluster/transport.h"
#include "common/thread_annotations.h"
#include "pss/subscription.h"

namespace dpss::cluster {

struct SubscriptionBrokerOptions {
  /// Policy for every attach/list/fetch RPC to realtime nodes.
  RpcPolicy rpc{};
};

/// One /statusz row per registered subscription.
struct SubscriptionBrokerStatus {
  pss::SubscriptionId id = 0;
  std::string docSource;
  std::int64_t createdMs = 0;
  std::uint64_t snapshotsCollected = 0;
};

class SubscriptionBroker {
 public:
  SubscriptionBroker(Registry& registry, MetaStore& metaStore,
                     TransportIface& transport,
                     SubscriptionBrokerOptions options = {});

  /// Registers a standing query: assigns the next id, persists the spec
  /// in the metastore (journaled — survives coordinator failover), and
  /// pushes it to every announced realtime node best-effort (reconcile()
  /// repairs any node that was unreachable).
  pss::SubscriptionId subscribe(const pss::SubscriptionSpec& spec);

  /// Retires a subscription everywhere (metastore + realtime tier).
  void unsubscribe(pss::SubscriptionId id);

  /// Collects pending snapshots for `id` from every announced realtime
  /// node. `acks` maps node name -> highest seq the caller has applied;
  /// unreachable nodes are skipped (their snapshots stay pending).
  std::vector<pss::SubscriptionSnapshot> collect(
      pss::SubscriptionId id, const std::map<std::string, std::uint64_t>& acks);

  /// One convergence round over the realtime tier; returns the number of
  /// attach + detach pushes it issued.
  std::size_t reconcile();

  /// Serves one kSubscribe(register) / kUnsubscribe / kSnapshot(collect)
  /// request, full bytes with the verb tag included.
  std::string handleRpc(const std::string& request);

  std::vector<SubscriptionBrokerStatus> status() const;
  std::uint64_t snapshotsCollected() const;
  std::uint64_t reconcileRounds() const;

 private:
  std::vector<std::string> realtimeNodes() const;

  Registry& registry_;
  MetaStore& metaStore_;
  TransportIface& transport_;
  SubscriptionBrokerOptions options_;

  mutable Mutex mu_;
  std::map<pss::SubscriptionId, std::uint64_t> collected_ DPSS_GUARDED_BY(mu_);
  std::uint64_t snapshotsCollected_ DPSS_GUARDED_BY(mu_) = 0;
  std::uint64_t reconcileRounds_ DPSS_GUARDED_BY(mu_) = 0;
};

}  // namespace dpss::cluster
