// Real-time compute node (§III-A-2).
//
// Consumes events from the message queue into an in-memory incremental
// index (queryable immediately), persists the index to local disk on a
// period, commits the consumed offset after each persist ("periodically
// committing offsets can reduce the amount of re-scanned data after a
// real-time compute node fails"), and after the segment interval plus a
// window time has passed merges all persisted indexes into a historical
// segment, uploads it to deep storage, registers it in the metadata
// store, and unannounces its own real-time segment once a historical node
// serves the handoff ("there is no data loss").
//
// The node is clock-driven through tick(): the cluster harness (or a
// test) advances the clock and calls tick(), keeping every schedule
// deterministic. Crash/restart is modeled by constructing a new node over
// the same NodeDisk — persisted indexes and the committed queue offset
// are all that survive, exactly as in the paper.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/message_queue.h"
#include "cluster/metastore.h"
#include "cluster/registry.h"
#include "cluster/subscription_host.h"
#include "cluster/transport.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/deep_storage.h"
#include "storage/incremental_index.h"

namespace dpss::cluster {

/// The node's local disk: persisted index snapshots per segment interval.
/// Survives crash/restart (held by the harness, not the node).
struct NodeDisk {
  // interval start -> persisted immutable snapshots.
  std::map<TimeMs, std::vector<storage::SegmentPtr>> persisted;
  // Standing-subscription state (specs, snapshot sequence numbers,
  // sealed-but-unacked snapshots). Surviving here is what ties snapshot
  // delivery to the committed-offset recovery contract: a restarted node
  // resumes the same seq space and still holds everything unacked.
  SubscriptionDiskState subscriptions;
};

struct RealtimeNodeOptions {
  TimeMs segmentGranularityMs = 3'600'000;  // hourly real-time segments
  TimeMs persistPeriodMs = 600'000;         // "every 10 minutes"
  TimeMs windowMs = 600'000;                // handoff window time
  TimeMs rollupGranularityMs = 60'000;      // aggregate roll-up bucket
  std::size_t maxPollBatch = 4096;
  // Reconnect backoff after a registry session expiry (doubles per failed
  // attempt up to the max, measured on the node's clock).
  TimeMs reregisterBackoffMs = 50;
  TimeMs reregisterBackoffMaxMs = 2000;
  // Standing-subscription host tuning (pending cap, fold sharding).
  SubscriptionHostOptions subscriptions;
};

class RealtimeNode {
 public:
  RealtimeNode(std::string name, Registry& registry, MessageQueue& queue,
               std::string topic, std::size_t partition,
               storage::DeepStorage& deepStorage, MetaStore& metaStore,
               TransportIface& transport, Clock& clock, storage::Schema schema,
               std::string dataSource, NodeDisk& disk,
               RealtimeNodeOptions options = {});
  ~RealtimeNode();

  RealtimeNode(const RealtimeNode&) = delete;
  RealtimeNode& operator=(const RealtimeNode&) = delete;

  /// Connects, recovers from disk + committed offset, announces.
  void start();

  /// Graceful stop: flushes live indexes to disk and commits the consumed
  /// offset before leaving the network, so a restart resumes without
  /// re-scanning.
  void stop();

  /// Crash: the un-persisted in-memory index is LOST and the committed
  /// offset stays wherever the last persist left it; only disk and the
  /// committed offset survive, so a restart re-consumes the gap from the
  /// message queue (§III-A-2 recovery).
  void crash();

  /// Simulates losing the registry lease (ZK session expiry) while the
  /// node keeps running; tick() re-registers with backoff.
  void loseRegistrySession();

  /// One scheduling round: re-register if the session expired, ingest
  /// available messages, then run persist and handoff if their deadlines
  /// passed.
  void tick();

  const std::string& name() const { return name_; }
  bool running() const {
    MutexLock lock(mu_);
    return running_;
  }
  std::uint64_t eventsIngested() const {
    MutexLock lock(mu_);
    return eventsIngested_;
  }
  std::uint64_t currentOffset() const {
    MutexLock lock(mu_);
    return offset_;
  }
  std::size_t pendingHandoffs() const;
  std::vector<storage::SegmentId> announcedSegments() const;

  /// This node's metrics + span store (also served over rpc::kStats).
  obs::MetricsRegistry& metrics() { return obs_; }

  /// The node's standing-subscription host (attach/fetch also arrive over
  /// rpc::kSubscribe/kUnsubscribe/kSnapshot; direct access is for tests
  /// and the /statusz subscriptions section).
  SubscriptionHost& subscriptions() { return subsHost_; }
  std::vector<SubscriptionHostStatus> subscriptionStatus() const {
    return subsHost_.status();
  }

  /// Whether the node still holds a live registry session (/healthz).
  bool registryLeaseActive() const {
    MutexLock lock(mu_);
    return session_ != nullptr && !session_->expired();
  }

 private:
  TimeMs bucketStart(TimeMs t) const;
  storage::SegmentId realtimeSegmentId(TimeMs bucket) const;
  void teardown() DPSS_EXCLUDES(mu_);
  void maybeReregister() DPSS_EXCLUDES(mu_);
  void ingest() DPSS_EXCLUDES(mu_);
  void persistIfDue() DPSS_EXCLUDES(mu_);
  void handoffIfDue() DPSS_EXCLUDES(mu_);
  void announceBucket(TimeMs bucket) DPSS_EXCLUDES(mu_);
  std::string handleRpc(const std::string& request) DPSS_EXCLUDES(mu_);

  std::string name_;
  Registry& registry_;
  MessageQueue& queue_;
  std::string topic_;
  std::size_t partition_;
  storage::DeepStorage& deepStorage_;
  MetaStore& metaStore_;
  TransportIface& transport_;
  Clock& clock_;
  storage::Schema schema_;
  std::string dataSource_;
  NodeDisk& disk_;
  RealtimeNodeOptions options_;
  obs::MetricsRegistry obs_{name_};
  // Own mutex inside; safe to call with or without mu_ held (the host
  // never calls back into the node).
  SubscriptionHost subsHost_;

  // Lock order: realtime mutex before registry mutex — start() and
  // bucket announcements call the registry with mu_ held (see
  // broker_node.h for why the inverse order cannot occur).
  mutable Mutex mu_ DPSS_ACQUIRED_BEFORE(registry_.internalMutex());
  SessionPtr session_ DPSS_GUARDED_BY(mu_);
  bool running_ DPSS_GUARDED_BY(mu_) = false;
  // next queue offset to read
  std::uint64_t offset_ DPSS_GUARDED_BY(mu_) = 0;
  std::uint64_t eventsIngested_ DPSS_GUARDED_BY(mu_) = 0;
  TimeMs lastPersist_ DPSS_GUARDED_BY(mu_) = 0;
  // handoff version sequence
  std::uint64_t versionCounter_ DPSS_GUARDED_BY(mu_) = 0;
  // Session-expiry recovery state: 0 means "no reconnect scheduled yet".
  TimeMs reregisterNotBeforeMs_ DPSS_GUARDED_BY(mu_) = 0;
  TimeMs reregisterBackoffMs_ DPSS_GUARDED_BY(mu_) =
      options_.reregisterBackoffMs;

  // Live in-memory indexes per segment interval start.
  std::map<TimeMs, std::unique_ptr<storage::IncrementalIndex>> live_
      DPSS_GUARDED_BY(mu_);
  // Buckets whose historical segment was uploaded; waiting for a
  // historical node to serve it before unannouncing.
  struct PendingHandoff {
    storage::SegmentId historicalId;
  };
  std::map<TimeMs, PendingHandoff> awaitingServe_ DPSS_GUARDED_BY(mu_);
  std::map<TimeMs, bool> announced_ DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::cluster
