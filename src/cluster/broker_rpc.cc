#include "cluster/broker_rpc.h"

#include "common/bytes.h"
#include "common/error.h"

namespace dpss::cluster {

namespace {

void writeRows(ByteWriter& w, const std::vector<query::ResultRow>& rows) {
  w.varint(rows.size());
  for (const auto& row : rows) {
    w.str(row.group);
    w.varint(row.values.size());
    for (const double v : row.values) w.f64(v);
  }
}

std::vector<query::ResultRow> readRows(ByteReader& r) {
  const std::uint64_t n = r.varint();
  std::vector<query::ResultRow> rows;
  rows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    query::ResultRow row;
    row.group = r.str();
    const std::uint64_t m = r.varint();
    row.values.reserve(m);
    for (std::uint64_t j = 0; j < m; ++j) row.values.push_back(r.f64());
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::string encodeBrokerQueryRequest(const query::QuerySpec& spec) {
  ByteWriter w;
  w.u8(rpc::kBrokerQuery);
  spec.serialize(w);
  return w.take();
}

std::string encodeBrokerQueryOutcome(const BrokerQueryOutcome& outcome) {
  ByteWriter w;
  writeRows(w, outcome.rows);
  w.varint(outcome.rowsScanned);
  w.varint(outcome.segmentsQueried);
  w.varint(outcome.cacheHits);
  w.varint(outcome.servedFromCacheAfterLoss);
  w.varint(outcome.unreachableSegments.size());
  for (const auto& id : outcome.unreachableSegments) id.serialize(w);
  w.u64(outcome.traceId);
  return w.take();
}

BrokerQueryOutcome decodeBrokerQueryOutcome(const std::string& bytes) {
  ByteReader r(bytes);
  BrokerQueryOutcome outcome;
  outcome.rows = readRows(r);
  outcome.rowsScanned = r.varint();
  outcome.segmentsQueried = static_cast<std::size_t>(r.varint());
  outcome.cacheHits = static_cast<std::size_t>(r.varint());
  outcome.servedFromCacheAfterLoss = static_cast<std::size_t>(r.varint());
  const std::uint64_t n = r.varint();
  outcome.unreachableSegments.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    outcome.unreachableSegments.push_back(storage::SegmentId::deserialize(r));
  }
  outcome.traceId = r.u64();
  return outcome;
}

std::string encodeBrokerSearchRequest(const BrokerSearchRequest& req) {
  ByteWriter w;
  w.u8(rpc::kBrokerSearch);
  w.str(req.docSource);
  w.varint(req.dictionary.size());
  for (const auto& word : req.dictionary.words()) w.str(word);
  req.query.serialize(w);
  return w.take();
}

std::string encodeBrokerSearchResponse(const BrokerSearchResponse& resp) {
  ByteWriter w;
  w.varint(resp.envelopes.size());
  for (const auto& env : resp.envelopes) env.serialize(w);
  w.u64(resp.traceId);
  return w.take();
}

BrokerSearchResponse decodeBrokerSearchResponse(const std::string& bytes) {
  ByteReader r(bytes);
  BrokerSearchResponse resp;
  const std::uint64_t n = r.varint();
  resp.envelopes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    resp.envelopes.push_back(pss::SearchResultEnvelope::deserialize(r));
  }
  resp.traceId = r.u64();
  return resp;
}

std::string handleBrokerRpc(BrokerNode& broker, const std::string& request) {
  if (request.empty()) throw CorruptData("empty broker rpc");
  ByteReader r(std::string_view(request).substr(1));
  switch (static_cast<std::uint8_t>(request[0])) {
    case rpc::kBrokerQuery: {
      const query::QuerySpec spec = query::QuerySpec::deserialize(r);
      return encodeBrokerQueryOutcome(broker.query(spec));
    }
    case rpc::kBrokerSearch: {
      const std::string docSource = r.str();
      const std::uint64_t n = r.varint();
      std::vector<std::string> words;
      words.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) words.push_back(r.str());
      const pss::Dictionary dict(std::move(words));
      const pss::EncryptedQuery query = pss::EncryptedQuery::deserialize(r);
      BrokerSearchResponse resp;
      resp.envelopes =
          broker.privateSearch(docSource, dict, query, &resp.traceId);
      return encodeBrokerSearchResponse(resp);
    }
    default:
      throw CorruptData("unknown broker rpc tag");
  }
}

RemoteBroker::RemoteBroker(TransportIface& transport, std::string brokerNode,
                           RpcPolicy rpc)
    : transport_(transport), brokerNode_(std::move(brokerNode)), rpc_(rpc) {}

BrokerQueryOutcome RemoteBroker::query(const query::QuerySpec& spec) {
  return decodeBrokerQueryOutcome(callWithPolicy(
      transport_, brokerNode_, encodeBrokerQueryRequest(spec), rpc_));
}

std::vector<pss::SearchResultEnvelope> RemoteBroker::privateSearch(
    const std::string& docSource, const pss::Dictionary& dictionary,
    const pss::EncryptedQuery& encryptedQuery, std::uint64_t* traceIdOut) {
  BrokerSearchRequest req;
  req.docSource = docSource;
  req.dictionary = pss::Dictionary(dictionary.words());
  req.query = encryptedQuery;
  const BrokerSearchResponse resp = decodeBrokerSearchResponse(
      callWithPolicy(transport_, brokerNode_, encodeBrokerSearchRequest(req),
                     rpc_));
  if (traceIdOut != nullptr) *traceIdOut = resp.traceId;
  return resp.envelopes;
}

}  // namespace dpss::cluster
