#include "cluster/subscription_host.h"

#include <algorithm>
#include <utility>

#include "cluster/subscription_rpc.h"
#include "common/error.h"
#include "common/hash.h"

namespace dpss::cluster {

SubscriptionHost::SubscriptionHost(std::string node, std::string dataSource,
                                   SubscriptionDiskState& disk, Clock& clock,
                                   SubscriptionHostOptions options)
    : node_(std::move(node)),
      dataSource_(std::move(dataSource)),
      clock_(clock),
      options_(options),
      disk_(disk) {}

std::uint64_t SubscriptionHost::seedFor(pss::SubscriptionId id) const {
  // Stable per (node, subscription): a replayed restart re-derives the
  // same randomness stream, so recovery is deterministic under test.
  return fnv1a(node_) ^ (id * 0x9e3779b97f4a7c15ULL) ^ 0x5u;
}

void SubscriptionHost::restore() {
  MutexLock lock(mu_);
  for (auto& [id, durable] : disk_) {
    if (entries_.find(id) != entries_.end()) continue;
    ByteReader r(durable.specBytes);
    pss::SubscriptionSpec spec = pss::SubscriptionSpec::deserialize(r);
    Entry entry;
    entry.attachedMs = clock_.nowMs();
    if (spec.docSource == dataSource_) {
      entry.matcher = std::make_unique<pss::SubscriptionMatcher>(
          std::move(spec), seedFor(id), clock_.nowMs());
      entry.matcher->setFoldOptions(options_.fold);
    }
    entries_.emplace(id, std::move(entry));
  }
}

void SubscriptionHost::attach(pss::SubscriptionId id,
                              const pss::SubscriptionSpec& spec) {
  MutexLock lock(mu_);
  if (entries_.find(id) != entries_.end()) return;  // idempotent
  SubscriptionDurable& durable = disk_[id];
  if (durable.specBytes.empty()) {
    ByteWriter w;
    spec.serialize(w);
    durable.specBytes = w.take();
  }
  Entry entry;
  entry.attachedMs = clock_.nowMs();
  if (spec.docSource == dataSource_) {
    entry.matcher = std::make_unique<pss::SubscriptionMatcher>(
        spec, seedFor(id), clock_.nowMs());
    entry.matcher->setFoldOptions(options_.fold);
  }
  entries_.emplace(id, std::move(entry));
}

void SubscriptionHost::detach(pss::SubscriptionId id) {
  MutexLock lock(mu_);
  entries_.erase(id);
  disk_.erase(id);
}

std::vector<pss::SubscriptionId> SubscriptionHost::ids() const {
  MutexLock lock(mu_);
  std::vector<pss::SubscriptionId> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    (void)entry;
    out.push_back(id);
  }
  return out;
}

void SubscriptionHost::onDocument(std::uint64_t offset,
                                  std::string_view matchText,
                                  std::string_view payload) {
  MutexLock lock(mu_);
  const std::int64_t now = clock_.nowMs();
  for (auto& [id, entry] : entries_) {
    if (entry.matcher == nullptr) continue;
    entry.matcher->feed(offset, matchText, payload, now);
    ++documentsMatched_;
    // Fill-threshold seals fire inline so a full buffer never waits for
    // the next tick (the period trigger is tick-driven via sealDue()).
    if (entry.matcher->due(now)) sealLocked(id, entry, /*force=*/false);
  }
}

void SubscriptionHost::sealDue() {
  MutexLock lock(mu_);
  for (auto& [id, entry] : entries_) {
    if (entry.matcher != nullptr) sealLocked(id, entry, /*force=*/false);
  }
}

void SubscriptionHost::sealAll() {
  MutexLock lock(mu_);
  for (auto& [id, entry] : entries_) {
    if (entry.matcher != nullptr) sealLocked(id, entry, /*force=*/true);
  }
}

void SubscriptionHost::sealLocked(pss::SubscriptionId id, Entry& entry,
                                  bool force) {
  const std::int64_t now = clock_.nowMs();
  auto snap = force ? entry.matcher->seal(now) : entry.matcher->sealIfDue(now);
  if (!snap.has_value()) return;
  SubscriptionDurable& durable = disk_[id];
  snap->id = id;
  snap->node = node_;
  snap->seq = durable.nextSeq++;
  ByteWriter w;
  snap->serialize(w);
  durable.pending.push_back({snap->seq, w.take()});
  if (durable.pending.size() > options_.maxPendingPerSubscription) {
    durable.pending.erase(durable.pending.begin());
    ++snapshotsDropped_;
  }
  ++snapshotsSealed_;
}

std::vector<pss::SubscriptionSnapshot> SubscriptionHost::fetch(
    pss::SubscriptionId id, std::uint64_t ackSeq) {
  MutexLock lock(mu_);
  const auto diskIt = disk_.find(id);
  if (diskIt == disk_.end()) return {};
  SubscriptionDurable& durable = diskIt->second;
  durable.pending.erase(
      std::remove_if(durable.pending.begin(), durable.pending.end(),
                     [&](const SubscriptionDurable::PendingSnapshot& p) {
                       return p.seq <= ackSeq;
                     }),
      durable.pending.end());
  const auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.ackedSeq = std::max(it->second.ackedSeq, ackSeq);
  }
  std::vector<pss::SubscriptionSnapshot> out;
  out.reserve(durable.pending.size());
  for (const auto& p : durable.pending) {
    ByteReader r(p.bytes);
    out.push_back(pss::SubscriptionSnapshot::deserialize(r));
  }
  return out;
}

std::string SubscriptionHost::handleRpc(const std::string& request) {
  ByteReader r(request);
  const std::uint8_t verb = r.u8();
  switch (verb) {
    case rpc::kSubscribe: {
      const std::uint8_t sub = r.u8();
      if (sub == subrpc::kAttach) {
        const pss::SubscriptionId id = r.varint();
        attach(id, pss::SubscriptionSpec::deserialize(r));
        return {};
      }
      if (sub == subrpc::kList) {
        const auto live = ids();
        ByteWriter w;
        w.varint(live.size());
        for (const auto id : live) w.varint(id);
        return w.take();
      }
      throw InvalidArgument("realtime node: unknown kSubscribe sub-op " +
                            std::to_string(sub));
    }
    case rpc::kUnsubscribe:
      detach(r.varint());
      return {};
    case rpc::kSnapshot: {
      const std::uint8_t sub = r.u8();
      if (sub != subrpc::kFetch) {
        throw InvalidArgument("realtime node: unknown kSnapshot sub-op " +
                              std::to_string(sub));
      }
      const pss::SubscriptionId id = r.varint();
      const std::uint64_t ackSeq = r.u64();
      return encodeSnapshotList(fetch(id, ackSeq));
    }
    default:
      throw InvalidArgument("subscription host: unexpected verb " +
                            std::to_string(verb));
  }
}

std::vector<SubscriptionHostStatus> SubscriptionHost::status() const {
  MutexLock lock(mu_);
  const std::int64_t now = clock_.nowMs();
  std::vector<SubscriptionHostStatus> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    SubscriptionHostStatus row;
    row.id = id;
    row.active = entry.matcher != nullptr;
    row.ageMs = now - entry.attachedMs;
    row.ackedSeq = entry.ackedSeq;
    if (entry.matcher != nullptr) {
      row.fillPercent = entry.matcher->fillPercent();
      row.documentsSeen = entry.matcher->documentsSeen();
      row.snapshotsSealed = entry.matcher->snapshotsSealed();
    }
    const auto diskIt = disk_.find(id);
    if (diskIt != disk_.end()) {
      row.pendingSnapshots = diskIt->second.pending.size();
    }
    out.push_back(row);
  }
  return out;
}

std::uint64_t SubscriptionHost::documentsMatched() const {
  MutexLock lock(mu_);
  return documentsMatched_;
}

std::uint64_t SubscriptionHost::snapshotsSealed() const {
  MutexLock lock(mu_);
  return snapshotsSealed_;
}

std::uint64_t SubscriptionHost::snapshotsDropped() const {
  MutexLock lock(mu_);
  return snapshotsDropped_;
}

}  // namespace dpss::cluster
