// Message queue — the in-process Kafka (§III-A-2, Figure 3).
//
// "A message queue can be regarded as a buffer for incoming data stream.
// The message queue can maintain offsets indicating the location that the
// real-time compute node has read to and the real-time compute node can
// periodically update this offsets."
//
// Topics are partitioned; messages append to a partition log and are
// polled by offset; consumer groups commit offsets per partition so a
// recovering consumer re-reads exactly from its last commit ("reads the
// message queue from the point which the last offset is committed").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace dpss::cluster {

struct Message {
  std::uint64_t offset = 0;
  std::string payload;
};

class MessageQueue {
 public:
  /// Creates a topic with `partitions` partitions. Throws AlreadyExists.
  void createTopic(const std::string& topic, std::size_t partitions);
  std::size_t partitionCount(const std::string& topic) const;

  /// Appends to a partition; returns the assigned offset.
  std::uint64_t append(const std::string& topic, std::size_t partition,
                       std::string payload);

  /// Messages with offset >= `fromOffset`, up to `maxMessages`.
  std::vector<Message> poll(const std::string& topic, std::size_t partition,
                            std::uint64_t fromOffset,
                            std::size_t maxMessages = 1024) const;

  /// Next offset to be assigned (log end).
  std::uint64_t endOffset(const std::string& topic,
                          std::size_t partition) const;

  /// Consumer-group committed offset (next offset to read). Starts at 0.
  void commit(const std::string& group, const std::string& topic,
              std::size_t partition, std::uint64_t offset);
  std::uint64_t committed(const std::string& group, const std::string& topic,
                          std::size_t partition) const;

 private:
  struct Partition {
    std::vector<Message> log;
  };
  struct Topic {
    std::vector<Partition> partitions;
  };

  const Partition& partitionRef(const std::string& topic,
                                std::size_t partition) const
      DPSS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, Topic> topics_ DPSS_GUARDED_BY(mu_);
  // (group, topic, partition) -> committed offset.
  std::map<std::string, std::uint64_t> commits_ DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::cluster
