#include "cluster/message_queue.h"

#include "common/error.h"

namespace dpss::cluster {

namespace {
std::string commitKey(const std::string& group, const std::string& topic,
                      std::size_t partition) {
  return group + "\x01" + topic + "\x01" + std::to_string(partition);
}
}  // namespace

void MessageQueue::createTopic(const std::string& topic,
                               std::size_t partitions) {
  DPSS_CHECK_MSG(partitions >= 1, "topic needs at least one partition");
  MutexLock lock(mu_);
  if (topics_.count(topic) > 0) {
    throw AlreadyExists("topic already exists: " + topic);
  }
  topics_[topic].partitions.resize(partitions);
}

std::size_t MessageQueue::partitionCount(const std::string& topic) const {
  MutexLock lock(mu_);
  const auto it = topics_.find(topic);
  if (it == topics_.end()) throw NotFound("no such topic: " + topic);
  return it->second.partitions.size();
}

const MessageQueue::Partition& MessageQueue::partitionRef(
    const std::string& topic, std::size_t partition) const {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) throw NotFound("no such topic: " + topic);
  if (partition >= it->second.partitions.size()) {
    throw InvalidArgument("partition out of range");
  }
  return it->second.partitions[partition];
}

std::uint64_t MessageQueue::append(const std::string& topic,
                                   std::size_t partition,
                                   std::string payload) {
  MutexLock lock(mu_);
  auto& part = const_cast<Partition&>(partitionRef(topic, partition));
  Message m;
  m.offset = part.log.size();
  m.payload = std::move(payload);
  part.log.push_back(std::move(m));
  return part.log.back().offset;
}

std::vector<Message> MessageQueue::poll(const std::string& topic,
                                        std::size_t partition,
                                        std::uint64_t fromOffset,
                                        std::size_t maxMessages) const {
  MutexLock lock(mu_);
  const auto& part = partitionRef(topic, partition);
  std::vector<Message> out;
  for (std::uint64_t off = fromOffset;
       off < part.log.size() && out.size() < maxMessages; ++off) {
    out.push_back(part.log[off]);
  }
  return out;
}

std::uint64_t MessageQueue::endOffset(const std::string& topic,
                                      std::size_t partition) const {
  MutexLock lock(mu_);
  return partitionRef(topic, partition).log.size();
}

void MessageQueue::commit(const std::string& group, const std::string& topic,
                          std::size_t partition, std::uint64_t offset) {
  MutexLock lock(mu_);
  (void)partitionRef(topic, partition);  // validates topic/partition
  commits_[commitKey(group, topic, partition)] = offset;
}

std::uint64_t MessageQueue::committed(const std::string& group,
                                      const std::string& topic,
                                      std::size_t partition) const {
  MutexLock lock(mu_);
  (void)partitionRef(topic, partition);
  const auto it = commits_.find(commitKey(group, topic, partition));
  return it == commits_.end() ? 0 : it->second;
}

}  // namespace dpss::cluster
