#include "cluster/subscription_rpc.h"

#include "common/bytes.h"

namespace dpss::cluster {

std::string encodeRegisterRequest(const pss::SubscriptionSpec& spec) {
  ByteWriter w;
  w.u8(rpc::kSubscribe);
  w.u8(subrpc::kRegister);
  spec.serialize(w);
  return w.take();
}

std::string encodeAttachRequest(pss::SubscriptionId id,
                                const pss::SubscriptionSpec& spec) {
  ByteWriter w;
  w.u8(rpc::kSubscribe);
  w.u8(subrpc::kAttach);
  w.varint(id);
  spec.serialize(w);
  return w.take();
}

std::string encodeListRequest() {
  ByteWriter w;
  w.u8(rpc::kSubscribe);
  w.u8(subrpc::kList);
  return w.take();
}

std::string encodeUnsubscribeRequest(pss::SubscriptionId id) {
  ByteWriter w;
  w.u8(rpc::kUnsubscribe);
  w.varint(id);
  return w.take();
}

std::string encodeCollectRequest(
    pss::SubscriptionId id, const std::map<std::string, std::uint64_t>& acks) {
  ByteWriter w;
  w.u8(rpc::kSnapshot);
  w.u8(subrpc::kCollect);
  w.varint(id);
  w.varint(acks.size());
  for (const auto& [node, seq] : acks) {
    w.str(node);
    w.u64(seq);
  }
  return w.take();
}

std::string encodeFetchRequest(pss::SubscriptionId id, std::uint64_t ackSeq) {
  ByteWriter w;
  w.u8(rpc::kSnapshot);
  w.u8(subrpc::kFetch);
  w.varint(id);
  w.u64(ackSeq);
  return w.take();
}

std::string encodeSnapshotList(
    const std::vector<pss::SubscriptionSnapshot>& snapshots) {
  ByteWriter w;
  w.varint(snapshots.size());
  for (const auto& s : snapshots) s.serialize(w);
  return w.take();
}

std::vector<pss::SubscriptionSnapshot> decodeSnapshotList(
    const std::string& bytes) {
  ByteReader r(bytes);
  const std::uint64_t n = r.varint();
  std::vector<pss::SubscriptionSnapshot> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(pss::SubscriptionSnapshot::deserialize(r));
  }
  return out;
}

pss::SubscriptionId registerSubscription(TransportIface& transport,
                                         const std::string& brokerNode,
                                         const pss::SubscriptionSpec& spec,
                                         const RpcPolicy& rpc) {
  OwnedByteReader resp(
      callWithPolicy(transport, brokerNode, encodeRegisterRequest(spec), rpc));
  return resp.varint();
}

void attachSubscription(TransportIface& transport, const std::string& node,
                        pss::SubscriptionId id,
                        const pss::SubscriptionSpec& spec,
                        const RpcPolicy& rpc) {
  callWithPolicy(transport, node, encodeAttachRequest(id, spec), rpc);
}

std::vector<pss::SubscriptionId> listSubscriptions(TransportIface& transport,
                                                   const std::string& node,
                                                   const RpcPolicy& rpc) {
  OwnedByteReader resp(
      callWithPolicy(transport, node, encodeListRequest(), rpc));
  const std::uint64_t n = resp.varint();
  std::vector<pss::SubscriptionId> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(resp.varint());
  return out;
}

void unsubscribeOn(TransportIface& transport, const std::string& node,
                   pss::SubscriptionId id, const RpcPolicy& rpc) {
  callWithPolicy(transport, node, encodeUnsubscribeRequest(id), rpc);
}

std::vector<pss::SubscriptionSnapshot> collectSnapshots(
    TransportIface& transport, const std::string& brokerNode,
    pss::SubscriptionId id, const std::map<std::string, std::uint64_t>& acks,
    const RpcPolicy& rpc) {
  return decodeSnapshotList(callWithPolicy(
      transport, brokerNode, encodeCollectRequest(id, acks), rpc));
}

std::vector<pss::SubscriptionSnapshot> fetchSnapshots(
    TransportIface& transport, const std::string& node, pss::SubscriptionId id,
    std::uint64_t ackSeq, const RpcPolicy& rpc) {
  return decodeSnapshotList(
      callWithPolicy(transport, node, encodeFetchRequest(id, ackSeq), rpc));
}

}  // namespace dpss::cluster
