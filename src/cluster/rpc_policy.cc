#include "cluster/rpc_policy.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "obs/metrics.h"

namespace dpss::cluster {

namespace {

const obs::MetricId kAttempts = obs::internCounter(rpcmetrics::kAttempts);
const obs::MetricId kRetries = obs::internCounter(rpcmetrics::kRetries);
const obs::MetricId kRetryExhausted =
    obs::internCounter(rpcmetrics::kRetryExhausted);
const obs::MetricId kDeadlineExceeded =
    obs::internCounter(rpcmetrics::kDeadlineExceeded);
const obs::MetricId kBackoffMs = obs::internHistogram("rpc.backoff_ms");

[[noreturn]] void throwDeadline(const std::string& nodeName,
                                const RpcPolicy& policy) {
  obs::currentRegistry().counter(kDeadlineExceeded).inc();
  throw DeadlineExceeded("rpc deadline of " +
                         std::to_string(policy.deadlineMs) + "ms exceeded: " +
                         nodeName);
}

}  // namespace

TimeMs backoffDelayMs(const RpcPolicy& policy, std::size_t retryIndex) {
  if (policy.initialBackoffMs <= 0) return 0;
  double delay = static_cast<double>(policy.initialBackoffMs);
  const double cap = policy.maxBackoffMs > 0
                         ? static_cast<double>(policy.maxBackoffMs)
                         : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < retryIndex && delay < cap; ++i) {
    delay *= policy.backoffMultiplier;
  }
  return static_cast<TimeMs>(std::min(delay, cap));
}

std::string callWithPolicy(TransportIface& transport, const std::string& nodeName,
                           const std::string& request,
                           const RpcPolicy& policy) {
  obs::MetricsRegistry& obs = obs::currentRegistry();
  Clock& clock = transport.clock();
  const std::size_t attempts = std::max<std::size_t>(policy.maxAttempts, 1);
  const TimeMs deadline =
      policy.deadlineMs > 0 ? clock.nowMs() + policy.deadlineMs : 0;
  for (std::size_t attempt = 0;; ++attempt) {
    if (deadline != 0 && clock.nowMs() >= deadline) {
      throwDeadline(nodeName, policy);
    }
    obs.counter(kAttempts).inc();
    try {
      return transport.call(nodeName, request);
    } catch (const Unavailable&) {
      if (attempt + 1 >= attempts) {
        obs.counter(kRetryExhausted).inc();
        throw;
      }
    }
    obs.counter(kRetries).inc();
    TimeMs delay = backoffDelayMs(policy, attempt);
    if (deadline != 0) {
      const TimeMs remaining = deadline - clock.nowMs();
      if (remaining <= 0) throwDeadline(nodeName, policy);
      delay = std::min(delay, remaining);  // never sleep past the deadline
    }
    if (delay > 0) {
      obs.histogram(kBackoffMs).observe(static_cast<std::uint64_t>(delay));
      clock.sleepFor(delay);
    }
  }
}

}  // namespace dpss::cluster
