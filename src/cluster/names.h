// Registry path layout shared by all node types (Figure 2's
// /announcements and per-node "load queue" paths), plus the small data
// formats that ride those znodes: node announcements (type + optional
// advertised endpoint), load-queue entries (segment + blob key + issuing
// leader epoch) and drain flags.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "storage/segment_id.h"

namespace dpss::cluster::paths {

/// Escapes a segment id for use as a single znode name.
inline std::string segmentNode(const storage::SegmentId& id) {
  std::string s = id.toString();
  for (auto& c : s) {
    if (c == '/') c = '_';
  }
  return s;
}

/// Root under which every queryable node announces itself and its served
/// segments: /announcements/<node>/<segment>.
inline std::string announcements() { return "/announcements"; }
inline std::string nodeAnnouncement(const std::string& node) {
  return "/announcements/" + node;
}
inline std::string servedSegment(const std::string& node,
                                 const storage::SegmentId& id) {
  return nodeAnnouncement(node) + "/" + segmentNode(id);
}

/// Per-node load queues the coordinator writes into:
/// /loadqueue/<node>/<segment> with data "load" or "drop".
inline std::string loadQueueRoot() { return "/loadqueue"; }
inline std::string loadQueue(const std::string& node) {
  return "/loadqueue/" + node;
}
inline std::string loadQueueEntry(const std::string& node,
                                  const storage::SegmentId& id) {
  return loadQueue(node) + "/" + segmentNode(id);
}

/// Drain flags: /drains/<node>, persistent (they survive the node's
/// session so a crash mid-drain resumes draining on restart). Data is
/// kDrainRequested while the coordinator re-replicates the node's
/// segments elsewhere, flipped to kDrainComplete once it serves nothing.
inline std::string drainsRoot() { return "/drains"; }
inline std::string drainFlag(const std::string& node) {
  return "/drains/" + node;
}
inline constexpr const char* kDrainRequested = "draining";
inline constexpr const char* kDrainComplete = "complete";

/// Coordinator leader election: an ephemeral leader znode (owner dies ->
/// znode vanishes -> a standby acquires) fenced by a persistent,
/// monotonically increasing epoch znode.
inline std::string coordinatorRoot() { return "/coordinator"; }
inline std::string leaderNode() { return "/coordinator/leader"; }
inline std::string epochNode() { return "/coordinator/epoch"; }

// --- znode data formats --------------------------------------------------
// Fields inside one znode's data are '\x01'-separated (znode data is
// opaque bytes; \x01 cannot appear in node types, segment ids, blob keys
// or host:port strings).

/// Node announcement data: "<type>" or "<type>\x01<host:port>". The
/// endpoint is how a dynamically joined node becomes dialable: brokers
/// resolve unknown peer names through it (net::NetTransport's resolver).
inline std::string announceData(const std::string& type,
                                const std::string& endpoint) {
  return endpoint.empty() ? type : type + '\x01' + endpoint;
}
inline std::string announceType(const std::string& data) {
  return data.substr(0, data.find('\x01'));
}
inline std::string announceEndpoint(const std::string& data) {
  const auto sep = data.find('\x01');
  return sep == std::string::npos ? std::string() : data.substr(sep + 1);
}

/// A parsed load-queue entry. Drops carry no payload (data == "drop");
/// loads are "load:<id>\x01<deepStorageKey>[\x01<epoch>]" — the epoch is
/// the issuing leader's, recorded for audit (fencing happens at write
/// time; historicals obey whatever survived the fence).
struct LoadEntry {
  storage::SegmentId id;
  std::string deepStorageKey;
  std::uint64_t epoch = 0;
};

inline std::string loadEntryData(const storage::SegmentId& id,
                                 const std::string& deepStorageKey,
                                 std::uint64_t epoch) {
  return "load:" + id.toString() + '\x01' + deepStorageKey + '\x01' +
         std::to_string(epoch);
}

inline std::optional<LoadEntry> parseLoadEntry(const std::string& data) {
  if (data.rfind("load:", 0) != 0) return std::nullopt;
  const auto sep1 = data.find('\x01');
  if (sep1 == std::string::npos) return std::nullopt;
  LoadEntry e;
  e.id = storage::SegmentId::parse(data.substr(5, sep1 - 5));
  const auto sep2 = data.find('\x01', sep1 + 1);
  if (sep2 == std::string::npos) {
    e.deepStorageKey = data.substr(sep1 + 1);  // pre-epoch writer
  } else {
    e.deepStorageKey = data.substr(sep1 + 1, sep2 - sep1 - 1);
    e.epoch = std::strtoull(data.c_str() + sep2 + 1, nullptr, 10);
  }
  return e;
}

}  // namespace dpss::cluster::paths
