// Registry path layout shared by all node types (Figure 2's
// /announcements and per-node "load queue" paths).
#pragma once

#include <string>

#include "storage/segment_id.h"

namespace dpss::cluster::paths {

/// Escapes a segment id for use as a single znode name.
inline std::string segmentNode(const storage::SegmentId& id) {
  std::string s = id.toString();
  for (auto& c : s) {
    if (c == '/') c = '_';
  }
  return s;
}

/// Root under which every queryable node announces itself and its served
/// segments: /announcements/<node>/<segment>.
inline std::string announcements() { return "/announcements"; }
inline std::string nodeAnnouncement(const std::string& node) {
  return "/announcements/" + node;
}
inline std::string servedSegment(const std::string& node,
                                 const storage::SegmentId& id) {
  return nodeAnnouncement(node) + "/" + segmentNode(id);
}

/// Per-node load queues the coordinator writes into:
/// /loadqueue/<node>/<segment> with data "load" or "drop".
inline std::string loadQueueRoot() { return "/loadqueue"; }
inline std::string loadQueue(const std::string& node) {
  return "/loadqueue/" + node;
}
inline std::string loadQueueEntry(const std::string& node,
                                  const storage::SegmentId& id) {
  return loadQueue(node) + "/" + segmentNode(id);
}

}  // namespace dpss::cluster::paths
