#include "cluster/registry.h"

#include <cstdlib>

#include "common/error.h"

namespace dpss::cluster {

namespace {
void validatePath(const std::string& path) {
  if (path.empty() || path[0] != '/' ||
      (path.size() > 1 && path.back() == '/')) {
    throw InvalidArgument("bad registry path: '" + path + "'");
  }
}
}  // namespace

SessionPtr Registry::connect(const std::string& ownerName) {
  MutexLock lock(mu_);
  return SessionPtr(new RegistrySession(this, nextSessionId_++, ownerName));
}

std::string Registry::parentOf(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void Registry::createLocked(const std::string& path, const std::string& data,
                            const SessionPtr& session, bool ephemeral) {
  if (session->expired()) throw Unavailable("session expired");
  if (nodes_.count(path) > 0) {
    throw AlreadyExists("znode already exists: " + path);
  }
  // Materialize persistent parents.
  std::string parent = parentOf(path);
  std::vector<std::string> missing;
  while (parent != "/" && nodes_.count(parent) == 0) {
    missing.push_back(parent);
    parent = parentOf(parent);
  }
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
    nodes_.emplace(*it, Node{});
  }
  Node node;
  node.data = data;
  node.ephemeral = ephemeral;
  node.sessionId = ephemeral ? session->id() : 0;
  nodes_.emplace(path, std::move(node));
  ++version_;
}

void Registry::create(const std::string& path, const std::string& data,
                      const SessionPtr& session, bool ephemeral) {
  validatePath(path);
  DPSS_CHECK_MSG(session != nullptr, "create requires a session");
  std::vector<Watch> toFire;
  {
    MutexLock lock(mu_);
    createLocked(path, data, session, ephemeral);
    notifyLocked(parentOf(path), toFire);
  }
  for (const auto& w : toFire) w(path);
}

std::uint64_t Registry::epochAtLocked(const std::string& epochPath) const {
  const auto it = nodes_.find(epochPath);
  if (it == nodes_.end()) return 0;
  return std::strtoull(it->second.data.c_str(), nullptr, 10);
}

void Registry::checkFenceLocked(const std::string& fencePath,
                                std::uint64_t epoch,
                                const std::string& op) const {
  const std::uint64_t current = epochAtLocked(fencePath);
  if (epoch < current) {
    throw Fenced(op + " fenced: epoch " + std::to_string(epoch) +
                 " < current " + std::to_string(current) + " at " + fencePath);
  }
}

void Registry::createFenced(const std::string& path, const std::string& data,
                            const SessionPtr& session, bool ephemeral,
                            const std::string& fencePath,
                            std::uint64_t epoch) {
  validatePath(path);
  validatePath(fencePath);
  DPSS_CHECK_MSG(session != nullptr, "create requires a session");
  std::vector<Watch> toFire;
  {
    MutexLock lock(mu_);
    checkFenceLocked(fencePath, epoch, "create " + path);
    createLocked(path, data, session, ephemeral);
    notifyLocked(parentOf(path), toFire);
  }
  for (const auto& w : toFire) w(path);
}

void Registry::setDataFenced(const std::string& path, const std::string& data,
                             const std::string& fencePath,
                             std::uint64_t epoch) {
  validatePath(path);
  validatePath(fencePath);
  std::vector<Watch> toFire;
  {
    MutexLock lock(mu_);
    checkFenceLocked(fencePath, epoch, "setData " + path);
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) throw NotFound("no such znode: " + path);
    it->second.data = data;
    ++version_;
    notifyLocked(parentOf(path), toFire);
  }
  for (const auto& w : toFire) w(path);
}

std::uint64_t Registry::acquireLeadership(const std::string& leaderPath,
                                          const std::string& epochPath,
                                          const std::string& ownerTag,
                                          const SessionPtr& session) {
  validatePath(leaderPath);
  validatePath(epochPath);
  DPSS_CHECK_MSG(session != nullptr, "acquireLeadership requires a session");
  std::vector<Watch> toFire;
  std::uint64_t epoch = 0;
  {
    MutexLock lock(mu_);
    if (session->expired()) throw Unavailable("session expired");
    if (nodes_.count(leaderPath) > 0) {
      throw AlreadyExists("leader znode held: " + leaderPath);
    }
    // Bump-then-create is one mutation under mu_: no window where a rival
    // can slip between minting the epoch and taking the leader znode.
    epoch = epochAtLocked(epochPath) + 1;
    const auto it = nodes_.find(epochPath);
    if (it == nodes_.end()) {
      createLocked(epochPath, std::to_string(epoch), session,
                   /*ephemeral=*/false);
    } else {
      it->second.data = std::to_string(epoch);
      ++version_;
    }
    createLocked(leaderPath, ownerTag + "#" + std::to_string(epoch), session,
                 /*ephemeral=*/true);
    notifyLocked(parentOf(leaderPath), toFire);
  }
  for (const auto& w : toFire) w(leaderPath);
  return epoch;
}

void Registry::setData(const std::string& path, const std::string& data) {
  validatePath(path);
  std::vector<Watch> toFire;
  {
    MutexLock lock(mu_);
    const auto it = nodes_.find(path);
    if (it == nodes_.end()) throw NotFound("no such znode: " + path);
    it->second.data = data;
    ++version_;
    notifyLocked(parentOf(path), toFire);
  }
  for (const auto& w : toFire) w(path);
}

std::optional<std::string> Registry::getData(const std::string& path) const {
  MutexLock lock(mu_);
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.data;
}

bool Registry::exists(const std::string& path) const {
  MutexLock lock(mu_);
  return nodes_.count(path) > 0;
}

void Registry::removeSubtreeLocked(const std::string& path,
                                   std::set<std::string>& changedParents) {
  const std::string prefix = path + "/";
  auto it = nodes_.lower_bound(path);
  while (it != nodes_.end() &&
         (it->first == path || it->first.rfind(prefix, 0) == 0)) {
    changedParents.insert(parentOf(it->first));
    it = nodes_.erase(it);
  }
}

void Registry::remove(const std::string& path) {
  validatePath(path);
  std::vector<Watch> toFire;
  {
    MutexLock lock(mu_);
    if (nodes_.count(path) == 0) return;
    std::set<std::string> changedParents;
    removeSubtreeLocked(path, changedParents);
    ++version_;
    for (const auto& parent : changedParents) notifyLocked(parent, toFire);
  }
  for (const auto& w : toFire) w(path);
}

std::vector<std::string> Registry::children(const std::string& path) const {
  validatePath(path);
  MutexLock lock(mu_);
  const std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<std::string> out;
  for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
    if (it->first.rfind(prefix, 0) != 0) break;
    const std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) out.push_back(rest);
  }
  return out;
}

std::uint64_t Registry::watchChildren(const std::string& path, Watch watch) {
  validatePath(path);
  MutexLock lock(mu_);
  const std::uint64_t id = nextWatchId_++;
  watches_.emplace(id, WatchEntry{path, std::move(watch)});
  return id;
}

void Registry::unwatch(std::uint64_t watchId) {
  MutexLock lock(mu_);
  watches_.erase(watchId);
}

void Registry::notifyLocked(const std::string& parentPath,
                            std::vector<Watch>& toFire) const {
  for (const auto& [id, entry] : watches_) {
    (void)id;
    if (entry.path == parentPath) toFire.push_back(entry.fn);
  }
}

void Registry::expire(const SessionPtr& session) {
  if (session == nullptr || session->expired()) return;
  std::vector<Watch> toFire;
  {
    MutexLock lock(mu_);
    session->expired_.store(true, std::memory_order_release);
    std::set<std::string> changedParents;
    for (auto it = nodes_.begin(); it != nodes_.end();) {
      if (it->second.ephemeral && it->second.sessionId == session->id()) {
        changedParents.insert(parentOf(it->first));
        it = nodes_.erase(it);
      } else {
        ++it;
      }
    }
    if (!changedParents.empty()) ++version_;
    for (const auto& parent : changedParents) notifyLocked(parent, toFire);
  }
  for (const auto& w : toFire) w("");
}

std::vector<RegistryEntry> Registry::dump() const {
  MutexLock lock(mu_);
  std::vector<RegistryEntry> out;
  out.reserve(nodes_.size());
  for (const auto& [path, node] : nodes_) {
    out.push_back(RegistryEntry{path, node.data, node.ephemeral});
  }
  return out;  // map iteration order == sorted by path
}

std::uint64_t Registry::version() const {
  MutexLock lock(mu_);
  return version_;
}

RegistrySession::~RegistrySession() {
  // Session handles are shared; the last owner dropping the handle ends
  // the session, mirroring a client disconnect.
  if (!expired() && registry_ != nullptr) {
    // Cannot call expire(shared_from_this) from the destructor; inline the
    // ephemeral sweep via a throwaway shared_ptr with no-op deleter.
    SessionPtr self(this, [](RegistrySession*) {});
    registry_->expire(self);
  }
}

}  // namespace dpss::cluster
