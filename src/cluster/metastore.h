// Metadata store — the in-process MySQL (§III-A-4).
//
// Holds "an important piece of information ... the segment table, which
// contains all historical segments that should be served", plus the rule
// table governing load/drop/replication. Any service creating historical
// segments (the real-time node handoff, batch indexing) inserts here; the
// coordinator reads it on every run.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/load_rules.h"
#include "common/thread_annotations.h"
#include "storage/segment_id.h"

namespace dpss::cluster {

/// Segment-table row.
struct SegmentRecord {
  storage::SegmentId id;
  std::string deepStorageKey;  // where the blob lives
  bool used = true;            // false = dropped/obsoleted
  std::size_t sizeBytes = 0;
};

class MetaStore {
 public:
  /// Inserts or replaces a segment record (idempotent upsert).
  void upsertSegment(const SegmentRecord& record);

  /// Marks a segment unused (the coordinator will drop it everywhere).
  void markUnused(const storage::SegmentId& id);

  std::optional<SegmentRecord> getSegment(const storage::SegmentId& id) const;

  /// All records with used == true.
  std::vector<SegmentRecord> usedSegments() const;
  /// Every record, including unused.
  std::vector<SegmentRecord> allSegments() const;

  // --- rule table -----------------------------------------------------
  void setRules(const std::string& dataSource, LoadRules rules);
  /// Rules for a data source, falling back to the default rule set.
  LoadRules rulesFor(const std::string& dataSource) const;
  void setDefaultRules(LoadRules rules) {
    MutexLock lock(mu_);
    defaultRules_ = rules;
  }

 private:
  mutable Mutex mu_;
  std::map<storage::SegmentId, SegmentRecord> segments_ DPSS_GUARDED_BY(mu_);
  std::map<std::string, LoadRules> rules_ DPSS_GUARDED_BY(mu_);
  LoadRules defaultRules_ DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::cluster
