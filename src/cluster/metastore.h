// Metadata store — the in-process MySQL (§III-A-4).
//
// Holds "an important piece of information ... the segment table, which
// contains all historical segments that should be served", plus the rule
// table governing load/drop/replication. Any service creating historical
// segments (the real-time node handoff, batch indexing) inserts here; the
// coordinator reads it on every run.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/load_rules.h"
#include "common/thread_annotations.h"
#include "storage/segment_id.h"

namespace dpss::cluster {

/// Segment-table row.
struct SegmentRecord {
  storage::SegmentId id;
  std::string deepStorageKey;  // where the blob lives
  bool used = true;            // false = dropped/obsoleted
  std::size_t sizeBytes = 0;
};

/// Subscription-table row: one standing encrypted query. The spec bytes
/// are the serialized pss::SubscriptionSpec — opaque ciphertext + public
/// tuning at this layer, so the metastore (and its journal and the
/// substrate wire) never depend on the pss types.
struct SubscriptionRecord {
  std::uint64_t id = 0;
  std::string specBytes;
  std::int64_t createdMs = 0;
};

/// Virtual for the same reason as Registry: net::RemoteMetaStore forwards
/// these ops to the coordinator process over TCP.
class MetaStore {
 public:
  MetaStore() = default;
  virtual ~MetaStore() = default;
  MetaStore(const MetaStore&) = delete;
  MetaStore& operator=(const MetaStore&) = delete;

  /// Inserts or replaces a segment record (idempotent upsert).
  virtual void upsertSegment(const SegmentRecord& record);

  /// Marks a segment unused (the coordinator will drop it everywhere).
  virtual void markUnused(const storage::SegmentId& id);

  virtual std::optional<SegmentRecord> getSegment(
      const storage::SegmentId& id) const;

  /// All records with used == true.
  virtual std::vector<SegmentRecord> usedSegments() const;
  /// Every record, including unused.
  virtual std::vector<SegmentRecord> allSegments() const;

  // --- rule table -----------------------------------------------------
  virtual void setRules(const std::string& dataSource, LoadRules rules);
  /// Rules for a data source, falling back to the default rule set.
  virtual LoadRules rulesFor(const std::string& dataSource) const;
  virtual void setDefaultRules(LoadRules rules);

  // --- subscription table ---------------------------------------------
  /// Inserts or replaces a standing subscription (idempotent upsert).
  virtual void upsertSubscription(const SubscriptionRecord& record);
  /// Retires a subscription; unknown ids are a no-op.
  virtual void removeSubscription(std::uint64_t id);
  /// All live subscriptions, id-ascending.
  virtual std::vector<SubscriptionRecord> subscriptions() const;

  // --- whole-table enumeration (snapshots) ----------------------------
  // Local-state only: these read the in-memory tables and are NOT
  // forwarded by net::RemoteMetaStore. JournaledMetaStore uses them to
  // serialize the full state into a snapshot file.
  std::vector<std::pair<std::string, LoadRules>> ruleTable() const;
  LoadRules defaultRules() const;

 private:
  mutable Mutex mu_;
  std::map<storage::SegmentId, SegmentRecord> segments_ DPSS_GUARDED_BY(mu_);
  std::map<std::string, LoadRules> rules_ DPSS_GUARDED_BY(mu_);
  LoadRules defaultRules_ DPSS_GUARDED_BY(mu_);
  std::map<std::uint64_t, SubscriptionRecord> subscriptions_
      DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::cluster
