#include "cluster/transport.h"

#include "cluster/rpc_policy.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dpss::cluster {

namespace {

const obs::MetricId kChaosDrops = obs::internCounter("transport.chaos.drops");
const obs::MetricId kChaosDuplicates =
    obs::internCounter("transport.chaos.duplicates");
const obs::MetricId kChaosPartitions =
    obs::internCounter("transport.chaos.partitions");
const obs::MetricId kChaosPartitionRejects =
    obs::internCounter("transport.chaos.partition_rejects");

/// Event log cap: long soak runs keep injecting but stop recording.
constexpr std::size_t kMaxChaosEvents = 1 << 16;

}  // namespace

ChaosPolicy::ChaosPolicy(ChaosOptions options)
    : options_(std::move(options)), enabled_(true) {}

ChaosDecision ChaosPolicy::decide(const std::string& dest,
                                  std::uint64_t seq) const {
  // One RNG per (seed, dest, seq), drawn in a fixed order: the schedule
  // is a pure function of the seed, replayable regardless of timing.
  Rng rng(hashCombine(seededHash(options_.seed, dest), seq));
  ChaosDecision d;
  if (options_.latencyJitterMaxMs > options_.latencyJitterMinMs) {
    d.latencyMs = rng.between(options_.latencyJitterMinMs,
                              options_.latencyJitterMaxMs);
  } else {
    d.latencyMs = options_.latencyJitterMinMs;
  }
  if (rng.chance(options_.duplicateProbability)) d.actions |= chaos::kDuplicate;
  double dropP = options_.dropProbability;
  const auto it = options_.dropProbabilityByDest.find(dest);
  if (it != options_.dropProbabilityByDest.end()) dropP = it->second;
  if (rng.chance(dropP)) d.actions |= chaos::kDrop;
  if (rng.chance(options_.partitionProbability)) {
    d.actions |= chaos::kPartition;
    d.partitionMs =
        options_.partitionMaxMs > options_.partitionMinMs
            ? rng.between(options_.partitionMinMs, options_.partitionMaxMs)
            : options_.partitionMinMs;
  }
  return d;
}

void Transport::bind(const std::string& nodeName, RpcHandler handler) {
  MutexLock lock(mu_);
  handlers_[nodeName] = std::move(handler);
}

void Transport::unbind(const std::string& nodeName) {
  MutexLock lock(mu_);
  handlers_.erase(nodeName);
}

bool Transport::reachable(const std::string& nodeName) const {
  MutexLock lock(mu_);
  const auto it = partitioned_.find(nodeName);
  const bool cut = it != partitioned_.end() && it->second;
  return !cut && handlers_.count(nodeName) > 0;
}

std::string Transport::call(const std::string& nodeName,
                            const std::string& request) {
  RpcHandler handler;
  TimeMs latency = 0;
  bool drop = false;
  bool duplicate = false;
  {
    MutexLock lock(mu_);
    ++calls_;
    const auto failIt = failures_.find(nodeName);
    if (failIt != failures_.end() && failIt->second > 0) {
      --failIt->second;
      throw Unavailable("injected network failure to " + nodeName);
    }
    const auto partIt = partitioned_.find(nodeName);
    if (partIt != partitioned_.end() && partIt->second) {
      throw Unavailable("node partitioned away: " + nodeName);
    }
    if (chaos_.enabled()) {
      const TimeMs now = clock_.nowMs();
      const auto cutIt = chaosPartitionUntil_.find(nodeName);
      if (cutIt != chaosPartitionUntil_.end() && now < cutIt->second) {
        obs::currentRegistry().counter(kChaosPartitionRejects).inc();
        throw Unavailable("chaos partition active: " + nodeName);
      }
      const std::uint64_t seq = chaosSeq_[nodeName]++;
      const ChaosDecision d = chaos_.decide(nodeName, seq);
      if ((d.actions != 0 || d.latencyMs > 0) &&
          chaosEvents_.size() < kMaxChaosEvents) {
        chaosEvents_.push_back(
            {nodeName, seq, d.actions, d.latencyMs, d.partitionMs});
      }
      if (d.actions & chaos::kPartition) {
        chaosPartitionUntil_[nodeName] = now + d.partitionMs;
        obs::currentRegistry().counter(kChaosPartitions).inc();
        throw Unavailable("chaos partition opened: " + nodeName);
      }
      drop = (d.actions & chaos::kDrop) != 0;
      duplicate = (d.actions & chaos::kDuplicate) != 0;
      latency = d.latencyMs;
    }
    const auto it = handlers_.find(nodeName);
    if (it == handlers_.end()) {
      throw Unavailable("no route to node: " + nodeName);
    }
    handler = it->second;
    latency += latencyMs_;
  }
  if (latency > 0) clock_.sleepFor(latency);
  // A dropped request still spends its wire time before the caller can
  // conclude anything — the deadline tests depend on that ordering.
  if (drop) {
    obs::currentRegistry().counter(kChaosDrops).inc();
    throw Unavailable("chaos dropped rpc to " + nodeName);
  }
  // Trace propagation across the emulated wire: the caller's context is
  // serialized into an envelope (HTTP-trace-header analogue), decoded
  // node-side, and installed around the handler so server spans parent
  // onto the caller's span. Both ends live inside Transport, so handlers
  // and callers keep seeing raw request bytes.
  ByteWriter envelope;
  const obs::TraceContext ctx = obs::currentTraceContext();
  envelope.u8(ctx.active() ? 1 : 0);
  if (ctx.active()) ctx.serialize(envelope);
  envelope.raw(request);

  ByteReader r(envelope.data());
  obs::TraceContext remote;
  if (r.u8() == 1) remote = obs::TraceContext::deserialize(r);
  const std::string body(r.raw(r.remaining()));
  std::string response;
  {
    obs::TraceScope scope(remote);
    response = handler(body);
    if (duplicate) {
      // Duplicate delivery: the handler runs again on the same bytes and
      // its response is discarded. Handlers must be idempotent; whatever
      // the duplicate throws, the network already dropped its reply.
      obs::currentRegistry().counter(kChaosDuplicates).inc();
      try {
        (void)handler(body);
      } catch (...) {
      }
    }
  }
  if (latency > 0) clock_.sleepFor(latency);
  return response;
}

void Transport::setLatencyMs(TimeMs ms) {
  MutexLock lock(mu_);
  latencyMs_ = ms;
}

void Transport::failNextCalls(const std::string& nodeName, std::size_t n) {
  MutexLock lock(mu_);
  failures_[nodeName] = n;
}

void Transport::setPartitioned(const std::string& nodeName, bool partitioned) {
  MutexLock lock(mu_);
  partitioned_[nodeName] = partitioned;
}

void Transport::setChaos(ChaosOptions options) {
  MutexLock lock(mu_);
  chaos_ = ChaosPolicy(std::move(options));
  chaosSeq_.clear();
  chaosPartitionUntil_.clear();
  chaosEvents_.clear();
}

void Transport::clearChaos() {
  MutexLock lock(mu_);
  chaos_ = ChaosPolicy();
  chaosSeq_.clear();
  chaosPartitionUntil_.clear();
}

std::vector<ChaosEvent> Transport::chaosEvents() const {
  MutexLock lock(mu_);
  return chaosEvents_;
}

std::uint64_t Transport::callCount() const {
  MutexLock lock(mu_);
  return calls_;
}

std::string SegmentQueryRequest::encode() const {
  ByteWriter w;
  w.u8(rpc::kQuerySegment);
  segment.serialize(w);
  spec.serialize(w);
  return w.take();
}

SegmentQueryRequest SegmentQueryRequest::decode(const std::string& bytes) {
  ByteReader r(bytes);
  SegmentQueryRequest req;
  req.segment = storage::SegmentId::deserialize(r);
  req.spec = query::QuerySpec::deserialize(r);
  return req;
}

query::QueryResult callQuerySegment(TransportIface& transport,
                                    const std::string& nodeName,
                                    const storage::SegmentId& segment,
                                    const query::QuerySpec& spec) {
  SegmentQueryRequest req{segment, spec};
  const std::string responseBytes =
      callWithPolicy(transport, nodeName, req.encode());
  ByteReader r(responseBytes);
  return query::QueryResult::deserialize(r);
}

}  // namespace dpss::cluster
