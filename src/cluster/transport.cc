#include "cluster/transport.h"

#include "common/bytes.h"
#include "common/error.h"
#include "obs/trace.h"

namespace dpss::cluster {

void Transport::bind(const std::string& nodeName, RpcHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[nodeName] = std::move(handler);
}

void Transport::unbind(const std::string& nodeName) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(nodeName);
}

bool Transport::reachable(const std::string& nodeName) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = partitioned_.find(nodeName);
  const bool cut = it != partitioned_.end() && it->second;
  return !cut && handlers_.count(nodeName) > 0;
}

std::string Transport::call(const std::string& nodeName,
                            const std::string& request) {
  RpcHandler handler;
  TimeMs latency = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++calls_;
    const auto failIt = failures_.find(nodeName);
    if (failIt != failures_.end() && failIt->second > 0) {
      --failIt->second;
      throw Unavailable("injected network failure to " + nodeName);
    }
    const auto partIt = partitioned_.find(nodeName);
    if (partIt != partitioned_.end() && partIt->second) {
      throw Unavailable("node partitioned away: " + nodeName);
    }
    const auto it = handlers_.find(nodeName);
    if (it == handlers_.end()) {
      throw Unavailable("no route to node: " + nodeName);
    }
    handler = it->second;
    latency = latencyMs_;
  }
  if (latency > 0) clock_.sleepFor(latency);
  // Trace propagation across the emulated wire: the caller's context is
  // serialized into an envelope (HTTP-trace-header analogue), decoded
  // node-side, and installed around the handler so server spans parent
  // onto the caller's span. Both ends live inside Transport, so handlers
  // and callers keep seeing raw request bytes.
  ByteWriter envelope;
  const obs::TraceContext ctx = obs::currentTraceContext();
  envelope.u8(ctx.active() ? 1 : 0);
  if (ctx.active()) ctx.serialize(envelope);
  envelope.raw(request);

  ByteReader r(envelope.data());
  obs::TraceContext remote;
  if (r.u8() == 1) remote = obs::TraceContext::deserialize(r);
  const std::string body(r.raw(r.remaining()));
  std::string response;
  {
    obs::TraceScope scope(remote);
    response = handler(body);
  }
  if (latency > 0) clock_.sleepFor(latency);
  return response;
}

void Transport::setLatencyMs(TimeMs ms) {
  std::lock_guard<std::mutex> lock(mu_);
  latencyMs_ = ms;
}

void Transport::failNextCalls(const std::string& nodeName, std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  failures_[nodeName] = n;
}

void Transport::setPartitioned(const std::string& nodeName, bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_[nodeName] = partitioned;
}

std::uint64_t Transport::callCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return calls_;
}

std::string SegmentQueryRequest::encode() const {
  ByteWriter w;
  w.u8(rpc::kQuerySegment);
  segment.serialize(w);
  spec.serialize(w);
  return w.take();
}

SegmentQueryRequest SegmentQueryRequest::decode(const std::string& bytes) {
  ByteReader r(bytes);
  SegmentQueryRequest req;
  req.segment = storage::SegmentId::deserialize(r);
  req.spec = query::QuerySpec::deserialize(r);
  return req;
}

query::QueryResult callQuerySegment(Transport& transport,
                                    const std::string& nodeName,
                                    const storage::SegmentId& segment,
                                    const query::QuerySpec& spec) {
  SegmentQueryRequest req{segment, spec};
  const std::string responseBytes = transport.call(nodeName, req.encode());
  ByteReader r(responseBytes);
  return query::QueryResult::deserialize(r);
}

}  // namespace dpss::cluster
