// Durable metastore: the in-process MySQL grows a redo log (DESIGN.md
// §13). Every mutation is applied to the in-memory tables, then appended
// to an on-disk journal as a length-prefixed, checksummed record; every
// `snapshotEveryOps` mutations the full state is written to a snapshot
// file (tmp + rename, so a crash mid-snapshot leaves the old one intact)
// and the journal is truncated. Construction recovers snapshot-then-
// journal, stopping cleanly at the first torn/corrupt record — exactly
// what a standby or restarted coordinator needs to resume reconciliation
// with the expected-state tables it had before the crash.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "cluster/metastore.h"
#include "common/bytes.h"
#include "common/thread_annotations.h"

namespace dpss::cluster {

struct JournaledMetaStoreOptions {
  /// Mutations between automatic snapshots (journal truncation points).
  std::size_t snapshotEveryOps = 256;
};

class JournaledMetaStore final : public MetaStore {
 public:
  using Options = JournaledMetaStoreOptions;

  /// Creates `dir` if needed and recovers any prior state found there.
  explicit JournaledMetaStore(std::string dir, Options options = {});
  ~JournaledMetaStore() override;

  // Mutators: apply to the in-memory tables, then journal.
  void upsertSegment(const SegmentRecord& record) override;
  void markUnused(const storage::SegmentId& id) override;
  void setRules(const std::string& dataSource, LoadRules rules) override;
  void setDefaultRules(LoadRules rules) override;
  void upsertSubscription(const SubscriptionRecord& record) override;
  void removeSubscription(std::uint64_t id) override;
  // Reads inherit the in-memory tables.

  /// Forces a snapshot + journal truncation now.
  void snapshotNow();

  /// Mutations replayed from disk at construction (tests/observability).
  std::size_t recoveredOps() const { return recoveredOps_; }
  /// Snapshots written by this instance.
  std::size_t snapshotsWritten() const;

 private:
  void recover();
  bool loadSnapshot();
  std::size_t replayJournal();
  void applyOp(std::uint8_t op, ByteReader& r);
  void appendOp(std::uint8_t op, const std::string& payload)
      DPSS_EXCLUDES(jmu_);
  void writeSnapshotLocked() DPSS_REQUIRES(jmu_);

  std::string journalPath() const { return dir_ + "/journal.bin"; }
  std::string snapshotPath() const { return dir_ + "/snapshot.bin"; }

  std::string dir_;
  Options options_;
  std::size_t recoveredOps_ = 0;

  // Serializes journal appends and snapshot swaps. Independent of the
  // base-class table mutex: mutators apply to the tables first (base
  // lock), then persist under jmu_, so readers never wait on disk.
  mutable Mutex jmu_;
  std::ofstream journal_ DPSS_GUARDED_BY(jmu_);
  std::size_t opsSinceSnapshot_ DPSS_GUARDED_BY(jmu_) = 0;
  std::size_t snapshotsWritten_ DPSS_GUARDED_BY(jmu_) = 0;
};

}  // namespace dpss::cluster
