#include "cluster/leader_election.h"

#include "common/error.h"
#include "common/logging.h"

namespace dpss::cluster {

LeaderElector::LeaderElector(std::string owner, Registry& registry,
                             Options options)
    : owner_(std::move(owner)), registry_(registry), options_(options) {}

bool LeaderElector::tick() {
  try {
    if (session_ == nullptr || session_->expired()) {
      // Session loss killed our ephemeral leader znode (or will, at the
      // authority): any leadership we held is gone with it.
      leader_.store(false, std::memory_order_release);
      session_ = registry_.connect(owner_ + ".elector");
    }
    const auto data = registry_.getData(options_.leaderPath);
    if (data.has_value()) {
      // Compare the full tag, not just the owner: a deposed-and-reelected
      // coordinator with the same name must adopt its NEW epoch, not
      // mistake the old acquisition for current leadership.
      leader_.store(*data == tag_, std::memory_order_release);
      return isLeader();
    }
    const std::uint64_t epoch = registry_.acquireLeadership(
        options_.leaderPath, options_.epochPath, owner_, session_);
    tag_ = owner_ + "#" + std::to_string(epoch);
    epoch_.store(epoch, std::memory_order_release);
    leader_.store(true, std::memory_order_release);
    DPSS_LOG(Info) << owner_ << " acquired coordinator leadership, epoch "
                   << epoch;
  } catch (const AlreadyExists&) {
    // A rival won the race between our read and our acquire.
    leader_.store(false, std::memory_order_release);
  } catch (const Error& e) {
    DPSS_LOG(Warn) << owner_ << " election round failed: " << e.what();
    leader_.store(false, std::memory_order_release);
  }
  return isLeader();
}

void LeaderElector::resign() {
  if (isLeader()) {
    try {
      const auto data = registry_.getData(options_.leaderPath);
      if (data.has_value() && *data == tag_) {
        registry_.remove(options_.leaderPath);
      }
    } catch (const Error& e) {
      DPSS_LOG(Warn) << owner_ << " resign failed: " << e.what();
    }
  }
  leader_.store(false, std::memory_order_release);
}

void LeaderElector::depose() {
  if (session_ != nullptr) registry_.expire(session_);
  // Deliberately leave leader_ true: the point of the hook is a leader
  // that has not yet noticed. The next tick() observes the expiry.
}

}  // namespace dpss::cluster
