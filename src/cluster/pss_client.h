// Client-side driver for the distributed private search (§III-C over the
// cluster): one call makes the encrypted query, scatters it through the
// broker, opens every per-slice envelope, and retries the whole batch
// with fresh seeds when a slice's reconstruction system is singular.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "cluster/rpc_policy.h"
#include "cluster/search_broker.h"
#include "pss/session.h"

namespace dpss::cluster {

struct DistributedSearchStats {
  std::size_t envelopes = 0;    // slices searched (nodes involved)
  std::size_t retries = 0;      // singular-system batch retries
  std::size_t unavailableRetries = 0;  // whole-batch retries after Unavailable
  std::uint64_t documents = 0;  // stream length covered
  /// Trace id of the last scatter's span tree (joins the coordinator's
  /// assembled trace and the broker's slow-query log).
  std::uint64_t traceId = 0;
};

/// Runs one distributed private-search round. Throws CryptoError after
/// `maxRetries` singular batches, NotFound when no node serves the
/// document source. Unavailable batches (node churn, chaos) are retried
/// whole per `unavailableBackoff` — maxAttempts batches total, backing
/// off on the broker's clock — then rethrown.
std::vector<pss::RecoveredSegment> runDistributedPrivateSearch(
    PrivateSearchBroker& broker, pss::PrivateSearchClient& client,
    const std::string& docSource, const std::set<std::string>& keywords,
    DistributedSearchStats* stats = nullptr, int maxRetries = 5,
    const RpcPolicy& unavailableBackoff = {});

}  // namespace dpss::cluster
