#include "cluster/pss_client.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"

namespace dpss::cluster {

std::vector<pss::RecoveredSegment> runDistributedPrivateSearch(
    PrivateSearchBroker& broker, pss::PrivateSearchClient& client,
    const std::string& docSource, const std::set<std::string>& keywords,
    DistributedSearchStats* stats, int maxRetries,
    const RpcPolicy& unavailableBackoff) {
  DistributedSearchStats local;
  const std::size_t maxBatches =
      std::max<std::size_t>(unavailableBackoff.maxAttempts, 1);
  for (int attempt = 0;;) {
    try {
      const auto query = client.makeQuery(keywords);
      const auto envelopes = broker.privateSearch(
          docSource, client.dictionary(), query, &local.traceId);
      local.envelopes = envelopes.size();
      local.documents = 0;
      for (const auto& env : envelopes) {
        local.documents += env.documentCount;
      }
      try {
        std::vector<pss::RecoveredSegment> all;
        for (const auto& env : envelopes) {
          // openDocuments == open for unpacked envelopes; packed ones are
          // split back into per-document results here.
          const auto part = client.openDocuments(env, keywords);
          all.insert(all.end(), part.begin(), part.end());
        }
        std::sort(all.begin(), all.end(),
                  [](const pss::RecoveredSegment& a,
                     const pss::RecoveredSegment& b) {
                    return a.index < b.index;
                  });
        if (stats != nullptr) *stats = local;
        return all;
      } catch (const CryptoError& e) {
        ++local.retries;
        if (attempt >= maxRetries) throw;
        ++attempt;
        DPSS_LOG(Warn) << "distributed private search: singular slice, "
                       << "re-scattering batch (" << e.what() << ")";
      }
    } catch (const Unavailable& e) {
      // The whole batch failed before any envelope came back — node
      // churn or an injected fault. Retrying is safe: no state left
      // server-side, the next batch re-scatters from scratch.
      if (local.unavailableRetries + 1 >= maxBatches) throw;
      ++local.unavailableRetries;
      const TimeMs delay =
          backoffDelayMs(unavailableBackoff, local.unavailableRetries - 1);
      if (delay > 0) broker.clock().sleepFor(delay);
      DPSS_LOG(Warn) << "distributed private search: batch unavailable, "
                     << "retrying (" << e.what() << ")";
    }
  }
}

}  // namespace dpss::cluster
