#include "cluster/metastore_journal.h"

#include <filesystem>
#include <iterator>
#include <optional>
#include <utility>

#include "cluster/meta_codec.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/logging.h"

namespace dpss::cluster {

namespace {

// Journal/snapshot op codes (payload byte 0). The snapshot file reuses the
// record framing but holds a single kOpSnapshot record with the full state.
constexpr std::uint8_t kOpUpsert = 1;
constexpr std::uint8_t kOpMarkUnused = 2;
constexpr std::uint8_t kOpSetRules = 3;
constexpr std::uint8_t kOpSetDefaultRules = 4;
constexpr std::uint8_t kOpUpsertSubscription = 5;
constexpr std::uint8_t kOpRemoveSubscription = 6;

// [u32 len][payload][u64 fnv1a(payload)]
std::string frame(const std::string& payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  w.u64(fnv1a(payload));
  return w.take();
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Pulls one framed record off `r`. nullopt at clean EOF and at the first
/// torn or checksum-failing record — recovery stops there; everything
/// before it is intact by construction (appends are sequential).
std::optional<std::string> nextRecord(ByteReader& r) {
  if (r.remaining() < 4) return std::nullopt;
  const std::uint32_t len = r.u32();
  if (r.remaining() < static_cast<std::uint64_t>(len) + 8) return std::nullopt;
  std::string payload(r.raw(len));
  if (r.u64() != fnv1a(payload)) return std::nullopt;
  return payload;
}

}  // namespace

JournaledMetaStore::JournaledMetaStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {
  std::filesystem::create_directories(dir_);
  recover();
  MutexLock lock(jmu_);
  journal_.open(journalPath(), std::ios::binary | std::ios::app);
  if (!journal_) {
    throw InternalError("cannot open metastore journal: " + journalPath());
  }
}

JournaledMetaStore::~JournaledMetaStore() = default;

void JournaledMetaStore::upsertSegment(const SegmentRecord& record) {
  MetaStore::upsertSegment(record);
  ByteWriter w;
  meta_codec::writeRecord(w, record);
  appendOp(kOpUpsert, w.take());
}

void JournaledMetaStore::markUnused(const storage::SegmentId& id) {
  MetaStore::markUnused(id);
  ByteWriter w;
  id.serialize(w);
  appendOp(kOpMarkUnused, w.take());
}

void JournaledMetaStore::setRules(const std::string& dataSource,
                                  LoadRules rules) {
  MetaStore::setRules(dataSource, rules);
  ByteWriter w;
  w.str(dataSource);
  meta_codec::writeRules(w, rules);
  appendOp(kOpSetRules, w.take());
}

void JournaledMetaStore::setDefaultRules(LoadRules rules) {
  MetaStore::setDefaultRules(rules);
  ByteWriter w;
  meta_codec::writeRules(w, rules);
  appendOp(kOpSetDefaultRules, w.take());
}

void JournaledMetaStore::upsertSubscription(const SubscriptionRecord& record) {
  MetaStore::upsertSubscription(record);
  ByteWriter w;
  meta_codec::writeSubscription(w, record);
  appendOp(kOpUpsertSubscription, w.take());
}

void JournaledMetaStore::removeSubscription(std::uint64_t id) {
  MetaStore::removeSubscription(id);
  ByteWriter w;
  w.varint(id);
  appendOp(kOpRemoveSubscription, w.take());
}

void JournaledMetaStore::snapshotNow() {
  MutexLock lock(jmu_);
  writeSnapshotLocked();
}

std::size_t JournaledMetaStore::snapshotsWritten() const {
  MutexLock lock(jmu_);
  return snapshotsWritten_;
}

void JournaledMetaStore::recover() {
  loadSnapshot();
  recoveredOps_ = replayJournal();
}

bool JournaledMetaStore::loadSnapshot() {
  const std::string blob = readWholeFile(snapshotPath());
  if (blob.empty()) return false;
  ByteReader file(blob);
  const auto payload = nextRecord(file);
  if (!payload.has_value()) {
    DPSS_LOG(Warn) << "metastore snapshot corrupt, ignoring: "
                   << snapshotPath();
    return false;
  }
  try {
    ByteReader s(*payload);
    MetaStore::setDefaultRules(meta_codec::readRules(s));
    const std::uint64_t nRules = s.varint();
    for (std::uint64_t i = 0; i < nRules; ++i) {
      const std::string ds = s.str();
      MetaStore::setRules(ds, meta_codec::readRules(s));
    }
    for (const auto& rec : meta_codec::readRecords(s)) {
      MetaStore::upsertSegment(rec);
    }
    // Subscription table: absent in pre-PR-10 snapshots, so only read it
    // when bytes remain (a truncated-but-checksummed older format).
    if (s.remaining() > 0) {
      for (const auto& sub : meta_codec::readSubscriptions(s)) {
        MetaStore::upsertSubscription(sub);
      }
    }
  } catch (const Error& e) {
    // Checksum passed but decode failed: a format skew, not a torn write.
    DPSS_LOG(Warn) << "metastore snapshot undecodable: " << e.what();
    return false;
  }
  return true;
}

std::size_t JournaledMetaStore::replayJournal() {
  const std::string blob = readWholeFile(journalPath());
  ByteReader file(blob);
  std::size_t applied = 0;
  while (auto payload = nextRecord(file)) {
    try {
      ByteReader p(*payload);
      const std::uint8_t op = p.u8();
      applyOp(op, p);
      ++applied;
    } catch (const Error& e) {
      DPSS_LOG(Warn) << "metastore journal replay stopped: " << e.what();
      break;
    }
  }
  if (file.remaining() > 0) {
    DPSS_LOG(Warn) << "metastore journal has " << file.remaining()
                   << " trailing bytes past the last intact record (torn "
                      "write); ignored";
  }
  return applied;
}

void JournaledMetaStore::applyOp(std::uint8_t op, ByteReader& r) {
  switch (op) {
    case kOpUpsert:
      MetaStore::upsertSegment(meta_codec::readRecord(r));
      break;
    case kOpMarkUnused:
      MetaStore::markUnused(storage::SegmentId::deserialize(r));
      break;
    case kOpSetRules: {
      const std::string ds = r.str();
      MetaStore::setRules(ds, meta_codec::readRules(r));
      break;
    }
    case kOpSetDefaultRules:
      MetaStore::setDefaultRules(meta_codec::readRules(r));
      break;
    case kOpUpsertSubscription:
      MetaStore::upsertSubscription(meta_codec::readSubscription(r));
      break;
    case kOpRemoveSubscription:
      MetaStore::removeSubscription(r.varint());
      break;
    default:
      throw CorruptData("unknown metastore journal op: " +
                        std::to_string(op));
  }
}

void JournaledMetaStore::appendOp(std::uint8_t op, const std::string& args) {
  ByteWriter p;
  p.u8(op);
  p.raw(args);
  const std::string framed = frame(p.take());
  MutexLock lock(jmu_);
  journal_.write(framed.data(),
                 static_cast<std::streamsize>(framed.size()));
  journal_.flush();
  if (++opsSinceSnapshot_ >= options_.snapshotEveryOps) writeSnapshotLocked();
}

void JournaledMetaStore::writeSnapshotLocked() {
  ByteWriter w;
  meta_codec::writeRules(w, defaultRules());
  const auto rules = ruleTable();
  w.varint(rules.size());
  for (const auto& [ds, r] : rules) {
    w.str(ds);
    meta_codec::writeRules(w, r);
  }
  meta_codec::writeRecords(w, allSegments());
  meta_codec::writeSubscriptions(w, subscriptions());
  const std::string framed = frame(w.take());

  const std::string tmp = snapshotPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    if (!out) {
      DPSS_LOG(Warn) << "metastore snapshot write failed: " << tmp;
      return;  // keep journaling; the old snapshot (if any) stays valid
    }
  }
  std::filesystem::rename(tmp, snapshotPath());

  // Everything the journal held is in the snapshot now; start it fresh.
  journal_.close();
  journal_.open(journalPath(), std::ios::binary | std::ios::trunc);
  opsSinceSnapshot_ = 0;
  ++snapshotsWritten_;
}

}  // namespace dpss::cluster
