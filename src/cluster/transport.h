// In-process query transport (§III-A: "the query is forwarded via HTTP").
//
// Every call crosses a serialization boundary — the request and response
// are encoded to bytes and decoded on the other side — so nothing is
// shared between nodes except what the real system would put on the wire
// (shared-nothing honesty). Latency and failure injection emulate the
// network.
//
// Tracing: call() serializes the caller's obs::TraceContext into the wire
// envelope (the analogue of HTTP trace headers) and installs it with
// obs::TraceScope around the handler, so spans recorded node-side parent
// onto the caller's span and one distributed query yields one span tree.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "query/query.h"
#include "query/result.h"
#include "storage/segment_id.h"

namespace dpss::cluster {

/// A node-side handler: receives the serialized request, returns the
/// serialized response. Throws to signal a node-side error.
using RpcHandler = std::function<std::string(const std::string& requestBytes)>;

class Transport {
 public:
  explicit Transport(Clock& clock) : clock_(clock) {}

  /// Registers/replaces the handler serving `nodeName`.
  void bind(const std::string& nodeName, RpcHandler handler);
  void unbind(const std::string& nodeName);
  bool reachable(const std::string& nodeName) const;

  /// Sends request bytes to a node; throws Unavailable when the node is
  /// unbound, disconnected, or an injected failure fires.
  std::string call(const std::string& nodeName, const std::string& request);

  // --- network emulation ----------------------------------------------
  /// One-way artificial latency per call (applied twice: there and back).
  void setLatencyMs(TimeMs ms);
  /// The next `n` calls to `nodeName` throw Unavailable.
  void failNextCalls(const std::string& nodeName, std::size_t n);
  /// Drops a node off the network without unbinding it (partition).
  void setPartitioned(const std::string& nodeName, bool partitioned);

  std::uint64_t callCount() const;

 private:
  Clock& clock_;
  mutable std::mutex mu_;
  std::map<std::string, RpcHandler> handlers_;
  std::map<std::string, std::size_t> failures_;
  std::map<std::string, bool> partitioned_;
  TimeMs latencyMs_ = 0;
  std::uint64_t calls_ = 0;
};

// --- wire protocol -------------------------------------------------------

namespace rpc {
/// First byte of every request selects the operation.
constexpr std::uint8_t kQuerySegment = 1;  // scan one served segment
constexpr std::uint8_t kPssInfo = 2;       // describe a document slice
constexpr std::uint8_t kPssSearch = 3;     // run encrypted query on a slice
constexpr std::uint8_t kStats = 4;         // metrics + span snapshot
}  // namespace rpc

/// Request to scan one served segment.
struct SegmentQueryRequest {
  storage::SegmentId segment;
  query::QuerySpec spec;

  std::string encode() const;  // includes the rpc::kQuerySegment tag
  static SegmentQueryRequest decode(const std::string& bytes);  // after tag
};

/// Issues a segment-scan RPC and decodes the partial result.
query::QueryResult callQuerySegment(Transport& transport,
                                    const std::string& nodeName,
                                    const storage::SegmentId& segment,
                                    const query::QuerySpec& spec);

}  // namespace dpss::cluster
