// In-process query transport (§III-A: "the query is forwarded via HTTP").
//
// Every call crosses a serialization boundary — the request and response
// are encoded to bytes and decoded on the other side — so nothing is
// shared between nodes except what the real system would put on the wire
// (shared-nothing honesty). Latency and failure injection emulate the
// network.
//
// Failure injection comes in two flavours:
//  * hand-scripted faults (failNextCalls / setPartitioned), kept for
//    targeted tests, and
//  * a seeded ChaosPolicy: per-destination drop probability, added
//    latency jitter, duplicate delivery and timed partitions, every
//    decision a pure function of (seed, destination, per-destination
//    call sequence number). The same seed always yields the same
//    injected-failure schedule, so any chaos run is replayable.
//
// Tracing: call() serializes the caller's obs::TraceContext into the wire
// envelope (the analogue of HTTP trace headers) and installs it with
// obs::TraceScope around the handler, so spans recorded node-side parent
// onto the caller's span and one distributed query yields one span tree.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "query/query.h"
#include "query/result.h"
#include "storage/segment_id.h"

namespace dpss::cluster {

/// A node-side handler: receives the serialized request, returns the
/// serialized response. Throws to signal a node-side error.
using RpcHandler = std::function<std::string(const std::string& requestBytes)>;

/// Abstract call/bind surface every node speaks. Two implementations:
/// the in-process Transport below (virtual clock, chaos injection — the
/// deterministic test substrate) and net::NetTransport (src/net/), which
/// carries the same envelopes over real TCP sockets. Nodes, the RPC
/// policy layer and the stats collector only ever see this interface, so
/// the same node code runs single-process or as one OS process per node.
class TransportIface {
 public:
  virtual ~TransportIface() = default;

  /// Registers/replaces the handler serving `nodeName`.
  virtual void bind(const std::string& nodeName, RpcHandler handler) = 0;
  virtual void unbind(const std::string& nodeName) = 0;
  virtual bool reachable(const std::string& nodeName) const = 0;

  /// Sends request bytes to a node; throws Unavailable when the node is
  /// unbound, unreachable, or an injected/real network failure fires.
  virtual std::string call(const std::string& nodeName,
                           const std::string& request) = 0;

  /// The clock wire latency, deadlines and retry backoff run on.
  virtual Clock& clock() = 0;
};

// --- seeded chaos --------------------------------------------------------

namespace chaos {
/// Bits of ChaosDecision::actions / ChaosEvent::actions.
constexpr std::uint8_t kDrop = 1;       // request lost on the wire
constexpr std::uint8_t kDuplicate = 2;  // request delivered twice
constexpr std::uint8_t kPartition = 4;  // destination cut off for a while
}  // namespace chaos

struct ChaosOptions {
  std::uint64_t seed = 0;
  /// Probability a call's request is dropped (caller sees Unavailable).
  double dropProbability = 0.0;
  /// Probability a delivered request reaches the handler twice (the
  /// duplicate's response is discarded, as a network would discard a
  /// duplicate reply). Exercises handler idempotence.
  double duplicateProbability = 0.0;
  /// Uniform added one-way latency in [min, max] ms, applied to both wire
  /// legs via the transport's Clock (so ManualClock tests stay in
  /// control of time).
  TimeMs latencyJitterMinMs = 0;
  TimeMs latencyJitterMaxMs = 0;
  /// Probability a call opens a timed partition of its destination;
  /// while open, every call to it fails. Duration uniform in [min, max].
  double partitionProbability = 0.0;
  TimeMs partitionMinMs = 0;
  TimeMs partitionMaxMs = 0;
  /// Per-destination overrides of dropProbability.
  std::map<std::string, double> dropProbabilityByDest;
};

/// What the chaos layer decided for one call.
struct ChaosDecision {
  std::uint8_t actions = 0;  // chaos::k* bits
  TimeMs latencyMs = 0;      // added one-way latency
  TimeMs partitionMs = 0;    // partition duration when kPartition set
};

/// One recorded injection, for determinism checks and debugging.
struct ChaosEvent {
  std::string dest;
  std::uint64_t seq = 0;  // per-destination call sequence number
  std::uint8_t actions = 0;
  TimeMs latencyMs = 0;
  TimeMs partitionMs = 0;

  friend bool operator==(const ChaosEvent& a, const ChaosEvent& b) = default;
};

/// Deterministic fault schedule: decide() is a pure function of
/// (options.seed, destination, sequence number), independent of wall
/// time and thread interleaving.
class ChaosPolicy {
 public:
  ChaosPolicy() = default;  // inert
  explicit ChaosPolicy(ChaosOptions options);

  bool enabled() const { return enabled_; }
  ChaosDecision decide(const std::string& dest, std::uint64_t seq) const;

 private:
  ChaosOptions options_{};
  bool enabled_ = false;
};

class Transport final : public TransportIface {
 public:
  explicit Transport(Clock& clock) : clock_(clock) {}

  /// Registers/replaces the handler serving `nodeName`.
  void bind(const std::string& nodeName, RpcHandler handler) override;
  void unbind(const std::string& nodeName) override;
  bool reachable(const std::string& nodeName) const override;

  /// Sends request bytes to a node; throws Unavailable when the node is
  /// unbound, disconnected, or an injected failure fires.
  std::string call(const std::string& nodeName,
                   const std::string& request) override;

  /// The clock wire latency and retry backoff are measured against.
  Clock& clock() override { return clock_; }

  // --- network emulation ----------------------------------------------
  /// One-way artificial latency per call (applied twice: there and back).
  void setLatencyMs(TimeMs ms);
  /// The next `n` calls to `nodeName` throw Unavailable.
  void failNextCalls(const std::string& nodeName, std::size_t n);
  /// Drops a node off the network without unbinding it (partition).
  void setPartitioned(const std::string& nodeName, bool partitioned);

  /// Installs a seeded chaos schedule (resets sequence numbers, open
  /// chaos partitions and the event log).
  void setChaos(ChaosOptions options);
  void clearChaos();
  /// Every injection so far, in injection order (capped; see cc).
  std::vector<ChaosEvent> chaosEvents() const;

  std::uint64_t callCount() const;

 private:
  Clock& clock_;
  mutable Mutex mu_;
  std::map<std::string, RpcHandler> handlers_ DPSS_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> failures_ DPSS_GUARDED_BY(mu_);
  std::map<std::string, bool> partitioned_ DPSS_GUARDED_BY(mu_);
  TimeMs latencyMs_ DPSS_GUARDED_BY(mu_) = 0;
  std::uint64_t calls_ DPSS_GUARDED_BY(mu_) = 0;

  ChaosPolicy chaos_ DPSS_GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> chaosSeq_ DPSS_GUARDED_BY(mu_);
  std::map<std::string, TimeMs> chaosPartitionUntil_ DPSS_GUARDED_BY(mu_);
  std::vector<ChaosEvent> chaosEvents_ DPSS_GUARDED_BY(mu_);
};

// --- wire protocol -------------------------------------------------------

namespace rpc {
/// First byte of every request selects the operation.
constexpr std::uint8_t kQuerySegment = 1;  // scan one served segment
constexpr std::uint8_t kPssInfo = 2;       // describe a document slice
constexpr std::uint8_t kPssSearch = 3;     // run encrypted query on a slice
constexpr std::uint8_t kStats = 4;         // metrics + span snapshot
constexpr std::uint8_t kBrokerQuery = 5;   // broker: full distributed query
constexpr std::uint8_t kBrokerSearch = 6;  // broker: distributed PSS round
constexpr std::uint8_t kSubstrate = 7;     // registry/metastore/storage ops
constexpr std::uint8_t kControl = 8;       // dpss_node process control
constexpr std::uint8_t kSpans = 9;         // span shipping / trace fetch
constexpr std::uint8_t kSubscribe = 10;    // register/attach a subscription
constexpr std::uint8_t kUnsubscribe = 11;  // retire a subscription
constexpr std::uint8_t kSnapshot = 12;     // fetch sealed snapshots (acked)
}  // namespace rpc

/// Request to scan one served segment.
struct SegmentQueryRequest {
  storage::SegmentId segment;
  query::QuerySpec spec;

  std::string encode() const;  // includes the rpc::kQuerySegment tag
  static SegmentQueryRequest decode(const std::string& bytes);  // after tag
};

/// Issues a segment-scan RPC and decodes the partial result.
query::QueryResult callQuerySegment(TransportIface& transport,
                                    const std::string& nodeName,
                                    const storage::SegmentId& segment,
                                    const query::QuerySpec& spec);

}  // namespace dpss::cluster
