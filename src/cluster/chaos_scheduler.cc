#include "cluster/chaos_scheduler.h"

#include <algorithm>

#include "cluster/stats.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"

namespace dpss::cluster {

namespace {

const obs::MetricId kEventsApplied = obs::internCounter("chaos.events.applied");
const obs::MetricId kEventsSkipped = obs::internCounter("chaos.events.skipped");
const obs::MetricId kNodeCrashes = obs::internCounter("chaos.node.crashes");
const obs::MetricId kNodeRestarts = obs::internCounter("chaos.node.restarts");
const obs::MetricId kStorageFaults = obs::internCounter("chaos.storage.faults");
const obs::MetricId kStorageCorruptions =
    obs::internCounter("chaos.storage.corruptions");
const obs::MetricId kRegistryExpiries =
    obs::internCounter("chaos.registry.expiries");
const obs::MetricId kMembershipEvents =
    obs::internCounter("chaos.membership.events");
const obs::MetricId kSubscriptionEvents =
    obs::internCounter("chaos.subscription.events");

}  // namespace

const char* toString(ChaosEventKind kind) {
  switch (kind) {
    case ChaosEventKind::kHistoricalCrash:
      return "historical-crash";
    case ChaosEventKind::kHistoricalRestart:
      return "historical-restart";
    case ChaosEventKind::kRealtimeCrash:
      return "realtime-crash";
    case ChaosEventKind::kRealtimeRestart:
      return "realtime-restart";
    case ChaosEventKind::kBrokerStop:
      return "broker-stop";
    case ChaosEventKind::kBrokerRestart:
      return "broker-restart";
    case ChaosEventKind::kStorageGetOutage:
      return "storage-get-outage";
    case ChaosEventKind::kStoragePutOutage:
      return "storage-put-outage";
    case ChaosEventKind::kStorageSlowReads:
      return "storage-slow-reads";
    case ChaosEventKind::kStorageCorruptReads:
      return "storage-corrupt-reads";
    case ChaosEventKind::kStorageCorruptBlob:
      return "storage-corrupt-blob";
    case ChaosEventKind::kRegistryExpiry:
      return "registry-expiry";
    case ChaosEventKind::kHistoricalJoin:
      return "historical-join";
    case ChaosEventKind::kHistoricalDecommission:
      return "historical-decommission";
    case ChaosEventKind::kCoordinatorDepose:
      return "coordinator-depose";
    case ChaosEventKind::kSubscriptionSubscribe:
      return "subscription-subscribe";
    case ChaosEventKind::kSubscriptionUnsubscribe:
      return "subscription-unsubscribe";
    case ChaosEventKind::kSubscriptionSnapshotDeadline:
      return "subscription-snapshot-deadline";
  }
  return "unknown";
}

std::vector<ClusterChaosEvent> ChaosScheduler::buildSchedule(
    const ChaosScheduleOptions& options, std::size_t historicalCount,
    std::size_t realtimeCount, TimeMs startMs) {
  std::vector<ClusterChaosEvent> out;
  Rng rng(hashCombine(options.seed, fnv1a("cluster-chaos")));

  struct FaultClass {
    ChaosEventKind kind;
    double weight;
  };
  std::vector<FaultClass> classes;
  const auto add = [&classes](ChaosEventKind kind, double weight) {
    if (weight > 0) classes.push_back({kind, weight});
  };
  if (historicalCount > 0) {
    add(ChaosEventKind::kHistoricalCrash, options.historicalCrashWeight);
  }
  if (realtimeCount > 0) {
    add(ChaosEventKind::kRealtimeCrash, options.realtimeCrashWeight);
  }
  add(ChaosEventKind::kBrokerStop, options.brokerRestartWeight);
  add(ChaosEventKind::kStorageGetOutage, options.storageGetOutageWeight);
  add(ChaosEventKind::kStoragePutOutage, options.storagePutOutageWeight);
  add(ChaosEventKind::kStorageSlowReads, options.storageSlowReadWeight);
  add(ChaosEventKind::kStorageCorruptReads, options.storageCorruptReadWeight);
  add(ChaosEventKind::kStorageCorruptBlob, options.storageCorruptBlobWeight);
  if (historicalCount + realtimeCount > 0) {
    add(ChaosEventKind::kRegistryExpiry, options.registryExpiryWeight);
  }
  add(ChaosEventKind::kHistoricalJoin, options.historicalJoinWeight);
  if (historicalCount > 0) {
    add(ChaosEventKind::kHistoricalDecommission, options.decommissionWeight);
  }
  add(ChaosEventKind::kCoordinatorDepose, options.coordinatorDeposeWeight);
  // Subscription churn rides behind every older class so legacy seeds
  // (all three weights 0) replay byte-identically.
  add(ChaosEventKind::kSubscriptionSubscribe,
      options.subscriptionSubscribeWeight);
  add(ChaosEventKind::kSubscriptionUnsubscribe,
      options.subscriptionUnsubscribeWeight);
  if (realtimeCount > 0) {
    add(ChaosEventKind::kSubscriptionSnapshotDeadline,
        options.subscriptionSnapshotDeadlineWeight);
  }
  double totalWeight = 0;
  for (const auto& c : classes) totalWeight += c.weight;
  if (classes.empty() || totalWeight <= 0 || options.meanEventGapMs <= 0) {
    return out;
  }

  TimeMs t = startMs;
  for (;;) {
    const TimeMs gap = rng.between(std::max<TimeMs>(1, options.meanEventGapMs / 2),
                                   options.meanEventGapMs * 3 / 2);
    t += std::max<TimeMs>(1, gap);
    if (t > startMs + options.horizonMs) break;

    double draw = rng.uniform01() * totalWeight;
    ChaosEventKind kind = classes.back().kind;
    for (const auto& c : classes) {
      if (draw < c.weight) {
        kind = c.kind;
        break;
      }
      draw -= c.weight;
    }

    ClusterChaosEvent e;
    e.at = t;
    e.kind = kind;
    switch (kind) {
      case ChaosEventKind::kHistoricalCrash: {
        e.target = static_cast<std::uint32_t>(rng.below(historicalCount));
        out.push_back(e);
        ClusterChaosEvent restart = e;
        restart.kind = ChaosEventKind::kHistoricalRestart;
        restart.at =
            t + rng.between(options.crashDownMinMs, options.crashDownMaxMs);
        out.push_back(restart);
        break;
      }
      case ChaosEventKind::kRealtimeCrash: {
        e.target = static_cast<std::uint32_t>(rng.below(realtimeCount));
        out.push_back(e);
        ClusterChaosEvent restart = e;
        restart.kind = ChaosEventKind::kRealtimeRestart;
        restart.at =
            t + rng.between(options.crashDownMinMs, options.crashDownMaxMs);
        out.push_back(restart);
        break;
      }
      case ChaosEventKind::kBrokerStop: {
        out.push_back(e);
        ClusterChaosEvent restart = e;
        restart.kind = ChaosEventKind::kBrokerRestart;
        restart.at =
            t + rng.between(options.crashDownMinMs, options.crashDownMaxMs);
        out.push_back(restart);
        break;
      }
      case ChaosEventKind::kStorageGetOutage:
      case ChaosEventKind::kStoragePutOutage:
      case ChaosEventKind::kStorageCorruptReads:
        e.param = rng.between(1, std::max<std::int64_t>(1, options.storageBurstMaxOps));
        out.push_back(e);
        break;
      case ChaosEventKind::kStorageSlowReads:
        e.param = rng.between(1, std::max<std::int64_t>(1, options.storageBurstMaxOps));
        e.param2 = rng.between(options.slowReadMinMs, options.slowReadMaxMs);
        out.push_back(e);
        break;
      case ChaosEventKind::kStorageCorruptBlob:
        // Blob resolved at apply time (the set of keys depends on cluster
        // state); the raw draw keeps the choice seed-determined.
        e.target = static_cast<std::uint32_t>(rng.next() & 0xffffffffu);
        out.push_back(e);
        break;
      case ChaosEventKind::kRegistryExpiry:
        e.target = static_cast<std::uint32_t>(
            rng.below(historicalCount + realtimeCount));
        out.push_back(e);
        break;
      case ChaosEventKind::kHistoricalJoin:
      case ChaosEventKind::kCoordinatorDepose:
        out.push_back(e);
        break;
      case ChaosEventKind::kHistoricalDecommission:
        // Node resolved at apply time (the live set grows with joins);
        // the raw draw keeps the choice seed-determined.
        e.target = static_cast<std::uint32_t>(rng.next() & 0xffffffffu);
        out.push_back(e);
        break;
      case ChaosEventKind::kSubscriptionSubscribe:
      case ChaosEventKind::kSubscriptionUnsubscribe:
      case ChaosEventKind::kSubscriptionSnapshotDeadline:
        // Subscribe/unsubscribe targets resolve in the harness hook; the
        // deadline target is a realtime index reduced at apply time.
        e.target = static_cast<std::uint32_t>(rng.next() & 0xffffffffu);
        out.push_back(e);
        break;
      case ChaosEventKind::kHistoricalRestart:
      case ChaosEventKind::kRealtimeRestart:
      case ChaosEventKind::kBrokerRestart:
        break;  // never drawn directly; paired with the crash above
    }
  }
  // Paired restarts were appended out of order; a stable sort keeps equal
  // timestamps in insertion order, so the result is still deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const ClusterChaosEvent& a, const ClusterChaosEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

ChaosScheduler::ChaosScheduler(Cluster& cluster, ChaosScheduleOptions options)
    : cluster_(cluster), options_(std::move(options)) {
  schedule_ =
      buildSchedule(options_, cluster_.historicalCount(),
                    cluster_.realtimeCount(), cluster_.clock().nowMs());
  const ChaosOptions& t = options_.transport;
  if (t.dropProbability > 0 || t.duplicateProbability > 0 ||
      t.partitionProbability > 0 || t.latencyJitterMaxMs > 0 ||
      !t.dropProbabilityByDest.empty()) {
    ChaosOptions wired = t;
    // One seed replays the whole story: wire-level chaos derives its seed
    // from the scheduler's.
    wired.seed = hashCombine(options_.seed, fnv1a("transport-chaos"));
    cluster_.transport().setChaos(wired);
    transportChaosInstalled_ = true;
  }
  cluster_.transport().bind("chaos-scheduler", [this](const std::string& req) {
    if (req.empty() || static_cast<std::uint8_t>(req[0]) != rpc::kStats) {
      throw CorruptData("unsupported rpc");
    }
    return handleStatsRpc(obs_, req.substr(1));
  });
  DPSS_LOG(Info) << "chaos scheduler armed: seed " << options_.seed << ", "
                 << schedule_.size() << " events over " << options_.horizonMs
                 << "ms";
}

ChaosScheduler::~ChaosScheduler() {
  if (transportChaosInstalled_) cluster_.transport().clearChaos();
  cluster_.transport().unbind("chaos-scheduler");
}

std::size_t ChaosScheduler::pump() {
  const TimeMs now = cluster_.clock().nowMs();
  std::size_t processed = 0;
  for (;;) {
    ClusterChaosEvent e;
    {
      MutexLock lock(mu_);
      if (next_ >= schedule_.size() || schedule_[next_].at > now) break;
      e = schedule_[next_++];
    }
    apply(e);
    ++processed;
  }
  return processed;
}

bool ChaosScheduler::done() const {
  MutexLock lock(mu_);
  return next_ >= schedule_.size();
}

void ChaosScheduler::heal() {
  {
    // Abandon anything not yet injected: the story is over.
    MutexLock lock(mu_);
    next_ = schedule_.size();
  }
  cluster_.deepStorage().clearFaults();
  if (transportChaosInstalled_) {
    cluster_.transport().clearChaos();
    transportChaosInstalled_ = false;
  }
  for (std::size_t i = 0; i < cluster_.historicalCount(); ++i) {
    if (!cluster_.historical(i).running()) {
      cluster_.historical(i).start();
      obs_.counter(kNodeRestarts).inc();
    }
  }
  for (std::size_t i = 0; i < cluster_.realtimeCount(); ++i) {
    if (!cluster_.realtime(i).running()) {
      cluster_.restartRealtime(i);
      obs_.counter(kNodeRestarts).inc();
    }
  }
  if (!cluster_.broker().running()) {
    cluster_.broker().start();
    obs_.counter(kNodeRestarts).inc();
  }
  // Note: an at-rest corrupted blob is deliberately NOT rewritten here —
  // only a replica re-uploading good bytes can heal it, and asserting
  // that is the point of the recovery tests.
}

std::vector<AppliedChaosEvent> ChaosScheduler::log() const {
  MutexLock lock(mu_);
  return log_;
}

void ChaosScheduler::record(const ClusterChaosEvent& event, bool applied,
                            std::string detail) {
  obs_.counter(applied ? kEventsApplied : kEventsSkipped).inc();
  DPSS_LOG(Info) << "chaos " << (applied ? "applied " : "skipped ")
                 << toString(event.kind) << " @" << event.at << " -> "
                 << detail;
  MutexLock lock(mu_);
  log_.push_back(AppliedChaosEvent{event, std::move(detail), applied});
}

void ChaosScheduler::apply(const ClusterChaosEvent& e) {
  switch (e.kind) {
    case ChaosEventKind::kHistoricalCrash: {
      auto& node = cluster_.historical(e.target % cluster_.historicalCount());
      if (!node.running()) {
        record(e, false, node.name());
        return;
      }
      node.crash();
      obs_.counter(kNodeCrashes).inc();
      record(e, true, node.name());
      return;
    }
    case ChaosEventKind::kHistoricalRestart: {
      auto& node = cluster_.historical(e.target % cluster_.historicalCount());
      if (node.running()) {
        record(e, false, node.name());
        return;
      }
      node.start();
      obs_.counter(kNodeRestarts).inc();
      record(e, true, node.name());
      return;
    }
    case ChaosEventKind::kRealtimeCrash: {
      if (cluster_.realtimeCount() == 0) {
        record(e, false, "no-realtime-nodes");
        return;
      }
      const std::size_t i = e.target % cluster_.realtimeCount();
      if (!cluster_.realtime(i).running()) {
        record(e, false, cluster_.realtime(i).name());
        return;
      }
      const std::string name = cluster_.realtime(i).name();
      cluster_.crashRealtime(i);
      obs_.counter(kNodeCrashes).inc();
      record(e, true, name);
      return;
    }
    case ChaosEventKind::kRealtimeRestart: {
      if (cluster_.realtimeCount() == 0) {
        record(e, false, "no-realtime-nodes");
        return;
      }
      const std::size_t i = e.target % cluster_.realtimeCount();
      if (cluster_.realtime(i).running()) {
        record(e, false, cluster_.realtime(i).name());
        return;
      }
      cluster_.restartRealtime(i);
      obs_.counter(kNodeRestarts).inc();
      record(e, true, cluster_.realtime(i).name());
      return;
    }
    case ChaosEventKind::kBrokerStop: {
      if (!cluster_.broker().running()) {
        record(e, false, cluster_.broker().name());
        return;
      }
      cluster_.broker().stop();
      obs_.counter(kNodeCrashes).inc();
      record(e, true, cluster_.broker().name());
      return;
    }
    case ChaosEventKind::kBrokerRestart: {
      if (cluster_.broker().running()) {
        record(e, false, cluster_.broker().name());
        return;
      }
      cluster_.broker().start();
      obs_.counter(kNodeRestarts).inc();
      record(e, true, cluster_.broker().name());
      return;
    }
    case ChaosEventKind::kStorageGetOutage:
      cluster_.deepStorage().injectGetFailures(
          static_cast<std::size_t>(e.param));
      obs_.counter(kStorageFaults).inc();
      record(e, true, "get-outage x" + std::to_string(e.param));
      return;
    case ChaosEventKind::kStoragePutOutage:
      cluster_.deepStorage().injectPutFailures(
          static_cast<std::size_t>(e.param));
      obs_.counter(kStorageFaults).inc();
      record(e, true, "put-outage x" + std::to_string(e.param));
      return;
    case ChaosEventKind::kStorageSlowReads:
      cluster_.deepStorage().injectSlowGets(static_cast<std::size_t>(e.param),
                                            e.param2);
      obs_.counter(kStorageFaults).inc();
      record(e, true, "slow-reads x" + std::to_string(e.param) + " +" +
                          std::to_string(e.param2) + "ms");
      return;
    case ChaosEventKind::kStorageCorruptReads:
      cluster_.deepStorage().injectCorruptGets(
          static_cast<std::size_t>(e.param));
      obs_.counter(kStorageFaults).inc();
      record(e, true, "corrupt-reads x" + std::to_string(e.param));
      return;
    case ChaosEventKind::kStorageCorruptBlob: {
      const auto keys = cluster_.deepStorage().list();
      if (keys.empty()) {
        record(e, false, "no-blobs");
        return;
      }
      const std::string& key = keys[e.target % keys.size()];
      cluster_.deepStorage().corruptBlob(key);
      obs_.counter(kStorageCorruptions).inc();
      record(e, true, key);
      return;
    }
    case ChaosEventKind::kRegistryExpiry: {
      const std::size_t total =
          cluster_.historicalCount() + cluster_.realtimeCount();
      if (total == 0) {
        record(e, false, "no-nodes");
        return;
      }
      const std::size_t i = e.target % total;
      if (i < cluster_.historicalCount()) {
        auto& node = cluster_.historical(i);
        if (!node.running()) {
          record(e, false, node.name());
          return;
        }
        node.loseRegistrySession();
        obs_.counter(kRegistryExpiries).inc();
        record(e, true, node.name());
      } else {
        auto& node = cluster_.realtime(i - cluster_.historicalCount());
        if (!node.running()) {
          record(e, false, node.name());
          return;
        }
        node.loseRegistrySession();
        obs_.counter(kRegistryExpiries).inc();
        record(e, true, node.name());
      }
      return;
    }
    case ChaosEventKind::kHistoricalJoin: {
      const std::size_t i = cluster_.addHistoricalNode();
      obs_.counter(kMembershipEvents).inc();
      record(e, true, cluster_.historical(i).name());
      return;
    }
    case ChaosEventKind::kHistoricalDecommission: {
      // Candidates: running, not already draining. Refuse to drain the
      // last one — a cluster with zero active historicals can never
      // re-replicate, so the drain would deadlock.
      std::vector<std::size_t> candidates;
      for (std::size_t i = 0; i < cluster_.historicalCount(); ++i) {
        auto& node = cluster_.historical(i);
        if (node.running() && !node.draining()) candidates.push_back(i);
      }
      if (candidates.size() <= 1) {
        record(e, false, "would-empty-cluster");
        return;
      }
      auto& node = cluster_.historical(candidates[e.target % candidates.size()]);
      node.requestDrain();
      obs_.counter(kMembershipEvents).inc();
      record(e, true, node.name());
      return;
    }
    case ChaosEventKind::kCoordinatorDepose: {
      cluster_.coordinator().elector().depose();
      obs_.counter(kMembershipEvents).inc();
      record(e, true, cluster_.coordinator().name());
      return;
    }
    case ChaosEventKind::kSubscriptionSubscribe: {
      if (!options_.onSubscriptionSubscribe) {
        record(e, false, "no-subscribe-hook");
        return;
      }
      const bool ok = options_.onSubscriptionSubscribe(e.target);
      if (ok) obs_.counter(kSubscriptionEvents).inc();
      record(e, ok, "subscribe");
      return;
    }
    case ChaosEventKind::kSubscriptionUnsubscribe: {
      if (!options_.onSubscriptionUnsubscribe) {
        record(e, false, "no-unsubscribe-hook");
        return;
      }
      const bool ok = options_.onSubscriptionUnsubscribe(e.target);
      if (ok) obs_.counter(kSubscriptionEvents).inc();
      record(e, ok, "unsubscribe");
      return;
    }
    case ChaosEventKind::kSubscriptionSnapshotDeadline: {
      if (cluster_.realtimeCount() == 0) {
        record(e, false, "no-realtime-nodes");
        return;
      }
      const std::size_t i = e.target % cluster_.realtimeCount();
      auto& node = cluster_.realtime(i);
      if (!node.running()) {
        record(e, false, node.name());
        return;
      }
      // Deadline pressure: force the seal barrier now instead of waiting
      // for the period/fill trigger, then let delivery proceed normally.
      node.subscriptions().sealAll();
      obs_.counter(kSubscriptionEvents).inc();
      record(e, true, node.name());
      return;
    }
  }
}

}  // namespace dpss::cluster
