#include "cluster/stats.h"

#include <algorithm>
#include <set>

#include "cluster/names.h"
#include "common/bytes.h"
#include "common/error.h"

namespace dpss::cluster {

std::string StatsRequest::encode() const {
  ByteWriter w;
  w.u8(rpc::kStats);
  w.u8(includeSpans ? 1 : 0);
  w.u64(traceIdFilter);
  return w.take();
}

StatsRequest StatsRequest::decode(const std::string& body) {
  ByteReader r(body);
  StatsRequest req;
  req.includeSpans = r.u8() != 0;
  req.traceIdFilter = r.u64();
  return req;
}

void NodeStats::serialize(ByteWriter& w) const {
  metrics.serialize(w);
  w.varint(spans.size());
  for (const auto& s : spans) s.serialize(w);
}

NodeStats NodeStats::deserialize(ByteReader& r) {
  NodeStats stats;
  stats.metrics = obs::MetricsSnapshot::deserialize(r);
  const std::uint64_t n = r.varint();
  stats.spans.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    stats.spans.push_back(obs::Span::deserialize(r));
  }
  return stats;
}

std::string handleStatsRpc(obs::MetricsRegistry& registry,
                           const std::string& body) {
  const StatsRequest req = StatsRequest::decode(body);
  NodeStats stats;
  stats.metrics = registry.snapshot();
  if (req.includeSpans) {
    stats.spans = req.traceIdFilter != 0
                      ? registry.spans().forTrace(req.traceIdFilter)
                      : registry.spans().all();
  }
  ByteWriter w;
  stats.serialize(w);
  return w.take();
}

NodeStats callStats(TransportIface& transport, const std::string& nodeName,
                    const StatsRequest& request, const RpcPolicy& policy) {
  const std::string response =
      callWithPolicy(transport, nodeName, request.encode(), policy);
  ByteReader r(response);
  return NodeStats::deserialize(r);
}

std::uint64_t ClusterStats::counterTotal(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& [node, stats] : nodes) {
    (void)node;
    total += stats.metrics.counterValue(name);
  }
  return total;
}

std::uint64_t ClusterStats::histogramCountTotal(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& [node, stats] : nodes) {
    (void)node;
    total += stats.metrics.histogramCount(name);
  }
  return total;
}

std::vector<obs::Span> ClusterStats::allSpans() const {
  std::vector<obs::Span> out;
  for (const auto& [node, stats] : nodes) {
    (void)node;
    out.insert(out.end(), stats.spans.begin(), stats.spans.end());
  }
  return out;
}

std::vector<std::string> ClusterStats::nodesInTrace(
    std::uint64_t traceId) const {
  std::set<std::string> seen;
  for (const auto& [node, stats] : nodes) {
    (void)node;
    for (const auto& s : stats.spans) {
      if (s.traceId == traceId) seen.insert(s.node);
    }
  }
  return {seen.begin(), seen.end()};
}

ClusterStats collectClusterStats(Registry& registry, TransportIface& transport,
                                 const std::vector<std::string>& extraNodes,
                                 std::uint64_t traceIdFilter) {
  std::vector<std::string> targets = registry.children(paths::announcements());
  for (const auto& extra : extraNodes) {
    if (std::find(targets.begin(), targets.end(), extra) == targets.end()) {
      targets.push_back(extra);
    }
  }
  StatsRequest req;
  req.traceIdFilter = traceIdFilter;
  ClusterStats cluster;
  for (const auto& node : targets) {
    try {
      cluster.nodes[node] = callStats(transport, node, req);
    } catch (const Error&) {
      continue;  // unreachable or no stats handler: skip
    }
  }
  return cluster;
}

}  // namespace dpss::cluster
