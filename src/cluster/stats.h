// Cluster-wide stats collection over the transport (rpc::kStats).
//
// Every node owns an obs::MetricsRegistry; the kStats RPC returns the
// registry's MetricsSnapshot plus (optionally trace-filtered) spans.
// collectClusterStats() walks the registry announcements — the same
// global view the broker routes from — and calls each reachable node, so
// the coordinator can assemble the cluster picture the paper's evaluation
// tables are built from without touching any node state directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/registry.h"
#include "cluster/rpc_policy.h"
#include "cluster/transport.h"
#include "obs/metrics.h"

namespace dpss::cluster {

struct StatsRequest {
  bool includeSpans = true;
  /// 0 = all spans; otherwise only spans of this trace.
  std::uint64_t traceIdFilter = 0;

  std::string encode() const;  // includes the rpc::kStats tag
  static StatsRequest decode(const std::string& body);  // after tag
};

/// One node's stats response.
struct NodeStats {
  obs::MetricsSnapshot metrics;
  std::vector<obs::Span> spans;

  void serialize(ByteWriter& w) const;
  static NodeStats deserialize(ByteReader& r);
};

/// Node-side kStats implementation over the node's registry; nodes call
/// this from their RPC dispatch.
std::string handleStatsRpc(obs::MetricsRegistry& registry,
                           const std::string& body);

/// Issues one kStats RPC under `policy` (default: retry, no backoff);
/// throws Unavailable like any other call.
NodeStats callStats(TransportIface& transport, const std::string& nodeName,
                    const StatsRequest& request = {},
                    const RpcPolicy& policy = {});

/// The assembled cluster view: node name -> that node's stats.
struct ClusterStats {
  std::map<std::string, NodeStats> nodes;

  /// Sum of a counter across all nodes.
  std::uint64_t counterTotal(std::string_view name) const;
  /// Sum of a histogram's observation count across all nodes.
  std::uint64_t histogramCountTotal(std::string_view name) const;
  /// All spans across nodes (each span carries its origin node).
  std::vector<obs::Span> allSpans() const;
  /// Distinct nodes that recorded at least one span of `traceId`.
  std::vector<std::string> nodesInTrace(std::uint64_t traceId) const;
};

/// Polls every node announced in the registry plus `extraNodes` (e.g. the
/// broker, which answers queries but never announces). Unreachable nodes
/// are skipped — stats collection must never take the cluster down.
ClusterStats collectClusterStats(Registry& registry, TransportIface& transport,
                                 const std::vector<std::string>& extraNodes = {},
                                 std::uint64_t traceIdFilter = 0);

}  // namespace dpss::cluster
