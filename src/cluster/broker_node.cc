#include "cluster/broker_node.h"

#include <future>

#include "cluster/broker_rpc.h"
#include "cluster/names.h"
#include "cluster/stats.h"
#include "cluster/subscription_broker.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace dpss::cluster {

using storage::SegmentId;

namespace {

const obs::MetricId kQueryCount = obs::internCounter("broker.query.count");
const obs::MetricId kQueryNs = obs::internHistogram("broker.query.ns");
const obs::MetricId kScatterLatencyNs =
    obs::internHistogram("broker.scatter.latency_ns");
const obs::MetricId kScatterRpcs = obs::internCounter("broker.scatter.rpcs");
const obs::MetricId kCacheHits = obs::internCounter("broker.cache.hits");
const obs::MetricId kCacheMisses = obs::internCounter("broker.cache.misses");
const obs::MetricId kCacheLossServes =
    obs::internCounter("broker.cache.loss_serves");
const obs::MetricId kMergeNs = obs::internHistogram("broker.merge.ns");
const obs::MetricId kPssSearches = obs::internCounter("broker.pss.searches");
const obs::MetricId kPartialQueries =
    obs::internCounter("broker.query.partial");
const obs::MetricId kLostSegments =
    obs::internCounter("broker.scatter.lost_segments");

}  // namespace

BrokerNode::BrokerNode(std::string name, Registry& registry,
                       TransportIface& transport, BrokerOptions options)
    : name_(std::move(name)),
      registry_(registry),
      transport_(transport),
      options_(options) {
  DPSS_CHECK_MSG(options_.scatterThreads >= 1, "need at least one thread");
  obs_.queryLog().setSlowThresholdNs(
      static_cast<std::uint64_t>(options_.slowQueryMs) * 1'000'000ULL);
}

BrokerNode::~BrokerNode() { stop(); }

void BrokerNode::start() {
  MutexLock lock(mu_);
  DPSS_CHECK_MSG(!running_, "broker already running");
  session_ = registry_.connect(name_);
  pool_ = std::make_shared<ThreadPool>(options_.scatterThreads);
  running_ = true;
  viewDirty_ = true;
  // The broker answers stats probes (it never announces, so the
  // coordinator lists it explicitly when assembling cluster stats) and —
  // for clients in other processes — full queries and PSS rounds.
  transport_.bind(name_, [this](const std::string& req) {
    if (req.empty()) throw CorruptData("empty broker rpc");
    switch (static_cast<std::uint8_t>(req[0])) {
      case rpc::kStats:
        return handleStatsRpc(obs_, req.substr(1));
      case rpc::kBrokerQuery:
      case rpc::kBrokerSearch:
        return handleBrokerRpc(*this, req);
      case rpc::kSubscribe:
      case rpc::kUnsubscribe:
      case rpc::kSnapshot: {
        SubscriptionBroker* subs = nullptr;
        {
          MutexLock lock(mu_);
          subs = subscriptions_;
        }
        if (subs == nullptr) {
          throw Unavailable("broker has no subscription plane attached");
        }
        return subs->handleRpc(req);
      }
      default:
        throw CorruptData("unknown broker rpc tag");
    }
  });
  // Any announcement change anywhere invalidates the global view; the
  // next query rebuilds it from the registry.
  watchIds_.push_back(registry_.watchChildren(
      paths::announcements(), [this](const std::string&) {
        invalidateView();
      }));
}

void BrokerNode::stop() {
  std::vector<std::uint64_t> watches;
  std::shared_ptr<ThreadPool> pool;
  SessionPtr session;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    running_ = false;
    watches = std::move(watchIds_);
    watchIds_.clear();
    nodeWatches_.clear();
    session = std::move(session_);
    session_.reset();
    pool = std::move(pool_);
    pool_.reset();
  }
  for (const auto id : watches) registry_.unwatch(id);
  transport_.unbind(name_);
  // Expire the session outside mu_: its watch notifications may re-enter
  // this broker's invalidateView(), which takes mu_.
  registry_.expire(session);
  // Release the broker's pool reference outside mu_: scatter tasks take
  // mu_ (cache probes), so joining workers under the lock would deadlock.
  // In-flight queries hold their own pin; the pool dies with the last one.
  pool.reset();
}

void BrokerNode::invalidateView() {
  MutexLock lock(mu_);
  viewDirty_ = true;
}

BrokerNode::View BrokerNode::buildView() {
  // Served-segment znodes carry the canonical id string as data (the
  // znode *name* is an escaped, lossy form).
  View view;
  for (const auto& node : registry_.children(paths::announcements())) {
    const std::string nodePath = paths::nodeAnnouncement(node);
    // Watch every node's served-segments path: the segment announcements
    // are grandchildren of /announcements, invisible to the root watch.
    if (nodeWatches_.emplace(nodePath).second) {
      watchIds_.push_back(registry_.watchChildren(
          nodePath, [this](const std::string&) { invalidateView(); }));
    }
    for (const auto& child : registry_.children(nodePath)) {
      const auto data = registry_.getData(nodePath + "/" + child);
      if (!data) continue;
      SegmentId id;
      try {
        id = SegmentId::parse(*data);
      } catch (const Error&) {
        continue;  // unparseable announcement: skip defensively
      }
      view.serving[id].insert(node);
      view.timelines[id.dataSource].add(id);
    }
  }
  return view;
}

BrokerQueryOutcome BrokerNode::query(const query::QuerySpec& spec) {
  obs::ScopedRegistry obsScope(obs_);
  obs::SpanGuard querySpan("broker.query");
  querySpan.tag("data_source", spec.dataSource);
  obs_.counter(kQueryCount).inc();
  obs::ScopedTimer queryTimer(obs_.histogram(kQueryNs));

  // Snapshot routing decisions under one lock: visible segments and the
  // replica rotation for each.
  struct Target {
    SegmentId id;
    std::vector<std::string> replicas;
    std::string cacheKey;
  };
  std::vector<Target> targets;
  std::shared_ptr<ThreadPool> pool;
  {
    MutexLock lock(mu_);
    if (!running_) throw Unavailable("broker not running: " + name_);
    pool = pool_;  // pin: a concurrent stop() must not join under our feet
    if (viewDirty_) {
      view_ = buildView();
      viewDirty_ = false;
    }
    const auto it = view_.timelines.find(spec.dataSource);
    if (it != view_.timelines.end()) {
      for (const auto& id : it->second.lookup(spec.interval)) {
        Target t;
        t.id = id;
        const auto servingIt = view_.serving.find(id);
        if (servingIt != view_.serving.end()) {
          t.replicas.assign(servingIt->second.begin(),
                            servingIt->second.end());
        }
        if (t.replicas.size() > 1) {
          const std::size_t rot = rng_.below(t.replicas.size());
          std::rotate(t.replicas.begin(), t.replicas.begin() + rot,
                      t.replicas.end());
        }
        t.cacheKey = id.toString() + "|" + spec.fingerprint();
        targets.push_back(std::move(t));
      }
    }
  }

  BrokerQueryOutcome outcome;
  outcome.segmentsQueried = targets.size();
  outcome.traceId = querySpan.traceId();

  // Slow-query log bookkeeping: per-segment latency attribution shared
  // across the scatter tasks, flushed into obs_.queryLog() on exit.
  const std::uint64_t queryStartNs = obs::nowNanos();
  Mutex statsMu;
  std::vector<obs::QuerySegmentLatency> segmentLatencies;
  std::uint64_t bytesMoved = 0;

  // Scatter: one task per segment (the paper's parallel query unit).
  // Pool workers re-enter this node's observability scope and continue
  // the query's trace explicitly — thread-locals don't cross the pool.
  const obs::TraceContext traceCtx = obs::currentTraceContext();
  std::vector<std::future<query::QueryResult>> futures;
  futures.reserve(targets.size());
  for (const auto& target : targets) {
    futures.push_back(pool->submit([this, target, spec, &outcome, &statsMu,
                                    &segmentLatencies, &bytesMoved,
                                    traceCtx]() -> query::QueryResult {
      obs::ScopedRegistry obsScope(obs_);
      obs::TraceScope traceScope(traceCtx);
      obs::SpanGuard scatterSpan("broker.scatter");
      scatterSpan.tag("segment", target.id.toString());
      const std::uint64_t taskStartNs = obs::nowNanos();
      const auto attribute = [&](const std::string& node,
                                 std::uint64_t latencyNs,
                                 const char* outcomeLabel) {
        MutexLock lock(statsMu);
        segmentLatencies.push_back(obs::QuerySegmentLatency{
            target.id.toString(), node, latencyNs, outcomeLabel});
      };
      // Historical segments are immutable, so a cached partial is always
      // valid. Real-time segments keep the same id while events arrive —
      // caching their scans freezes the count at whatever the first scan
      // saw, so they always take the RPC path.
      const bool cacheable = !target.id.mutableRealtime();
      if (cacheable) {
        obs::SpanGuard probeSpan("broker.cache.probe");
        if (auto cached = cacheGet(target.cacheKey)) {
          obs_.counter(kCacheHits).inc();
          if (target.replicas.empty()) obs_.counter(kCacheLossServes).inc();
          attribute("", obs::nowNanos() - taskStartNs,
                    target.replicas.empty() ? "cache_after_loss"
                                            : "cache_hit");
          MutexLock lock(statsMu);
          ++outcome.cacheHits;
          if (target.replicas.empty()) ++outcome.servedFromCacheAfterLoss;
          return *cached;
        }
      }
      if (cacheable) obs_.counter(kCacheMisses).inc();
      for (const auto& node : target.replicas) {
        try {
          obs_.counter(kScatterRpcs).inc();
          const std::uint64_t rpcStart = obs::nowNanos();
          const SegmentQueryRequest req{target.id, spec};
          const std::string responseBytes =
              callWithPolicy(transport_, node, req.encode(), options_.rpcPolicy);
          ByteReader resultReader(responseBytes);
          auto result = query::QueryResult::deserialize(resultReader);
          const std::uint64_t rpcNs = obs::nowNanos() - rpcStart;
          obs_.histogram(kScatterLatencyNs).observe(rpcNs);
          scatterSpan.tag("node", node);
          attribute(node, rpcNs, "ok");
          {
            MutexLock lock(statsMu);
            bytesMoved += responseBytes.size();
          }
          if (cacheable) cachePut(target.cacheKey, result);
          return result;
        } catch (const Unavailable&) {
          continue;  // try the next replica
        } catch (const NotFound&) {
          continue;  // stale view: node no longer serves it
        }
      }
      attribute("", obs::nowNanos() - taskStartNs, "unreachable");
      throw Unavailable("all replicas of " + target.id.toString() +
                        " unreachable and result not cached");
    }));
  }

  // Drain every future before any rethrow: tasks capture references to
  // this frame, so unwinding with tasks still running would dangle.
  obs::SpanGuard mergeSpan("broker.merge");
  obs::ScopedTimer mergeTimer(obs_.histogram(kMergeNs));
  query::QueryResult merged;
  std::string firstLost;
  std::exception_ptr firstError;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      merged.mergeFrom(futures[i].get());
    } catch (const Unavailable&) {
      outcome.unreachableSegments.push_back(targets[i].id);
      if (firstLost.empty()) firstLost = targets[i].id.toString();
    } catch (const std::future_error&) {
      // stop() abandoned the task before a worker picked it up.
      outcome.unreachableSegments.push_back(targets[i].id);
      if (firstLost.empty()) firstLost = targets[i].id.toString();
    } catch (...) {
      // User-level error (bad column, malformed spec): surface after all
      // tasks finished.
      if (!firstError) firstError = std::current_exception();
    }
  }
  // Every exit path below flushes one record into the slow-query log;
  // partial and errored queries are always kept (QueryLog retention).
  const auto logQuery = [&](const std::string& error) {
    obs::QueryLogRecord rec;
    rec.traceId = outcome.traceId;
    rec.kind = "query";
    rec.target = spec.dataSource;
    rec.startNs = queryStartNs;
    rec.durationNs = obs::nowNanos() - queryStartNs;
    rec.segmentsQueried = outcome.segmentsQueried;
    rec.cacheHits = outcome.cacheHits;
    rec.partial = outcome.partial();
    for (const auto& id : outcome.unreachableSegments) {
      rec.unreachableSegments.push_back(id.toString());
    }
    rec.error = error;
    MutexLock lock(statsMu);
    rec.bytesMoved = bytesMoved;
    rec.segments = segmentLatencies;
    obs_.queryLog().record(std::move(rec));
  };
  if (firstError) {
    try {
      std::rethrow_exception(firstError);
    } catch (const std::exception& e) {
      logQuery(e.what());
      throw;
    }
  }
  const std::size_t lost = outcome.unreachableSegments.size();
  if (lost > 0) {
    obs_.counter(kLostSegments).inc(lost);
    // Graceful degradation: a strict minority of lost segments yields a
    // partial answer; losing half or more means the result would be more
    // hole than data, so fail loudly instead.
    if (lost * 2 >= targets.size()) {
      const std::string msg =
          "segments unavailable (no replica, no cache): " + firstLost +
          " (+" + std::to_string(lost - 1) + " more)";
      logQuery(msg);
      throw Unavailable(msg);
    }
    obs_.counter(kPartialQueries).inc();
  }

  outcome.rowsScanned = merged.rowsScanned;
  outcome.rows = finalizeResult(spec, merged);
  logQuery("");
  return outcome;
}

std::vector<pss::SearchResultEnvelope> BrokerNode::privateSearch(
    const std::string& docSource, const pss::Dictionary& dictionary,
    const pss::EncryptedQuery& encryptedQuery, std::uint64_t* traceIdOut) {
  obs::ScopedRegistry obsScope(obs_);
  obs::SpanGuard searchSpan("broker.private_search");
  searchSpan.tag("doc_source", docSource);
  obs_.counter(kPssSearches).inc();
  if (traceIdOut != nullptr) *traceIdOut = searchSpan.traceId();

  const std::uint64_t searchStartNs = obs::nowNanos();
  Mutex statsMu;
  std::vector<obs::QuerySegmentLatency> sliceLatencies;
  std::uint64_t bytesMoved = 0;

  std::shared_ptr<ThreadPool> pool;
  {
    MutexLock lock(mu_);
    if (!running_) throw Unavailable("broker not running: " + name_);
    pool = pool_;  // pin across a concurrent stop(), as in query()
  }

  // Discover nodes holding slices of the document source and their
  // maximum payload size, so every node searches with the same s.
  std::vector<std::string> nodes;
  for (const auto& node : registry_.children(paths::announcements())) {
    nodes.push_back(node);
  }
  struct SliceInfo {
    std::string node;
    std::uint64_t base = 0;
    std::uint64_t count = 0;
    std::uint64_t maxPayload = 0;
  };
  std::vector<SliceInfo> slices;
  for (const auto& node : nodes) {
    ByteWriter w;
    w.u8(rpc::kPssInfo);
    w.str(docSource);
    try {
      const std::string resp =
          callWithPolicy(transport_, node, w.data(), options_.rpcPolicy);
      ByteReader r(resp);
      SliceInfo info;
      info.node = node;
      info.base = r.u64();
      info.count = r.varint();
      info.maxPayload = r.varint();
      if (info.count > 0) slices.push_back(std::move(info));
    } catch (const Error&) {
      continue;  // node has no slice / unreachable
    }
  }
  if (slices.empty()) {
    throw NotFound("no node serves document source: " + docSource);
  }

  std::uint64_t maxPayload = 0;
  for (const auto& s : slices) maxPayload = std::max(maxPayload, s.maxPayload);
  const pss::BlockCodec codec(pss::BlockCodec::maxBlockBytesFor(
      encryptedQuery.publicKey().modulusBits()));
  const std::size_t pack = std::max<std::size_t>(options_.pssPackFactor, 1);
  // Packed mode sizes s for the worst-case group of `pack` max-sized
  // payloads; every node then encodes into the same block count.
  const std::size_t blocks = codec.blockCount(
      pack > 1 ? pss::maxPackedBytes(pack, maxPayload) : maxPayload);

  // Scatter the encrypted query; each node searches its slice.
  std::vector<std::future<pss::SearchResultEnvelope>> futures;
  for (const auto& slice : slices) {
    ByteWriter w;
    w.u8(rpc::kPssSearch);
    w.str(docSource);
    w.varint(dictionary.size());
    for (const auto& word : dictionary.words()) w.str(word);
    encryptedQuery.serialize(w);
    w.varint(blocks);
    std::uint64_t seed;
    {
      MutexLock lock(mu_);
      seed = rng_.next();
    }
    w.u64(seed);
    w.varint(pack);
    std::string request = w.take();
    const obs::TraceContext traceCtx = obs::currentTraceContext();
    futures.push_back(pool->submit(
        [this, node = slice.node, request = std::move(request), traceCtx,
         &statsMu, &sliceLatencies, &bytesMoved] {
          obs::ScopedRegistry obsScope(obs_);
          obs::TraceScope traceScope(traceCtx);
          obs::SpanGuard span("broker.pss.scatter");
          span.tag("node", node);
          obs_.counter(kScatterRpcs).inc();
          const std::uint64_t rpcStart = obs::nowNanos();
          try {
            const std::string resp =
                callWithPolicy(transport_, node, request, options_.rpcPolicy);
            const std::uint64_t rpcNs = obs::nowNanos() - rpcStart;
            obs_.histogram(kScatterLatencyNs).observe(rpcNs);
            {
              MutexLock lock(statsMu);
              sliceLatencies.push_back(
                  obs::QuerySegmentLatency{node, node, rpcNs, "ok"});
              bytesMoved += resp.size();
            }
            ByteReader r(resp);
            return pss::SearchResultEnvelope::deserialize(r);
          } catch (...) {
            MutexLock lock(statsMu);
            sliceLatencies.push_back(obs::QuerySegmentLatency{
                node, "", obs::nowNanos() - rpcStart, "unreachable"});
            throw;
          }
        }));
  }
  // Drain every future before any rethrow — same dangling-frame rule as
  // query(). A missing envelope makes reconstruction impossible, so the
  // first failure surfaces once all slices settled.
  std::vector<pss::SearchResultEnvelope> envelopes;
  envelopes.reserve(futures.size());
  std::exception_ptr firstError;
  for (auto& f : futures) {
    try {
      envelopes.push_back(f.get());
    } catch (const std::future_error&) {
      if (!firstError) {
        firstError = std::make_exception_ptr(
            Unavailable("broker stopped mid-search: " + name_));
      }
    } catch (...) {
      if (!firstError) firstError = std::current_exception();
    }
  }
  const auto logSearch = [&](const std::string& error) {
    obs::QueryLogRecord rec;
    rec.traceId = searchSpan.traceId();
    rec.kind = "pss";
    rec.target = docSource;
    rec.startNs = searchStartNs;
    rec.durationNs = obs::nowNanos() - searchStartNs;
    rec.segmentsQueried = slices.size();
    rec.error = error;
    MutexLock lock(statsMu);
    rec.bytesMoved = bytesMoved;
    rec.segments = sliceLatencies;
    for (const auto& s : rec.segments) {
      if (s.outcome == "unreachable") rec.unreachableSegments.push_back(s.segment);
    }
    rec.partial = !rec.unreachableSegments.empty();
    obs_.queryLog().record(std::move(rec));
  };
  if (firstError) {
    try {
      std::rethrow_exception(firstError);
    } catch (const std::exception& e) {
      logSearch(e.what());
      throw;
    }
  }
  logSearch("");
  return envelopes;
}

std::vector<SegmentId> BrokerNode::visibleSegments(
    const std::string& dataSource, const Interval& interval) {
  MutexLock lock(mu_);
  if (viewDirty_) {
    view_ = buildView();
    viewDirty_ = false;
  }
  const auto it = view_.timelines.find(dataSource);
  if (it == view_.timelines.end()) return {};
  return it->second.lookup(interval);
}

void BrokerNode::cachePut(const std::string& key,
                          const query::QueryResult& result) {
  MutexLock lock(mu_);
  const auto it = cacheIndex_.find(key);
  if (it != cacheIndex_.end()) {
    cacheList_.erase(it->second);
    cacheIndex_.erase(it);
  }
  cacheList_.push_front(CacheEntry{key, result});
  cacheIndex_[key] = cacheList_.begin();
  while (cacheList_.size() > options_.resultCacheCapacity) {
    cacheIndex_.erase(cacheList_.back().key);
    cacheList_.pop_back();
  }
}

std::optional<query::QueryResult> BrokerNode::cacheGet(const std::string& key) {
  MutexLock lock(mu_);
  const auto it = cacheIndex_.find(key);
  if (it == cacheIndex_.end()) return std::nullopt;
  cacheList_.splice(cacheList_.begin(), cacheList_, it->second);
  return it->second->result;
}

}  // namespace dpss::cluster
