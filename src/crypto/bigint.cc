#include "crypto/bigint.h"

#include <memory>
#include <vector>

#include "common/error.h"

namespace dpss::crypto {

Bigint::Bigint(const std::string& decimal) {
  if (mpz_init_set_str(z_, decimal.c_str(), 10) != 0) {
    mpz_clear(z_);
    mpz_init(z_);
    throw InvalidArgument("not a decimal integer: '" + decimal + "'");
  }
}

Bigint operator+(const Bigint& a, const Bigint& b) {
  Bigint r;
  mpz_add(r.z_, a.z_, b.z_);
  return r;
}

Bigint operator-(const Bigint& a, const Bigint& b) {
  Bigint r;
  mpz_sub(r.z_, a.z_, b.z_);
  return r;
}

Bigint operator*(const Bigint& a, const Bigint& b) {
  Bigint r;
  mpz_mul(r.z_, a.z_, b.z_);
  return r;
}

Bigint operator%(const Bigint& a, const Bigint& b) {
  DPSS_CHECK_MSG(!b.isZero(), "modulo by zero");
  Bigint r;
  mpz_mod(r.z_, a.z_, b.z_);
  return r;
}

Bigint& Bigint::operator+=(const Bigint& b) {
  mpz_add(z_, z_, b.z_);
  return *this;
}

Bigint& Bigint::operator-=(const Bigint& b) {
  mpz_sub(z_, z_, b.z_);
  return *this;
}

Bigint& Bigint::operator*=(const Bigint& b) {
  mpz_mul(z_, z_, b.z_);
  return *this;
}

Bigint Bigint::divExact(const Bigint& a, const Bigint& b) {
  DPSS_CHECK_MSG(!b.isZero(), "division by zero");
  Bigint r;
  mpz_divexact(r.z_, a.z_, b.z_);
  return r;
}

Bigint Bigint::divFloor(const Bigint& a, const Bigint& b) {
  DPSS_CHECK_MSG(!b.isZero(), "division by zero");
  Bigint r;
  mpz_fdiv_q(r.z_, a.z_, b.z_);
  return r;
}

Bigint Bigint::powm(const Bigint& base, const Bigint& exp, const Bigint& m) {
  DPSS_CHECK_MSG(m.sign() > 0, "powm modulus must be positive");
  DPSS_CHECK_MSG(exp.sign() >= 0, "powm exponent must be non-negative");
  Bigint r;
  mpz_powm(r.z_, base.z_, exp.z_, m.z_);
  return r;
}

Bigint Bigint::powmNaive(const Bigint& base, const Bigint& exp,
                         const Bigint& m) {
  DPSS_CHECK_MSG(m.sign() > 0, "powm modulus must be positive");
  DPSS_CHECK_MSG(exp.sign() >= 0, "powm exponent must be non-negative");
  Bigint result(1);
  result = result % m;  // m == 1 must yield 0
  Bigint b = base % m;
  const std::size_t bits = exp.bitLength();
  // Left-to-right binary: square always, multiply on a set bit.
  for (std::size_t i = bits; i-- > 0;) {
    result = (result * result) % m;
    if (exp.testBit(i)) result = (result * b) % m;
  }
  return result;
}

Bigint Bigint::powmWindowed(const Bigint& base, const Bigint& exp,
                            const Bigint& m, unsigned windowBits) {
  DPSS_CHECK_MSG(m.sign() > 0, "powm modulus must be positive");
  DPSS_CHECK_MSG(exp.sign() >= 0, "powm exponent must be non-negative");
  DPSS_CHECK_MSG(windowBits >= 1 && windowBits <= 8,
                 "window width must be in [1, 8]");
  const std::size_t bits = exp.bitLength();
  Bigint one = Bigint(1) % m;
  if (bits == 0) return one;

  // Odd-power table: table[i] = base^(2i+1) mod m.
  const Bigint b = base % m;
  const Bigint b2 = (b * b) % m;
  std::vector<Bigint> table(std::size_t(1) << (windowBits - 1));
  table[0] = b;
  for (std::size_t i = 1; i < table.size(); ++i) {
    table[i] = (table[i - 1] * b2) % m;
  }

  Bigint result = std::move(one);
  std::size_t i = bits;
  while (i > 0) {
    if (!exp.testBit(i - 1)) {
      result = (result * result) % m;
      --i;
      continue;
    }
    // Take the widest window [i-1 .. l] that ends on a set bit, so the
    // window value is odd and hits the table.
    std::size_t l = (i >= windowBits) ? i - windowBits : 0;
    while (!exp.testBit(l)) ++l;
    std::size_t value = 0;
    for (std::size_t k = i; k-- > l;) {
      result = (result * result) % m;
      value = (value << 1) | (exp.testBit(k) ? 1u : 0u);
    }
    result = (result * table[value >> 1]) % m;
    i = l;
  }
  return result;
}

Bigint Bigint::invert(const Bigint& x, const Bigint& m) {
  Bigint r;
  if (mpz_invert(r.z_, x.z_, m.z_) == 0) {
    throw CryptoError("element not invertible modulo m (gcd != 1)");
  }
  return r;
}

Bigint Bigint::gcd(const Bigint& a, const Bigint& b) {
  Bigint r;
  mpz_gcd(r.z_, a.z_, b.z_);
  return r;
}

Bigint Bigint::lcm(const Bigint& a, const Bigint& b) {
  Bigint r;
  mpz_lcm(r.z_, a.z_, b.z_);
  return r;
}

std::string Bigint::toString() const {
  // +2: sign and NUL.
  std::vector<char> buf(mpz_sizeinbase(z_, 10) + 2);
  mpz_get_str(buf.data(), 10, z_);
  return std::string(buf.data());
}

std::uint64_t Bigint::toUint64() const {
  if (sign() < 0) throw InvalidArgument("negative Bigint to uint64");
  if (bitLength() > 64) throw InvalidArgument("Bigint does not fit uint64");
  std::uint64_t v = 0;
  // mpz_get_ui may truncate on 32-bit longs; export bytes instead.
  const std::string bytes = toBytes();
  for (const char c : bytes) v = (v << 8) | static_cast<unsigned char>(c);
  return v;
}

std::string Bigint::toBytes() const {
  DPSS_CHECK_MSG(sign() >= 0, "cannot serialize negative Bigint");
  if (isZero()) return {};
  const std::size_t n = (bitLength() + 7) / 8;
  std::string out(n, '\0');
  std::size_t written = 0;
  mpz_export(out.data(), &written, /*order=*/1, /*size=*/1, /*endian=*/1,
             /*nails=*/0, z_);
  DPSS_CHECK(written == n);
  return out;
}

Bigint Bigint::fromBytes(std::string_view bytes) {
  Bigint r;
  if (!bytes.empty()) {
    mpz_import(r.z_, bytes.size(), /*order=*/1, /*size=*/1, /*endian=*/1,
               /*nails=*/0, bytes.data());
  }
  return r;
}

Bigint Bigint::randomBits(Rng& rng, std::size_t bits) {
  DPSS_CHECK_MSG(bits >= 1, "randomBits needs bits >= 1");
  const std::size_t nbytes = (bits + 7) / 8;
  std::string buf(nbytes, '\0');
  for (auto& c : buf) c = static_cast<char>(rng.next() & 0xff);
  // Mask excess bits, then force the top bit so the width is exact.
  const std::size_t excess = nbytes * 8 - bits;
  auto top = static_cast<unsigned char>(buf[0]);
  top &= static_cast<unsigned char>(0xff >> excess);
  top |= static_cast<unsigned char>(1u << (7 - excess));
  buf[0] = static_cast<char>(top);
  return fromBytes(buf);
}

Bigint Bigint::randomBelow(Rng& rng, const Bigint& n) {
  DPSS_CHECK_MSG(n.sign() > 0, "randomBelow needs n > 0");
  const std::size_t bits = n.bitLength();
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t excess = nbytes * 8 - bits;
  std::string buf(nbytes, '\0');
  for (;;) {
    for (auto& c : buf) c = static_cast<char>(rng.next() & 0xff);
    buf[0] = static_cast<char>(static_cast<unsigned char>(buf[0]) &
                               (0xff >> excess));
    Bigint candidate = fromBytes(buf);
    if (candidate < n) return candidate;
  }
}

Bigint Bigint::randomPrime(Rng& rng, std::size_t bits) {
  DPSS_CHECK_MSG(bits >= 8, "randomPrime needs bits >= 8");
  for (;;) {
    Bigint candidate = randomBits(rng, bits);
    mpz_setbit(candidate.z_, 0);  // make odd
    if (candidate.isProbablePrime()) return candidate;
    // nextprime accelerates the search; re-check the width afterwards.
    Bigint next;
    mpz_nextprime(next.z_, candidate.z_);
    if (next.bitLength() == bits) return next;
  }
}

}  // namespace dpss::crypto
