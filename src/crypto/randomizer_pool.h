// Precomputed Paillier randomizers.
//
// Every encryption spends one r^n mod n² exponentiation on blinding —
// by far its dominant cost, and independent of the message. A broker
// initializing buffers (l_F·s + l_F + l_I encryptions of zero per batch)
// can precompute randomizers offline/idle and drain them at enqueue
// time; bench_ablation_paillier quantifies the speedup.
#pragma once

#include <cstddef>
#include <deque>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "crypto/paillier.h"

namespace dpss::crypto {

class RandomizerPool {
 public:
  /// Pool for one public key. `rng` is captured by reference and must
  /// outlive the pool.
  RandomizerPool(const PaillierPublicKey& pub, Rng& rng);

  /// Precomputes `count` randomizers (r^n mod n²).
  void refill(std::size_t count);

  std::size_t available() const;

  /// E(m) using a pooled randomizer; falls back to computing one on the
  /// spot when the pool is dry (never blocks, never weakens randomness).
  Ciphertext encrypt(const Bigint& m);
  Ciphertext encryptZero() { return encrypt(Bigint(0)); }

  /// Encryptions served from the pool vs computed on demand.
  std::size_t pooledHits() const;
  std::size_t misses() const;

 private:
  Bigint makeRandomizer() DPSS_EXCLUDES(rngMu_);

  const PaillierPublicKey& pub_;
  Rng& rng_;
  Mutex rngMu_;  // serializes rng draws (fallback + refill paths)
  mutable Mutex mu_;
  std::deque<Bigint> pool_ DPSS_GUARDED_BY(mu_);
  std::size_t hits_ DPSS_GUARDED_BY(mu_) = 0;
  std::size_t misses_ DPSS_GUARDED_BY(mu_) = 0;
};

}  // namespace dpss::crypto
