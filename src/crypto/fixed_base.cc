#include "crypto/fixed_base.h"

#include <utility>

#include "common/error.h"

namespace dpss::crypto {

FixedBaseWindow::FixedBaseWindow(const Bigint& base, const Bigint& modulus,
                                 std::size_t maxExpBits, unsigned windowBits)
    : mod_(modulus), windowBits_(windowBits) {
  DPSS_CHECK_MSG(modulus.sign() > 0, "modulus must be positive");
  DPSS_CHECK_MSG(windowBits >= 1 && windowBits <= 8,
                 "window width must be in [1, 8]");
  DPSS_CHECK_MSG(maxExpBits >= 1, "maxExpBits must be >= 1");
  digits_ = (maxExpBits + windowBits - 1) / windowBits;
  const std::size_t row = (std::size_t(1) << windowBits) - 1;
  table_.resize(digits_ * row);

  // cur = base^(2^(w·i)); each row is cur, cur², ..., cur^(2^w − 1) by
  // one multiplication per entry, and the next cur is the row's last
  // entry times cur (cur^(2^w)) — no squaring chain needed.
  Bigint cur = base % mod_;
  for (std::size_t i = 0; i < digits_; ++i) {
    table_[i * row] = cur;
    for (std::size_t d = 1; d < row; ++d) {
      table_[i * row + d] = (table_[i * row + d - 1] * cur) % mod_;
    }
    if (i + 1 < digits_) {
      cur = (table_[i * row + row - 1] * cur) % mod_;
    }
  }
}

Bigint FixedBaseWindow::pow(const Bigint& exp) const {
  DPSS_CHECK_MSG(exp.sign() >= 0, "exponent must be non-negative");
  DPSS_CHECK_MSG(exp.bitLength() <= maxExpBits(),
                 "exponent wider than the precomputed table");
  const std::size_t row = (std::size_t(1) << windowBits_) - 1;
  Bigint result = Bigint(1) % mod_;
  for (std::size_t i = 0; i < digits_; ++i) {
    std::size_t digit = 0;
    for (unsigned j = 0; j < windowBits_; ++j) {
      if (exp.testBit(i * windowBits_ + j)) digit |= std::size_t(1) << j;
    }
    if (digit != 0) {
      result = (result * table_[i * row + digit - 1]) % mod_;
    }
  }
  return result;
}

}  // namespace dpss::crypto
