// Paillier cryptosystem [Paillier, EUROCRYPT'99] — the additively
// homomorphic scheme the paper's private search runs on (§III-C).
//
// Plaintext space Z_n, ciphertext space Z*_{n²}, generator g = n + 1
// (the standard fast variant: g^m = 1 + m·n mod n²).
//
//   E(m) = (1 + m·n) · r^n  mod n²            r uniform in Z*_n
//   D(c) = L(c^λ mod n²) · μ  mod n           L(x) = (x - 1) / n
//
// Homomorphisms used by the search scheme:
//   E(a)·E(b)      = E(a + b)                 (Ciphertext "addCipher")
//   E(a)^k         = E(a·k)                   (plaintext scalar "mulPlain")
//
// Decryption also ships a CRT fast path (decrypt via p and q separately,
// ~4x faster); bench_ablation_paillier measures both.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/bigint.h"
#include "crypto/sensitive.h"

namespace dpss::crypto {

/// A Paillier ciphertext: an element of Z*_{n²}. Distinct type so plaintext
/// Bigints can never be passed where a ciphertext is expected.
struct Ciphertext {
  Bigint value;

  /// Wire form. CiphertextBlob (crypto/sensitive.h) is the one
  /// sensitive-adjacent payload sanctioned to cross the trust boundary;
  /// every ciphertext serialization path goes through it so the codec
  /// states which species it carries.
  CiphertextBlob toBlob() const { return CiphertextBlob(value.toBytes()); }
  static Ciphertext fromBlob(const CiphertextBlob& blob) {
    return Ciphertext{Bigint::fromBytes(blob.wire())};
  }

  friend bool operator==(const Ciphertext& a, const Ciphertext& b) = default;
};

/// Public key: everything the broker needs to run the stream search.
class PaillierPublicKey {
 public:
  PaillierPublicKey() = default;
  explicit PaillierPublicKey(Bigint n);

  const Bigint& n() const { return n_; }
  const Bigint& nSquared() const { return n2_; }
  std::size_t modulusBits() const { return n_.bitLength(); }

  /// Largest value encodable in one plaintext: n - 1.
  Bigint maxPlaintext() const { return n_ - Bigint(1); }

  /// E(m) with fresh randomness. Requires 0 <= m < n. Fast path: with
  /// g = n+1, g^m collapses to (1 + m·n) mod n², leaving r^n as the only
  /// exponentiation.
  Ciphertext encrypt(const Bigint& m, Rng& rng) const;

  /// E(0) with fresh randomness — buffer slots start as encrypted zeros.
  Ciphertext encryptZero(Rng& rng) const { return encrypt(Bigint(0), rng); }

  /// Reference encryption: g^m · r^n mod n² with both exponentiations
  /// done by the naive square-and-multiply kernel, no g = n+1 shortcut.
  /// The differential suite pins encrypt == encryptGeneric for equal r;
  /// bench_pss_hotpath measures the gap. Never a hot path.
  Ciphertext encryptGeneric(const Bigint& m, Rng& rng) const;

  /// Deterministic fast-path encryption from an explicit randomizer
  /// r ∈ Z*_n: (1 + m·n) · r^n mod n².
  Ciphertext encryptWithR(const Bigint& m, const Bigint& r) const;

  /// Deterministic reference sibling of encryptWithR (generic g^m · r^n,
  /// naive kernel). Same r ⇒ byte-identical ciphertext to encryptWithR.
  Ciphertext encryptGenericWithR(const Bigint& m, const Bigint& r) const;

  /// E(m) from a precomputed blinding factor rn = r^n mod n² — the
  /// randomizer-pool path: one multiplication, no exponentiation.
  Ciphertext encryptWithBlinding(const Bigint& m, const Bigint& rn) const;

  /// Draws r uniform in Z*_n — the rejection loop shared by encrypt and
  /// RandomizerPool so pooled and fresh encryptions consume randomness
  /// identically (same Rng state ⇒ same r ⇒ same ciphertext).
  Bigint drawRandomizer(Rng& rng) const;

  /// E(a)·E(b) mod n² = E(a+b).
  Ciphertext addCipher(const Ciphertext& a, const Ciphertext& b) const;

  /// c^k mod n² = E(m·k). Requires k >= 0.
  Ciphertext mulPlain(const Ciphertext& c, const Bigint& k) const;

  /// c^k for every k in `ks`, sharing one fixed-base window table over c
  /// when the batch is large enough to amortize the build (the broker's
  /// per-segment blockwise fold). Element-wise identical to mulPlain.
  std::vector<Ciphertext> mulPlainMany(const Ciphertext& c,
                                       const std::vector<Bigint>& ks) const;

  /// c·(1+mn) mod n² = E(m' + m) without fresh randomness (used only where
  /// the operand is already a ciphertext with randomness of its own).
  Ciphertext addPlain(const Ciphertext& c, const Bigint& m) const;

  /// True iff v is a syntactically valid ciphertext (in [0, n²), unit).
  bool validCiphertext(const Ciphertext& c) const;

  void serialize(ByteWriter& w) const;
  static PaillierPublicKey deserialize(ByteReader& r);

 private:
  Bigint n_;
  Bigint n2_;
};

/// Private key with CRT precomputation.
///
/// All key material lives in SecretScalar (crypto/sensitive.h): the key
/// is move-only — a copy would be an uncontrolled second residence for
/// the factorization of n — and every scalar is scrubbed on
/// destruction. serialize() remains the one audited persistence path.
class PaillierPrivateKey {
 public:
  PaillierPrivateKey() = default;
  /// p, q distinct odd primes; the public modulus is n = p·q.
  PaillierPrivateKey(Bigint p, Bigint q);

  PaillierPrivateKey(const PaillierPrivateKey&) = delete;
  PaillierPrivateKey& operator=(const PaillierPrivateKey&) = delete;
  PaillierPrivateKey(PaillierPrivateKey&&) noexcept = default;
  PaillierPrivateKey& operator=(PaillierPrivateKey&&) noexcept = default;

  const PaillierPublicKey& publicKey() const { return pub_; }

  /// Standard decryption through λ and μ.
  Bigint decrypt(const Ciphertext& c) const;

  /// CRT decryption (identical result, ~4x faster).
  Bigint decryptCrt(const Ciphertext& c) const;

  /// Batched CRT decryption: one pass over many ciphertexts (the client
  /// opening l_F·(s+1) + l_I buffer slots), amortizing per-call overhead.
  /// Element-wise identical to decryptCrt.
  std::vector<Bigint> decryptCrtBatch(const std::vector<Ciphertext>& cs) const;

  /// Serializes (p, q); deserialize re-derives all precomputation.
  /// Protect the bytes accordingly — this IS the private key.
  void serialize(ByteWriter& w) const;
  static PaillierPrivateKey deserialize(ByteReader& r);

 private:
  PaillierPublicKey pub_;
  SecretScalar p_, q_;
  SecretScalar lambda_, mu_;
  // CRT precomputation.
  SecretScalar p2_, q2_;  // p², q²
  SecretScalar pMinus1_, qMinus1_;
  SecretScalar hp_, hq_;  // Lp(g^{p-1} mod p²)^{-1} mod p, and for q
  SecretScalar pInvModQ_;
};

struct PaillierKeyPair {
  PaillierPublicKey pub;
  PaillierPrivateKey priv;
};

/// Generates a fresh key pair with an exactly `modulusBits`-bit modulus.
/// modulusBits >= 64 (use >= 2048 for real deployments; tests use small
/// keys for speed). Deterministic given the Rng state.
PaillierKeyPair generateKeyPair(std::size_t modulusBits, Rng& rng);

}  // namespace dpss::crypto
