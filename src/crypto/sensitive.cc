#include "crypto/sensitive.h"

#include <gmp.h>

#include <ostream>

namespace dpss::crypto {

void scrubBytes(void* data, std::size_t size) noexcept {
  // Volatile writes so the store-before-free cannot be elided as a dead
  // store the way a plain memset can (CWE-14). This is best-effort
  // hygiene, not a security proof: copies made by the allocator or the
  // OS are out of reach.
  auto* p = static_cast<volatile unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) p[i] = 0;
}

std::ostream& operator<<(std::ostream& os, const PlaintextBytes& p) {
  return os << "PlaintextBytes(" << p.size() << " bytes)";
}

void SecretScalar::scrub() noexcept {
  // Zero the limbs in place before mpz_clear (run by ~Bigint) returns
  // the storage to GMP's allocator. mpz_limbs_modify never shrinks the
  // allocation, so writing mpz_size limbs is in bounds.
  mpz_ptr z = value_.raw();
  const std::size_t limbs = mpz_size(z);
  if (limbs == 0) return;
  mp_limb_t* p = mpz_limbs_modify(z, limbs);
  scrubBytes(p, limbs * sizeof(mp_limb_t));
  mpz_limbs_finish(z, 0);
}

}  // namespace dpss::crypto
