// Keyed pseudo-random functions for the private search scheme (§III-C).
//
// BitPrf is the paper's g : Z × Z → {0,1} selecting which buffer slots a
// segment is folded into; the broker "returns the function g" to the
// client by shipping the seed, and both sides must evaluate identically —
// hence the platform-stable mixing in common/hash.h.
//
// BloomHashFamily is the h_1..h_k used by the matching-indices buffer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace dpss::crypto {

/// g(i, j) ∈ {0,1}: whether stream element i touches buffer slot j.
class BitPrf {
 public:
  explicit BitPrf(std::uint64_t seed) : seed_(seed) {}

  bool operator()(std::uint64_t i, std::uint64_t j) const {
    return (mix64(hashCombine(hashCombine(seed_, i), j)) & 1) != 0;
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

/// h_t(i) ∈ [0, range) for t = 0..k-1 — the Bloom-filter hash family of
/// the matching-indices buffer.
class BloomHashFamily {
 public:
  BloomHashFamily(std::uint64_t seed, std::size_t k, std::size_t range)
      : seed_(seed), k_(k), range_(range) {}

  std::size_t hash(std::size_t t, std::uint64_t i) const {
    return static_cast<std::size_t>(
        mix64(hashCombine(hashCombine(seed_, t * 0x9e3779b97f4a7c15ULL + 1),
                          i)) %
        range_);
  }

  /// All k slot indices for element i (may repeat; Bloom semantics allow it).
  std::vector<std::size_t> slots(std::uint64_t i) const {
    std::vector<std::size_t> out(k_);
    for (std::size_t t = 0; t < k_; ++t) out[t] = hash(t, i);
    return out;
  }

  std::uint64_t seed() const { return seed_; }
  std::size_t k() const { return k_; }
  std::size_t range() const { return range_; }

 private:
  std::uint64_t seed_;
  std::size_t k_;
  std::size_t range_;
};

}  // namespace dpss::crypto
