#include "crypto/paillier.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace dpss::crypto {

namespace {

/// L(x) = (x - 1) / d; x must be ≡ 1 mod d for a well-formed input.
Bigint ell(const Bigint& x, const Bigint& d) {
  return Bigint::divFloor(x - Bigint(1), d);
}

// Metric identities interned once; recording is one atomic op into the
// current node's registry (the node whose RPC handler is running).
const obs::MetricId kEncryptCount = obs::internCounter("paillier.encrypt.count");
const obs::MetricId kEncryptNs = obs::internHistogram("paillier.encrypt.ns");
const obs::MetricId kDecryptCount = obs::internCounter("paillier.decrypt.count");
const obs::MetricId kDecryptNs = obs::internHistogram("paillier.decrypt.ns");
const obs::MetricId kHomAddCount =
    obs::internCounter("paillier.homomorphic.add.count");
const obs::MetricId kHomMulCount =
    obs::internCounter("paillier.homomorphic.mul.count");

}  // namespace

PaillierPublicKey::PaillierPublicKey(Bigint n) : n_(std::move(n)) {
  DPSS_CHECK_MSG(n_ > Bigint(1), "Paillier modulus must exceed 1");
  n2_ = n_ * n_;
}

Ciphertext PaillierPublicKey::encrypt(const Bigint& m, Rng& rng) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kEncryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kEncryptNs));
  DPSS_CHECK_MSG(m.sign() >= 0 && m < n_, "plaintext out of [0, n)");
  // g^m with g = n+1: (1 + m·n) mod n².
  const Bigint gm = (Bigint(1) + m * n_) % n2_;
  // r uniform in Z*_n. gcd(r, n) != 1 would factor n; retry (never in
  // practice for honest keys).
  Bigint r;
  do {
    r = Bigint::randomBelow(rng, n_);
  } while (r.isZero() || !Bigint::gcd(r, n_).isOne());
  const Bigint rn = Bigint::powm(r, n_, n2_);
  return Ciphertext{(gm * rn) % n2_};
}

Ciphertext PaillierPublicKey::addCipher(const Ciphertext& a,
                                        const Ciphertext& b) const {
  obs::currentRegistry().counter(kHomAddCount).inc();
  return Ciphertext{(a.value * b.value) % n2_};
}

Ciphertext PaillierPublicKey::mulPlain(const Ciphertext& c,
                                       const Bigint& k) const {
  obs::currentRegistry().counter(kHomMulCount).inc();
  DPSS_CHECK_MSG(k.sign() >= 0, "scalar must be non-negative");
  return Ciphertext{Bigint::powm(c.value, k, n2_)};
}

Ciphertext PaillierPublicKey::addPlain(const Ciphertext& c,
                                       const Bigint& m) const {
  const Bigint gm = (Bigint(1) + (m % n_) * n_) % n2_;
  return Ciphertext{(c.value * gm) % n2_};
}

bool PaillierPublicKey::validCiphertext(const Ciphertext& c) const {
  return c.value.sign() >= 0 && c.value < n2_ &&
         Bigint::gcd(c.value, n_).isOne();
}

void PaillierPublicKey::serialize(ByteWriter& w) const {
  w.str(n_.toBytes());
}

PaillierPublicKey PaillierPublicKey::deserialize(ByteReader& r) {
  return PaillierPublicKey(Bigint::fromBytes(r.str()));
}

PaillierPrivateKey::PaillierPrivateKey(Bigint p, Bigint q)
    : p_(std::move(p)), q_(std::move(q)) {
  DPSS_CHECK_MSG(!(p_ == q_), "p and q must differ");
  DPSS_CHECK_MSG(p_.isProbablePrime() && q_.isProbablePrime(),
                 "p and q must be prime");
  pub_ = PaillierPublicKey(p_ * q_);
  const Bigint& n = pub_.n();
  const Bigint& n2 = pub_.nSquared();

  lambda_ = Bigint::lcm(p_ - Bigint(1), q_ - Bigint(1));
  // μ = L(g^λ mod n²)^{-1} mod n, g = n+1.
  const Bigint gl = Bigint::powm(n + Bigint(1), lambda_, n2);
  mu_ = Bigint::invert(ell(gl, n), n);

  p2_ = p_ * p_;
  q2_ = q_ * q_;
  pMinus1_ = p_ - Bigint(1);
  qMinus1_ = q_ - Bigint(1);
  const Bigint gp = Bigint::powm(n + Bigint(1), pMinus1_, p2_);
  const Bigint gq = Bigint::powm(n + Bigint(1), qMinus1_, q2_);
  hp_ = Bigint::invert(ell(gp, p_) % p_, p_);
  hq_ = Bigint::invert(ell(gq, q_) % q_, q_);
  pInvModQ_ = Bigint::invert(p_, q_);
}

Bigint PaillierPrivateKey::decrypt(const Ciphertext& c) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kDecryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kDecryptNs));
  const Bigint& n = pub_.n();
  const Bigint& n2 = pub_.nSquared();
  DPSS_CHECK_MSG(c.value.sign() >= 0 && c.value < n2,
                 "ciphertext out of range");
  const Bigint cl = Bigint::powm(c.value, lambda_, n2);
  return (ell(cl, n) * mu_) % n;
}

Bigint PaillierPrivateKey::decryptCrt(const Ciphertext& c) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kDecryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kDecryptNs));
  // m_p = L_p(c^{p-1} mod p²)·h_p mod p, likewise for q; then CRT.
  const Bigint cp = Bigint::powm(c.value % p2_, pMinus1_, p2_);
  const Bigint cq = Bigint::powm(c.value % q2_, qMinus1_, q2_);
  const Bigint mp = (ell(cp, p_) % p_) * hp_ % p_;
  const Bigint mq = (ell(cq, q_) % q_) * hq_ % q_;
  // m = mp + p·((mq - mp)·p^{-1} mod q)
  const Bigint diff = ((mq - mp) % q_ + q_) % q_;
  return mp + p_ * ((diff * pInvModQ_) % q_);
}

void PaillierPrivateKey::serialize(ByteWriter& w) const {
  w.str(p_.toBytes());
  w.str(q_.toBytes());
}

PaillierPrivateKey PaillierPrivateKey::deserialize(ByteReader& r) {
  Bigint p = Bigint::fromBytes(r.str());
  Bigint q = Bigint::fromBytes(r.str());
  return PaillierPrivateKey(std::move(p), std::move(q));
}

PaillierKeyPair generateKeyPair(std::size_t modulusBits, Rng& rng) {
  DPSS_CHECK_MSG(modulusBits >= 64, "modulus must be at least 64 bits");
  const std::size_t half = modulusBits / 2;
  for (;;) {
    Bigint p = Bigint::randomPrime(rng, half);
    Bigint q = Bigint::randomPrime(rng, modulusBits - half);
    if (p == q) continue;
    const Bigint n = p * q;
    if (n.bitLength() != modulusBits) continue;
    // gcd(n, φ(n)) == 1 is automatic for same-size primes, but verify:
    // needed for λ to be invertible mod n.
    if (!Bigint::gcd(n, (p - Bigint(1)) * (q - Bigint(1))).isOne()) continue;
    PaillierPrivateKey priv(std::move(p), std::move(q));
    PaillierPublicKey pub = priv.publicKey();
    return PaillierKeyPair{std::move(pub), std::move(priv)};
  }
}

}  // namespace dpss::crypto
