#include "crypto/paillier.h"

#include <algorithm>

#include "common/error.h"
#include "crypto/fixed_base.h"
#include "obs/metrics.h"

namespace dpss::crypto {

namespace {

/// L(x) = (x - 1) / d; x must be ≡ 1 mod d for a well-formed input.
Bigint ell(const Bigint& x, const Bigint& d) {
  return Bigint::divFloor(x - Bigint(1), d);
}

// Metric identities interned once; recording is one atomic op into the
// current node's registry (the node whose RPC handler is running).
const obs::MetricId kEncryptCount = obs::internCounter("paillier.encrypt.count");
const obs::MetricId kEncryptNs = obs::internHistogram("paillier.encrypt.ns");
const obs::MetricId kDecryptCount = obs::internCounter("paillier.decrypt.count");
const obs::MetricId kDecryptNs = obs::internHistogram("paillier.decrypt.ns");
const obs::MetricId kHomAddCount =
    obs::internCounter("paillier.homomorphic.add.count");
const obs::MetricId kHomMulCount =
    obs::internCounter("paillier.homomorphic.mul.count");

}  // namespace

PaillierPublicKey::PaillierPublicKey(Bigint n) : n_(std::move(n)) {
  DPSS_CHECK_MSG(n_ > Bigint(1), "Paillier modulus must exceed 1");
  n2_ = n_ * n_;
}

Bigint PaillierPublicKey::drawRandomizer(Rng& rng) const {
  // r uniform in Z*_n. gcd(r, n) != 1 would factor n; retry (never in
  // practice for honest keys).
  Bigint r;
  do {
    r = Bigint::randomBelow(rng, n_);
  } while (r.isZero() || !Bigint::gcd(r, n_).isOne());
  return r;
}

Ciphertext PaillierPublicKey::encrypt(const Bigint& m, Rng& rng) const {
  return encryptWithR(m, drawRandomizer(rng));
}

Ciphertext PaillierPublicKey::encryptWithR(const Bigint& m,
                                           const Bigint& r) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kEncryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kEncryptNs));
  DPSS_CHECK_MSG(m.sign() >= 0 && m < n_, "plaintext out of [0, n)");
  // g^m with g = n+1: (1 + m·n) mod n².
  const Bigint gm = (Bigint(1) + m * n_) % n2_;
  const Bigint rn = Bigint::powm(r, n_, n2_);
  return Ciphertext{(gm * rn) % n2_};
}

Ciphertext PaillierPublicKey::encryptGeneric(const Bigint& m, Rng& rng) const {
  return encryptGenericWithR(m, drawRandomizer(rng));
}

Ciphertext PaillierPublicKey::encryptGenericWithR(const Bigint& m,
                                                  const Bigint& r) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kEncryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kEncryptNs));
  DPSS_CHECK_MSG(m.sign() >= 0 && m < n_, "plaintext out of [0, n)");
  // The textbook form: g^m · r^n mod n², no g = n+1 shortcut, naive
  // square-and-multiply. Retained as the differential reference.
  const Bigint gm = Bigint::powmNaive(n_ + Bigint(1), m, n2_);
  const Bigint rn = Bigint::powmNaive(r, n_, n2_);
  return Ciphertext{(gm * rn) % n2_};
}

Ciphertext PaillierPublicKey::encryptWithBlinding(const Bigint& m,
                                                  const Bigint& rn) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kEncryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kEncryptNs));
  DPSS_CHECK_MSG(m.sign() >= 0 && m < n_, "plaintext out of [0, n)");
  const Bigint gm = (Bigint(1) + m * n_) % n2_;
  return Ciphertext{(gm * rn) % n2_};
}

Ciphertext PaillierPublicKey::addCipher(const Ciphertext& a,
                                        const Ciphertext& b) const {
  obs::currentRegistry().counter(kHomAddCount).inc();
  return Ciphertext{(a.value * b.value) % n2_};
}

Ciphertext PaillierPublicKey::mulPlain(const Ciphertext& c,
                                       const Bigint& k) const {
  obs::currentRegistry().counter(kHomMulCount).inc();
  DPSS_CHECK_MSG(k.sign() >= 0, "scalar must be non-negative");
  return Ciphertext{Bigint::powm(c.value, k, n2_)};
}

std::vector<Ciphertext> PaillierPublicKey::mulPlainMany(
    const Ciphertext& c, const std::vector<Bigint>& ks) const {
  obs::currentRegistry().counter(kHomMulCount).inc(ks.size());
  std::size_t maxBits = 1;
  for (const auto& k : ks) {
    DPSS_CHECK_MSG(k.sign() >= 0, "scalar must be non-negative");
    maxBits = std::max(maxBits, k.bitLength());
  }
  // Crossover: the table costs buildCost plain mul+mod, plus ~one per
  // window digit per exponent. Direct powm does ~1.3·maxBits Montgomery
  // steps, but each is roughly half the cost of our plain mul+mod, so
  // the table must beat ~0.6·maxBits plain-mul equivalents per exponent
  // (measured: the 512-bit crossover sits near a batch of 12).
  constexpr unsigned kWindow = 4;
  const std::size_t digits = (maxBits + kWindow - 1) / kWindow;
  const std::size_t tableMuls =
      FixedBaseWindow::buildCost(maxBits, kWindow) + ks.size() * digits;
  const bool amortizes =
      ks.size() >= 2 && tableMuls < ks.size() * maxBits * 3 / 5;
  std::vector<Ciphertext> out;
  out.reserve(ks.size());
  if (amortizes) {
    const FixedBaseWindow table(c.value, n2_, maxBits, kWindow);
    for (const auto& k : ks) out.push_back(Ciphertext{table.pow(k)});
  } else {
    for (const auto& k : ks) {
      out.push_back(Ciphertext{Bigint::powm(c.value, k, n2_)});
    }
  }
  return out;
}

Ciphertext PaillierPublicKey::addPlain(const Ciphertext& c,
                                       const Bigint& m) const {
  const Bigint gm = (Bigint(1) + (m % n_) * n_) % n2_;
  return Ciphertext{(c.value * gm) % n2_};
}

bool PaillierPublicKey::validCiphertext(const Ciphertext& c) const {
  return c.value.sign() >= 0 && c.value < n2_ &&
         Bigint::gcd(c.value, n_).isOne();
}

void PaillierPublicKey::serialize(ByteWriter& w) const {
  w.str(n_.toBytes());
}

PaillierPublicKey PaillierPublicKey::deserialize(ByteReader& r) {
  return PaillierPublicKey(Bigint::fromBytes(r.str()));
}

PaillierPrivateKey::PaillierPrivateKey(Bigint p, Bigint q)
    : p_(std::move(p)), q_(std::move(q)) {
  // Key material lives in SecretScalar; bind const views for the math.
  const Bigint& pv = p_.get();
  const Bigint& qv = q_.get();
  DPSS_CHECK_MSG(!(pv == qv), "p and q must differ");
  DPSS_CHECK_MSG(pv.isProbablePrime() && qv.isProbablePrime(),
                 "p and q must be prime");
  pub_ = PaillierPublicKey(pv * qv);
  const Bigint& n = pub_.n();
  const Bigint& n2 = pub_.nSquared();

  lambda_ = SecretScalar(Bigint::lcm(pv - Bigint(1), qv - Bigint(1)));
  // μ = L(g^λ mod n²)^{-1} mod n, g = n+1.
  const Bigint gl = Bigint::powm(n + Bigint(1), lambda_.get(), n2);
  mu_ = SecretScalar(Bigint::invert(ell(gl, n), n));

  p2_ = SecretScalar(pv * pv);
  q2_ = SecretScalar(qv * qv);
  pMinus1_ = SecretScalar(pv - Bigint(1));
  qMinus1_ = SecretScalar(qv - Bigint(1));
  const Bigint gp = Bigint::powm(n + Bigint(1), pMinus1_.get(), p2_.get());
  const Bigint gq = Bigint::powm(n + Bigint(1), qMinus1_.get(), q2_.get());
  hp_ = SecretScalar(Bigint::invert(ell(gp, pv) % pv, pv));
  hq_ = SecretScalar(Bigint::invert(ell(gq, qv) % qv, qv));
  pInvModQ_ = SecretScalar(Bigint::invert(pv, qv));
}

Bigint PaillierPrivateKey::decrypt(const Ciphertext& c) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kDecryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kDecryptNs));
  const Bigint& n = pub_.n();
  const Bigint& n2 = pub_.nSquared();
  DPSS_CHECK_MSG(c.value.sign() >= 0 && c.value < n2,
                 "ciphertext out of range");
  const Bigint cl = Bigint::powm(c.value, lambda_.get(), n2);
  return (ell(cl, n) * mu_.get()) % n;
}

Bigint PaillierPrivateKey::decryptCrt(const Ciphertext& c) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kDecryptCount).inc();
  obs::ScopedTimer timer(reg.histogram(kDecryptNs));
  // m_p = L_p(c^{p-1} mod p²)·h_p mod p, likewise for q; then CRT.
  const Bigint& p = p_.get();
  const Bigint& q = q_.get();
  const Bigint& p2 = p2_.get();
  const Bigint& q2 = q2_.get();
  const Bigint cp = Bigint::powm(c.value % p2, pMinus1_.get(), p2);
  const Bigint cq = Bigint::powm(c.value % q2, qMinus1_.get(), q2);
  const Bigint mp = (ell(cp, p) % p) * hp_.get() % p;
  const Bigint mq = (ell(cq, q) % q) * hq_.get() % q;
  // m = mp + p·((mq - mp)·p^{-1} mod q)
  const Bigint diff = ((mq - mp) % q + q) % q;
  return mp + p * ((diff * pInvModQ_.get()) % q);
}

std::vector<Bigint> PaillierPrivateKey::decryptCrtBatch(
    const std::vector<Ciphertext>& cs) const {
  obs::MetricsRegistry& reg = obs::currentRegistry();
  reg.counter(kDecryptCount).inc(cs.size());
  obs::ScopedTimer timer(reg.histogram(kDecryptNs));
  std::vector<Bigint> out;
  out.reserve(cs.size());
  // Same per-element math as decryptCrt; one metrics touch and one
  // reserve for the whole batch instead of per call.
  const Bigint& p = p_.get();
  const Bigint& q = q_.get();
  const Bigint& p2 = p2_.get();
  const Bigint& q2 = q2_.get();
  for (const auto& c : cs) {
    const Bigint cp = Bigint::powm(c.value % p2, pMinus1_.get(), p2);
    const Bigint cq = Bigint::powm(c.value % q2, qMinus1_.get(), q2);
    const Bigint mp = (ell(cp, p) % p) * hp_.get() % p;
    const Bigint mq = (ell(cq, q) % q) * hq_.get() % q;
    const Bigint diff = ((mq - mp) % q + q) % q;
    out.push_back(mp + p * ((diff * pInvModQ_.get()) % q));
  }
  return out;
}

void PaillierPrivateKey::serialize(ByteWriter& w) const {
  w.str(p_.get().toBytes());
  w.str(q_.get().toBytes());
}

PaillierPrivateKey PaillierPrivateKey::deserialize(ByteReader& r) {
  Bigint p = Bigint::fromBytes(r.str());
  Bigint q = Bigint::fromBytes(r.str());
  return PaillierPrivateKey(std::move(p), std::move(q));
}

PaillierKeyPair generateKeyPair(std::size_t modulusBits, Rng& rng) {
  DPSS_CHECK_MSG(modulusBits >= 64, "modulus must be at least 64 bits");
  const std::size_t half = modulusBits / 2;
  for (;;) {
    Bigint p = Bigint::randomPrime(rng, half);
    Bigint q = Bigint::randomPrime(rng, modulusBits - half);
    if (p == q) continue;
    const Bigint n = p * q;
    if (n.bitLength() != modulusBits) continue;
    // gcd(n, φ(n)) == 1 is automatic for same-size primes, but verify:
    // needed for λ to be invertible mod n.
    if (!Bigint::gcd(n, (p - Bigint(1)) * (q - Bigint(1))).isOne()) continue;
    PaillierPrivateKey priv(std::move(p), std::move(q));
    PaillierPublicKey pub = priv.publicKey();
    return PaillierKeyPair{std::move(pub), std::move(priv)};
  }
}

}  // namespace dpss::crypto
