#include "crypto/randomizer_pool.h"

#include "common/error.h"

namespace dpss::crypto {

RandomizerPool::RandomizerPool(const PaillierPublicKey& pub, Rng& rng)
    : pub_(pub), rng_(rng) {
  DPSS_CHECK_MSG(pub.modulusBits() > 0, "pool needs an initialized key");
}

Bigint RandomizerPool::makeRandomizer() {
  // r uniform in Z*_n, then r^n mod n² — the blinding factor. Only the
  // rng draw is serialized; the expensive exponentiation runs unlocked.
  // drawRandomizer is the same rejection loop encrypt() uses, so pooled
  // and fresh encryptions consume Rng state identically (the
  // differential suite pins same-seed ⇒ same ciphertext).
  Bigint r;
  {
    MutexLock lock(rngMu_);
    r = pub_.drawRandomizer(rng_);
  }
  return Bigint::powm(r, pub_.n(), pub_.nSquared());
}

void RandomizerPool::refill(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    Bigint rn = makeRandomizer();
    MutexLock lock(mu_);
    pool_.push_back(std::move(rn));
  }
}

std::size_t RandomizerPool::available() const {
  MutexLock lock(mu_);
  return pool_.size();
}

Ciphertext RandomizerPool::encrypt(const Bigint& m) {
  DPSS_CHECK_MSG(m.sign() >= 0 && m < pub_.n(), "plaintext out of [0, n)");
  Bigint rn;
  {
    MutexLock lock(mu_);
    if (!pool_.empty()) {
      rn = std::move(pool_.front());
      pool_.pop_front();
      ++hits_;
    } else {
      ++misses_;
    }
  }
  if (rn.isZero()) rn = makeRandomizer();  // pool was dry
  return pub_.encryptWithBlinding(m, rn);
}

std::size_t RandomizerPool::pooledHits() const {
  MutexLock lock(mu_);
  return hits_;
}

std::size_t RandomizerPool::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace dpss::crypto
