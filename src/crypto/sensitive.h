// The privacy boundary as a type system.
//
// The paper's trust model (§III) splits the world into two zones:
//
//   trusted   — the client: generates the key pair, builds the encrypted
//               query, and is the only party that ever sees decrypted
//               buffers (matched documents) or key material.
//   untrusted — brokers / historicals / realtime nodes: compute over
//               Paillier ciphertexts and the *public* document stream,
//               and must never hold a plaintext query, a matched
//               document, or the private key.
//
// Until PR 8 that invariant lived in reviewers' heads: `Bytes`/`Bigint`
// flowed identically whether they held a secret key, a decrypted match,
// or a ciphertext envelope. The wrappers below make the boundary a
// compile-time property, the same way thread_annotations.h made the
// locking discipline one (PR 3):
//
//   PlaintextBytes — a decrypted matched document. No conversion to
//       string/string_view and no serialize(ByteWriter&), so handing one
//       to the byte codec or a net::Frame fails overload resolution.
//       The single escape hatch, releaseForClientReconstruction(), is
//       confined by dpss-lint to the client reconstruction sites
//       (pss/session.cc, cluster/pss_client.cc) and test fixtures.
//   CiphertextBlob — the wire form of a Paillier ciphertext, the one
//       payload sanctioned to cross the boundary. Freely copyable and
//       serializable; a distinct type so codec paths state which of the
//       three species (plaintext / key / ciphertext) they carry.
//   SecretScalar — private-key material. Non-copyable (a copy is an
//       uncontrolled second residence for the key) and scrubbed on
//       destruction; dpss-lint additionally bans memcpy/memset over it
//       outside src/crypto/.
//   TrustedOnly<T> — a zone marker. Translation units compiled into
//       server roles define DPSS_SERVER_ROLE_TU (see the per-source
//       COMPILE_DEFINITIONS in src/{pss,cluster,net}/CMakeLists.txt),
//       and constructing a TrustedOnly<T> there is a static_assert
//       error. The client's key pair lives behind this marker.
//
// tests/compile_fail/ keeps the boundary honest: negative-compile
// fixtures prove that PlaintextBytes→Frame, SecretScalar copies and
// server-side TrustedOnly construction are rejected by the compiler,
// and scripts/dpss_arch.py pins the layer DAG these types ride on.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "crypto/bigint.h"

namespace dpss::crypto {

namespace detail {
/// Dependent-false for static_asserts that must only fire when a
/// template is actually instantiated (i.e. when a server-role TU really
/// constructs a trusted value, not merely includes this header).
template <typename>
inline constexpr bool kDependentFalse = false;
}  // namespace detail

/// Best-effort volatile scrub (the compiler may not elide it the way it
/// can a plain memset-before-free). For bulk storage of sensitive types.
void scrubBytes(void* data, std::size_t size) noexcept;

/// A decrypted matched document — the client-side product of buffer
/// reconstruction (§III-C Steps 3–4). Deliberately NOT convertible to
/// string_view and NOT serializable: a PlaintextBytes cannot be written
/// into a ByteWriter, a net::Frame or an RPC envelope without going
/// through releaseForClientReconstruction(), which dpss-lint confines
/// to client-side reconstruction code. Storage is scrubbed on
/// destruction, and stream/gtest printing is redacted to a byte count
/// so matched documents never land in logs by accident.
class PlaintextBytes {
 public:
  PlaintextBytes() = default;

  /// Wraps decrypted bytes. In a server-role translation unit
  /// (DPSS_SERVER_ROLE_TU) this refuses to compile: a broker or
  /// historical has no business materializing a matched document.
  template <typename S,
            typename = std::enable_if_t<
                std::is_constructible_v<std::string, S&&> &&
                !std::is_same_v<std::remove_cvref_t<S>, PlaintextBytes>>>
  explicit PlaintextBytes(S&& bytes) : bytes_(std::forward<S>(bytes)) {
#ifdef DPSS_SERVER_ROLE_TU
    static_assert(detail::kDependentFalse<S>,
                  "privacy boundary: PlaintextBytes (a decrypted matched "
                  "document) must not be constructed in a server-role "
                  "translation unit; only the client reconstructs plaintext");
#endif
  }

  PlaintextBytes(const PlaintextBytes&) = default;
  PlaintextBytes& operator=(const PlaintextBytes&) = default;
  PlaintextBytes(PlaintextBytes&&) noexcept = default;
  PlaintextBytes& operator=(PlaintextBytes&&) noexcept = default;
  ~PlaintextBytes() { scrubBytes(bytes_.data(), bytes_.size()); }

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  /// The ONLY way back to raw bytes. dpss-lint's escape-hatch rule
  /// confines call sites in src/ to pss/session.cc and
  /// cluster/pss_client.cc; tests go through their fixture
  /// (tests/pss/plaintext_access.h) and client-side binaries
  /// (examples/, bench/) are the sanctioned end consumers.
  const std::string& releaseForClientReconstruction() const { return bytes_; }

  /// Comparison is not release: equality/ordering against other
  /// plaintext (dedup, test assertions) never exposes the bytes.
  friend bool operator==(const PlaintextBytes& a,
                         const PlaintextBytes& b) = default;
  friend auto operator<=>(const PlaintextBytes& a,
                          const PlaintextBytes& b) = default;
  friend bool operator==(const PlaintextBytes& a, std::string_view b) {
    return a.bytes_ == b;
  }

  /// Redacted: prints "PlaintextBytes(<n> bytes)", never the content.
  friend std::ostream& operator<<(std::ostream& os, const PlaintextBytes& p);

 private:
  std::string bytes_;
};

/// The wire form of a Paillier ciphertext — the one sensitive-adjacent
/// payload that IS sanctioned to cross the trust boundary (ciphertexts
/// are semantically opaque to servers). Freely copyable and writable
/// into a Frame/Envelope, but a distinct type, so serialization paths
/// say explicitly which species they carry — and a ciphertext can never
/// be mistaken for decrypted bytes: there is no conversion from
/// CiphertextBlob to PlaintextBytes short of Paillier decryption.
class CiphertextBlob {
 public:
  CiphertextBlob() = default;
  /// Wraps serialized ciphertext bytes (Bigint::toBytes format).
  explicit CiphertextBlob(std::string wire) : wire_(std::move(wire)) {}

  /// The serialized bytes, for writing into a frame or codec. Safe to
  /// release freely — that is what a ciphertext blob is for.
  const std::string& wire() const { return wire_; }

  std::size_t size() const { return wire_.size(); }
  bool empty() const { return wire_.empty(); }

  friend bool operator==(const CiphertextBlob& a,
                         const CiphertextBlob& b) = default;

 private:
  std::string wire_;
};

/// Private-key material: a Bigint that cannot be copied (each copy is an
/// uncontrolled second residence for the key) and whose limbs are
/// scrubbed before the storage is returned to the allocator. Arithmetic
/// reads go through get(); there is deliberately no mutable accessor and
/// no serialize(ByteWriter&) — PaillierPrivateKey::serialize is the one
/// audited persistence path, and dpss-lint bans memcpy/memset over
/// SecretScalar storage outside src/crypto/.
class SecretScalar {
 public:
  SecretScalar() = default;
  explicit SecretScalar(Bigint value) : value_(std::move(value)) {}

  SecretScalar(const SecretScalar&) = delete;
  SecretScalar& operator=(const SecretScalar&) = delete;
  SecretScalar(SecretScalar&&) noexcept = default;
  SecretScalar& operator=(SecretScalar&&) noexcept = default;
  ~SecretScalar() { scrub(); }

  const Bigint& get() const { return value_; }

 private:
  void scrub() noexcept;

  Bigint value_;
};

/// Marks a value as existing only in the trusted (client) zone.
/// Server-role translation units — everything compiled with
/// DPSS_SERVER_ROLE_TU, i.e. the broker/historical/realtime/coordinator
/// node TUs, the broker-side fold machinery and the dpss_node binary —
/// may mention the type (declarations, references) but constructing one
/// is a compile error: by construction a key pair can never be
/// materialized on a node that answers RPCs.
template <typename T>
class TrustedOnly {
 public:
  template <typename... Args>
  explicit TrustedOnly(Args&&... args) : value_(std::forward<Args>(args)...) {
#ifdef DPSS_SERVER_ROLE_TU
    static_assert(detail::kDependentFalse<T>,
                  "privacy boundary: TrustedOnly<T> must not be constructed "
                  "in a server-role translation unit; trusted values (key "
                  "pairs, reconstruction state) exist only on the client");
#endif
  }

  TrustedOnly(const TrustedOnly&) = delete;
  TrustedOnly& operator=(const TrustedOnly&) = delete;
  TrustedOnly(TrustedOnly&&) noexcept = default;
  TrustedOnly& operator=(TrustedOnly&&) noexcept = default;

  const T& get() const { return value_; }
  T& get() { return value_; }

 private:
  T value_;
};

}  // namespace dpss::crypto
