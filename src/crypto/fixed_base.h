// Fixed-base k-ary modular exponentiation (HAC 14.109 / Brickell et al.).
//
// When one base is raised to many exponents under the same modulus — the
// broker folding E(c_i)^{f_block} for every block of a segment, s and
// packed-payload factors deep — precomputing the table
//
//   table[i][d] = base^(d · 2^(w·i)) mod m     d ∈ [1, 2^w)
//
// turns each subsequent exponentiation into at most ⌈bits/w⌉ modular
// multiplications with no squarings at all. The table costs about
// (2^w − 1)·⌈bits/w⌉ multiplications to build, so it pays off once a few
// exponents share the base; PaillierPublicKey::mulPlainMany picks the
// crossover. Results are byte-identical to Bigint::powm — the
// differential suite (tests/crypto/differential_test.cc) pins that.
#pragma once

#include <cstddef>
#include <vector>

#include "crypto/bigint.h"

namespace dpss::crypto {

class FixedBaseWindow {
 public:
  /// Precomputes the table for exponents up to `maxExpBits` bits.
  /// windowBits in [1, 8]; 4 is a good default for Paillier-sized moduli.
  FixedBaseWindow(const Bigint& base, const Bigint& modulus,
                  std::size_t maxExpBits, unsigned windowBits = 4);

  /// base^exp mod modulus. Requires exp >= 0 and bitLength <= maxExpBits.
  Bigint pow(const Bigint& exp) const;

  std::size_t maxExpBits() const { return digits_ * windowBits_; }
  unsigned windowBits() const { return windowBits_; }

  /// Rough table-build cost in modular multiplications, for callers
  /// deciding whether the table amortizes over their batch.
  static std::size_t buildCost(std::size_t maxExpBits, unsigned windowBits) {
    const std::size_t digits = (maxExpBits + windowBits - 1) / windowBits;
    return digits * ((std::size_t(1) << windowBits) - 1);
  }

 private:
  Bigint mod_;
  unsigned windowBits_;
  std::size_t digits_;
  // Row-major digits_ x (2^w - 1); entry(i, d-1) = base^(d·2^(w·i)).
  std::vector<Bigint> table_;
};

}  // namespace dpss::crypto
