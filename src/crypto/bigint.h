// RAII arbitrary-precision integer over GMP's mpz_t.
//
// Wraps the C API so the rest of dpss never touches raw mpz_t (Core
// Guidelines R.1). Deterministic randomness comes from dpss::Rng rather
// than GMP's randstate so key generation and PSS runs are reproducible
// from a single seed.
#pragma once

#include <gmp.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "common/rng.h"

namespace dpss::crypto {

class Bigint {
 public:
  /// Zero.
  Bigint() { mpz_init(z_); }
  /// From a machine integer.
  Bigint(std::int64_t v) { mpz_init_set_si(z_, v); }  // NOLINT(implicit)
  /// From a decimal string (leading '-' allowed). Throws InvalidArgument.
  explicit Bigint(const std::string& decimal);

  Bigint(const Bigint& other) { mpz_init_set(z_, other.z_); }
  Bigint(Bigint&& other) noexcept {
    mpz_init(z_);
    mpz_swap(z_, other.z_);
  }
  Bigint& operator=(const Bigint& other) {
    if (this != &other) mpz_set(z_, other.z_);
    return *this;
  }
  Bigint& operator=(Bigint&& other) noexcept {
    mpz_swap(z_, other.z_);
    return *this;
  }
  ~Bigint() { mpz_clear(z_); }

  // --- arithmetic -----------------------------------------------------
  friend Bigint operator+(const Bigint& a, const Bigint& b);
  friend Bigint operator-(const Bigint& a, const Bigint& b);
  friend Bigint operator*(const Bigint& a, const Bigint& b);
  /// Floor division remainder in [0, |b|) for b > 0 (mpz_mod semantics).
  friend Bigint operator%(const Bigint& a, const Bigint& b);
  Bigint& operator+=(const Bigint& b);
  Bigint& operator-=(const Bigint& b);
  Bigint& operator*=(const Bigint& b);

  /// Exact division; behaviour undefined unless b divides a (mpz_divexact).
  static Bigint divExact(const Bigint& a, const Bigint& b);
  /// Floor quotient.
  static Bigint divFloor(const Bigint& a, const Bigint& b);

  // --- modular --------------------------------------------------------
  /// base^exp mod m (exp >= 0, m > 0). The production kernel: GMP's
  /// mpz_powm (Montgomery + internal windowing).
  static Bigint powm(const Bigint& base, const Bigint& exp, const Bigint& m);
  /// Reference binary square-and-multiply modexp built from mul/mod
  /// only — the naive sibling every fast kernel is differential-tested
  /// against (tests/crypto/differential_test.cc). Never a hot path.
  static Bigint powmNaive(const Bigint& base, const Bigint& exp,
                          const Bigint& m);
  /// Sliding-window modexp with a precomputed odd-power table
  /// (HAC 14.85). windowBits in [1, 8]. Same result as powm/powmNaive;
  /// exists so the windowed scan logic shared with FixedBaseWindow has a
  /// standalone, differential-testable form.
  static Bigint powmWindowed(const Bigint& base, const Bigint& exp,
                             const Bigint& m, unsigned windowBits = 4);
  /// x^-1 mod m; throws CryptoError when gcd(x, m) != 1.
  static Bigint invert(const Bigint& x, const Bigint& m);
  static Bigint gcd(const Bigint& a, const Bigint& b);
  static Bigint lcm(const Bigint& a, const Bigint& b);

  // --- comparison -----------------------------------------------------
  friend bool operator==(const Bigint& a, const Bigint& b) {
    return mpz_cmp(a.z_, b.z_) == 0;
  }
  friend auto operator<=>(const Bigint& a, const Bigint& b) {
    return mpz_cmp(a.z_, b.z_) <=> 0;
  }
  bool isZero() const { return mpz_sgn(z_) == 0; }
  bool isOne() const { return mpz_cmp_ui(z_, 1) == 0; }
  int sign() const { return mpz_sgn(z_); }

  // --- conversion -----------------------------------------------------
  std::string toString() const;
  /// Throws InvalidArgument when the value does not fit or is negative.
  std::uint64_t toUint64() const;
  /// Number of bits in the magnitude (0 for zero).
  std::size_t bitLength() const {
    return isZero() ? 0 : mpz_sizeinbase(z_, 2);
  }
  /// Bit i of the magnitude (i = 0 is the least significant).
  bool testBit(std::size_t i) const { return mpz_tstbit(z_, i) != 0; }

  /// Big-endian magnitude bytes (empty for zero). Sign is not encoded;
  /// all serialized dpss values are non-negative.
  std::string toBytes() const;
  static Bigint fromBytes(std::string_view bytes);

  // --- randomness & primes (deterministic via dpss::Rng) ---------------
  /// Uniform integer with exactly `bits` bits (top bit set). bits >= 1.
  static Bigint randomBits(Rng& rng, std::size_t bits);
  /// Uniform in [0, n) via rejection sampling. n > 0.
  static Bigint randomBelow(Rng& rng, const Bigint& n);
  /// Random prime with exactly `bits` bits. bits >= 8.
  static Bigint randomPrime(Rng& rng, std::size_t bits);
  /// Miller–Rabin with `reps` rounds (mpz_probab_prime_p).
  bool isProbablePrime(int reps = 30) const {
    return mpz_probab_prime_p(z_, reps) != 0;
  }

  /// Escape hatch for GMP-level code inside dpss::crypto only.
  mpz_srcptr raw() const { return z_; }
  mpz_ptr raw() { return z_; }

 private:
  mpz_t z_;
};

}  // namespace dpss::crypto
