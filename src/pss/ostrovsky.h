// "Primitive private search" baseline — the Ostrovsky–Skeith-style
// single-buffer scheme the paper's §II describes and Figure 7 compares
// against.
//
// One survival buffer of B slots, each slot a pair (E(c·f), E(c)). Every
// segment is folded into γ pseudo-randomly chosen slots ("copies"); a
// matching segment survives if at least one of its copies lands in a slot
// no other matching segment touched. Collisions produce garbage that the
// block codec's checksum rejects — the classic probabilistic-loss
// behaviour the three-buffer scheme was designed to replace (it instead
// *solves* the mixed slots as a linear system).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "crypto/paillier.h"
#include "crypto/prf.h"
#include "pss/blocking.h"
#include "pss/query.h"

namespace dpss::pss {

struct OstrovskyParams {
  std::size_t bufferSlots = 64;  // B
  std::size_t copies = 3;        // γ
};

struct OstrovskyEnvelope {
  std::vector<crypto::Ciphertext> dataSlots;  // B × s, slot-major
  std::vector<crypto::Ciphertext> cSlots;     // B
  std::size_t blocksPerSegment = 0;
  std::uint64_t prfSeed = 0;
  OstrovskyParams params;
};

class OstrovskySearcher {
 public:
  OstrovskySearcher(const Dictionary& dict, EncryptedQuery query,
                    std::size_t blocksPerSegment, OstrovskyParams params,
                    Rng& rng);

  void processSegment(std::uint64_t index, std::string_view payload);
  OstrovskyEnvelope finish();

 private:
  const Dictionary& dict_;
  EncryptedQuery query_;
  std::size_t blocks_;
  OstrovskyParams params_;
  BlockCodec codec_;
  Rng& rng_;
  std::uint64_t prfSeed_;
  std::vector<crypto::Ciphertext> dataSlots_;
  std::vector<crypto::Ciphertext> cSlots_;
};

/// Recovered payloads (exact original bytes) from collision-free slots.
/// Collided or empty slots are silently dropped — the baseline's inherent
/// loss mode. Duplicates (a segment surviving in several slots) are
/// deduplicated. Privacy-typed like the three-buffer reconstruction:
/// decrypted documents come back as PlaintextBytes.
std::vector<crypto::PlaintextBytes> ostrovskyReconstruct(
    const crypto::PaillierPrivateKey& priv, const OstrovskyEnvelope& env);

}  // namespace dpss::pss
