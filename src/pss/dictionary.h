// Public keyword dictionary D = {w_1, ..., w_|D|} (§III-C, Step 1).
//
// Both client and broker hold the same public dictionary; the encrypted
// query is an array of |D| ciphertexts aligned to this ordering.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dpss::pss {

class Dictionary {
 public:
  Dictionary() = default;
  /// Builds from a word list; duplicates rejected, order preserved.
  explicit Dictionary(std::vector<std::string> words);

  std::size_t size() const { return words_.size(); }
  const std::string& word(std::size_t i) const { return words_.at(i); }
  const std::vector<std::string>& words() const { return words_; }

  /// Index of `w` in the dictionary, if present.
  std::optional<std::size_t> indexOf(std::string_view w) const;
  bool contains(std::string_view w) const { return indexOf(w).has_value(); }

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Splits text into lowercase alphanumeric tokens, deduplicated — the
/// "set of distinct words W_i in the i-th segment" of Step 2.1.
std::vector<std::string> distinctWords(std::string_view text);

}  // namespace dpss::pss
