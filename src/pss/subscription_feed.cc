// Client-side half of the subscription plane. This TU is deliberately NOT
// a server-role TU: SubscriptionFeed::apply turns decrypted buffer slots
// into PlaintextBytes, which only a trusted (client) translation unit may
// construct — the same split as searcher.cc vs session.cc.
#include "pss/subscription.h"

namespace dpss::pss {

std::vector<RecoveredDocument> SubscriptionFeed::apply(
    std::string_view stream, const SearchResultEnvelope& env) {
  ++snapshotsApplied_;
  std::vector<RecoveredSegment> segments = reconstructor_.reconstruct(env);
  std::vector<RecoveredDocument> fresh;
  for (auto& seg : segments) {
    DocKey key{std::string(stream), seg.index};
    if (documents_.find(key) != documents_.end()) {
      // A crash/replay or an at-least-once redelivery re-covered this
      // stream position; the payload is identical by construction.
      ++duplicatesDropped_;
      continue;
    }
    RecoveredDocument doc;
    doc.stream = key.first;
    doc.streamIndex = seg.index;
    doc.cValue = seg.cValue;
    doc.payload = std::move(seg.payload);
    documents_.emplace(std::move(key), doc);
    fresh.push_back(std::move(doc));
  }
  return fresh;
}

}  // namespace dpss::pss
