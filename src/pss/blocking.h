// Segment payload <-> Z_n block codec (§III-C: "for longer segments
// requiring s elements of Z_n ... operations are performed blockwise").
//
// A payload is framed as [varint length][bytes][u32 fnv checksum] and cut
// into fixed-width blocks of blockBytes each, interpreted as big-endian
// integers strictly below 2^(8·blockBytes) <= n. The checksum lets the
// Ostrovsky–Skeith baseline detect collision garbage; the three-buffer
// scheme gets it for free as an integrity check.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/sensitive.h"

namespace dpss::pss {

class BlockCodec {
 public:
  /// blockBytes >= 8; must satisfy 2^(8·blockBytes) <= n of the key in use.
  explicit BlockCodec(std::size_t blockBytes);

  /// Largest block width usable with a modulus of `modulusBits` bits.
  static std::size_t maxBlockBytesFor(std::size_t modulusBits) {
    return (modulusBits - 1) / 8;
  }

  std::size_t blockBytes() const { return blockBytes_; }

  /// Number of blocks needed for a payload of `payloadSize` bytes.
  std::size_t blockCount(std::size_t payloadSize) const;

  /// Encodes the payload into exactly `totalBlocks` blocks (zero-padded).
  /// Throws InvalidArgument when the payload does not fit.
  std::vector<crypto::Bigint> encode(std::string_view payload,
                                     std::size_t totalBlocks) const;

  /// Inverse of encode(). Throws CorruptData when the frame or checksum is
  /// invalid — the signal the OS05 baseline uses to reject collided slots.
  /// decode() is the moment decrypted buffer slots become a readable
  /// document, so the result is privacy-typed: a PlaintextBytes cannot be
  /// re-serialized into a Frame/Envelope (see crypto/sensitive.h).
  crypto::PlaintextBytes decode(const std::vector<crypto::Bigint>& blocks) const;

 private:
  std::size_t blockBytes_;
};

/// Blockwise ciphertext packing: `packFactor` consecutive documents share
/// one plaintext segment group, shrinking the per-document fold and
/// decryption cost by ~packFactor. The pack frame is
/// [varint count][varint len, bytes]×count; the group is then encoded /
/// folded / reconstructed like any other payload, and the client splits
/// it back into documents after reconstruction.
std::string packPayloads(const std::vector<std::string_view>& payloads);

/// Inverse of packPayloads. Throws CorruptData on a malformed frame.
std::vector<std::string> unpackPayloads(std::string_view packed);

/// Upper bound on the packed byte size of any group of at most
/// `packFactor` payloads each at most `maxPayload` bytes — what the
/// broker sizes s from when it only knows per-slice maxima.
std::size_t maxPackedBytes(std::size_t packFactor, std::size_t maxPayload);

}  // namespace dpss::pss
