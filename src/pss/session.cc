#include "pss/session.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"

namespace dpss::pss {

PrivateSearchClient::PrivateSearchClient(const Dictionary& dict,
                                         SearchParams params,
                                         std::size_t modulusBits,
                                         std::uint64_t seed)
    : dict_(dict), params_(params), rng_(seed),
      keys_(crypto::generateKeyPair(modulusBits, rng_)) {
  params_.validate();
}

EncryptedQuery PrivateSearchClient::makeQuery(
    const std::set<std::string>& keywords) {
  return buildQuery(dict_, keywords, keys_.pub, params_, rng_);
}

std::size_t blocksNeeded(const std::vector<std::string>& payloads,
                         std::size_t modulusBits) {
  const BlockCodec codec(BlockCodec::maxBlockBytesFor(modulusBits));
  std::size_t blocks = 1;
  for (const auto& p : payloads) {
    blocks = std::max(blocks, codec.blockCount(p.size()));
  }
  return blocks;
}

std::vector<RecoveredSegment> runThresholdSearch(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    std::uint64_t threshold, const std::vector<std::string>& payloads,
    std::size_t blocksPerSegment, Rng& brokerRng, int maxRetries) {
  DPSS_CHECK_MSG(threshold >= 1, "threshold must be at least 1");
  auto results = runPrivateSearch(client, keywords, payloads,
                                  blocksPerSegment, brokerRng, maxRetries);
  std::erase_if(results, [threshold](const RecoveredSegment& r) {
    return r.cValue < threshold;
  });
  return results;
}

std::vector<RecoveredSegment> runPrivateSearch(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    const std::vector<std::string>& payloads, std::size_t blocksPerSegment,
    Rng& brokerRng, int maxRetries) {
  if (blocksPerSegment == 0) {
    blocksPerSegment =
        blocksNeeded(payloads, client.publicKey().modulusBits());
  }
  const EncryptedQuery query = client.makeQuery(keywords);
  for (int attempt = 0;; ++attempt) {
    StreamSearcher searcher(client.dictionary(), query, blocksPerSegment,
                            brokerRng);
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      searcher.processSegment(i, payloads[i]);
    }
    const SearchResultEnvelope env = searcher.finish();
    try {
      return client.open(env);
    } catch (const CryptoError& e) {
      if (attempt >= maxRetries) throw;
      DPSS_LOG(Warn) << "singular reconstruction matrix, retrying batch ("
                     << e.what() << ")";
    }
  }
}

}  // namespace dpss::pss
