#include "pss/session.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"

namespace dpss::pss {

PrivateSearchClient::PrivateSearchClient(const Dictionary& dict,
                                         SearchParams params,
                                         std::size_t modulusBits,
                                         std::uint64_t seed)
    : dict_(dict), params_(params), rng_(seed),
      keys_(crypto::generateKeyPair(modulusBits, rng_)) {
  params_.validate();
}

EncryptedQuery PrivateSearchClient::makeQuery(
    const std::set<std::string>& keywords) {
  return buildQuery(dict_, keywords, keys_.get().pub, params_, rng_);
}

std::vector<RecoveredSegment> PrivateSearchClient::openDocuments(
    const SearchResultEnvelope& env,
    const std::set<std::string>& keywords) const {
  std::vector<RecoveredSegment> groups = open(env);
  if (env.packFactor <= 1) return groups;
  std::vector<RecoveredSegment> docs;
  for (const auto& group : groups) {
    // Escape hatch (lint-audited): splitting a reconstructed pack group
    // back into documents is client-side reconstruction by definition.
    std::vector<std::string> members =
        unpackPayloads(group.payload.releaseForClientReconstruction());
    const std::uint64_t base =
        env.firstDocIndex + (group.index - env.firstIndex) * env.packFactor;
    for (std::size_t o = 0; o < members.size(); ++o) {
      // The per-document c-value: |K ∩ W_doc| over the dictionary, same
      // count the broker would have folded had this document been its
      // own segment. Zero means the document only rode along in a
      // matched group.
      std::uint64_t c = 0;
      for (const auto& w : distinctWords(members[o])) {
        if (keywords.contains(w) && dict_.contains(w)) ++c;
      }
      if (c == 0) continue;
      RecoveredSegment doc;
      doc.index = base + o;
      doc.cValue = c;
      doc.payload = crypto::PlaintextBytes(std::move(members[o]));
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

std::size_t blocksNeeded(const std::vector<std::string>& payloads,
                         std::size_t modulusBits) {
  const BlockCodec codec(BlockCodec::maxBlockBytesFor(modulusBits));
  std::size_t blocks = 1;
  for (const auto& p : payloads) {
    blocks = std::max(blocks, codec.blockCount(p.size()));
  }
  return blocks;
}

std::vector<RecoveredSegment> runThresholdSearch(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    std::uint64_t threshold, const std::vector<std::string>& payloads,
    std::size_t blocksPerSegment, Rng& brokerRng, int maxRetries,
    std::size_t packFactor) {
  DPSS_CHECK_MSG(threshold >= 1, "threshold must be at least 1");
  auto results =
      runPrivateSearchPacked(client, keywords, payloads, packFactor,
                             blocksPerSegment, brokerRng, maxRetries);
  std::erase_if(results, [threshold](const RecoveredSegment& r) {
    return r.cValue < threshold;
  });
  return results;
}

std::vector<RecoveredSegment> runPrivateSearchPacked(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    const std::vector<std::string>& payloads, std::size_t packFactor,
    std::size_t blocksPerSegment, Rng& brokerRng, int maxRetries) {
  if (packFactor <= 1) {
    return runPrivateSearch(client, keywords, payloads, blocksPerSegment,
                            brokerRng, maxRetries);
  }
  // Group the stream: pack i covers documents [i·P, min((i+1)·P, N)).
  // Its keyword set is the union over members, so a pack folds whenever
  // any member matches.
  std::vector<std::string> packed;
  std::vector<std::vector<std::string>> packedWords;
  for (std::size_t i = 0; i < payloads.size(); i += packFactor) {
    const std::size_t count = std::min(packFactor, payloads.size() - i);
    std::vector<std::string_view> members;
    members.reserve(count);
    std::set<std::string> words;
    for (std::size_t o = 0; o < count; ++o) {
      members.push_back(payloads[i + o]);
      for (auto& w : distinctWords(payloads[i + o])) words.insert(std::move(w));
    }
    packed.push_back(packPayloads(members));
    packedWords.emplace_back(words.begin(), words.end());
  }
  if (blocksPerSegment == 0) {
    blocksPerSegment = blocksNeeded(packed, client.publicKey().modulusBits());
  }
  const EncryptedQuery query = client.makeQuery(keywords);
  for (int attempt = 0;; ++attempt) {
    StreamSearcher searcher(client.dictionary(), query, blocksPerSegment,
                            brokerRng);
    for (std::size_t g = 0; g < packed.size(); ++g) {
      searcher.processSegment(
          g, packedWords[g],
          searcher.codec().encode(packed[g], blocksPerSegment));
    }
    SearchResultEnvelope env = searcher.finish();
    env.packFactor = packFactor;
    env.firstDocIndex = 0;
    env.documentCount = payloads.size();
    try {
      return client.openDocuments(env, keywords);
    } catch (const CryptoError& e) {
      if (attempt >= maxRetries) throw;
      DPSS_LOG(Warn) << "singular reconstruction matrix, retrying batch ("
                     << e.what() << ")";
    }
  }
}

std::vector<RecoveredSegment> runPrivateSearch(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    const std::vector<std::string>& payloads, std::size_t blocksPerSegment,
    Rng& brokerRng, int maxRetries) {
  if (blocksPerSegment == 0) {
    blocksPerSegment =
        blocksNeeded(payloads, client.publicKey().modulusBits());
  }
  const EncryptedQuery query = client.makeQuery(keywords);
  for (int attempt = 0;; ++attempt) {
    StreamSearcher searcher(client.dictionary(), query, blocksPerSegment,
                            brokerRng);
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      searcher.processSegment(i, payloads[i]);
    }
    const SearchResultEnvelope env = searcher.finish();
    try {
      return client.open(env);
    } catch (const CryptoError& e) {
      if (attempt >= maxRetries) throw;
      DPSS_LOG(Warn) << "singular reconstruction matrix, retrying batch ("
                     << e.what() << ")";
    }
  }
}

}  // namespace dpss::pss
