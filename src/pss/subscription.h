// Standing private subscriptions — continuous stream search (the paper's
// headline scenario: "private search on streaming data ... communication
// independent of the size of the stream").
//
// A subscription is a standing encrypted query registered once and matched
// against every document a realtime node ingests from that point on. The
// server side (SubscriptionMatcher) folds each document into the three
// encrypted buffers exactly like the one-shot searcher; on a period or a
// fill-threshold it seals the buffers into an envelope ("snapshot") and
// re-arms with fresh randomness. The client side (SubscriptionFeed)
// decrypts each snapshot independently and accumulates recovered
// documents, deduplicating replays by stream position — the incremental
// reconstruction contract that makes crash/replay delivery exactly-once
// from the client's point of view.
//
// Because the reconstructor requires t >= l_F segments per envelope, a
// partial batch is padded with empty segments before sealing
// (StreamSearcher::padSegments): an empty segment contributes the
// multiplicative identity to every slot, so padding is invisible in the
// buffers and a padded index can never be recovered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/paillier.h"
#include "crypto/sensitive.h"
#include "pss/dictionary.h"
#include "pss/query.h"
#include "pss/reconstruct.h"
#include "pss/searcher.h"

namespace dpss::pss {

using SubscriptionId = std::uint64_t;

/// When a matcher seals its in-progress batch into a snapshot. Both
/// triggers are public quantities (wall time, documents processed) — the
/// encrypted match count cannot drive sealing without leaking it.
struct SnapshotPolicy {
  /// Seal a non-empty batch at least this often. <= 0 disables the timer.
  std::int64_t periodMs = 5000;
  /// Seal once this many documents entered the batch. 0 disables.
  std::size_t maxDocuments = 64;

  void serialize(ByteWriter& w) const {
    w.svarint(periodMs);
    w.varint(maxDocuments);
  }
  static SnapshotPolicy deserialize(ByteReader& r) {
    SnapshotPolicy p;
    p.periodMs = r.svarint();
    p.maxDocuments = r.varint();
    return p;
  }
};

/// Everything a realtime node needs to stand up a matcher: the public
/// dictionary, the encrypted query (public key + params ride inside it),
/// the block budget per document, and the snapshot cadence. The client
/// never ships key material — only ciphertexts and public tuning.
struct SubscriptionSpec {
  /// Which ingest stream to match (the realtime node's dataSource).
  std::string docSource;
  std::vector<std::string> dictionaryWords;
  EncryptedQuery query;
  std::size_t blocksPerSegment = 1;
  SnapshotPolicy policy;

  void serialize(ByteWriter& w) const;
  static SubscriptionSpec deserialize(ByteReader& r);
};

/// One sealed batch of encrypted buffers, tagged with its origin node and
/// a per-(node, subscription) monotonic sequence number for ack-based
/// at-least-once delivery. `paddedSegments` of the envelope's range are
/// empty padding (observability only — padding is unrecoverable).
struct SubscriptionSnapshot {
  SubscriptionId id = 0;
  std::string node;
  std::uint64_t seq = 0;
  std::uint64_t paddedSegments = 0;
  SearchResultEnvelope envelope;

  void serialize(ByteWriter& w) const;
  static SubscriptionSnapshot deserialize(ByteReader& r);
};

/// Server-side standing matcher for one subscription (the successor of
/// the seed's StandingSearch stub — the single stream-search entry point
/// for subscriptions). Not synchronized: the owner (SubscriptionHost)
/// serializes access.
class SubscriptionMatcher {
 public:
  SubscriptionMatcher(SubscriptionSpec spec, std::uint64_t seed,
                      std::int64_t nowMs);

  /// Matches one ingested document at stream position `offset` (positions
  /// must be contiguous and increasing within a batch; the first feed
  /// after a seal fixes the next base). `matchText` drives the dictionary
  /// match; `payload` is what the client recovers. An oversized payload
  /// is folded as an empty segment (keeps positions contiguous, can never
  /// be recovered) and reported by returning false.
  bool feed(std::uint64_t offset, std::string_view matchText,
            std::string_view payload, std::int64_t nowMs);

  /// True when the in-progress batch hit the fill threshold or its period
  /// expired. Always false for an empty batch.
  bool due(std::int64_t nowMs) const;

  /// Seals the in-progress batch (padded up to l_F segments) into an
  /// envelope and re-arms. nullopt when the batch is empty.
  std::optional<SubscriptionSnapshot> seal(std::int64_t nowMs);

  /// seal() only when due().
  std::optional<SubscriptionSnapshot> sealIfDue(std::int64_t nowMs);

  /// Opts the per-document fold into the PR 7 thread-parallel sharding.
  void setFoldOptions(const FoldOptions& opts) {
    searcher_.setFoldOptions(opts);
  }

  const SubscriptionSpec& spec() const { return spec_; }
  const Dictionary& dictionary() const { return dict_; }

  std::uint64_t documentsSeen() const { return documentsSeen_; }
  std::uint64_t documentsOversized() const { return documentsOversized_; }
  std::uint64_t batchDocuments() const { return batchDocuments_; }
  std::uint64_t snapshotsSealed() const { return snapshotsSealed_; }
  /// Fill of the in-progress batch vs the fill threshold, in percent
  /// (0 when the fill trigger is disabled) — the public quantity the
  /// /statusz subscriptions section reports.
  std::uint64_t fillPercent() const;

 private:
  SubscriptionSpec spec_;
  Dictionary dict_;
  Rng rng_;
  StreamSearcher searcher_;
  std::int64_t batchStartMs_ = 0;
  std::uint64_t batchDocuments_ = 0;
  std::uint64_t documentsSeen_ = 0;
  std::uint64_t documentsOversized_ = 0;
  std::uint64_t snapshotsSealed_ = 0;
};

/// One document recovered from a subscription snapshot.
struct RecoveredDocument {
  /// Origin stream ("<node>/<dataSource>" in the cluster): stream
  /// positions are only unique per origin.
  std::string stream;
  std::uint64_t streamIndex = 0;
  std::uint64_t cValue = 0;  // |K ∩ W_i| — how many query keywords hit
  crypto::PlaintextBytes payload;
};

/// Client-side incremental reconstruction: applies snapshots as they
/// arrive (any order, replays welcome) and accumulates each recovered
/// document exactly once, keyed by (stream, position). This lives in a
/// client translation unit — opening an envelope needs the private key,
/// which a server-role TU cannot even construct.
class SubscriptionFeed {
 public:
  explicit SubscriptionFeed(const crypto::PaillierPrivateKey& priv)
      : reconstructor_(priv) {}

  /// Opens one snapshot envelope; returns only the documents not already
  /// recovered from an earlier (possibly replayed) snapshot.
  std::vector<RecoveredDocument> apply(std::string_view stream,
                                       const SearchResultEnvelope& env);

  using DocKey = std::pair<std::string, std::uint64_t>;
  const std::map<DocKey, RecoveredDocument>& documents() const {
    return documents_;
  }
  std::uint64_t snapshotsApplied() const { return snapshotsApplied_; }
  std::uint64_t duplicatesDropped() const { return duplicatesDropped_; }

 private:
  Reconstructor reconstructor_;
  std::map<DocKey, RecoveredDocument> documents_;
  std::uint64_t snapshotsApplied_ = 0;
  std::uint64_t duplicatesDropped_ = 0;
};

}  // namespace dpss::pss
