#include "pss/blocking.h"

#include "common/bytes.h"
#include "common/error.h"
#include "common/hash.h"

namespace dpss::pss {

namespace {
std::uint32_t checksum32(std::string_view bytes) {
  return static_cast<std::uint32_t>(fnv1a(bytes) & 0xffffffffu);
}
}  // namespace

BlockCodec::BlockCodec(std::size_t blockBytes) : blockBytes_(blockBytes) {
  DPSS_CHECK_MSG(blockBytes >= 8, "block width must be at least 8 bytes");
}

std::size_t BlockCodec::blockCount(std::size_t payloadSize) const {
  // Frame: varint length (<= 9 bytes for any realistic payload) + payload
  // + 4 checksum bytes.
  ByteWriter w;
  w.varint(payloadSize);
  const std::size_t framed = w.size() + payloadSize + 4;
  return (framed + blockBytes_ - 1) / blockBytes_;
}

std::vector<crypto::Bigint> BlockCodec::encode(std::string_view payload,
                                               std::size_t totalBlocks) const {
  ByteWriter w;
  w.varint(payload.size());
  w.raw(payload);
  w.u32(checksum32(payload));
  std::string framed = w.take();
  const std::size_t needed = (framed.size() + blockBytes_ - 1) / blockBytes_;
  if (needed > totalBlocks) {
    throw InvalidArgument("payload of " + std::to_string(payload.size()) +
                          " bytes needs " + std::to_string(needed) +
                          " blocks, only " + std::to_string(totalBlocks) +
                          " available");
  }
  framed.resize(totalBlocks * blockBytes_, '\0');

  std::vector<crypto::Bigint> blocks;
  blocks.reserve(totalBlocks);
  for (std::size_t b = 0; b < totalBlocks; ++b) {
    blocks.push_back(crypto::Bigint::fromBytes(
        std::string_view(framed).substr(b * blockBytes_, blockBytes_)));
  }
  return blocks;
}

crypto::PlaintextBytes BlockCodec::decode(
    const std::vector<crypto::Bigint>& blocks) const {
  std::string framed;
  framed.reserve(blocks.size() * blockBytes_);
  for (const auto& block : blocks) {
    const std::string bytes = block.toBytes();
    if (bytes.size() > blockBytes_) {
      throw CorruptData("block wider than codec width");
    }
    framed.append(blockBytes_ - bytes.size(), '\0');  // restore leading zeros
    framed.append(bytes);
  }
  ByteReader r(framed);
  std::uint64_t len = 0;
  try {
    len = r.varint();
    if (len > r.remaining()) throw CorruptData("length exceeds frame");
    std::string payload(r.raw(len));
    const std::uint32_t expect = r.u32();
    if (checksum32(payload) != expect) {
      throw CorruptData("payload checksum mismatch");
    }
    return crypto::PlaintextBytes(std::move(payload));
  } catch (const CorruptData&) {
    throw;
  }
}

std::string packPayloads(const std::vector<std::string_view>& payloads) {
  ByteWriter w;
  w.varint(payloads.size());
  for (const auto p : payloads) w.str(p);
  return w.take();
}

std::vector<std::string> unpackPayloads(std::string_view packed) {
  ByteReader r(packed);
  const std::uint64_t count = r.varint();
  if (count > packed.size()) throw CorruptData("pack count exceeds frame");
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) out.emplace_back(r.str());
  if (r.remaining() != 0) throw CorruptData("trailing bytes after pack");
  return out;
}

std::size_t maxPackedBytes(std::size_t packFactor, std::size_t maxPayload) {
  ByteWriter w;
  w.varint(packFactor);
  for (std::size_t i = 0; i < packFactor; ++i) w.varint(maxPayload);
  return w.size() + packFactor * maxPayload;
}

}  // namespace dpss::pss
