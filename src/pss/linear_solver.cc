#include "pss/linear_solver.h"

#include "common/error.h"

namespace dpss::pss {

using crypto::Bigint;

ModMatrix::ModMatrix(std::size_t rows, std::size_t cols, Bigint modulus)
    : rows_(rows), cols_(cols), n_(std::move(modulus)) {
  DPSS_CHECK_MSG(rows >= 1 && cols >= 1, "matrix dimensions must be >= 1");
  DPSS_CHECK_MSG(n_ > Bigint(1), "modulus must exceed 1");
  cells_.assign(rows_ * cols_, Bigint(0));
}

namespace {

/// Gauss–Jordan on the augmented system [A | B] with rows >= cols;
/// reduces in place and returns the rank (== cols on success, smaller on
/// column-rank deficiency). Pivots that share a factor with n are skipped
/// as unusable (inverting them would factor n).
std::size_t eliminate(ModMatrix& a, ModMatrix* b) {
  const std::size_t cols = a.cols();
  const std::size_t rows = a.rows();
  const Bigint& n = a.modulus();
  for (std::size_t col = 0; col < cols; ++col) {
    // Find a row at or below `col` whose pivot is invertible mod n.
    std::size_t pivotRow = rows;
    Bigint pivotInv;
    for (std::size_t r = col; r < rows; ++r) {
      const Bigint& candidate = a.at(r, col);
      if (candidate.isZero()) continue;
      try {
        pivotInv = Bigint::invert(candidate, n);
      } catch (const CryptoError&) {
        // Non-invertible non-zero pivot: gcd(candidate, n) factors n.
        // Treat as unusable and keep scanning.
        continue;
      }
      pivotRow = r;
      break;
    }
    if (pivotRow == rows) return col;

    // Swap into place.
    if (pivotRow != col) {
      for (std::size_t c = 0; c < cols; ++c) {
        std::swap(a.at(pivotRow, c), a.at(col, c));
      }
      if (b != nullptr) {
        for (std::size_t c = 0; c < b->cols(); ++c) {
          std::swap(b->at(pivotRow, c), b->at(col, c));
        }
      }
    }

    // Normalize the pivot row.
    for (std::size_t c = 0; c < cols; ++c) {
      a.at(col, c) = (a.at(col, c) * pivotInv) % n;
    }
    if (b != nullptr) {
      for (std::size_t c = 0; c < b->cols(); ++c) {
        b->at(col, c) = (b->at(col, c) * pivotInv) % n;
      }
    }

    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == col) continue;
      const Bigint factor = a.at(r, col);
      if (factor.isZero()) continue;
      for (std::size_t c = 0; c < cols; ++c) {
        a.at(r, c) = (a.at(r, c) + (n - Bigint(1)) * factor % n * a.at(col, c)) % n;
      }
      if (b != nullptr) {
        for (std::size_t c = 0; c < b->cols(); ++c) {
          b->at(r, c) =
              (b->at(r, c) + (n - Bigint(1)) * factor % n * b->at(col, c)) % n;
        }
      }
    }
  }
  return cols;
}

ModMatrix solveReduced(const ModMatrix& a, const ModMatrix& b) {
  ModMatrix work = a;
  ModMatrix rhs = b;
  if (eliminate(work, &rhs) < a.cols()) {
    throw CryptoError("singular reconstruction matrix: retry the batch");
  }
  // Surplus rows were fully eliminated (every column held a pivot), so
  // their rhs must have reduced to zero for the system to be consistent.
  for (std::size_t r = a.cols(); r < a.rows(); ++r) {
    for (std::size_t c = 0; c < rhs.cols(); ++c) {
      if (!rhs.at(r, c).isZero()) {
        throw CryptoError(
            "inconsistent reconstruction system: buffers do not match any "
            "candidate assignment (wrong key or corrupt envelope)");
      }
    }
  }
  ModMatrix solution(a.cols(), b.cols(), b.modulus());
  for (std::size_t r = 0; r < a.cols(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      solution.at(r, c) = rhs.at(r, c);
    }
  }
  return solution;
}

}  // namespace

ModMatrix solveLinearSystem(const ModMatrix& a, const ModMatrix& b) {
  DPSS_CHECK_MSG(a.rows() == a.cols(), "coefficient matrix must be square");
  DPSS_CHECK_MSG(b.rows() == a.rows(), "rhs row count mismatch");
  DPSS_CHECK_MSG(a.modulus() == b.modulus(), "modulus mismatch");
  return solveReduced(a, b);
}

ModMatrix solveConsistentSystem(const ModMatrix& a, const ModMatrix& b) {
  DPSS_CHECK_MSG(a.rows() >= a.cols(),
                 "consistent solve needs rows >= cols (unknowns)");
  DPSS_CHECK_MSG(b.rows() == a.rows(), "rhs row count mismatch");
  DPSS_CHECK_MSG(a.modulus() == b.modulus(), "modulus mismatch");
  return solveReduced(a, b);
}

bool isInvertible(const ModMatrix& a) {
  if (a.rows() != a.cols()) return false;
  ModMatrix work = a;
  return eliminate(work, nullptr) == a.cols();
}

}  // namespace dpss::pss
