#include "pss/linear_solver.h"

#include "common/error.h"

namespace dpss::pss {

using crypto::Bigint;

ModMatrix::ModMatrix(std::size_t rows, std::size_t cols, Bigint modulus)
    : rows_(rows), cols_(cols), n_(std::move(modulus)) {
  DPSS_CHECK_MSG(rows >= 1 && cols >= 1, "matrix dimensions must be >= 1");
  DPSS_CHECK_MSG(n_ > Bigint(1), "modulus must exceed 1");
  cells_.assign(rows_ * cols_, Bigint(0));
}

namespace {

/// Gauss–Jordan on the augmented system [A | B]; returns X with A·X = B.
/// Returns false (instead of throwing) when singular if `solution` null.
bool eliminate(ModMatrix a, ModMatrix* b, ModMatrix* solution) {
  const std::size_t dim = a.rows();
  const Bigint& n = a.modulus();
  for (std::size_t col = 0; col < dim; ++col) {
    // Find a row at or below `col` whose pivot is invertible mod n.
    std::size_t pivotRow = dim;
    Bigint pivotInv;
    for (std::size_t r = col; r < dim; ++r) {
      const Bigint& candidate = a.at(r, col);
      if (candidate.isZero()) continue;
      try {
        pivotInv = Bigint::invert(candidate, n);
      } catch (const CryptoError&) {
        // Non-invertible non-zero pivot: gcd(candidate, n) factors n.
        // Treat as unusable and keep scanning.
        continue;
      }
      pivotRow = r;
      break;
    }
    if (pivotRow == dim) return false;

    // Swap into place.
    if (pivotRow != col) {
      for (std::size_t c = 0; c < dim; ++c) {
        std::swap(a.at(pivotRow, c), a.at(col, c));
      }
      if (b != nullptr) {
        for (std::size_t c = 0; c < b->cols(); ++c) {
          std::swap(b->at(pivotRow, c), b->at(col, c));
        }
      }
    }

    // Normalize the pivot row.
    for (std::size_t c = 0; c < dim; ++c) {
      a.at(col, c) = (a.at(col, c) * pivotInv) % n;
    }
    if (b != nullptr) {
      for (std::size_t c = 0; c < b->cols(); ++c) {
        b->at(col, c) = (b->at(col, c) * pivotInv) % n;
      }
    }

    // Eliminate the column everywhere else.
    for (std::size_t r = 0; r < dim; ++r) {
      if (r == col) continue;
      const Bigint factor = a.at(r, col);
      if (factor.isZero()) continue;
      for (std::size_t c = 0; c < dim; ++c) {
        a.at(r, c) = (a.at(r, c) + (n - Bigint(1)) * factor % n * a.at(col, c)) % n;
      }
      if (b != nullptr) {
        for (std::size_t c = 0; c < b->cols(); ++c) {
          b->at(r, c) =
              (b->at(r, c) + (n - Bigint(1)) * factor % n * b->at(col, c)) % n;
        }
      }
    }
  }
  if (solution != nullptr && b != nullptr) *solution = std::move(*b);
  return true;
}

}  // namespace

ModMatrix solveLinearSystem(const ModMatrix& a, const ModMatrix& b) {
  DPSS_CHECK_MSG(a.rows() == a.cols(), "coefficient matrix must be square");
  DPSS_CHECK_MSG(b.rows() == a.rows(), "rhs row count mismatch");
  DPSS_CHECK_MSG(a.modulus() == b.modulus(), "modulus mismatch");
  ModMatrix rhs = b;
  ModMatrix solution(b.rows(), b.cols(), b.modulus());
  if (!eliminate(a, &rhs, &solution)) {
    throw CryptoError("singular reconstruction matrix: retry the batch");
  }
  return solution;
}

bool isInvertible(const ModMatrix& a) {
  if (a.rows() != a.cols()) return false;
  return eliminate(a, nullptr, nullptr);
}

}  // namespace dpss::pss
