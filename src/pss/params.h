// Tuning parameters of the private stream search scheme (§III-C, Step 2).
//
// The client picks these and ships them to the broker with the encrypted
// query: l_F (data/c-buffer length), l_I (matching-indices Bloom buffer
// length) and k (Bloom hash count). The paper's guidance: with m expected
// matches, pick k = floor(l_I / m · ln 2).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"

namespace dpss::pss {

struct SearchParams {
  /// Length of the data buffer F and the c-buffer C. Also the maximum
  /// number of matches (plus Bloom false positives) one batch can carry.
  std::size_t bufferLength = 32;  // l_F

  /// Length of the matching-indices (encrypted Bloom filter) buffer.
  std::size_t indexBufferLength = 256;  // l_I

  /// Number of Bloom hash functions.
  std::size_t bloomHashes = 5;  // k

  void validate() const {
    DPSS_CHECK_MSG(bufferLength >= 1, "bufferLength must be >= 1");
    DPSS_CHECK_MSG(indexBufferLength >= 1, "indexBufferLength must be >= 1");
    DPSS_CHECK_MSG(bloomHashes >= 1, "bloomHashes must be >= 1");
  }

  /// The paper's optimum k = floor(l_I/m · ln 2) for m expected matches.
  static std::size_t optimalBloomHashes(std::size_t indexBufferLength,
                                        std::size_t expectedMatches) {
    DPSS_CHECK_MSG(expectedMatches >= 1, "expectedMatches must be >= 1");
    const double k = std::floor(static_cast<double>(indexBufferLength) /
                                static_cast<double>(expectedMatches) *
                                std::log(2.0));
    return k < 1 ? 1 : static_cast<std::size_t>(k);
  }

  void serialize(ByteWriter& w) const {
    w.varint(bufferLength);
    w.varint(indexBufferLength);
    w.varint(bloomHashes);
  }

  static SearchParams deserialize(ByteReader& r) {
    SearchParams p;
    p.bufferLength = r.varint();
    p.indexBufferLength = r.varint();
    p.bloomHashes = r.varint();
    p.validate();
    return p;
  }
};

}  // namespace dpss::pss
