#include "pss/searcher.h"

#include <algorithm>
#include <future>

#include "common/error.h"
#include "obs/metrics.h"

namespace dpss::pss {

namespace {

const obs::MetricId kSegmentsProcessed =
    obs::internCounter("pss.search.segments");
const obs::MetricId kSegmentNs = obs::internHistogram("pss.search.segment_ns");
const obs::MetricId kFoldCount = obs::internCounter("paillier.fold.count");
const obs::MetricId kFoldNs = obs::internHistogram("paillier.fold.ns");

}  // namespace

void SearchResultEnvelope::serialize(ByteWriter& w) const {
  buffers.serialize(w);
  w.u64(prfSeed);
  w.u64(bloomSeed);
  w.u64(firstIndex);
  w.u64(segmentsProcessed);
  w.varint(packFactor);
  w.u64(firstDocIndex);
  w.varint(documentCount);
  params.serialize(w);
}

SearchResultEnvelope SearchResultEnvelope::deserialize(ByteReader& r) {
  SearchResultEnvelope e;
  e.buffers = SearchBuffers::deserialize(r);
  e.prfSeed = r.u64();
  e.bloomSeed = r.u64();
  e.firstIndex = r.u64();
  e.segmentsProcessed = r.u64();
  e.packFactor = r.varint();
  e.firstDocIndex = r.u64();
  e.documentCount = r.varint();
  e.params = SearchParams::deserialize(r);
  return e;
}

StreamSearcher::StreamSearcher(const Dictionary& dict, EncryptedQuery query,
                               std::size_t blocksPerSegment, Rng& rng)
    : dict_(dict),
      query_(std::move(query)),
      blocks_(blocksPerSegment),
      codec_(BlockCodec::maxBlockBytesFor(query_.publicKey().modulusBits())),
      rng_(rng),
      buffers_(query_.publicKey(), query_.params(), blocksPerSegment, rng),
      prf_(rng.next()),
      bloom_(rng.next(), query_.params().bloomHashes,
             query_.params().indexBufferLength) {
  DPSS_CHECK_MSG(query_.dictionarySize() == dict.size(),
                 "encrypted query length must match the public dictionary");
}

crypto::Ciphertext StreamSearcher::encryptedCValue(
    const std::vector<std::string>& words) const {
  const auto& pub = query_.publicKey();
  // Π Q[j] over dictionary words found in the segment. The accumulator
  // starts at the multiplicative identity 1, i.e. E(0) with blinding
  // r = 1 — no fresh randomness is needed because the product is only
  // ever folded into buffer slots that carry their own randomness.
  crypto::Ciphertext acc{crypto::Bigint(1)};
  for (const auto& w : words) {
    if (const auto idx = dict_.indexOf(w)) {
      acc = pub.addCipher(acc, query_.entry(*idx));
    }
  }
  return acc;
}

void StreamSearcher::processSegment(std::uint64_t index,
                                    std::string_view payload) {
  processSegment(index, distinctWords(payload),
                 codec_.encode(payload, blocks_));
}

void StreamSearcher::processSegment(
    std::uint64_t index, const std::vector<std::string>& words,
    const std::vector<crypto::Bigint>& blocks) {
  DPSS_CHECK_MSG(blocks.size() == blocks_,
                 "segment must be encoded into exactly s blocks");
  if (processed_ == 0) {
    firstIndex_ = index;
  } else {
    DPSS_CHECK_MSG(index == firstIndex_ + processed_,
                   "stream indices must be contiguous within a batch");
  }
  const auto& pub = query_.publicKey();
  obs::MetricsRegistry& reg = obs::currentRegistry();
  obs::ScopedTimer segmentTimer(reg.histogram(kSegmentNs));

  // Step 2.1: E(c_i).
  const crypto::Ciphertext ec = encryptedCValue(words);

  // Step 2.2 (blockwise) + 2.3: fold into slots with g(i, j) = 1.
  // E(c_i·f_block) = E(c_i)^{f_block}, all blocks sharing one fixed-base
  // window table over E(c_i).
  const std::uint64_t foldStart = obs::nowNanos();
  const std::vector<crypto::Ciphertext> ecf = pub.mulPlainMany(ec, blocks);
  const std::size_t lF = buffers_.bufferLength();
  std::size_t shards = 1;
  if (fold_.pool != nullptr) {
    shards = fold_.shards != 0 ? fold_.shards : fold_.pool->threadCount();
    shards = std::min(shards, lF);
  }
  std::uint64_t folds = 0;
  if (shards <= 1) {
    folds = buffers_.foldSlotRange(pub, prf_, index, ec, ecf, 0, lF);
  } else {
    // Contiguous disjoint ranges: shard k owns [k·⌈l_F/shards⌉, …). Each
    // worker re-scopes this node's registry so fold metrics land where the
    // serial path records them.
    const std::size_t per = (lF + shards - 1) / shards;
    std::vector<std::future<std::uint64_t>> parts;
    parts.reserve(shards);
    for (std::size_t k = 0; k < shards; ++k) {
      const std::size_t lo = std::min(k * per, lF);
      const std::size_t hi = std::min(lo + per, lF);
      parts.push_back(fold_.pool->submit([this, &reg, &pub, &ec, &ecf, index,
                                          lo, hi] {
        obs::ScopedRegistry scope(reg);
        return buffers_.foldSlotRange(pub, prf_, index, ec, ecf, lo, hi);
      }));
    }
    for (auto& part : parts) folds += part.get();
  }

  // Step 2.4: Bloom update of the matching-indices buffer.
  for (const auto slot : bloom_.slots(index)) {
    buffers_.match(slot) = pub.addCipher(buffers_.match(slot), ec);
    ++folds;
  }

  // The fold is the paper's Fig. 7 cost driver: every homomorphic
  // accumulation into a buffer slot for this segment counts as one fold.
  reg.counter(kFoldCount).inc(folds);
  reg.histogram(kFoldNs).observe(obs::nowNanos() - foldStart);
  reg.counter(kSegmentsProcessed).inc();

  ++processed_;
}

void StreamSearcher::padSegments(std::size_t count) {
  DPSS_CHECK_MSG(processed_ > 0,
                 "padSegments requires a non-empty batch (base index unset)");
  // Folding an empty segment multiplies every touched slot by the
  // ciphertext 1, leaving the buffers byte-identical — so padding is pure
  // bookkeeping: the padded indices enter [firstIndex, firstIndex + t) for
  // the client's Bloom scan, but their c-value is provably zero and the
  // reconstructor discards them as non-matches.
  processed_ += count;
}

SearchResultEnvelope StreamSearcher::finish() {
  SearchResultEnvelope env;
  env.prfSeed = prf_.seed();
  env.bloomSeed = bloom_.seed();
  env.firstIndex = firstIndex_;
  env.segmentsProcessed = processed_;
  env.packFactor = 1;
  env.firstDocIndex = firstIndex_;
  env.documentCount = processed_;
  env.params = query_.params();
  env.buffers = std::move(buffers_);

  // Re-arm for the next batch with fresh buffers and seeds.
  buffers_ = SearchBuffers(query_.publicKey(), query_.params(), blocks_, rng_);
  prf_ = crypto::BitPrf(rng_.next());
  bloom_ = crypto::BloomHashFamily(rng_.next(), query_.params().bloomHashes,
                                   query_.params().indexBufferLength);
  processed_ = 0;
  firstIndex_ = 0;
  return env;
}

}  // namespace dpss::pss
