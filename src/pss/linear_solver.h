// Exact linear algebra modulo the Paillier modulus n.
//
// The decrypted buffers are systems of linear equations over Z_n (§III-C,
// Steps 3.3 and 4). Gaussian elimination needs invertible pivots; an
// element of Z_n that is neither zero nor invertible would factor n, so a
// failed inversion is treated as singularity (CryptoError) and triggers a
// batch retry with a fresh PRF seed at the protocol layer.
#pragma once

#include <vector>

#include "crypto/bigint.h"

namespace dpss::pss {

/// Dense matrix over Z_n, row-major.
class ModMatrix {
 public:
  ModMatrix(std::size_t rows, std::size_t cols, crypto::Bigint modulus);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const crypto::Bigint& modulus() const { return n_; }

  crypto::Bigint& at(std::size_t r, std::size_t c) {
    return cells_.at(r * cols_ + c);
  }
  const crypto::Bigint& at(std::size_t r, std::size_t c) const {
    return cells_.at(r * cols_ + c);
  }

 private:
  std::size_t rows_, cols_;
  crypto::Bigint n_;
  std::vector<crypto::Bigint> cells_;
};

/// Solves A·x = b (mod n) for square A. `b` may have several columns
/// (each solved simultaneously — the data buffer has one column per
/// block). Throws CryptoError("singular ...") when A has no solution path
/// with invertible pivots.
ModMatrix solveLinearSystem(const ModMatrix& a, const ModMatrix& b);

/// True iff A is invertible mod n (destructive elimination on a copy).
bool isInvertible(const ModMatrix& a);

}  // namespace dpss::pss
