// Exact linear algebra modulo the Paillier modulus n.
//
// The decrypted buffers are systems of linear equations over Z_n (§III-C,
// Steps 3.3 and 4). Gaussian elimination needs invertible pivots; an
// element of Z_n that is neither zero nor invertible would factor n, so a
// failed inversion is treated as singularity (CryptoError) and triggers a
// batch retry with a fresh PRF seed at the protocol layer.
#pragma once

#include <vector>

#include "crypto/bigint.h"

namespace dpss::pss {

/// Dense matrix over Z_n, row-major.
class ModMatrix {
 public:
  ModMatrix(std::size_t rows, std::size_t cols, crypto::Bigint modulus);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const crypto::Bigint& modulus() const { return n_; }

  crypto::Bigint& at(std::size_t r, std::size_t c) {
    return cells_.at(r * cols_ + c);
  }
  const crypto::Bigint& at(std::size_t r, std::size_t c) const {
    return cells_.at(r * cols_ + c);
  }

 private:
  std::size_t rows_, cols_;
  crypto::Bigint n_;
  std::vector<crypto::Bigint> cells_;
};

/// Solves A·x = b (mod n) for square A. `b` may have several columns
/// (each solved simultaneously — the data buffer has one column per
/// block). Throws CryptoError("singular ...") when A has no solution path
/// with invertible pivots.
ModMatrix solveLinearSystem(const ModMatrix& a, const ModMatrix& b);

/// Solves the overdetermined-but-consistent system A·x = b (mod n) where
/// A has rows() >= cols(). Returns the unique cols()×b.cols() solution.
/// This is the PSS reconstruction case: the buffer contributes l_F
/// equations but only the Bloom candidates are unknowns, and a random
/// 0/1 matrix with surplus rows is full column rank with probability
/// ~1 - 2^-(rows-cols) — far better than padding to a square system,
/// which is singular ~45% of the time at l_F = 8. Throws
/// CryptoError("singular ...") on column-rank deficiency and
/// CryptoError("inconsistent ...") when the surplus equations disagree
/// (e.g. buffers decrypted with the wrong key).
ModMatrix solveConsistentSystem(const ModMatrix& a, const ModMatrix& b);

/// True iff A is invertible mod n (destructive elimination on a copy).
bool isInvertible(const ModMatrix& a);

}  // namespace dpss::pss
