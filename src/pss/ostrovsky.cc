#include "pss/ostrovsky.h"

#include <set>

#include "common/error.h"
#include "common/hash.h"

namespace dpss::pss {

using crypto::Bigint;
using crypto::Ciphertext;

OstrovskySearcher::OstrovskySearcher(const Dictionary& dict,
                                     EncryptedQuery query,
                                     std::size_t blocksPerSegment,
                                     OstrovskyParams params, Rng& rng)
    : dict_(dict),
      query_(std::move(query)),
      blocks_(blocksPerSegment),
      params_(params),
      codec_(BlockCodec::maxBlockBytesFor(query_.publicKey().modulusBits())),
      rng_(rng),
      prfSeed_(rng.next()) {
  DPSS_CHECK_MSG(params_.bufferSlots >= 1, "need at least one slot");
  DPSS_CHECK_MSG(params_.copies >= 1, "need at least one copy");
  DPSS_CHECK_MSG(query_.dictionarySize() == dict.size(),
                 "encrypted query length must match the public dictionary");
  const auto& pub = query_.publicKey();
  dataSlots_.reserve(params_.bufferSlots * blocks_);
  for (std::size_t i = 0; i < params_.bufferSlots * blocks_; ++i) {
    dataSlots_.push_back(pub.encryptZero(rng_));
  }
  cSlots_.reserve(params_.bufferSlots);
  for (std::size_t i = 0; i < params_.bufferSlots; ++i) {
    cSlots_.push_back(pub.encryptZero(rng_));
  }
}

void OstrovskySearcher::processSegment(std::uint64_t index,
                                       std::string_view payload) {
  const auto& pub = query_.publicKey();
  const auto words = distinctWords(payload);
  const auto blocks = codec_.encode(payload, blocks_);

  // E(c) = Π Q[j] over dictionary words in the segment.
  Ciphertext ec{Bigint(1)};
  for (const auto& w : words) {
    if (const auto idx = dict_.indexOf(w)) {
      ec = pub.addCipher(ec, query_.entry(*idx));
    }
  }

  std::vector<Ciphertext> ecf;
  ecf.reserve(blocks_);
  for (const auto& block : blocks) ecf.push_back(pub.mulPlain(ec, block));

  // γ pseudo-random copies; distinct slots per segment where possible.
  std::set<std::size_t> slots;
  for (std::size_t copy = 0; slots.size() < params_.copies; ++copy) {
    slots.insert(static_cast<std::size_t>(
        mix64(hashCombine(hashCombine(prfSeed_, index), copy)) %
        params_.bufferSlots));
    if (copy > params_.copies * 8) break;  // tiny buffers: give up on distinct
  }
  for (const auto slot : slots) {
    for (std::size_t b = 0; b < blocks_; ++b) {
      dataSlots_[slot * blocks_ + b] =
          pub.addCipher(dataSlots_[slot * blocks_ + b], ecf[b]);
    }
    cSlots_[slot] = pub.addCipher(cSlots_[slot], ec);
  }
}

OstrovskyEnvelope OstrovskySearcher::finish() {
  OstrovskyEnvelope env;
  env.dataSlots = std::move(dataSlots_);
  env.cSlots = std::move(cSlots_);
  env.blocksPerSegment = blocks_;
  env.prfSeed = prfSeed_;
  env.params = params_;

  const auto& pub = query_.publicKey();
  dataSlots_.clear();
  cSlots_.clear();
  for (std::size_t i = 0; i < params_.bufferSlots * blocks_; ++i) {
    dataSlots_.push_back(pub.encryptZero(rng_));
  }
  for (std::size_t i = 0; i < params_.bufferSlots; ++i) {
    cSlots_.push_back(pub.encryptZero(rng_));
  }
  prfSeed_ = rng_.next();
  return env;
}

std::vector<crypto::PlaintextBytes> ostrovskyReconstruct(
    const crypto::PaillierPrivateKey& priv, const OstrovskyEnvelope& env) {
  const Bigint& n = priv.publicKey().n();
  const std::size_t blocks = env.blocksPerSegment;
  const BlockCodec codec(
      BlockCodec::maxBlockBytesFor(priv.publicKey().modulusBits()));

  // Dedup compares PlaintextBytes directly (comparison is not release;
  // the raw bytes stay inside the privacy type).
  std::vector<crypto::PlaintextBytes> out;
  std::set<crypto::PlaintextBytes> seen;
  for (std::size_t slot = 0; slot < env.cSlots.size(); ++slot) {
    const Bigint c = priv.decryptCrt(env.cSlots[slot]);
    if (c.isZero()) continue;  // empty slot (or cancelling collision)
    Bigint cInv;
    try {
      cInv = Bigint::invert(c, n);
    } catch (const CryptoError&) {
      continue;  // would factor n; cryptographically impossible for honest runs
    }
    std::vector<Bigint> payloadBlocks;
    payloadBlocks.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      const Bigint v = priv.decryptCrt(env.dataSlots[slot * blocks + b]);
      payloadBlocks.push_back((v * cInv) % n);
    }
    try {
      crypto::PlaintextBytes payload = codec.decode(payloadBlocks);
      if (seen.insert(payload).second) out.push_back(std::move(payload));
    } catch (const CorruptData&) {
      // Collision garbage: checksum rejects it. This is the baseline's
      // data-loss mode, measured by bench_ablation_buffers.
    }
  }
  return out;
}

}  // namespace dpss::pss
