// The three encrypted buffers of the search scheme (§III-C, Step 2):
// the data buffer F (l_F × s ciphertexts), the c-buffer C (l_F) and the
// matching-indices buffer I (l_I, an encrypted Bloom filter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/paillier.h"
#include "crypto/prf.h"
#include "pss/params.h"

namespace dpss::pss {

class SearchBuffers {
 public:
  SearchBuffers() = default;

  /// All slots initialized to fresh encryptions of zero.
  SearchBuffers(const crypto::PaillierPublicKey& pub, const SearchParams& p,
                std::size_t blocksPerSegment, Rng& rng);

  std::size_t bufferLength() const { return cBuffer_.size(); }
  std::size_t indexBufferLength() const { return matchBuffer_.size(); }
  std::size_t blocksPerSegment() const { return blocks_; }

  /// F[slot][block].
  crypto::Ciphertext& data(std::size_t slot, std::size_t block) {
    return dataBuffer_.at(slot * blocks_ + block);
  }
  const crypto::Ciphertext& data(std::size_t slot, std::size_t block) const {
    return dataBuffer_.at(slot * blocks_ + block);
  }

  crypto::Ciphertext& c(std::size_t slot) { return cBuffer_.at(slot); }
  const crypto::Ciphertext& c(std::size_t slot) const {
    return cBuffer_.at(slot);
  }

  crypto::Ciphertext& match(std::size_t slot) { return matchBuffer_.at(slot); }
  const crypto::Ciphertext& match(std::size_t slot) const {
    return matchBuffer_.at(slot);
  }

  /// Folds one segment into every slot j in [lo, hi) with g(index, j) = 1:
  /// each data block gets E(c)^{f_b} (precomputed in `ecf`), the c-slot
  /// gets E(c). Returns the number of homomorphic accumulations performed.
  /// Distinct ranges touch disjoint slots, so they may fold concurrently;
  /// the result is byte-identical for any partition of [0, bufferLength).
  std::uint64_t foldSlotRange(const crypto::PaillierPublicKey& pub,
                              const crypto::BitPrf& prf, std::uint64_t index,
                              const crypto::Ciphertext& ec,
                              const std::vector<crypto::Ciphertext>& ecf,
                              std::size_t lo, std::size_t hi);

  void serialize(ByteWriter& w) const;
  static SearchBuffers deserialize(ByteReader& r);

 private:
  std::size_t blocks_ = 0;
  std::vector<crypto::Ciphertext> dataBuffer_;   // l_F * s
  std::vector<crypto::Ciphertext> cBuffer_;      // l_F
  std::vector<crypto::Ciphertext> matchBuffer_;  // l_I
};

}  // namespace dpss::pss
