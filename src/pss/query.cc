#include "pss/query.h"

#include "common/error.h"

namespace dpss::pss {

EncryptedQuery::EncryptedQuery(crypto::PaillierPublicKey pub,
                               std::vector<crypto::Ciphertext> entries,
                               SearchParams params)
    : pub_(std::move(pub)), entries_(std::move(entries)), params_(params) {
  params_.validate();
}

void EncryptedQuery::serialize(ByteWriter& w) const {
  pub_.serialize(w);
  params_.serialize(w);
  w.varint(entries_.size());
  for (const auto& e : entries_) w.str(e.toBlob().wire());
}

EncryptedQuery EncryptedQuery::deserialize(ByteReader& r) {
  auto pub = crypto::PaillierPublicKey::deserialize(r);
  auto params = SearchParams::deserialize(r);
  const std::uint64_t n = r.varint();
  std::vector<crypto::Ciphertext> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    entries.push_back(
        crypto::Ciphertext::fromBlob(crypto::CiphertextBlob(r.str())));
  }
  return EncryptedQuery(std::move(pub), std::move(entries), params);
}

EncryptedQuery buildQuery(const Dictionary& dict,
                          const std::set<std::string>& keywords,
                          const crypto::PaillierPublicKey& pub,
                          const SearchParams& params, Rng& rng) {
  for (const auto& kw : keywords) {
    if (!dict.contains(kw)) {
      throw InvalidArgument("query keyword not in public dictionary: " + kw);
    }
  }
  std::vector<crypto::Ciphertext> entries;
  entries.reserve(dict.size());
  for (std::size_t i = 0; i < dict.size(); ++i) {
    const bool inK = keywords.count(dict.word(i)) > 0;
    entries.push_back(
        pub.encrypt(crypto::Bigint(inK ? 1 : 0), rng));
  }
  return EncryptedQuery(pub, std::move(entries), params);
}

}  // namespace dpss::pss
