#include "pss/subscription.h"

#include "common/error.h"
#include "obs/metrics.h"

namespace dpss::pss {

namespace {

const obs::MetricId kSubDocuments =
    obs::internCounter("pss.subscription.documents");
const obs::MetricId kSubOversized =
    obs::internCounter("pss.subscription.oversized");
const obs::MetricId kSubSnapshots =
    obs::internCounter("pss.subscription.snapshots");
const obs::MetricId kSubPadded = obs::internCounter("pss.subscription.padded");

}  // namespace

void SubscriptionSpec::serialize(ByteWriter& w) const {
  w.str(docSource);
  w.varint(dictionaryWords.size());
  for (const auto& word : dictionaryWords) w.str(word);
  query.serialize(w);
  w.varint(blocksPerSegment);
  policy.serialize(w);
}

SubscriptionSpec SubscriptionSpec::deserialize(ByteReader& r) {
  SubscriptionSpec s;
  s.docSource = r.str();
  const std::size_t words = r.varint();
  s.dictionaryWords.reserve(words);
  for (std::size_t i = 0; i < words; ++i) s.dictionaryWords.push_back(r.str());
  s.query = EncryptedQuery::deserialize(r);
  s.blocksPerSegment = r.varint();
  s.policy = SnapshotPolicy::deserialize(r);
  DPSS_CHECK_MSG(s.query.dictionarySize() == s.dictionaryWords.size(),
                 "subscription query length must match its dictionary");
  DPSS_CHECK_MSG(s.blocksPerSegment >= 1,
                 "subscription needs at least one block per segment");
  return s;
}

void SubscriptionSnapshot::serialize(ByteWriter& w) const {
  w.varint(id);
  w.str(node);
  w.u64(seq);
  w.varint(paddedSegments);
  envelope.serialize(w);
}

SubscriptionSnapshot SubscriptionSnapshot::deserialize(ByteReader& r) {
  SubscriptionSnapshot s;
  s.id = r.varint();
  s.node = r.str();
  s.seq = r.u64();
  s.paddedSegments = r.varint();
  s.envelope = SearchResultEnvelope::deserialize(r);
  return s;
}

SubscriptionMatcher::SubscriptionMatcher(SubscriptionSpec spec,
                                         std::uint64_t seed,
                                         std::int64_t nowMs)
    : spec_(std::move(spec)),
      dict_(spec_.dictionaryWords),
      rng_(seed),
      searcher_(dict_, spec_.query, spec_.blocksPerSegment, rng_),
      batchStartMs_(nowMs) {}

bool SubscriptionMatcher::feed(std::uint64_t offset, std::string_view matchText,
                               std::string_view payload, std::int64_t nowMs) {
  if (batchDocuments_ == 0) batchStartMs_ = nowMs;
  ++batchDocuments_;
  ++documentsSeen_;
  obs::currentRegistry().counter(kSubDocuments).inc();
  const BlockCodec& codec = searcher_.codec();
  if (codec.blockCount(payload.size()) > spec_.blocksPerSegment) {
    // Too large for this subscription's block budget: keep the stream
    // position contiguous by folding an empty segment — identical buffers
    // to not folding at all, and the document can never be recovered.
    ++documentsOversized_;
    obs::currentRegistry().counter(kSubOversized).inc();
    if (searcher_.segmentsProcessed() == 0) {
      searcher_.processSegment(offset, {},
                               codec.encode("", spec_.blocksPerSegment));
    } else {
      searcher_.padSegments(1);
    }
    return false;
  }
  searcher_.processSegment(offset, distinctWords(matchText),
                           codec.encode(payload, spec_.blocksPerSegment));
  return true;
}

bool SubscriptionMatcher::due(std::int64_t nowMs) const {
  if (batchDocuments_ == 0) return false;
  const SnapshotPolicy& p = spec_.policy;
  if (p.maxDocuments > 0 && batchDocuments_ >= p.maxDocuments) return true;
  return p.periodMs > 0 && nowMs - batchStartMs_ >= p.periodMs;
}

std::optional<SubscriptionSnapshot> SubscriptionMatcher::seal(
    std::int64_t nowMs) {
  if (batchDocuments_ == 0) return std::nullopt;
  const std::size_t lf = spec_.query.params().bufferLength;
  const std::uint64_t processed = searcher_.segmentsProcessed();
  const std::uint64_t pad = processed < lf ? lf - processed : 0;
  if (pad > 0) searcher_.padSegments(pad);
  SubscriptionSnapshot snap;  // id / node / seq are stamped by the owner
  snap.paddedSegments = pad;
  snap.envelope = searcher_.finish();
  batchDocuments_ = 0;
  batchStartMs_ = nowMs;
  ++snapshotsSealed_;
  obs::currentRegistry().counter(kSubSnapshots).inc();
  if (pad > 0) obs::currentRegistry().counter(kSubPadded).inc(pad);
  return snap;
}

std::optional<SubscriptionSnapshot> SubscriptionMatcher::sealIfDue(
    std::int64_t nowMs) {
  if (!due(nowMs)) return std::nullopt;
  return seal(nowMs);
}

std::uint64_t SubscriptionMatcher::fillPercent() const {
  const std::size_t cap = spec_.policy.maxDocuments;
  if (cap == 0) return 0;
  const std::uint64_t pct = batchDocuments_ * 100 / cap;
  return pct > 100 ? 100 : pct;
}

}  // namespace dpss::pss
