#include "pss/buffers.h"

#include "common/error.h"

namespace dpss::pss {

SearchBuffers::SearchBuffers(const crypto::PaillierPublicKey& pub,
                             const SearchParams& p,
                             std::size_t blocksPerSegment, Rng& rng)
    : blocks_(blocksPerSegment) {
  p.validate();
  DPSS_CHECK_MSG(blocksPerSegment >= 1, "need at least one block");
  dataBuffer_.reserve(p.bufferLength * blocks_);
  for (std::size_t i = 0; i < p.bufferLength * blocks_; ++i) {
    dataBuffer_.push_back(pub.encryptZero(rng));
  }
  cBuffer_.reserve(p.bufferLength);
  for (std::size_t i = 0; i < p.bufferLength; ++i) {
    cBuffer_.push_back(pub.encryptZero(rng));
  }
  matchBuffer_.reserve(p.indexBufferLength);
  for (std::size_t i = 0; i < p.indexBufferLength; ++i) {
    matchBuffer_.push_back(pub.encryptZero(rng));
  }
}

std::uint64_t SearchBuffers::foldSlotRange(
    const crypto::PaillierPublicKey& pub, const crypto::BitPrf& prf,
    std::uint64_t index, const crypto::Ciphertext& ec,
    const std::vector<crypto::Ciphertext>& ecf, std::size_t lo,
    std::size_t hi) {
  DPSS_CHECK_MSG(hi <= cBuffer_.size() && lo <= hi,
                 "fold range out of bounds");
  DPSS_CHECK_MSG(ecf.size() == blocks_, "need one E(c·f) per block");
  std::uint64_t folds = 0;
  for (std::size_t j = lo; j < hi; ++j) {
    if (!prf(index, j)) continue;
    for (std::size_t b = 0; b < blocks_; ++b) {
      crypto::Ciphertext& slot = dataBuffer_[j * blocks_ + b];
      slot = pub.addCipher(slot, ecf[b]);
    }
    cBuffer_[j] = pub.addCipher(cBuffer_[j], ec);
    folds += blocks_ + 1;
  }
  return folds;
}

void SearchBuffers::serialize(ByteWriter& w) const {
  w.varint(blocks_);
  w.varint(cBuffer_.size());
  w.varint(matchBuffer_.size());
  for (const auto& ct : dataBuffer_) w.str(ct.toBlob().wire());
  for (const auto& ct : cBuffer_) w.str(ct.toBlob().wire());
  for (const auto& ct : matchBuffer_) w.str(ct.toBlob().wire());
}

SearchBuffers SearchBuffers::deserialize(ByteReader& r) {
  SearchBuffers b;
  b.blocks_ = r.varint();
  const std::uint64_t lf = r.varint();
  const std::uint64_t li = r.varint();
  auto readN = [&r](std::size_t n, std::vector<crypto::Ciphertext>& out) {
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(
          crypto::Ciphertext::fromBlob(crypto::CiphertextBlob(r.str())));
    }
  };
  readN(lf * b.blocks_, b.dataBuffer_);
  readN(lf, b.cBuffer_);
  readN(li, b.matchBuffer_);
  return b;
}

}  // namespace dpss::pss
