// Client query construction (§III-C, Step 1).
//
// For a disjunction K ⊆ D the client sets q_i = 1 iff w_i ∈ K, encrypts
// each q_i under its Paillier public key, and ships the ciphertext array
// Q together with the public key and the search parameters.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/paillier.h"
#include "pss/dictionary.h"
#include "pss/params.h"

namespace dpss::pss {

/// What the client sends to the broker: the encrypted query vector Q, the
/// public key n, and the buffer parameters.
class EncryptedQuery {
 public:
  EncryptedQuery() = default;
  EncryptedQuery(crypto::PaillierPublicKey pub,
                 std::vector<crypto::Ciphertext> entries, SearchParams params);

  const crypto::PaillierPublicKey& publicKey() const { return pub_; }
  const SearchParams& params() const { return params_; }
  std::size_t dictionarySize() const { return entries_.size(); }

  /// Q[i] — the encryption of q_i.
  const crypto::Ciphertext& entry(std::size_t i) const {
    return entries_.at(i);
  }

  void serialize(ByteWriter& w) const;
  static EncryptedQuery deserialize(ByteReader& r);

 private:
  crypto::PaillierPublicKey pub_;
  std::vector<crypto::Ciphertext> entries_;
  SearchParams params_;
};

/// Builds Q for the keyword disjunction `keywords` (each must be in the
/// dictionary; throws InvalidArgument otherwise). Every entry — matching
/// or not — is a fresh probabilistic encryption, so the broker learns
/// nothing about K, not even |K|.
EncryptedQuery buildQuery(const Dictionary& dict,
                          const std::set<std::string>& keywords,
                          const crypto::PaillierPublicKey& pub,
                          const SearchParams& params, Rng& rng);

}  // namespace dpss::pss
