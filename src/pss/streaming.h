// Standing private search over a live stream (the paper's headline
// scenario: "private search on streaming data ... a private search
// scheme with communication independent of the size of the stream").
//
// A StandingSearch holds one encrypted query and consumes documents as
// they arrive; every `batchSize` documents (the paper's parameter t) it
// seals the three buffers into an envelope and re-arms with fresh
// randomness. The client polls envelopes and opens each independently —
// communication per batch is the fixed buffer size, independent of the
// stream length.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "pss/searcher.h"

namespace dpss::pss {

class StandingSearch {
 public:
  /// `batchSize` must exceed the query's bufferLength (the paper requires
  /// t > l_F so padding indices always exist).
  StandingSearch(const Dictionary& dict, EncryptedQuery query,
                 std::size_t blocksPerSegment, std::size_t batchSize,
                 std::uint64_t seed);

  /// Feeds the next document; stream indices are assigned contiguously.
  /// Returns true when this document sealed a batch (an envelope became
  /// available).
  bool feed(std::string_view payload);

  /// Seals the current partial batch early (e.g. on shutdown). No-op
  /// when the current batch is empty. The envelope still satisfies the
  /// t > l_F requirement only if enough documents were fed; callers
  /// flushing early should size l_F accordingly.
  void flush();

  /// Envelopes ready for the client, in stream order.
  std::vector<SearchResultEnvelope> drainEnvelopes();

  std::uint64_t documentsSeen() const;
  std::size_t pendingEnvelopes() const;

 private:
  const Dictionary& dict_;
  std::size_t batchSize_;
  Rng rng_ DPSS_GUARDED_BY(mu_);
  mutable Mutex mu_;
  StreamSearcher searcher_ DPSS_GUARDED_BY(mu_);
  std::uint64_t nextIndex_ DPSS_GUARDED_BY(mu_) = 0;
  std::deque<SearchResultEnvelope> ready_ DPSS_GUARDED_BY(mu_);
};

}  // namespace dpss::pss
