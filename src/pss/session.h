// High-level client-side API tying the pieces together.
//
// PrivateSearchClient owns the key pair and parameters; runPrivateSearch
// drives one full round (query → broker stream search → reconstruction)
// over an in-memory stream, retrying with a fresh PRF seed in the
// cryptographically-unlikely event of a singular reconstruction matrix.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "crypto/paillier.h"
#include "pss/dictionary.h"
#include "pss/params.h"
#include "pss/query.h"
#include "pss/reconstruct.h"
#include "pss/searcher.h"

namespace dpss::pss {

class PrivateSearchClient {
 public:
  /// Generates a fresh Paillier key pair of `modulusBits` bits.
  PrivateSearchClient(const Dictionary& dict, SearchParams params,
                      std::size_t modulusBits, std::uint64_t seed);

  /// Step 1: the encrypted query for a keyword disjunction.
  EncryptedQuery makeQuery(const std::set<std::string>& keywords);

  /// Steps 3–4: open a broker result envelope.
  std::vector<RecoveredSegment> open(const SearchResultEnvelope& env) const {
    return Reconstructor(keys_.get().priv).reconstruct(env);
  }

  /// Steps 3–4 plus unpacking: opens an envelope whose segments each pack
  /// env.packFactor consecutive documents, splits the groups back into
  /// documents, and recomputes each document's c-value from the query
  /// keywords (the reconstructed c-value belongs to the whole group).
  /// Documents matching no keyword — riders in a matched group — are
  /// dropped. For unpacked envelopes this is exactly open().
  std::vector<RecoveredSegment> openDocuments(
      const SearchResultEnvelope& env,
      const std::set<std::string>& keywords) const;

  const crypto::PaillierPublicKey& publicKey() const { return keys_.get().pub; }
  const crypto::PaillierPrivateKey& privateKey() const {
    return keys_.get().priv;
  }
  const Dictionary& dictionary() const { return dict_; }
  const SearchParams& params() const { return params_; }

 private:
  const Dictionary& dict_;
  SearchParams params_;
  Rng rng_;
  // TrustedOnly: a server-role translation unit (broker/historical/
  // realtime/coordinator, DPSS_SERVER_ROLE_TU) cannot construct this
  // client — the key pair is compile-time confined to the trusted zone.
  crypto::TrustedOnly<crypto::PaillierKeyPair> keys_;
};

/// One full private-search round over an in-memory stream of payloads
/// (payload i has stream index i). `blocksPerSegment` must fit the
/// largest payload; pass 0 to auto-size it from the stream. Retries the
/// whole batch up to `maxRetries` times on a singular reconstruction
/// matrix.
std::vector<RecoveredSegment> runPrivateSearch(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    const std::vector<std::string>& payloads,
    std::size_t blocksPerSegment, Rng& brokerRng, int maxRetries = 3);

/// Packed variant of runPrivateSearch: every `packFactor` consecutive
/// documents share one plaintext segment group (pss::packPayloads), so
/// the broker folds and the client decrypts ~packFactor× fewer
/// ciphertexts per document. The group's keyword set is the union over
/// its members; the client unpacks and recomputes per-document c-values.
/// packFactor <= 1 is exactly runPrivateSearch. Note the buffer-sizing
/// constraint applies to *groups*: ⌈payloads/packFactor⌉ must still
/// exceed l_F.
std::vector<RecoveredSegment> runPrivateSearchPacked(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    const std::vector<std::string>& payloads, std::size_t packFactor,
    std::size_t blocksPerSegment, Rng& brokerRng, int maxRetries = 3);

/// Smallest s such that every payload encodes into s blocks under a
/// modulus of `modulusBits` bits.
std::size_t blocksNeeded(const std::vector<std::string>& payloads,
                         std::size_t modulusBits);

/// (t, n)-threshold searching (the extension of Yi & Xing the paper's
/// related work describes): return only documents matching at least
/// `threshold` distinct query keywords. The disjunctive scheme already
/// recovers c_i = |K ∩ W_i| per match, so thresholding is a client-side
/// filter — no change to the broker protocol and no dictionary growth.
std::vector<RecoveredSegment> runThresholdSearch(
    PrivateSearchClient& client, const std::set<std::string>& keywords,
    std::uint64_t threshold, const std::vector<std::string>& payloads,
    std::size_t blocksPerSegment, Rng& brokerRng, int maxRetries = 3,
    std::size_t packFactor = 1);

}  // namespace dpss::pss
