// Broker stream search procedure (§III-C, Step 2).
//
// For each segment i the broker:
//   2.1  computes E(c_i) = Π_{w_j ∈ W_i} Q[j]   (c_i = |K ∩ W_i|)
//   2.2  folds E(c_i·f_i) = E(c_i)^{f_i} into every data-buffer slot j
//        with g(i, j) = 1, blockwise
//   2.3  folds E(c_i) into the same c-buffer slots
//   2.4  folds E(c_i) into the k Bloom slots h_1(i)..h_k(i) of the
//        matching-indices buffer
//
// After t segments the broker ships the three buffers plus the seeds of
// g and the Bloom family ("the broker should return the function g").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "crypto/paillier.h"
#include "crypto/prf.h"
#include "pss/blocking.h"
#include "pss/buffers.h"
#include "pss/dictionary.h"
#include "pss/query.h"

namespace dpss::pss {

/// What the broker returns to the client after a batch.
struct SearchResultEnvelope {
  SearchBuffers buffers;
  std::uint64_t prfSeed = 0;    // seed of g
  std::uint64_t bloomSeed = 0;  // seed of h_1..h_k
  /// The contiguous stream-index range [firstIndex, firstIndex + t) this
  /// batch covered. In the distributed deployment each storage node
  /// searches its own partition of the stream and returns an envelope for
  /// its range; the client reconstructs each envelope independently.
  std::uint64_t firstIndex = 0;
  std::uint64_t segmentsProcessed = 0;  // t
  /// Documents per segment (1 = unpacked). With packFactor P > 1 every
  /// segment in this envelope is a pack of P consecutive documents
  /// (pss::packPayloads); the client unpacks after reconstruction.
  std::uint64_t packFactor = 1;
  /// Stream index of the first *document* covered (== firstIndex when
  /// unpacked). Document o of group i lives at
  /// firstDocIndex + (i - firstIndex)·packFactor + o.
  std::uint64_t firstDocIndex = 0;
  /// Total documents covered (== segmentsProcessed when unpacked; the
  /// last group of a packed batch may be short).
  std::uint64_t documentCount = 0;
  SearchParams params;

  void serialize(ByteWriter& w) const;
  static SearchResultEnvelope deserialize(ByteReader& r);
};

/// How a StreamSearcher folds each segment into the buffer slots.
struct FoldOptions {
  /// Pool to shard the per-segment slot fold across. nullptr (the default)
  /// keeps the fold serial on the calling thread.
  ThreadPool* pool = nullptr;
  /// Number of contiguous slot ranges to split [0, l_F) into; 0 means one
  /// per pool thread. Shards own disjoint slots, so the folded buffers are
  /// byte-identical to the serial fold for every shard count.
  std::size_t shards = 0;
};

class StreamSearcher {
 public:
  /// `blocksPerSegment` fixes s for the whole batch (every payload must
  /// encode into at most s blocks). `rng` provides buffer-initialization
  /// randomness and the two PRF seeds.
  StreamSearcher(const Dictionary& dict, EncryptedQuery query,
                 std::size_t blocksPerSegment, Rng& rng);

  /// Processes segment `index` (its position in the stream). Indices must
  /// be contiguous and increasing within a batch; the first call fixes the
  /// batch's base index.
  void processSegment(std::uint64_t index, std::string_view payload);

  /// As above with pre-tokenized distinct words and pre-encoded blocks —
  /// the hot path for the distributed broker.
  void processSegment(std::uint64_t index,
                      const std::vector<std::string>& words,
                      const std::vector<crypto::Bigint>& blocks);

  /// Opts the per-segment fold into thread-parallel sharding. Safe to call
  /// between segments; the Bloom fold (k colliding slots) stays serial.
  void setFoldOptions(const FoldOptions& opts) { fold_ = opts; }
  const FoldOptions& foldOptions() const { return fold_; }

  /// Appends `count` empty segments to the batch without folding. An empty
  /// segment's contribution is the multiplicative identity everywhere
  /// (c = 0 with blinding r = 1, so E(c) = 1 and E(c·f) = 1), which leaves
  /// every buffer slot byte-identical — this only advances the index
  /// bookkeeping. Standing subscriptions use it to pad a partial batch up
  /// to l_F segments before sealing (the paper requires t > l_F); padded
  /// indices can never be recovered (their c-value is zero). Requires a
  /// non-empty batch so the base index is already fixed.
  void padSegments(std::size_t count);

  /// Finishes the batch: hands the buffers + seeds to the caller and
  /// resets internal state for the next batch.
  SearchResultEnvelope finish();

  std::uint64_t segmentsProcessed() const { return processed_; }
  const BlockCodec& codec() const { return codec_; }
  std::size_t blocksPerSegment() const { return blocks_; }

 private:
  /// Step 2.1: encrypted c-value of a segment from its distinct words.
  crypto::Ciphertext encryptedCValue(
      const std::vector<std::string>& words) const;

  const Dictionary& dict_;
  EncryptedQuery query_;
  std::size_t blocks_;
  BlockCodec codec_;
  Rng& rng_;
  SearchBuffers buffers_;
  crypto::BitPrf prf_;
  crypto::BloomHashFamily bloom_;
  FoldOptions fold_;
  std::uint64_t firstIndex_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace dpss::pss
