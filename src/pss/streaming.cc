#include "pss/streaming.h"

#include "common/error.h"

namespace dpss::pss {

StandingSearch::StandingSearch(const Dictionary& dict, EncryptedQuery query,
                               std::size_t blocksPerSegment,
                               std::size_t batchSize, std::uint64_t seed)
    : dict_(dict),
      batchSize_(batchSize),
      rng_(seed),
      searcher_(dict, std::move(query), blocksPerSegment, rng_) {
  DPSS_CHECK_MSG(batchSize_ > 0, "batch size must be positive");
}

bool StandingSearch::feed(std::string_view payload) {
  MutexLock lock(mu_);
  searcher_.processSegment(nextIndex_++, payload);
  if (searcher_.segmentsProcessed() >= batchSize_) {
    ready_.push_back(searcher_.finish());
    return true;
  }
  return false;
}

void StandingSearch::flush() {
  MutexLock lock(mu_);
  if (searcher_.segmentsProcessed() > 0) {
    ready_.push_back(searcher_.finish());
  }
}

std::vector<SearchResultEnvelope> StandingSearch::drainEnvelopes() {
  MutexLock lock(mu_);
  std::vector<SearchResultEnvelope> out(ready_.begin(), ready_.end());
  ready_.clear();
  return out;
}

std::uint64_t StandingSearch::documentsSeen() const {
  MutexLock lock(mu_);
  return nextIndex_;
}

std::size_t StandingSearch::pendingEnvelopes() const {
  MutexLock lock(mu_);
  return ready_.size();
}

}  // namespace dpss::pss
