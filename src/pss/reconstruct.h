// Client segment reconstruction (§III-C, Steps 3 and 4).
//
//   3.1 decrypt the three buffers with the private key
//   3.2 Bloom-scan indices i ∈ [firstIndex, firstIndex + t): i is a
//       candidate when all k slots h_1(i)..h_k(i) are non-zero; on
//       underflow, pad with arbitrary non-candidate indices ("pick") so
//       the candidate list has exactly l_F entries
//   3.3 solve A·c = C' (mod n) where A[r][j] = g(a_r, j); indices with
//       c = 0 are Bloom false positives; zeros are then replaced by ones
//   4   solve A·diag(c)·f = F' blockwise and decode the payloads
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/paillier.h"
#include "pss/searcher.h"

namespace dpss::pss {

/// One recovered matching segment. The payload is privacy-typed
/// (crypto/sensitive.h): a decrypted matched document can be compared
/// and carried around, but reading the raw bytes back out requires the
/// lint-audited releaseForClientReconstruction escape hatch, and
/// serializing it into a Frame/Envelope does not compile.
struct RecoveredSegment {
  std::uint64_t index = 0;   // position in the stream
  std::uint64_t cValue = 0;  // |K ∩ W_i| — how many query keywords matched
  crypto::PlaintextBytes payload;  // exact original bytes, privacy-typed

  friend bool operator==(const RecoveredSegment& a,
                         const RecoveredSegment& b) = default;
};

/// Thrown when matches + Bloom false positives exceed l_F: the batch held
/// more matching segments than the buffers can carry. The client should
/// retry with larger buffers (detectable overflow, unlike a silent loss).
class BufferOverflow : public Error {
 public:
  explicit BufferOverflow(const std::string& what) : Error(what) {}
};

class Reconstructor {
 public:
  explicit Reconstructor(const crypto::PaillierPrivateKey& priv);

  /// Runs Steps 3–4 on one envelope. Returns matching segments ordered by
  /// stream index. Throws BufferOverflow or CryptoError (singular matrix,
  /// retry batch with a fresh seed).
  std::vector<RecoveredSegment> reconstruct(
      const SearchResultEnvelope& envelope) const;

 private:
  const crypto::PaillierPrivateKey& priv_;
};

}  // namespace dpss::pss
