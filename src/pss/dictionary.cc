#include "pss/dictionary.h"

#include <cctype>
#include <unordered_set>

#include "common/error.h"

namespace dpss::pss {

Dictionary::Dictionary(std::vector<std::string> words)
    : words_(std::move(words)) {
  index_.reserve(words_.size());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const auto [it, inserted] = index_.emplace(words_[i], i);
    (void)it;
    DPSS_CHECK_MSG(inserted, "duplicate dictionary word: " + words_[i]);
  }
}

std::optional<std::size_t> Dictionary::indexOf(std::string_view w) const {
  const auto it = index_.find(std::string(w));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> distinctWords(std::string_view text) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      if (seen.insert(current).second) out.push_back(current);
      current.clear();
    }
  };
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

}  // namespace dpss::pss
